//! Criterion micro-benchmarks for the substrate: graph generation, engine
//! round cost, end-to-end broadcasts per protocol, and the spectral solver.
//!
//! These are performance benches for the *simulator itself* (the paper's
//! metrics — rounds and transmissions — come from the `exp_*` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use rrb_baselines::{Budgeted, GossipMode, MedianCounter};
use rrb_core::FourChoice;
use rrb_engine::{protocols::FloodPushPull, SimConfig, SimState, Simulation};
use rrb_graph::{gen, spectral, NodeId};

fn bench_graph_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_gen");
    group.sample_size(20);
    for &n in &[1usize << 12, 1 << 14] {
        group.bench_with_input(BenchmarkId::new("configuration_model_d8", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| gen::configuration_model(n, 8, &mut rng).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("random_regular_d8", n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| gen::random_regular(n, 8, &mut rng).unwrap());
        });
    }
    group.bench_function("gnp_n4096_logdeg", |b| {
        let n = 1 << 12;
        let p = 2.0 * (n as f64).log2() / n as f64;
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| gen::gnp(n, p, &mut rng).unwrap());
    });
    group.finish();
}

fn bench_engine_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_round");
    group.sample_size(30);
    let n = 1 << 13;
    let mut rng = SmallRng::seed_from_u64(4);
    let g = gen::random_regular(n, 8, &mut rng).unwrap();
    group.bench_function("four_choice_step_n8192_d8", |b| {
        let alg = FourChoice::for_graph(n, 8);
        let config = SimConfig::default();
        b.iter_batched(
            || SimState::new(&alg, n, NodeId::new(0)),
            |mut sim| {
                for _ in 0..4 {
                    sim.step(&g, &alg, config, &mut rng);
                }
                sim
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("flood_pushpull_step_n8192_d8", |b| {
        let alg = FloodPushPull::new();
        let config = SimConfig::default();
        b.iter_batched(
            || SimState::new(&alg, n, NodeId::new(0)),
            |mut sim| {
                for _ in 0..4 {
                    sim.step(&g, &alg, config, &mut rng);
                }
                sim
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_end_to_end");
    group.sample_size(10);
    let n = 1 << 11;
    let mut rng = SmallRng::seed_from_u64(5);
    let g = gen::random_regular(n, 8, &mut rng).unwrap();
    group.bench_function("four_choice_n2048", |b| {
        let alg = FourChoice::for_graph(n, 8);
        b.iter(|| {
            Simulation::new(&g, alg, SimConfig::until_quiescent())
                .run(NodeId::new(0), &mut rng)
        });
    });
    group.bench_function("budgeted_push_n2048", |b| {
        let alg = Budgeted::for_size(GossipMode::Push, n, 3.0);
        b.iter(|| {
            Simulation::new(&g, alg, SimConfig::until_quiescent())
                .run(NodeId::new(0), &mut rng)
        });
    });
    group.bench_function("median_counter_n2048", |b| {
        let alg = MedianCounter::for_size(n);
        b.iter(|| {
            Simulation::new(&g, alg, SimConfig::until_quiescent())
                .run(NodeId::new(0), &mut rng)
        });
    });
    group.finish();
}

fn bench_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral");
    group.sample_size(10);
    let n = 1 << 10;
    let mut rng = SmallRng::seed_from_u64(6);
    let g = gen::random_regular(n, 8, &mut rng).unwrap();
    group.bench_function("second_eigenvalue_n1024_d8", |b| {
        b.iter(|| spectral::second_eigenvalue(&g, 300, &mut rng).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_graph_gen, bench_engine_round, bench_broadcast, bench_spectral);
criterion_main!(benches);
