//! The E1–E20 experiment drivers and their configuration ladders.
//!
//! Sweep-style experiments express their ladder as [`ScenarioSpec`] values
//! and drive them through [`run_entry`]; the remaining bespoke
//! measurements (phase anatomy, churn, replicated DB) keep custom
//! per-seed closures but still register their parameter grid as scenario
//! data for `rrb describe`. E5 and E15 reduce through the named
//! [`crate::measure`] drivers behind their [`MeasureSpec`] variants.
//!
//! `config_ix` values mirror the indices the pre-registry binaries used
//! wherever possible, so recorded results stay comparable (E8 renumbers its
//! blocks — the legacy binary reused the same indices for two different
//! failure kinds).

use std::time::Instant;

use crate::measure;
use crate::registry::{
    deadline_of, instrument_entry, run_entry, run_entry_async, Experiment, LadderEntry,
};
use crate::scenario::{
    ChurnSpec, DynamicsSpec, FailureSpec, FaultSpec, GossipModeSpec, GraphSpec, MeasureSpec,
    PolicySpec, ProtocolSpec, RegimeSpec, ScenarioSpec, StopSpec, TimingSpec,
};
use crate::{
    mean_coverage, mean_of, mean_recovery_rounds, mean_rounds_to_coverage, peak_rss_kib,
    replicate, success_rate, BenchRecorder, ExpConfig,
};
use rrb_core::{AlgorithmVariant, DegreeRegime};
use rrb_engine::{
    AdversarySpec, AdversaryTarget, ClockSpec, FaultEvent, GilbertElliott, LatencySpec, OutageSpec,
    RoundRecord, SimConfig, StepPhase,
};
use rrb_graph::gen;
use rrb_p2p::ReplicatedDb;
use rrb_stats::{fit_log2, fit_loglog2, Summary, Table};

/// Mirrors `ExpConfig::size_exponents` for ladder builders that only get
/// the `quick` flag.
fn exponents(quick: bool, full: std::ops::RangeInclusive<u32>) -> Vec<u32> {
    ExpConfig { quick, seeds: 0, threads: None, shards: 1 }.size_exponents(full)
}

/// The paper's algorithm with default schedule (α = 1.5, 4 choices, auto
/// regime) — the shape most ladders use.
fn four_choice(n_estimate: usize, degree: usize) -> ProtocolSpec {
    ProtocolSpec::FourChoice { n_estimate, degree, alpha: 1.5, choices: 4, regime: RegimeSpec::Auto }
}

fn budgeted(mode: GossipModeSpec, n: usize, budget: f64) -> ProtocolSpec {
    ProtocolSpec::Budgeted { mode, n, budget, policy: PolicySpec::STANDARD }
}

// ---------------------------------------------------------------------------
// E1 — runtime vs n
// ---------------------------------------------------------------------------

const E1_DEGREES: [usize; 3] = [8, 16, 32];

fn e1_entry(di: usize, d: usize, e: u32) -> LadderEntry {
    let n = 1usize << e;
    LadderEntry::new(
        (di * 100 + e as usize) as u64,
        ScenarioSpec::new(format!("d{d}_n{n}"), GraphSpec::RandomRegular { n, d }, four_choice(n, d)),
    )
}

fn e1_scenarios(quick: bool) -> Vec<LadderEntry> {
    let mut out = Vec::new();
    for (di, &d) in E1_DEGREES.iter().enumerate() {
        for &e in &exponents(quick, 10..=15) {
            out.push(e1_entry(di, d, e));
        }
    }
    out
}

fn e1_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let exps = exponents(cfg.quick, 10..=15);
    let mut recorder = BenchRecorder::new("e1_runtime", cfg.quick);

    println!("E1: four-choice broadcast runtime vs n (mean over {} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec!["d", "n", "rounds", "success", "wall ms", "schedule end"]);
    for (di, &d) in E1_DEGREES.iter().enumerate() {
        let mut ns = Vec::new();
        let mut rounds = Vec::new();
        for &e in &exps {
            let n = 1usize << e;
            let entry = e1_entry(di, d, e);
            let (reports, wall_ms) = run_entry(1, &entry, cfg);
            recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
            let mean_rounds = mean_rounds_to_coverage(&reports);
            table.row(vec![
                d.to_string(),
                n.to_string(),
                format!("{mean_rounds:.1}"),
                format!("{:.2}", success_rate(&reports)),
                format!("{wall_ms:.1}"),
                deadline_of(&entry.spec).map(|r| r.to_string()).unwrap_or_default(),
            ]);
            ns.push(n as f64);
            rounds.push(mean_rounds);
        }
        if ns.len() >= 2 {
            let fit = fit_log2(&ns, &rounds);
            println!(
                "d = {d}: rounds ≈ {:.2}·log2(n) + {:.2}   (r² = {:.3})",
                fit.slope, fit.intercept, fit.r_squared
            );
        }
    }
    println!("\n{table}");

    // Sharded provenance rows: the largest d = 8 rung re-run with the
    // round loop split over 2 and 4 shards. The statistics must match
    // the serial row bit for bit (the sharding determinism contract);
    // only the wall clock may move.
    recorder.set_shards(cfg.shards);
    let &e_max = exps.last().expect("non-empty ladder");
    let (serial_reports, _) = run_entry(1, &e1_entry(0, 8, e_max), cfg);
    for shards in [2usize, 4] {
        let entry = e1_entry(0, 8, e_max);
        let sharded = ExpConfig { shards, ..*cfg };
        let (reports, wall_ms) = run_entry(1, &entry, &sharded);
        assert_eq!(
            serial_reports, reports,
            "E1 {} diverged at {shards} shards — sharding must be invisible to results",
            entry.spec.label
        );
        recorder.record(
            format!("{}_s{shards}", entry.spec.label),
            1usize << e_max,
            cfg.seeds,
            wall_ms,
            &reports,
        );
    }

    // Memory-smoke rung (skipped under --quick): a single seed at
    // n = 2^20 ≈ 10^6, recording the process's peak RSS around the CSR
    // graph + arena run — the first step toward the ROADMAP 10^6 ladder.
    if !cfg.quick {
        let n = 1usize << 20;
        let d = 8usize;
        let rss_before = peak_rss_kib();
        let entry = LadderEntry::new(
            9000,
            ScenarioSpec::new(
                format!("memsmoke_n{n}"),
                GraphSpec::RandomRegular { n, d },
                four_choice(n, d),
            )
            .with_stop(StopSpec::COVERAGE),
        );
        let one_seed = ExpConfig { quick: false, seeds: 1, threads: cfg.threads, shards: cfg.shards };
        let (reports, wall_ms) = run_entry(1, &entry, &one_seed);
        recorder.record(entry.spec.label.clone(), n, 1, wall_ms, &reports);
        let rss_after = peak_rss_kib();
        let fmt_mib = |kib: Option<u64>| match kib {
            Some(k) => format!("{:.0} MiB", k as f64 / 1024.0),
            None => "n/a".into(),
        };
        println!(
            "\nmemory smoke (single seed, n = 2^20, d = {d}): rounds {:.0}, coverage \
             {:.4}, wall {wall_ms:.0} ms\n  peak RSS before {} / after {} (VmHWM; \
             CSR graph ≈ {:.0} MiB of stubs alone)",
            mean_rounds_to_coverage(&reports),
            mean_of(&reports, |r| r.coverage()),
            fmt_mib(rss_before),
            fmt_mib(rss_after),
            (n * d * 4) as f64 / (1024.0 * 1024.0),
        );
    }

    let json_path =
        std::env::var("RRB_BENCH_JSON").unwrap_or_else(|_| "BENCH_engine.json".into());
    match recorder.write(&json_path) {
        Ok(()) => println!("perf trajectory written to {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }
    println!(
        "paper: O(log n) rounds (Thm 2 for small d, Thm 3 for large d); the fits\n\
         above should be linear in log2 n with stable slope across d."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E2 — transmissions vs n
// ---------------------------------------------------------------------------

const E2_D: usize = 8;

/// A protocol family in a sweep: display name, `config_ix` base, and the
/// spec constructor for a given n.
type ProtocolFamily = (&'static str, u64, fn(usize) -> ProtocolSpec);

fn e2_families() -> Vec<ProtocolFamily> {
    vec![
        ("four-choice", 100, |n| four_choice(n, E2_D)),
        ("push", 200, |n| budgeted(GossipModeSpec::Push, n, 3.0)),
        ("push&pull", 300, |n| budgeted(GossipModeSpec::PushPull, n, 3.0)),
        ("median-counter", 400, |n| ProtocolSpec::MedianCounter {
            n,
            ctr_max: None,
            c_rounds: None,
            age_cutoff: None,
        }),
    ]
}

fn e2_entry(name: &str, base: u64, e: u32, make: fn(usize) -> ProtocolSpec) -> LadderEntry {
    let n = 1usize << e;
    LadderEntry::new(
        base + e as u64,
        ScenarioSpec::new(
            format!("{name}_n{n}"),
            GraphSpec::RandomRegular { n, d: E2_D },
            make(n),
        ),
    )
}

fn e2_scenarios(quick: bool) -> Vec<LadderEntry> {
    let mut out = Vec::new();
    for (name, base, make) in e2_families() {
        for &e in &exponents(quick, 10..=15) {
            out.push(e2_entry(name, base, e, make));
        }
    }
    out
}

fn e2_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let exps = exponents(cfg.quick, 10..=15);
    let mut recorder = BenchRecorder::new("e2_transmissions", cfg.quick);
    println!(
        "E2: transmissions per node vs n on random {E2_D}-regular graphs (mean over {} seeds)\n",
        cfg.seeds
    );

    let mut ns: Vec<f64> = Vec::new();
    let mut tx_by_family: Vec<(&'static str, Vec<f64>)> = Vec::new();
    let mut coverage_rows: Vec<(&'static str, f64)> = Vec::new();
    for (name, base, make) in e2_families() {
        let mut tx = Vec::new();
        let mut all = Vec::new();
        ns.clear();
        for &e in &exps {
            let n = 1usize << e;
            let entry = e2_entry(name, base, e, make);
            let (reports, wall_ms) = run_entry(2, &entry, cfg);
            recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
            ns.push(n as f64);
            tx.push(mean_of(&reports, |r| r.tx_per_node()));
            all.extend(reports);
        }
        coverage_rows.push((name, success_rate(&all)));
        tx_by_family.push((name, tx));
    }

    let mut table =
        Table::new(vec!["n", "four-choice", "push", "push&pull", "median-counter"]);
    for i in 0..ns.len() {
        let mut row = vec![format!("{}", ns[i] as u64)];
        for (_, tx) in &tx_by_family {
            row.push(format!("{:.1}", tx[i]));
        }
        table.row(row);
    }
    println!("{table}");

    for (name, ys) in &tx_by_family {
        if ns.len() >= 2 {
            let log_fit = fit_log2(&ns, ys);
            let loglog_fit = fit_loglog2(&ns, ys);
            println!(
                "{name:>15}: tx/node ≈ {:.2}·log2 n + {:.1} (r²={:.3})  |  ≈ {:.2}·loglog2 n + {:.1} (r²={:.3})",
                log_fit.slope,
                log_fit.intercept,
                log_fit.r_squared,
                loglog_fit.slope,
                loglog_fit.intercept,
                loglog_fit.r_squared
            );
        }
    }
    println!(
        "\ncoverage: four-choice {:.3}, push {:.3}",
        coverage_rows[0].1, coverage_rows[1].1
    );
    println!(
        "paper: four-choice is O(n log log n) total (flat-ish loglog slope, near-zero\n\
         log2 slope), push is Θ(n log n) (log2 slope ≈ its budget constant)."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E3 — lower-bound audit
// ---------------------------------------------------------------------------

fn e3_params(quick: bool) -> (usize, &'static [usize]) {
    if quick {
        (1 << 11, &[8, 16])
    } else {
        (1 << 13, &[4, 8, 16, 32, 64])
    }
}

fn e3_protos(n: usize) -> Vec<(&'static str, u64, ProtocolSpec)> {
    vec![
        ("push", 0, budgeted(GossipModeSpec::Push, n, 3.0)),
        ("pull", 1, budgeted(GossipModeSpec::Pull, n, 4.0)),
        ("push&pull", 2, budgeted(GossipModeSpec::PushPull, n, 2.5)),
    ]
}

/// The E3 ladder rungs for one degree, with the display name each row
/// uses (`four-choice*` is starred: it sits outside the standard model).
fn e3_entries(n: usize, di: usize, d: usize) -> Vec<(&'static str, LadderEntry)> {
    let mut out: Vec<(&'static str, LadderEntry)> = e3_protos(n)
        .into_iter()
        .map(|(name, pi, proto)| {
            let spec =
                ScenarioSpec::new(format!("{name}_d{d}"), GraphSpec::RandomRegular { n, d }, proto);
            (name, LadderEntry::new((di * 10) as u64 + pi, spec))
        })
        .collect();
    out.push((
        "four-choice*",
        LadderEntry::new(
            (di * 10 + 9) as u64,
            ScenarioSpec::new(
                format!("four-choice_d{d}"),
                GraphSpec::RandomRegular { n, d },
                four_choice(n, d),
            ),
        ),
    ));
    out
}

fn e3_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, degrees) = e3_params(quick);
    let mut out = Vec::new();
    for (di, &d) in degrees.iter().enumerate() {
        out.extend(e3_entries(n, di, d).into_iter().map(|(_, entry)| entry));
    }
    out
}

fn e3_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, degrees) = e3_params(cfg.quick);
    let mut recorder = BenchRecorder::new("e3_lower_bound", cfg.quick);
    println!(
        "E3: lower-bound audit at n = {n} (mean over {} seeds); \
         normalisation N = n·log2(n)/log2(d)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "d", "protocol", "coverage", "rounds", "tx/node", "tx / N",
    ]);

    for (di, &d) in degrees.iter().enumerate() {
        for (name, entry) in e3_entries(n, di, d) {
            let norm_per_node = (n as f64).log2() / (d as f64).log2();
            let (reports, wall_ms) = run_entry(3, &entry, cfg);
            recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
            let tx = mean_of(&reports, |r| r.tx_per_node());
            table.row(vec![
                d.to_string(),
                name.into(),
                format!("{:.3}", success_rate(&reports)),
                format!("{:.1}", mean_rounds_to_coverage(&reports)),
                format!("{tx:.1}"),
                format!("{:.3}", tx / norm_per_node),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Theorem 1 predicts tx/N ≥ const > 0 for every one-choice oblivious protocol\n\
         (watch the column stay roughly flat-or-growing in d), while the starred\n\
         four-choice row — outside the standard model — sinks towards 0 as d and n grow."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E4 — phase anatomy (bespoke per-seed history analysis)
// ---------------------------------------------------------------------------

fn e4_params(quick: bool) -> (usize, usize) {
    (if quick { 1 << 12 } else { 1 << 15 }, 8)
}

fn e4_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, d) = e4_params(quick);
    vec![LadderEntry::new(
        0,
        ScenarioSpec::new(
            format!("phases_n{n}"),
            GraphSpec::RandomRegular { n, d },
            ProtocolSpec::FourChoice {
                n_estimate: n,
                degree: d,
                alpha: 1.5,
                choices: 4,
                regime: RegimeSpec::Small,
            },
        )
        .with_measure(MeasureSpec::PhaseMilestones),
    )]
}

fn e4_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, d) = e4_params(cfg.quick);
    let mut recorder = BenchRecorder::new("e4_phases", cfg.quick);
    let start = Instant::now();
    let (s, per_seed) = measure::phase_milestones(n, d, cfg.seeds);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let informed_p1: Vec<f64> = per_seed.iter().map(|r| r.informed_p1).collect();
    let uninformed_p2: Vec<f64> = per_seed.iter().map(|r| r.uninformed_p2).collect();
    let coverage_round: Vec<f64> = per_seed.iter().map(|r| r.coverage_round).collect();
    let p1_growth: Vec<f64> = per_seed.iter().filter_map(|r| r.growth).collect();
    let p2_decay: Vec<f64> = per_seed.iter().filter_map(|r| r.decay).collect();

    println!("E4: phase milestones at n = {n}, d = {d} ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec!["milestone", "measured (mean ± ci95)", "paper's claim"]);
    let fmt = |s: &Summary| format!("{:.1} ± {:.1}", s.mean, s.ci95());
    let s1 = Summary::from_slice(&informed_p1);
    table.row(vec![
        "informed after phase 1".into(),
        fmt(&s1),
        format!(">= n/8 = {}", n / 8),
    ]);
    let s2 = Summary::from_slice(&uninformed_p2);
    table.row(vec![
        "uninformed after phase 2".into(),
        fmt(&s2),
        format!("O(n/log^5 n) ≈ {:.1}", n as f64 / (n as f64).log2().powi(5)),
    ]);
    let s3 = Summary::from_slice(&p1_growth);
    table.row(vec![
        "phase-1 growth factor / round".into(),
        format!("{:.2} ± {:.2}", s3.mean, s3.ci95()),
        "> 2 (Lemma 1: |I+| doubles)".into(),
    ]);
    let s4 = Summary::from_slice(&p2_decay);
    table.row(vec![
        "phase-2 decay factor / round".into(),
        format!("{:.3} ± {:.3}", s4.mean, s4.ci95()),
        "< 1/c (Lemma 3: constant shrink)".into(),
    ]);
    let s5 = Summary::from_slice(&coverage_round);
    table.row(vec![
        "full coverage round".into(),
        fmt(&s5),
        format!("<= schedule end = {}", s.end()),
    ]);
    println!("{table}");

    let ok1 = s1.mean >= (n / 8) as f64;
    let ok2 = s4.mean < 1.0;
    println!(
        "verdict: Corollary 1 {}; Phase-2 contraction {}.",
        if ok1 { "HOLDS" } else { "VIOLATED" },
        if ok2 { "HOLDS" } else { "VIOLATED" }
    );
    let tx: Vec<f64> = per_seed.iter().map(|r| r.total_tx).collect();
    let successes = per_seed.iter().filter(|r| r.success).count();
    recorder.record_raw(
        format!("phases_n{n}"),
        n,
        cfg.seeds,
        wall_ms,
        s5.mean,
        Summary::from_slice(&tx).mean,
        successes as f64 / per_seed.len().max(1) as f64,
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E5 — push/pull crossover (bespoke trace measurement)
// ---------------------------------------------------------------------------

fn e5_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1 << 10]
    } else {
        vec![1 << 10, 1 << 11, 1 << 12]
    }
}

fn e5_entry(i: usize, n: usize, pull: bool) -> LadderEntry {
    let (name, proto) = if pull {
        ("pull", ProtocolSpec::FloodPull { policy: PolicySpec::STANDARD })
    } else {
        ("push", ProtocolSpec::FloodPush { policy: PolicySpec::STANDARD })
    };
    LadderEntry::new(
        i as u64 * 2 + u64::from(pull),
        ScenarioSpec::new(format!("{name}_n{n}"), GraphSpec::Complete { n }, proto)
            .with_stop(StopSpec::COVERAGE)
            .with_measure(MeasureSpec::Crossover),
    )
}

fn e5_scenarios(quick: bool) -> Vec<LadderEntry> {
    let mut out = Vec::new();
    for (i, &n) in e5_sizes(quick).iter().enumerate() {
        out.push(e5_entry(i, n, false));
        out.push(e5_entry(i, n, true));
    }
    out
}

fn e5_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    println!("E5: push/pull crossover on complete graphs ({} seeds)\n", cfg.seeds);
    let mut recorder = BenchRecorder::new("e5_crossover", cfg.quick);
    let mut table = Table::new(vec![
        "n",
        "push: 0→n/2",
        "push: n/2→n",
        "pull: 0→n/2",
        "pull: n/2→n",
        "loglog2 n",
    ]);
    for (i, &n) in e5_sizes(cfg.quick).iter().enumerate() {
        let mut timed = |pull: bool| {
            let entry = e5_entry(i, n, pull);
            let start = Instant::now();
            let trace = measure::crossover_trace(5, &entry, cfg.seeds);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let m = |v: &[f64]| Summary::from_slice(v).mean;
            recorder.record_raw(
                entry.spec.label.clone(),
                n,
                cfg.seeds,
                wall_ms,
                m(&trace.half) + m(&trace.tail),
                m(&trace.total_tx),
                trace.success_rate,
            );
            trace
        };
        let push = timed(false);
        let pull = timed(true);
        let m = |v: &[f64]| Summary::from_slice(v).mean;
        table.row(vec![
            n.to_string(),
            format!("{:.1}", m(&push.half)),
            format!("{:.1}", m(&push.tail)),
            format!("{:.1}", m(&pull.half)),
            format!("{:.1}", m(&pull.tail)),
            format!("{:.1}", (n as f64).log2().log2()),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: push's tail (n/2→n) is Θ(log n); pull's tail collapses in\n\
         O(log log n) rounds (doubly exponential shrink), while pull's head is no\n\
         faster than push's — exactly the crossover at ~n/2 described in §1."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E6 — k-choices ablation
// ---------------------------------------------------------------------------

fn e6_params(quick: bool) -> (usize, usize) {
    (if quick { 1 << 11 } else { 1 << 14 }, 8)
}

fn e6_entry(n: usize, d: usize, k: usize) -> LadderEntry {
    LadderEntry::new(
        k as u64,
        ScenarioSpec::new(
            format!("k{k}"),
            GraphSpec::RandomRegular { n, d },
            ProtocolSpec::FourChoice {
                n_estimate: n,
                degree: d,
                alpha: 1.5,
                choices: k,
                regime: RegimeSpec::Auto,
            },
        ),
    )
}

fn e6_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, d) = e6_params(quick);
    (1..=4).map(|k| e6_entry(n, d, k)).collect()
}

fn e6_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, d) = e6_params(cfg.quick);
    let mut recorder = BenchRecorder::new("e6_choices", cfg.quick);
    println!(
        "E6: k-distinct-choices ablation of the paper's schedule at n = {n}, d = {d} \
         ({} seeds)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "k", "success", "mean coverage round", "tx/node", "pull tx share",
    ]);
    for k in 1..=4usize {
        let entry = e6_entry(n, d, k);
        let (reports, wall_ms) = run_entry(6, &entry, cfg);
        recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
        table.row(vec![
            k.to_string(),
            format!("{:.2}", success_rate(&reports)),
            format!("{:.1}", mean_rounds_to_coverage(&reports)),
            format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
            format!(
                "{:.2}",
                mean_of(&reports, |r| {
                    if r.total_tx() == 0 {
                        0.0
                    } else {
                        r.pull_tx as f64 / r.total_tx() as f64
                    }
                })
            ),
        ]);
    }
    println!("{table}");
    println!(
        "paper: k = 4 proven; k = 3 conjectured sufficient; k = 2 open; k = 1 falls\n\
         back to the standard model (slower phase 1, weaker pull phase).\n\
         tx/node scales ~linearly in k through phase 2, so smaller k is cheaper\n\
         per round — the question is whether coverage survives."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E7 — parallel vs sequentialised four-choice
// ---------------------------------------------------------------------------

fn e7_entry(n: usize, e: u32, sequential: bool) -> LadderEntry {
    let d = 8usize;
    let (name, proto) = if sequential {
        ("seq", ProtocolSpec::SequentialFourChoice { n_estimate: n, degree: d })
    } else {
        ("par", four_choice(n, d))
    };
    LadderEntry::new(
        e as u64 * 2 + u64::from(sequential),
        ScenarioSpec::new(format!("{name}_n{n}"), GraphSpec::RandomRegular { n, d }, proto),
    )
}

fn e7_scenarios(quick: bool) -> Vec<LadderEntry> {
    let mut out = Vec::new();
    for &e in &exponents(quick, 10..=13) {
        let n = 1usize << e;
        out.push(e7_entry(n, e, false));
        out.push(e7_entry(n, e, true));
    }
    out
}

fn e7_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let mut recorder = BenchRecorder::new("e7_sequential", cfg.quick);
    println!("E7: parallel four-choice vs sequential memory-3 ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec![
        "n",
        "par rounds",
        "seq rounds",
        "ratio",
        "par tx/node",
        "seq tx/node",
        "par ok",
        "seq ok",
    ]);
    for &e in &exponents(cfg.quick, 10..=13) {
        let n = 1usize << e;
        let par = e7_entry(n, e, false);
        let seq = e7_entry(n, e, true);
        let (par_reports, par_ms) = run_entry(7, &par, cfg);
        let (seq_reports, seq_ms) = run_entry(7, &seq, cfg);
        recorder.record(par.spec.label.clone(), n, cfg.seeds, par_ms, &par_reports);
        recorder.record(seq.spec.label.clone(), n, cfg.seeds, seq_ms, &seq_reports);
        let pr = mean_rounds_to_coverage(&par_reports);
        let sr = mean_rounds_to_coverage(&seq_reports);
        table.row(vec![
            n.to_string(),
            format!("{pr:.1}"),
            format!("{sr:.1}"),
            format!("{:.2}", sr / pr),
            format!("{:.1}", mean_of(&par_reports, |r| r.tx_per_node())),
            format!("{:.1}", mean_of(&seq_reports, |r| r.tx_per_node())),
            format!("{:.2}", success_rate(&par_reports)),
            format!("{:.2}", success_rate(&seq_reports)),
        ]);
    }
    println!("{table}");
    println!(
        "expected: rounds ratio ≈ 4 (each parallel step = 4 sequential steps),\n\
         tx/node within a small constant of each other, both at full coverage."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E8 — failure injection
// ---------------------------------------------------------------------------

const E8_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.3];

fn e8_blocks() -> Vec<(&'static str, bool, f64)> {
    // (label, is_channel_failure, alpha)
    vec![
        ("channel failures, α = 1.5", true, 1.5),
        ("transmission failures, α = 1.5", false, 1.5),
        ("channel failures, α = 2.5", true, 2.5),
    ]
}

fn e8_entry(n: usize, d: usize, bi: usize, i: usize) -> LadderEntry {
    let (_, is_channel, alpha) = e8_blocks()[bi];
    let p = E8_RATES[i];
    let failures = if p == 0.0 {
        FailureSpec::NONE
    } else if is_channel {
        FailureSpec { channel: p, transmission: 0.0, crash: 0.0 }
    } else {
        FailureSpec { channel: 0.0, transmission: p, crash: 0.0 }
    };
    let kind = if is_channel { "chan" } else { "tx" };
    LadderEntry::new(
        (bi * 100 + i) as u64,
        ScenarioSpec::new(
            format!("{kind}_a{alpha}_p{p}"),
            GraphSpec::RandomRegular { n, d },
            ProtocolSpec::FourChoice {
                n_estimate: n,
                degree: d,
                alpha,
                choices: 4,
                regime: RegimeSpec::Auto,
            },
        )
        .with_failures(failures),
    )
}

fn e8_params(quick: bool) -> (usize, usize) {
    (if quick { 1 << 11 } else { 1 << 13 }, 8)
}

fn e8_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, d) = e8_params(quick);
    let mut out = Vec::new();
    for bi in 0..e8_blocks().len() {
        for i in 0..E8_RATES.len() {
            out.push(e8_entry(n, d, bi, i));
        }
    }
    out
}

fn e8_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, d) = e8_params(cfg.quick);
    let mut recorder = BenchRecorder::new("e8_failures", cfg.quick);
    println!("E8: four-choice under failure injection at n = {n}, d = {d} ({} seeds)\n", cfg.seeds);

    for (bi, (label, _, _)) in e8_blocks().into_iter().enumerate() {
        let mut table = Table::new(vec!["p", "coverage", "success", "rounds", "tx/node"]);
        for (i, &p) in E8_RATES.iter().enumerate() {
            let entry = e8_entry(n, d, bi, i);
            let (reports, wall_ms) = run_entry(8, &entry, cfg);
            recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
            table.row(vec![
                format!("{p:.2}"),
                format!("{:.4}", mean_of(&reports, |r| r.coverage())),
                format!("{:.2}", success_rate(&reports)),
                format!("{:.1}", mean_rounds_to_coverage(&reports)),
                format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
            ]);
        }
        println!("{label}:\n{table}");
    }
    println!(
        "expected: coverage stays ≈ 1 for limited failure rates; cost rises mildly;\n\
         under heavier failures a larger α (longer phases) restores full coverage —\n\
         the paper's \"limited communication failures\" robustness."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E9 — misestimated network size
// ---------------------------------------------------------------------------

const E9_FACTORS: [(f64, &str); 5] =
    [(0.25, "n/4"), (0.5, "n/2"), (1.0, "n"), (2.0, "2n"), (4.0, "4n")];

fn e9_params(quick: bool) -> (usize, usize) {
    (if quick { 1 << 11 } else { 1 << 13 }, 8)
}

fn e9_entry(n: usize, d: usize, i: usize) -> LadderEntry {
    let (f, label) = E9_FACTORS[i];
    let n_est = ((n as f64) * f) as usize;
    LadderEntry::new(
        i as u64,
        ScenarioSpec::new(
            format!("est_{label}"),
            GraphSpec::RandomRegular { n, d },
            four_choice(n_est, d),
        ),
    )
}

fn e9_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, d) = e9_params(quick);
    (0..E9_FACTORS.len()).map(|i| e9_entry(n, d, i)).collect()
}

fn e9_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, d) = e9_params(cfg.quick);
    let mut recorder = BenchRecorder::new("e9_estimates", cfg.quick);
    println!(
        "E9: four-choice with misestimated network size at true n = {n}, d = {d} \
         ({} seeds)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "estimate", "schedule end", "coverage", "success", "rounds", "tx/node",
    ]);
    for (i, &(_, label)) in E9_FACTORS.iter().enumerate() {
        let entry = e9_entry(n, d, i);
        let (reports, wall_ms) = run_entry(9, &entry, cfg);
        recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
        table.row(vec![
            label.into(),
            deadline_of(&entry.spec).map(|r| r.to_string()).unwrap_or_default(),
            format!("{:.4}", mean_of(&reports, |r| r.coverage())),
            format!("{:.2}", success_rate(&reports)),
            format!("{:.1}", mean_rounds_to_coverage(&reports)),
            format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
        ]);
    }
    println!("{table}");
    println!(
        "expected: overestimates only lengthen phases (more margin, slightly more\n\
         tx); constant-factor underestimates still cover thanks to the pull and\n\
         active phases — matching §1.2's 'estimate within a constant factor'."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E10 — churn (pure registry data: DynamicsSpec::Churn drives the shared
// churn harness; no bespoke round loop here)
// ---------------------------------------------------------------------------

const E10_RATES: [f64; 5] = [0.0, 1.0, 4.0, 16.0, 64.0];
/// The multi-rumour-under-churn rung: staggered rumours riding one fabric
/// while peers join and leave — the scenario family the alive-census
/// refactor unlocked.
const E10_MULTI_RUMORS: usize = 8;
const E10_MULTI_STAGGER: u32 = 3;
const E10_MULTI_RATE: f64 = 4.0;

fn e10_params(quick: bool) -> (usize, usize) {
    (if quick { 1 << 11 } else { 1 << 13 }, 8)
}

fn e10_entry(n: usize, d: usize, i: usize, rate: f64) -> LadderEntry {
    LadderEntry::new(
        i as u64,
        ScenarioSpec::new(
            format!("churn_{rate:.0}"),
            GraphSpec::RandomRegular { n, d },
            four_choice(n, d),
        )
        .with_dynamics(DynamicsSpec::Churn(ChurnSpec::symmetric(rate))),
    )
}

fn e10_multi_entry(n: usize, d: usize) -> LadderEntry {
    LadderEntry::new(
        E10_RATES.len() as u64,
        ScenarioSpec::new(
            format!("multi_churn_{E10_MULTI_RATE:.0}"),
            GraphSpec::RandomRegular { n, d },
            four_choice(n, d),
        )
        .with_dynamics(DynamicsSpec::Churn(ChurnSpec::symmetric(E10_MULTI_RATE)))
        .with_measure(MeasureSpec::Custom(format!(
            "multi-rumour under churn: {E10_MULTI_RUMORS} rumours staggered \
             {E10_MULTI_STAGGER} rounds apart on the shared fabric"
        ))),
    )
}

fn e10_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, d) = e10_params(quick);
    let mut out: Vec<LadderEntry> = E10_RATES
        .iter()
        .enumerate()
        .map(|(i, &rate)| e10_entry(n, d, i, rate))
        .collect();
    out.push(e10_multi_entry(n, d));
    out
}

fn e10_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, d) = e10_params(cfg.quick);
    let mut recorder = BenchRecorder::new("e10_churn", cfg.quick);
    println!("E10: four-choice broadcast under churn at n = {n}, d = {d} ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec![
        "joins+leaves/round",
        "survivor coverage",
        "full success",
        "rounds run",
        "tx/node",
        "joins",
        "leaves",
    ]);
    for (i, &rate) in E10_RATES.iter().enumerate() {
        let entry = e10_entry(n, d, i, rate);
        let (runs, wall_ms) = crate::registry::run_entry_churned(10, &entry, cfg);
        let reports: Vec<_> = runs.iter().map(|r| r.report.clone()).collect();
        recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
        table.row(vec![
            format!("{rate:.0}"),
            format!("{:.4}", mean_of(&reports, |r| r.coverage())),
            format!("{:.2}", success_rate(&reports)),
            format!("{:.1}", mean_of(&reports, |r| r.rounds as f64)),
            format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
            format!("{:.1}", Summary::from_slice(
                &runs.iter().map(|r| r.churn.joins as f64).collect::<Vec<_>>()
            ).mean),
            format!("{:.1}", Summary::from_slice(
                &runs.iter().map(|r| r.churn.leaves as f64).collect::<Vec<_>>()
            ).mean),
        ]);
    }
    println!("{table}");

    // Multi-rumour-under-churn rung: the MultiSimState path with live
    // membership deltas (staggered rumours + symmetric churn).
    let entry = e10_multi_entry(n, d);
    let DynamicsSpec::Churn(churn) = entry.spec.dynamics else { unreachable!() };
    let proto = entry.spec.protocol.build();
    let graph = entry.spec.graph.clone();
    let start = std::time::Instant::now();
    let outs = crate::run_replicated_multi_churned(
        move |rng| graph.build(rng).expect("graph generation"),
        entry.spec.graph.target_degree(),
        &proto,
        entry.spec.sim_config(),
        churn.to_process(n),
        churn.rewire_per_round,
        E10_MULTI_RUMORS,
        E10_MULTI_STAGGER,
        10,
        entry.config_ix,
        cfg.seeds,
    );
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let survivor_cov: Vec<f64> = outs
        .iter()
        .flat_map(|o| {
            o.report
                .outcomes
                .iter()
                .map(|r| r.informed as f64 / o.final_alive.max(1) as f64)
        })
        .collect();
    let delivered: Vec<f64> = outs
        .iter()
        .map(|o| {
            o.report.outcomes.iter().filter(|r| r.full_coverage_at.is_some()).count() as f64
                / o.report.outcomes.len().max(1) as f64
        })
        .collect();
    let rounds_v: Vec<f64> = outs.iter().map(|o| o.report.rounds as f64).collect();
    let ratios: Vec<f64> = outs.iter().map(|o| o.report.combining_ratio()).collect();
    recorder.record_raw(
        entry.spec.label.clone(),
        n,
        cfg.seeds,
        wall_ms,
        Summary::from_slice(&rounds_v).mean,
        Summary::from_slice(
            &outs.iter().map(|o| o.report.total_rumor_tx() as f64).collect::<Vec<_>>(),
        )
        .mean,
        Summary::from_slice(&delivered).mean,
    );
    println!(
        "multi-rumour rung ({E10_MULTI_RUMORS} rumours staggered {E10_MULTI_STAGGER} \
         rounds apart, churn {E10_MULTI_RATE:.0}+{E10_MULTI_RATE:.0}/round):\n  \
         mean survivor coverage per rumour  {:.4}\n  \
         rumours reaching full coverage     {:.2}\n  \
         combining ratio                    {:.3}\n  \
         rounds                             {:.1}   (wall {wall_ms:.1} ms)\n",
        Summary::from_slice(&survivor_cov).mean,
        Summary::from_slice(&delivered).mean,
        Summary::from_slice(&ratios).mean,
        Summary::from_slice(&rounds_v).mean,
    );
    println!(
        "expected: coverage ≈ 1 at limited churn; graceful decay as churn grows\n\
         (late joiners can miss the pull step); cost stays O(log log n)/node. The\n\
         multi rung shows staggered rumours co-riding the fabric while the\n\
         membership census shifts underneath them."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E11 — the G □ K5 counterexample
// ---------------------------------------------------------------------------

const E11_ALPHAS: [f64; 4] = [0.35, 0.5, 0.75, 1.0];

fn e11_params(quick: bool) -> (usize, usize) {
    (if quick { 1 << 9 } else { 1 << 11 }, 8)
}

fn e11_entry(base_n: usize, d: usize, ai: usize, product: bool) -> LadderEntry {
    let alpha = E11_ALPHAS[ai];
    let product_n = base_n * 5;
    let product_d = d + 4;
    let (name, graph) = if product {
        ("k5prod", GraphSpec::ProductK { base_n, base_d: d, clique: 5 })
    } else {
        ("regular", GraphSpec::RandomRegular { n: product_n, d: product_d })
    };
    LadderEntry::new(
        (ai * 2) as u64 + u64::from(product),
        ScenarioSpec::new(
            format!("{name}_a{alpha}"),
            graph,
            ProtocolSpec::FourChoice {
                n_estimate: product_n,
                degree: product_d,
                alpha,
                choices: 4,
                regime: RegimeSpec::Auto,
            },
        )
        .with_measure(MeasureSpec::Trace),
    )
}

fn e11_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (base_n, d) = e11_params(quick);
    let mut out = Vec::new();
    for ai in 0..E11_ALPHAS.len() {
        out.push(e11_entry(base_n, d, ai, false));
        out.push(e11_entry(base_n, d, ai, true));
    }
    out
}

fn growth_factor(history: &[RoundRecord], n: usize) -> f64 {
    let mut factors = Vec::new();
    for w in history.windows(2) {
        if w[1].informed < n / 8 && w[0].informed > 0 {
            factors.push(w[1].informed as f64 / w[0].informed as f64);
        }
    }
    if factors.is_empty() {
        f64::NAN
    } else {
        factors.iter().sum::<f64>() / factors.len() as f64
    }
}

fn e11_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (base_n, d) = e11_params(cfg.quick);
    let product_n = base_n * 5;
    let product_d = d + 4;
    let mut recorder = BenchRecorder::new("e11_k5product", cfg.quick);

    println!(
        "E11: four-choice at threshold α — genuine G(n,{product_d}) vs G(n/5,{d}) □ K5 \
         (both n = {product_n}, {} seeds)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "α", "topology", "success", "coverage", "rounds", "phase-1 growth",
    ]);
    for (ai, &alpha) in E11_ALPHAS.iter().enumerate() {
        for (product, label) in [(false, "G(n, 12)"), (true, "G(n/5, 8) □ K5")] {
            let entry = e11_entry(base_n, d, ai, product);
            let (reports, wall_ms) = run_entry(11, &entry, cfg);
            recorder.record(entry.spec.label.clone(), product_n, cfg.seeds, wall_ms, &reports);
            let successes = success_rate(&reports);
            let growths: Vec<f64> = reports
                .iter()
                .map(|r| growth_factor(&r.history, product_n))
                .filter(|g| g.is_finite())
                .collect();
            table.row(vec![
                format!("{alpha:.2}"),
                label.into(),
                format!("{successes:.2}"),
                format!("{:.4}", mean_of(&reports, |r| r.coverage())),
                format!("{:.1}", mean_rounds_to_coverage(&reports)),
                format!("{:.2}", Summary::from_slice(&growths).mean),
            ]);
        }
    }
    println!("{table}");
    println!(
        "expected: on the genuine random regular graph the informed set grows\n\
         faster in phase 1 (choices rarely collide with clones) and tight schedules\n\
         still succeed; the K5 product needs a visibly larger α / more rounds —\n\
         §5's point that four choices exploit topological randomness, which the\n\
         clique layers destroy."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E12 — four-choice on G(n,p)
// ---------------------------------------------------------------------------

const E12_C: f64 = 2.0;

fn e12_entry(e: u32) -> LadderEntry {
    let n = 1usize << e;
    let expected_degree = E12_C * (n as f64).log2();
    LadderEntry::new(
        e as u64,
        ScenarioSpec::new(
            format!("gnp_n{n}"),
            GraphSpec::Gnp { n, expected_degree },
            four_choice(n, expected_degree.round() as usize),
        ),
    )
}

fn e12_scenarios(quick: bool) -> Vec<LadderEntry> {
    exponents(quick, 10..=14).into_iter().map(e12_entry).collect()
}

fn e12_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let mut recorder = BenchRecorder::new("e12_gnp", cfg.quick);
    println!(
        "E12: four-choice on G(n, p) with expected degree {E12_C}·log2 n ({} seeds)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "n", "E[deg]", "coverage", "success", "rounds", "tx/node",
    ]);
    let mut ns = Vec::new();
    let mut txs = Vec::new();
    for &e in &exponents(cfg.quick, 10..=14) {
        let n = 1usize << e;
        let expected_degree = E12_C * (n as f64).log2();
        let entry = e12_entry(e);
        let (reports, wall_ms) = run_entry(12, &entry, cfg);
        recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
        let tx = mean_of(&reports, |r| r.tx_per_node());
        table.row(vec![
            n.to_string(),
            format!("{expected_degree:.0}"),
            format!("{:.4}", mean_of(&reports, |r| r.coverage())),
            format!("{:.2}", success_rate(&reports)),
            format!("{:.1}", mean_rounds_to_coverage(&reports)),
            format!("{tx:.1}"),
        ]);
        ns.push(n as f64);
        txs.push(tx);
    }
    println!("{table}");
    if ns.len() >= 2 {
        let fit = fit_loglog2(&ns, &txs);
        println!(
            "tx/node ≈ {:.2}·loglog2(n) + {:.1} (r² = {:.3}) — [13]'s O(n log log n)\n\
             carries over; isolated G(n,p) vertices are impossible at this density.",
            fit.slope, fit.intercept, fit.r_squared
        );
    }
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E13 — degree-regime split
// ---------------------------------------------------------------------------

fn e13_params(quick: bool) -> (usize, &'static [usize]) {
    if quick {
        (1 << 11, &[4, 8, 16])
    } else {
        (1 << 14, &[4, 6, 8, 12, 16, 24, 32])
    }
}

fn e13_entry(n: usize, di: usize, d: usize, vi: usize) -> LadderEntry {
    let regime = if vi == 0 { RegimeSpec::Small } else { RegimeSpec::Large };
    let name = if vi == 0 { "alg1" } else { "alg2" };
    LadderEntry::new(
        (di * 2 + vi) as u64,
        ScenarioSpec::new(
            format!("{name}_d{d}"),
            GraphSpec::RandomRegular { n, d },
            ProtocolSpec::FourChoice { n_estimate: n, degree: d, alpha: 1.5, choices: 4, regime },
        ),
    )
}

fn e13_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, degrees) = e13_params(quick);
    let mut out = Vec::new();
    for (di, &d) in degrees.iter().enumerate() {
        out.push(e13_entry(n, di, d, 0));
        out.push(e13_entry(n, di, d, 1));
    }
    out
}

fn e13_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, degrees) = e13_params(cfg.quick);
    let mut recorder = BenchRecorder::new("e13_regimes", cfg.quick);
    let auto = DegreeRegime::default();
    println!(
        "E13: Algorithm 1 vs Algorithm 2 across the degree ladder at n = {n} \
         ({} seeds); auto-threshold δ·loglog2(n) with δ = 3\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "d", "auto picks", "variant", "success", "rounds", "tx/node",
    ]);
    for (di, &d) in degrees.iter().enumerate() {
        let auto_pick = match auto.resolve(n, d) {
            AlgorithmVariant::SmallDegree => "Alg 1",
            AlgorithmVariant::LargeDegree => "Alg 2",
        };
        for (vi, label) in [(0, "Alg 1 (4 phases)"), (1, "Alg 2 (long pull)")] {
            let entry = e13_entry(n, di, d, vi);
            let (reports, wall_ms) = run_entry(13, &entry, cfg);
            recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
            table.row(vec![
                d.to_string(),
                auto_pick.into(),
                label.into(),
                format!("{:.2}", success_rate(&reports)),
                format!("{:.1}", mean_rounds_to_coverage(&reports)),
                format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
            ]);
        }
    }
    println!("{table}");
    println!(
        "expected: both variants succeed across the ladder at these sizes (the\n\
         regimes matter for the *proofs*); Alg 2's long pull phase is cheaper at\n\
         large d (pull tx land mostly on the few uninformed), while Alg 1's single\n\
         pull step + active push is tailored to small degrees."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E14 — replicated database (bespoke: multi-rumour DB runs)
// ---------------------------------------------------------------------------

fn e14_params(quick: bool) -> (usize, usize, &'static [usize], usize) {
    // (n, d, concurrent-update stream rates, staggered-rung updates)
    if quick {
        (1 << 9, 8, &[4, 16], 8)
    } else {
        (1 << 11, 8, &[1, 4, 16, 64], 32)
    }
}

/// Issue window of the staggered sparse-informed rung: updates spread over
/// `4 * updates` rounds, so most rounds see only a few unsettled rumours —
/// the regime where the informed-index round loop beats the old
/// `O(n · rumours)` re-planning.
fn e14_stagger_window(updates: usize) -> u32 {
    (updates * 4) as u32
}

fn e14_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, d, streams, staggered) = e14_params(quick);
    let mut out = Vec::new();
    for (i, &u) in streams.iter().enumerate() {
        for (pi, (name, proto)) in [
            ("four-choice", four_choice(n, d)),
            ("push", budgeted(GossipModeSpec::Push, n, 3.0)),
        ]
        .into_iter()
        .enumerate()
        {
            out.push(LadderEntry::new(
                (i * 2 + pi) as u64,
                ScenarioSpec::new(
                    format!("{name}_u{u}"),
                    GraphSpec::RandomRegular { n, d },
                    proto,
                )
                .with_measure(MeasureSpec::Custom(format!(
                    "replicated DB: {u} concurrent updates over the first 8 rounds"
                ))),
            ));
        }
    }
    // Sparse-informed rung: a staggered update stream exercising the
    // multi-rumour engine's retirement + informed-index round loop.
    out.push(LadderEntry::new(
        (streams.len() * 2) as u64,
        ScenarioSpec::new(
            format!("four-choice_staggered_u{staggered}"),
            GraphSpec::RandomRegular { n, d },
            four_choice(n, d),
        )
        .with_measure(MeasureSpec::Custom(format!(
            "replicated DB, sparse-informed: {staggered} updates staggered over {} rounds",
            e14_stagger_window(staggered)
        ))),
    ));
    out
}

#[allow(clippy::too_many_arguments)]
fn e14_run_engine<P: rrb_engine::Protocol + Clone + Sync>(
    name: &str,
    proto: P,
    updates: usize,
    window: u32,
    n: usize,
    d: usize,
    cfg: &ExpConfig,
    cfg_ix: u64,
    recorder: &mut BenchRecorder,
) -> Vec<String> {
    let per_seed = replicate(14, cfg_ix, cfg.seeds, |_, rng| {
        let g = gen::random_regular(n, d, rng).expect("generation");
        let mut db = ReplicatedDb::new(proto.clone(), SimConfig::until_quiescent());
        // Time only the update stream + multi-rumour run — per-seed graph
        // generation would otherwise dominate the recorded trajectory.
        let start = std::time::Instant::now();
        db.push_random_updates(&g, updates, window, 32, rng);
        let report = db.run(&g, rng);
        let engine_ms = start.elapsed().as_secs_f64() * 1e3;
        (
            if report.converged { 1.0 } else { 0.0 },
            report.mean_latency(),
            report.tx_per_update_per_node(n),
            report.combining_savings(),
            report.rounds as f64,
            report.rumor_tx as f64,
            engine_ms,
        )
    });
    // Summed per-seed engine time: equals configuration wall-clock on a
    // 1-core host and stays a faithful engine-cost metric under threading.
    let wall_ms: f64 = per_seed.iter().map(|r| r.6).sum();
    let conv: Vec<f64> = per_seed.iter().map(|r| r.0).collect();
    let lat: Vec<f64> = per_seed.iter().filter_map(|r| r.1).collect();
    let cost: Vec<f64> = per_seed.iter().map(|r| r.2).collect();
    let savings: Vec<f64> = per_seed.iter().map(|r| r.3).collect();
    let rounds: Vec<f64> = per_seed.iter().map(|r| r.4).collect();
    let tx: Vec<f64> = per_seed.iter().map(|r| r.5).collect();
    recorder.record_raw(
        format!("{name}_u{updates}_w{window}"),
        n,
        cfg.seeds,
        wall_ms,
        Summary::from_slice(&rounds).mean,
        Summary::from_slice(&tx).mean,
        Summary::from_slice(&conv).mean,
    );
    vec![
        format!("{updates}/{window}"),
        name.into(),
        format!("{:.2}", Summary::from_slice(&conv).mean),
        format!("{:.1}", Summary::from_slice(&lat).mean),
        format!("{:.2}", Summary::from_slice(&cost).mean),
        format!("{:.1}%", Summary::from_slice(&savings).mean * 100.0),
        format!("{wall_ms:.1}"),
    ]
}

fn e14_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, d, streams, staggered) = e14_params(cfg.quick);
    println!(
        "E14: replicated DB over gossip at n = {n}, d = {d} ({} seeds); updates\n\
         issued over the first 8 rounds, plus a staggered sparse-informed rung\n",
        cfg.seeds
    );
    let mut recorder = BenchRecorder::new("e14_replicated_db", cfg.quick);
    let mut table = Table::new(vec![
        "updates/window",
        "engine",
        "converged",
        "mean latency",
        "tx/update/node",
        "combining savings",
        "wall ms",
    ]);
    for (i, &u) in streams.iter().enumerate() {
        table.row(e14_run_engine(
            "four-choice",
            rrb_core::FourChoice::for_graph(n, d),
            u,
            8,
            n,
            d,
            cfg,
            i as u64 * 2,
            &mut recorder,
        ));
        table.row(e14_run_engine(
            "push (budget)",
            rrb_baselines::Budgeted::for_size(rrb_baselines::GossipMode::Push, n, 3.0),
            u,
            8,
            n,
            d,
            cfg,
            i as u64 * 2 + 1,
            &mut recorder,
        ));
    }
    table.row(e14_run_engine(
        "four-choice",
        rrb_core::FourChoice::for_graph(n, d),
        staggered,
        e14_stagger_window(staggered),
        n,
        d,
        cfg,
        (streams.len() * 2) as u64,
        &mut recorder,
    ));
    println!("{table}");
    println!(
        "expected: both engines converge; four-choice pays O(log log n) per update\n\
         per node vs push's Θ(log n); combining savings grow with the stream rate\n\
         (more rumours share each channel), vindicating the model's amortisation\n\
         argument (§1). The staggered rung keeps the unsettled-rumour set sparse,\n\
         exercising the informed-index multi-rumour round loop."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E15 — spectral audit (bespoke: no broadcast at all)
// ---------------------------------------------------------------------------

fn e15_params(quick: bool) -> (usize, &'static [usize]) {
    if quick {
        (1 << 9, &[8, 16])
    } else {
        (1 << 11, &[4, 8, 16, 32])
    }
}

fn e15_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, degrees) = e15_params(quick);
    degrees
        .iter()
        .enumerate()
        .map(|(di, &d)| {
            LadderEntry::new(
                di as u64,
                ScenarioSpec::new(
                    format!("spectral_d{d}"),
                    GraphSpec::RandomRegular { n, d },
                    ProtocolSpec::Silent,
                )
                .with_measure(MeasureSpec::SpectralAudit),
            )
        })
        .collect()
}

fn e15_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, _) = e15_params(cfg.quick);
    let mut recorder = BenchRecorder::new("e15_spectral", cfg.quick);
    println!("E15: spectral audit of the generator at n = {n} ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec![
        "d",
        "λ (measured)",
        "2·sqrt(d-1)",
        "ratio",
        "max mixing dev",
        "mixing ok",
    ]);
    for entry in e15_scenarios(cfg.quick) {
        let d = entry.spec.graph.target_degree();
        let start = Instant::now();
        let per_seed = measure::spectral_audit(15, &entry, cfg.seeds);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let lambdas: Vec<f64> = per_seed.iter().map(|r| r.lambda).collect();
        let max_devs: Vec<f64> = per_seed.iter().map(|r| r.max_deviation).collect();
        let mixing_ok: usize = per_seed.iter().map(|r| r.mixing_ok).sum();
        let mixing_total: usize = per_seed.iter().map(|r| r.mixing_total).sum();
        let ls = Summary::from_slice(&lambdas);
        let ramanujan = 2.0 * ((d - 1) as f64).sqrt();
        table.row(vec![
            d.to_string(),
            format!("{:.3} ± {:.3}", ls.mean, ls.ci95()),
            format!("{ramanujan:.3}"),
            format!("{:.3}", ls.mean / ramanujan),
            format!("{:.3}", Summary::from_slice(&max_devs).max),
            format!("{mixing_ok}/{mixing_total}"),
        ]);
        // No broadcast runs here: rounds and transmissions are 0 by
        // construction; the mixing-audit pass rate stands in for success.
        recorder.record_raw(
            entry.spec.label.clone(),
            n,
            cfg.seeds,
            wall_ms,
            0.0,
            0.0,
            mixing_ok as f64 / mixing_total.max(1) as f64,
        );
    }
    println!("{table}");
    println!(
        "expected: ratio ≈ 1 (+o(1)) — near-Ramanujan, per Friedman [18]; every\n\
         sampled cut's normalised deviation |E(S,S̄)−d|S||S̄|/n| / √(|S||S̄|) stays\n\
         below the measured λ, as the Expander Mixing Lemma demands."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E16 — memory push on preferential-attachment graphs
// ---------------------------------------------------------------------------

const E16_M: usize = 4;

fn e16_policies() -> [(&'static str, PolicySpec); 3] {
    [
        ("plain push", PolicySpec::STANDARD),
        ("memory-1", PolicySpec::Memory(1)),
        ("memory-3", PolicySpec::Memory(3)),
    ]
}

fn e16_entry(e: u32, pi: usize) -> LadderEntry {
    let n = 1usize << e;
    let (name, policy) = e16_policies()[pi];
    LadderEntry::new(
        (e as usize * 10 + pi) as u64,
        ScenarioSpec::new(
            format!("{name}_n{n}"),
            GraphSpec::PreferentialAttachment { n, m: E16_M },
            ProtocolSpec::FloodPush { policy },
        )
        .with_stop(StopSpec::Coverage { max_rounds: 10_000 }),
    )
}

fn e16_scenarios(quick: bool) -> Vec<LadderEntry> {
    let mut out = Vec::new();
    for &e in &exponents(quick, 10..=14) {
        for pi in 0..3 {
            out.push(e16_entry(e, pi));
        }
    }
    out
}

fn e16_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let mut recorder = BenchRecorder::new("e16_pa_memory", cfg.quick);
    println!(
        "E16: push with choice memory on preferential-attachment graphs (m = {E16_M}, \
         {} seeds)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "n",
        "plain push rounds",
        "memory-1 rounds",
        "memory-3 rounds",
        "log2 n",
    ]);
    for &e in &exponents(cfg.quick, 10..=14) {
        let n = 1usize << e;
        let mut row = vec![n.to_string()];
        for pi in 0..3 {
            let entry = e16_entry(e, pi);
            let (reports, wall_ms) = run_entry(16, &entry, cfg);
            recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
            let ok = success_rate(&reports);
            row.push(format!(
                "{:.1}{}",
                mean_rounds_to_coverage(&reports),
                if ok < 1.0 { " (!)" } else { "" }
            ));
        }
        row.push(format!("{:.1}", (n as f64).log2()));
        table.row(row);
    }
    println!("{table}");
    println!(
        "expected ([8]): the memory variants beat plain push, and their advantage\n\
         grows with n (sub-logarithmic vs Θ(log n) spreading on PA graphs, where\n\
         memoryless push wastes calls bouncing back to the hub it came from)."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E17 — α ablation
// ---------------------------------------------------------------------------

const E17_ALPHAS: [f64; 7] = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];

fn e17_params(quick: bool) -> (usize, usize) {
    (if quick { 1 << 11 } else { 1 << 13 }, 8)
}

fn e17_entry(n: usize, d: usize, i: usize) -> LadderEntry {
    let alpha = E17_ALPHAS[i];
    LadderEntry::new(
        i as u64,
        ScenarioSpec::new(
            format!("alpha_{alpha}"),
            GraphSpec::RandomRegular { n, d },
            ProtocolSpec::FourChoice {
                n_estimate: n,
                degree: d,
                alpha,
                choices: 4,
                regime: RegimeSpec::Auto,
            },
        ),
    )
}

fn e17_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, d) = e17_params(quick);
    (0..E17_ALPHAS.len()).map(|i| e17_entry(n, d, i)).collect()
}

fn e17_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, d) = e17_params(cfg.quick);
    let mut recorder = BenchRecorder::new("e17_alpha", cfg.quick);
    println!("E17: α ablation of the four-choice schedule at n = {n}, d = {d} ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec![
        "α", "schedule end", "success", "coverage", "rounds", "tx/node",
    ]);
    for (i, &alpha) in E17_ALPHAS.iter().enumerate() {
        let entry = e17_entry(n, d, i);
        let (reports, wall_ms) = run_entry(17, &entry, cfg);
        recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
        table.row(vec![
            format!("{alpha:.2}"),
            deadline_of(&entry.spec).map(|r| r.to_string()).unwrap_or_default(),
            format!("{:.2}", success_rate(&reports)),
            format!("{:.4}", mean_of(&reports, |r| r.coverage())),
            format!("{:.1}", mean_rounds_to_coverage(&reports)),
            format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
        ]);
    }
    println!("{table}");
    println!(
        "expected: a sharp success threshold in α (Phase 1 must inform Θ(n) nodes),\n\
         then a linear cost ramp — the constant the theory hides inside\n\
         'α sufficiently large' is small in practice (≈ 1 at these sizes)."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E18 — phase-design ablation
// ---------------------------------------------------------------------------

fn e18_params(quick: bool) -> (usize, usize) {
    (if quick { 1 << 11 } else { 1 << 13 }, 8)
}

fn e18_variants(n: usize, d: usize) -> Vec<(&'static str, u64, ProtocolSpec)> {
    let ablated = |phase1_always_push, no_pull| ProtocolSpec::Ablated {
        n_estimate: n,
        degree: d,
        alpha: 1.5,
        phase1_always_push,
        no_pull,
    };
    vec![
        (
            "paper (push-once + pull)",
            0,
            ProtocolSpec::FourChoice {
                n_estimate: n,
                degree: d,
                alpha: 1.5,
                choices: 4,
                regime: RegimeSpec::Small,
            },
        ),
        ("ablate 1: phase-1 pushes every round", 1, ablated(true, false)),
        ("ablate 2: no pull phase (push to end)", 2, ablated(false, true)),
        ("ablate both (≈ classic 4-choice push)", 3, ablated(true, true)),
    ]
}

fn e18_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, d) = e18_params(quick);
    e18_variants(n, d)
        .into_iter()
        .map(|(name, ix, proto)| {
            LadderEntry::new(
                ix,
                ScenarioSpec::new(name.to_string(), GraphSpec::RandomRegular { n, d }, proto),
            )
        })
        .collect()
}

fn e18_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, d) = e18_params(cfg.quick);
    let mut recorder = BenchRecorder::new("e18_phase_ablation", cfg.quick);
    println!("E18: phase-design ablation at n = {n}, d = {d} ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec!["variant", "success", "rounds", "tx/node"]);
    for entry in e18_scenarios(cfg.quick) {
        let (reports, wall_ms) = run_entry(18, &entry, cfg);
        recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
        table.row(vec![
            entry.spec.label.clone(),
            format!("{:.2}", success_rate(&reports)),
            format!("{:.1}", mean_rounds_to_coverage(&reports)),
            format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
        ]);
    }
    println!("{table}");
    println!(
        "expected: always-push in phase 1 multiplies tx/node by ≈ log n/log log n;\n\
         dropping the pull phase costs extra pushes for the straggler tail; the\n\
         paper's combination is the cheapest full-coverage configuration."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E19 — adversarial fault plans & graceful degradation
// ---------------------------------------------------------------------------

fn e19_params(quick: bool) -> (usize, usize) {
    (if quick { 1 << 10 } else { 1 << 12 }, 8)
}

/// The fault-plan ladder: one rung per fault class, escalating from the
/// i.i.d. baseline to correlated bursts, a scripted partition-and-heal, two
/// targeting adversaries, transient outages, and everything at once.
fn e19_plans(n: usize) -> Vec<(&'static str, FaultSpec)> {
    vec![
        ("baseline", FaultSpec::NONE),
        ("iid_ch10", FaultSpec::from(FailureSpec { channel: 0.1, transmission: 0.0, crash: 0.0 })),
        (
            "burst_mild",
            FaultSpec { burst: Some(GilbertElliott::new(0.05, 0.5, 0.01, 0.5)), ..FaultSpec::NONE },
        ),
        (
            "burst_severe",
            FaultSpec { burst: Some(GilbertElliott::new(0.10, 0.2, 0.02, 0.9)), ..FaultSpec::NONE },
        ),
        (
            "partition_k2",
            FaultSpec {
                schedule: vec![FaultEvent::Partition { from: 5, until: 30, parts: 2 }],
                ..FaultSpec::NONE
            },
        ),
        (
            "adv_hubs",
            FaultSpec {
                adversary: Some(AdversarySpec::new(AdversaryTarget::HighestDegree, 2, n / 32)),
                ..FaultSpec::NONE
            },
        ),
        (
            // Give the rumour a 4-round head start so the adversary prunes
            // the informed frontier instead of trivially beheading the
            // origin in round 1.
            "adv_earliest",
            FaultSpec {
                adversary: Some(AdversarySpec {
                    from_round: 5,
                    ..AdversarySpec::new(AdversaryTarget::EarliestInformed, 1, 16)
                }),
                ..FaultSpec::NONE
            },
        ),
        ("outages", FaultSpec { outages: Some(OutageSpec::new(0.02, 2, 6)), ..FaultSpec::NONE }),
        (
            "combined",
            FaultSpec {
                rates: FailureSpec { channel: 0.05, transmission: 0.0, crash: 0.0 },
                burst: Some(GilbertElliott::new(0.05, 0.5, 0.01, 0.5)),
                schedule: vec![
                    FaultEvent::Partition { from: 5, until: 20, parts: 2 },
                    FaultEvent::LossWindow {
                        from: 25,
                        until: 35,
                        channel: None,
                        transmission: Some(0.5),
                    },
                ],
                adversary: Some(AdversarySpec::new(AdversaryTarget::HighestDegree, 1, 8)),
                outages: Some(OutageSpec::new(0.01, 2, 4)),
            },
        ),
    ]
}

fn e19_entry(n: usize, d: usize, i: usize) -> LadderEntry {
    let (label, faults) = e19_plans(n).swap_remove(i);
    // The hub-targeting rung runs on a preferential-attachment overlay so
    // "highest degree" actually distinguishes nodes; every other rung stays
    // on the paper's random regular graph.
    let graph = if label == "adv_hubs" {
        GraphSpec::PreferentialAttachment { n, m: d / 2 }
    } else {
        GraphSpec::RandomRegular { n, d }
    };
    LadderEntry::new(
        i as u64,
        // Standard single-choice push&pull flooding: slow enough that each
        // fault class leaves a visible signature (four-choice flooding
        // re-covers a healed partition in one round, hiding the recovery
        // transient the ladder is meant to measure).
        ScenarioSpec::new(
            label,
            graph,
            ProtocolSpec::FloodPushPull { policy: PolicySpec::STANDARD },
        )
        .with_failures(faults)
        .with_stop(StopSpec::Coverage { max_rounds: 400 })
        .with_measure(MeasureSpec::Degradation),
    )
}

fn e19_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, d) = e19_params(quick);
    (0..e19_plans(n).len()).map(|i| e19_entry(n, d, i)).collect()
}

fn e19_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, d) = e19_params(cfg.quick);
    let mut recorder = BenchRecorder::new("e19_faults", cfg.quick);
    println!(
        "E19: graceful degradation under adversarial fault plans at n = {n}, d = {d} \
         ({} seeds)\n",
        cfg.seeds
    );
    let mut table =
        Table::new(vec!["fault plan", "coverage", "success", "rounds", "recovery", "tx/node"]);
    for entry in e19_scenarios(cfg.quick) {
        let (reports, wall_ms) = run_entry(19, &entry, cfg);
        recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &reports);
        let recovery = match entry.spec.failures.heal_round() {
            Some(heal) => format!("{:.1}", mean_recovery_rounds(&reports, heal)),
            None => "-".into(),
        };
        table.row(vec![
            entry.spec.label.clone(),
            format!("{:.4}", mean_coverage(&reports)),
            format!("{:.2}", success_rate(&reports)),
            format!("{:.1}", mean_rounds_to_coverage(&reports)),
            recovery,
            format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
        ]);
    }
    println!("{table}");
    println!(
        "expected: bursty loss costs rounds, not coverage; the scripted partition\n\
         stalls flooding until the heal and then recovers within a few rounds (the\n\
         recovery column counts rounds from the heal to full coverage); targeted\n\
         crashes and transient outages degrade survivor coverage gracefully."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E20 — asynchronous-time ladder (clocks, latency, stragglers)
// ---------------------------------------------------------------------------

fn e20_params(quick: bool) -> (usize, usize) {
    (if quick { 1 << 9 } else { 1 << 11 }, 8)
}

/// The async ladder: one rung per timing dimension, anchored by the
/// calibration point (uniform fixed-rate clocks, zero latency — the rung
/// `tests/calibration.rs` proves statistically identical to the round
/// engine) and escalating through Poisson clocks, delivery latency,
/// pull under latency, stragglers, and (full ladder only) a scripted
/// partition consumed time-windowed.
fn e20_rungs(quick: bool) -> Vec<(&'static str, ProtocolSpec, TimingSpec, FaultSpec)> {
    let push = ProtocolSpec::FloodPush { policy: PolicySpec::Distinct(4) };
    let pushpull = ProtocolSpec::FloodPushPull { policy: PolicySpec::Distinct(4) };
    let poisson = ClockSpec::Exponential { rate: 1.0 };
    let asynchronous =
        |clock, latency| TimingSpec::Async { clock, latency };
    let mut rungs = vec![
        // The async↔round calibration point: same stochastic process as
        // the synchronous engine for push protocols.
        (
            "fixed_uniform",
            push.clone(),
            asynchronous(ClockSpec::UNIT, LatencySpec::Zero),
            FaultSpec::NONE,
        ),
        ("poisson", push.clone(), asynchronous(poisson, LatencySpec::Zero), FaultSpec::NONE),
        (
            "poisson_latency",
            push.clone(),
            asynchronous(poisson, LatencySpec::Uniform { min: 0.05, max: 0.5 }),
            FaultSpec::NONE,
        ),
        (
            "pushpull_latency",
            pushpull.clone(),
            asynchronous(poisson, LatencySpec::Exponential { mean: 0.2 }),
            FaultSpec::NONE,
        ),
        (
            "stragglers",
            push,
            asynchronous(
                ClockSpec::Stragglers { rate: 1.0, slow_fraction: 0.1, slow_factor: 8.0 },
                LatencySpec::Zero,
            ),
            FaultSpec::NONE,
        ),
    ];
    if !quick {
        // A partition scripted in round keys bites on the time windows
        // round(T) = ceil(T): asynchrony does not dodge scheduled faults.
        rungs.push((
            "faulted_async",
            pushpull,
            asynchronous(poisson, LatencySpec::Uniform { min: 0.05, max: 0.5 }),
            FaultSpec {
                schedule: vec![FaultEvent::Partition { from: 5, until: 20, parts: 2 }],
                ..FaultSpec::NONE
            },
        ));
    }
    rungs
}

fn e20_scenarios(quick: bool) -> Vec<LadderEntry> {
    let (n, d) = e20_params(quick);
    e20_rungs(quick)
        .into_iter()
        .enumerate()
        .map(|(i, (label, proto, timing, faults))| {
            LadderEntry::new(
                i as u64,
                ScenarioSpec::new(label, GraphSpec::RandomRegular { n, d }, proto)
                    .with_timing(timing)
                    .with_failures(faults)
                    .with_stop(StopSpec::Coverage { max_rounds: 200 }),
            )
        })
        .collect()
}

fn e20_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    let (n, d) = e20_params(cfg.quick);
    let mut recorder = BenchRecorder::new("e20_async", cfg.quick);
    println!(
        "E20: asynchronous event-queue ladder at n = {n}, d = {d} ({} seeds)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "rung",
        "timing",
        "T cover",
        "rounds",
        "success",
        "events/node",
        "tx/node",
    ]);
    for entry in e20_scenarios(cfg.quick) {
        let (runs, wall_ms) = run_entry_async(20, &entry, cfg);
        let plain: Vec<_> = runs.iter().map(|r| r.report.clone()).collect();
        recorder.record(entry.spec.label.clone(), n, cfg.seeds, wall_ms, &plain);
        let mean_cover_time = runs
            .iter()
            .map(|r| r.coverage_time.unwrap_or(r.time))
            .sum::<f64>()
            / runs.len().max(1) as f64;
        let mean_events =
            runs.iter().map(|r| r.events as f64).sum::<f64>() / runs.len().max(1) as f64;
        table.row(vec![
            entry.spec.label.clone(),
            entry.spec.timing.summary(),
            format!("{mean_cover_time:.2}"),
            format!("{:.1}", mean_rounds_to_coverage(&plain)),
            format!("{:.2}", success_rate(&plain)),
            format!("{:.1}", mean_events / n as f64),
            format!("{:.1}", mean_of(&plain, |r| r.tx_per_node())),
        ]);
    }
    println!("{table}");
    println!(
        "expected: the fixed_uniform rung reproduces the round engine's coverage\n\
         statistics (the calibration contract); Poisson clocks pay a small constant\n\
         factor in time, latency shifts coverage by roughly the mean in-flight delay\n\
         per hop, and a 10% straggler pool slowed 8x stretches the tail without\n\
         changing the O(log n) shape."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// E21 — sharded scale ladder (single-run parallelism at n = 10^6)
// ---------------------------------------------------------------------------

fn e21_exponents(quick: bool) -> Vec<u32> {
    // Full mode tops out at n = 2^20 > 10^6 — the ROADMAP scale target;
    // quick keeps CI smokes in the seconds range.
    if quick {
        vec![12, 13]
    } else {
        vec![18, 19, 20]
    }
}

fn e21_entry(e: u32) -> LadderEntry {
    let n = 1usize << e;
    LadderEntry::new(
        e as u64,
        ScenarioSpec::new(
            format!("scale_n{n}"),
            GraphSpec::RandomRegular { n, d: 8 },
            ProtocolSpec::FloodPushPull { policy: PolicySpec::Distinct(4) },
        )
        .with_stop(StopSpec::COVERAGE),
    )
}

fn e21_scenarios(quick: bool) -> Vec<LadderEntry> {
    e21_exponents(quick).into_iter().map(e21_entry).collect()
}

fn e21_run(cfg: &ExpConfig) -> Option<BenchRecorder> {
    // `--shards N` picks the shard count; otherwise default to 2 under
    // --quick (CI smokes run on 2 cores) and 4 in full mode.
    let shards = if cfg.shards > 1 {
        cfg.shards
    } else if cfg.quick {
        2
    } else {
        4
    };
    // Scale rungs are single-seed: at n = 10^6 the engine is the
    // experiment, not the protocol's sampling noise.
    let sharded_cfg = ExpConfig { seeds: 1, shards, ..*cfg };
    let serial_cfg = ExpConfig { seeds: 1, shards: 1, ..*cfg };
    let mut recorder = BenchRecorder::new("e21_scale", cfg.quick);
    recorder.set_shards(shards);
    println!(
        "E21: sharded scale ladder — full-coverage push&pull (4 distinct choices) on \
         random 8-regular graphs,\nsingle seed, serial vs {shards} shards\n"
    );
    let mut table =
        Table::new(vec!["n", "rounds", "serial ms", "sharded ms", "speedup", "peak RSS"]);
    let mut phase_lines = Vec::new();
    for entry in e21_scenarios(cfg.quick) {
        let n = entry.spec.graph.node_count();
        let (serial_reports, serial_ms) = run_entry(21, &entry, &serial_cfg);
        let (reports, wall_ms) = run_entry(21, &entry, &sharded_cfg);
        assert_eq!(
            serial_reports, reports,
            "E21 {} diverged at {shards} shards — sharding must be invisible to results",
            entry.spec.label
        );
        recorder.record(entry.spec.label.clone(), n, 1, wall_ms, &reports);
        let timings = instrument_entry(21, &entry, shards);
        let rss = timings.as_ref().and_then(|t| t.peak_rss_kib());
        table.row(vec![
            n.to_string(),
            format!("{:.0}", mean_rounds_to_coverage(&reports)),
            format!("{serial_ms:.1}"),
            format!("{wall_ms:.1}"),
            format!("{:.2}x", serial_ms / wall_ms.max(1e-9)),
            rss.map(|k| format!("{:.0} MiB", k as f64 / 1024.0)).unwrap_or_default(),
        ]);
        if let Some(t) = &timings {
            let phase = t.phase_ms();
            let mut line = format!("n = {n}: ");
            for (i, p) in StepPhase::ALL.iter().enumerate() {
                if i > 0 {
                    line.push_str(", ");
                }
                line.push_str(&format!("{} {:.1} ms", p.label(), phase[i]));
            }
            phase_lines.push(line);
            for (sx, row) in t.shard_phase_ms().iter().enumerate() {
                let mut line = format!("  shard {sx}: ");
                for (i, p) in StepPhase::ALL.iter().enumerate() {
                    if i > 0 {
                        line.push_str(", ");
                    }
                    line.push_str(&format!("{} {:.1} ms", p.label(), row[i]));
                }
                phase_lines.push(line);
            }
        }
    }
    println!("{table}");
    if !phase_lines.is_empty() {
        println!("\nper-phase wall clock of the probed seed-0 replay ({shards} shards):");
        for line in &phase_lines {
            println!("{line}");
        }
    }
    println!(
        "\nexpected: identical rounds/coverage at any shard count (asserted above); the\n\
         sharded Plan/Exchange/Update phases give wall-clock speedup on multi-core\n\
         hosts, and peak RSS stays within the committed CI budget (sparse state keeps\n\
         footprint linear in n, not in rumours x n)."
    );
    Some(recorder)
}

// ---------------------------------------------------------------------------
// The registry table
// ---------------------------------------------------------------------------

pub(crate) static REGISTRY: &[Experiment] = &[
    Experiment {
        name: "e1",
        id: 1,
        title: "four-choice runtime vs n (Thms 2-3: O(log n) rounds)",
        description: "Sweeps n = 2^10..2^15, d in {8,16,32}; fits rounds = a*log2(n)+b and \
                      records the engine perf trajectory (BENCH_engine.json).",
        scenarios: e1_scenarios,
        run: e1_run,
    },
    Experiment {
        name: "e2",
        id: 2,
        title: "transmissions per node vs n (O(n log log n) vs Theta(n log n))",
        description: "Four-choice vs budgeted push / push&pull / median-counter on random \
                      8-regular graphs; log2 and loglog2 fits identify each growth law.",
        scenarios: e2_scenarios,
        run: e2_run,
    },
    Experiment {
        name: "e3",
        id: 3,
        title: "Theorem 1 lower-bound audit (tx normalised by n*log n/log d)",
        description: "Strictly oblivious one-choice protocols stay bounded away from 0 in \
                      tx/N; the four-choice algorithm (different model) sinks below.",
        scenarios: e3_scenarios,
        run: e3_run,
    },
    Experiment {
        name: "e4",
        id: 4,
        title: "phase anatomy (Cor. 1, Lemmas 1-3 milestones at finite n)",
        description: "Per-round history traces measure phase-1 growth, phase-2 contraction \
                      and the coverage round against the schedule's milestones.",
        scenarios: e4_scenarios,
        run: e4_run,
    },
    Experiment {
        name: "e5",
        id: 5,
        title: "push/pull crossover on complete graphs (Karp et al., SS1)",
        description: "Traces informed counts for pure push and pure pull; push wins the \
                      0 -> n/2 head, pull collapses the n/2 -> n tail in O(log log n).",
        scenarios: e5_scenarios,
        run: e5_run,
    },
    Experiment {
        name: "e6",
        id: 6,
        title: "are four choices necessary? (SS5: k in {1,2,3,4} ablation)",
        description: "Runs the paper's schedule with k distinct choices per round; k=4 is \
                      proven, k=3 conjectured, k=2 open, k=1 is the standard model.",
        scenarios: e6_scenarios,
        run: e6_run,
    },
    Experiment {
        name: "e7",
        id: 7,
        title: "sequentialised model emulates four-choice (footnote 2)",
        description: "Memory-3 single-choice steps vs parallel four-choice: expect a 4x \
                      round stretch at transmission parity.",
        scenarios: e7_scenarios,
        run: e7_run,
    },
    Experiment {
        name: "e8",
        id: 8,
        title: "robustness to communication failures (abstract / SS1)",
        description: "Channel and transmission failure sweeps at alpha = 1.5 and 2.5; \
                      limited failure rates degrade cost gracefully, larger alpha restores \
                      coverage.",
        scenarios: e8_scenarios,
        run: e8_run,
    },
    Experiment {
        name: "e9",
        id: 9,
        title: "rough size estimates suffice (SS1.2)",
        description: "Schedules computed from n-hat = factor*n for factor in [1/4, 4] keep \
                      full coverage across the whole band.",
        scenarios: e9_scenarios,
        run: e9_run,
    },
    Experiment {
        name: "e10",
        id: 10,
        title: "robustness to membership churn (abstract)",
        description: "Peers join/leave during the broadcast on a near-regular overlay with \
                      flip rewiring (DynamicsSpec::Churn scenario data feeding the engines' \
                      alive census); survivor coverage decays gracefully with churn rate, \
                      plus a multi-rumour-under-churn rung on the shared fabric.",
        scenarios: e10_scenarios,
        run: e10_run,
    },
    Experiment {
        name: "e11",
        id: 11,
        title: "the G x K5 counterexample (SS5)",
        description: "At threshold alpha the genuine random regular graph completes while \
                      the K5 product's clique layers destroy choice diversity.",
        scenarios: e11_scenarios,
        run: e11_run,
    },
    Experiment {
        name: "e12",
        id: 12,
        title: "four-choice on G(n,p) (SS1.1, Elsaesser-Sauerwald [13])",
        description: "Erdos-Renyi graphs with expected degree 2*log2 n: the O(n log log n) \
                      transmission bound carries over.",
        scenarios: e12_scenarios,
        run: e12_run,
    },
    Experiment {
        name: "e13",
        id: 13,
        title: "degree-regime split: Algorithm 1 vs Algorithm 2 (SS4.3)",
        description: "Both variants across a degree ladder spanning the delta*loglog n \
                      boundary, plus what the auto-selector picks.",
        scenarios: e13_scenarios,
        run: e13_run,
    },
    Experiment {
        name: "e14",
        id: 14,
        title: "replicated-database maintenance (SS1, after Demers et al.)",
        description: "Concurrent update streams propagate by gossip; rumours combine on \
                      shared channels, amortising connection cost.",
        scenarios: e14_scenarios,
        run: e14_run,
    },
    Experiment {
        name: "e15",
        id: 15,
        title: "spectral premises of the lower bound (SS2: Friedman, mixing lemma)",
        description: "Measures the second eigenvalue of sampled graphs and audits the \
                      expander mixing lemma on random cuts.",
        scenarios: e15_scenarios,
        run: e15_run,
    },
    Experiment {
        name: "e16",
        id: 16,
        title: "push with choice memory on PA graphs (SS1.1 [8])",
        description: "Plain vs memory-1 vs memory-3 push on preferential-attachment \
                      graphs; avoidance memory beats memoryless push.",
        scenarios: e16_scenarios,
        run: e16_run,
    },
    Experiment {
        name: "e17",
        id: 17,
        title: "alpha ablation: the schedule constant's practical threshold",
        description: "Sweeps alpha in [0.25, 3]; locates the success threshold and the \
                      linear cost ramp above it.",
        scenarios: e17_scenarios,
        run: e17_run,
    },
    Experiment {
        name: "e18",
        id: 18,
        title: "phase-design ablation: why push-once + pull wins",
        description: "Always-push phase 1 and no-pull variants against the paper's \
                      Algorithm 1; the combination is the cheapest full-coverage design.",
        scenarios: e18_scenarios,
        run: e18_run,
    },
    Experiment {
        name: "e19",
        id: 19,
        title: "adversarial fault plans: bursts, partitions, targeted crashes",
        description: "A robustness ladder over FaultPlan classes — Gilbert-Elliott bursty \
                      loss, a scripted partition that heals, budget-limited targeting \
                      adversaries, transient outages, and a combined worst case — with \
                      graceful-degradation metrics (residual coverage, recovery rounds \
                      after the heal).",
        scenarios: e19_scenarios,
        run: e19_run,
    },
    Experiment {
        name: "e20",
        id: 20,
        title: "asynchronous time: per-node clocks, latency, stragglers",
        description: "The event-queue engine's calibration ladder — uniform fixed-rate \
                      zero-latency clocks reproduce the round model (the calibration \
                      contract), then Poisson clocks, delivery latency, pull under \
                      latency, an 8x-slowed straggler pool, and a scripted partition \
                      consumed time-windowed chart what round-synchrony hides.",
        scenarios: e20_scenarios,
        run: e20_run,
    },
    Experiment {
        name: "e21",
        id: 21,
        title: "sharded scale ladder: single-run parallelism at n = 10^6",
        description: "Full-coverage push&pull on random 8-regular graphs up to n = 2^20, \
                      single seed, run serial and with the round loop sharded over worker \
                      threads; asserts bit-identical results, reports per-phase/per-shard \
                      wall clock, speedup, and peak RSS against the CI memory budget.",
        scenarios: e21_scenarios,
        run: e21_run,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_replicated;
    use rrb_engine::protocols::FloodPush;
    use rrb_engine::Simulation;
    use rrb_graph::NodeId;

    /// Satellite cross-check: the scenario-driven E5 path reproduces the
    /// legacy binary's hand-wired plumbing seed for seed.
    #[test]
    fn e5_quick_matches_legacy_hand_wired_numbers() {
        let n = 1 << 10; // the --quick ladder size
        let seeds = 3; // the --quick seed count
        let entry = e5_entry(0, n, false);
        let trace = measure::crossover_trace(5, &entry, seeds);
        let (half, tail) = (trace.half, trace.tail);

        // The legacy exp_e5_crossover plumbing, hand-wired exactly as the
        // pre-registry binary did it (concrete FloodPush, gen::complete,
        // origin 0, SimConfig::default().with_history()).
        let per_seed = replicate(5, 0, seeds, |_, rng| {
            let g = gen::complete(n);
            let report =
                Simulation::new(&g, FloodPush::new(), SimConfig::default().with_history())
                    .run(NodeId::new(0), rng);
            let half_round = report
                .history
                .iter()
                .find(|r| r.informed >= n / 2)
                .map(|r| r.round)
                .unwrap_or(report.rounds);
            let full_round = report.full_coverage_at.unwrap_or(report.rounds);
            (half_round as f64, (full_round - half_round) as f64)
        });
        let (legacy_half, legacy_tail): (Vec<f64>, Vec<f64>) = per_seed.into_iter().unzip();
        assert_eq!(half, legacy_half);
        assert_eq!(tail, legacy_tail);
    }

    /// Satellite cross-check with a failure model: the E8 registry entry
    /// compiles to exactly the legacy protocol + failure configuration.
    #[test]
    fn e8_quick_matches_legacy_hand_wired_numbers() {
        let (n, d) = e8_params(true);
        let seeds = 2;
        let cfg = ExpConfig { quick: true, seeds, threads: None, shards: 1 };
        // Block 0 (channel failures, alpha = 1.5), rate index 2 (p = 0.1).
        let entry = e8_entry(n, d, 0, 2);
        let (via_spec, _) = run_entry(8, &entry, &cfg);

        let alg = rrb_core::FourChoice::builder(n, d).alpha(1.5).build();
        let via_hand = run_replicated(
            |rng| gen::random_regular(n, d, rng).expect("generation"),
            &alg,
            SimConfig::until_quiescent()
                .with_failures(rrb_engine::FailureModel::channels(0.1)),
            8,
            entry.config_ix,
            seeds,
        );
        assert_eq!(via_spec, via_hand);
    }

    /// Satellite cross-check: an E1 ladder rung (push&pull protocol — the
    /// four-choice algorithm pulls in phase 3) is unchanged by both the
    /// registry layer and the capability-gated sampling skip.
    #[test]
    fn e1_quick_rung_matches_legacy_hand_wired_numbers() {
        let seeds = 2;
        let cfg = ExpConfig { quick: true, seeds, threads: None, shards: 1 };
        let entry = e1_entry(0, 8, 10); // d = 8, n = 2^10
        let (via_spec, _) = run_entry(1, &entry, &cfg);
        let n = 1 << 10;
        let via_hand = run_replicated(
            |rng| gen::random_regular(n, 8, rng).expect("generation"),
            &rrb_core::FourChoice::for_graph(n, 8),
            SimConfig::until_quiescent(),
            1,
            2, // di * 100 + e = 0 * 100 + 10 ... see e1_entry
            seeds,
        );
        // e1_entry(0, 8, 10) has config_ix 10.
        assert_eq!(entry.config_ix, 10);
        let via_hand_correct = run_replicated(
            |rng| gen::random_regular(n, 8, rng).expect("generation"),
            &rrb_core::FourChoice::for_graph(n, 8),
            SimConfig::until_quiescent(),
            1,
            10,
            seeds,
        );
        assert_ne!(via_spec, via_hand, "different config_ix must give different streams");
        assert_eq!(via_spec, via_hand_correct);
    }
}
