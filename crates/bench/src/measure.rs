//! Bespoke measurement drivers behind the named [`MeasureSpec`] variants.
//!
//! Sweep-style experiments run their ladders through the generic
//! [`run_entry`](crate::registry::run_entry) harness; the measurements
//! here reduce **per-round histories** to the quantities the paper's
//! analysis reasons about instead — phase milestones for E4
//! ([`MeasureSpec::PhaseMilestones`]), the push/pull crossover split
//! for E5 ([`MeasureSpec::Crossover`]), and the broadcast-free spectral
//! generator audit for E15 ([`MeasureSpec::SpectralAudit`]). Folding
//! them out of `experiments.rs` makes each one a reusable function of
//! scenario data rather than an inline driver closure; the history
//! reducers reuse the [`rrb_engine::trace`] analysis helpers, so tests
//! pin the measured numbers to the same formulas the engine's own tests
//! exercise.
//!
//! Determinism: every function replicates on the standard
//! `(experiment, config_ix, seed)` [`rng_for`](crate::rng_for) streams,
//! so measured vectors are byte-identical to the legacy hand-wired
//! drivers (asserted by `e5_quick_matches_legacy_hand_wired_numbers`).

use crate::registry::LadderEntry;
use crate::replicate;
#[allow(unused_imports)] // rustdoc links
use crate::scenario::MeasureSpec;
use rrb_core::PhaseSchedule;
use rrb_engine::{trace, SimConfig, Simulation};
use rrb_graph::{gen, spectral, NodeId};

/// One seed's Phase-1/Phase-2 milestone measurements (E4, paper §4).
#[derive(Debug, Clone, Copy)]
pub struct MilestoneSample {
    /// Nodes informed at the end of Phase 1 (Corollary 1: `>= n/8`).
    pub informed_p1: f64,
    /// Nodes still uninformed at the end of Phase 2 (Lemma 3's target:
    /// `O(n / log^5 n)`).
    pub uninformed_p2: f64,
    /// Round of full coverage (the final round when never reached).
    pub coverage_round: f64,
    /// Mean per-round growth factor of `|I|` while below `n/8`
    /// (Lemmas 1–2); `None` when no qualifying round pair exists.
    pub growth: Option<f64>,
    /// Mean per-round shrink factor of `|H|` across Phase 2 (Lemma 3);
    /// `None` when no qualifying round pair exists.
    pub decay: Option<f64>,
    /// Total rumour transmissions of the run.
    pub total_tx: f64,
    /// Whether the run reached full coverage.
    pub success: bool,
}

/// E4's measurement: runs the paper's Algorithm 1 (small-degree schedule
/// forced) to quiescence with history on random `d`-regular graphs of
/// size `n`, one run per seed, and reduces each history to its
/// [`MilestoneSample`] via the [`rrb_engine::trace`] helpers. Returns the
/// schedule (for the milestone rounds) and the samples in seed order.
pub fn phase_milestones(n: usize, d: usize, seeds: u64) -> (PhaseSchedule, Vec<MilestoneSample>) {
    let alg = rrb_core::FourChoice::builder(n, d).force_small_degree().build();
    let s = *alg.schedule();
    let samples = replicate(4, 0, seeds, |_, rng| {
        let g = gen::random_regular(n, d, rng).expect("generation");
        let report = Simulation::new(&g, alg, SimConfig::until_quiescent().with_history())
            .run(NodeId::new(0), rng);
        let hist = &report.history;
        let at = |round| trace::informed_at_round(hist, round).unwrap_or(0);
        MilestoneSample {
            informed_p1: at(s.phase1_end()) as f64,
            uninformed_p2: (n - at(s.phase2_end())) as f64,
            coverage_round: report.full_coverage_at.unwrap_or(report.rounds) as f64,
            growth: trace::informed_growth_factor(hist, n / 8),
            decay: trace::uninformed_decay_factor(hist, n, s.phase1_end(), s.phase2_end()),
            total_tx: report.total_tx() as f64,
            success: report.all_informed(),
        }
    });
    (s, samples)
}

/// Replicated crossover measurement of one ladder entry (E5, §1): when
/// each seed's informed count first reaches `n/2`, and how many more
/// rounds full coverage takes from there.
#[derive(Debug, Clone)]
pub struct CrossoverTrace {
    /// Rounds from the origin to `>= n/2` informed, in seed order.
    pub half: Vec<f64>,
    /// Rounds from the `n/2` crossover to full coverage, in seed order.
    pub tail: Vec<f64>,
    /// Total rumour transmissions, in seed order.
    pub total_tx: Vec<f64>,
    /// Fraction of seeds reaching full coverage.
    pub success_rate: f64,
}

/// Runs `entry`'s scenario once per seed (history on, via
/// `spec.sim_config()`) from the fixed origin 0 and splits each run at
/// the `n/2` crossover. Streams ride on
/// `(experiment_id, entry.config_ix, seed)`, matching [`run_entry`]'s
/// coordinates.
///
/// [`run_entry`]: crate::registry::run_entry
pub fn crossover_trace(experiment_id: u64, entry: &LadderEntry, seeds: u64) -> CrossoverTrace {
    let n = entry.spec.graph.node_count();
    let proto = entry.spec.protocol.build();
    let config = entry.spec.sim_config();
    let per_seed = replicate(experiment_id, entry.config_ix, seeds, |_, rng| {
        let g = entry.spec.graph.build(rng).expect("graph generation");
        let report = Simulation::new(&g, proto.clone(), config).run(NodeId::new(0), rng);
        // Integer `n/2` (not a ceiled fraction) to stay seed-identical
        // with the legacy hand-wired driver on odd n too.
        let half_round = report
            .history
            .iter()
            .find(|r| r.informed >= n / 2)
            .map(|r| r.round)
            .unwrap_or(report.rounds);
        let full_round = report.full_coverage_at.unwrap_or(report.rounds);
        (
            half_round as f64,
            (full_round - half_round) as f64,
            report.total_tx() as f64,
            report.all_informed(),
        )
    });
    let successes = per_seed.iter().filter(|r| r.3).count();
    CrossoverTrace {
        half: per_seed.iter().map(|r| r.0).collect(),
        tail: per_seed.iter().map(|r| r.1).collect(),
        total_tx: per_seed.iter().map(|r| r.2).collect(),
        success_rate: successes as f64 / per_seed.len().max(1) as f64,
    }
}

/// One seed's spectral generator audit (E15, paper SS2): the measured
/// second eigenvalue and the Expander-Mixing-Lemma check over sampled
/// cuts. No broadcast runs at all.
#[derive(Debug, Clone, Copy)]
pub struct SpectralSample {
    /// Second-largest adjacency eigenvalue (power iteration).
    pub lambda: f64,
    /// Worst normalised mixing deviation over the sampled cuts.
    pub max_deviation: f64,
    /// Sampled cuts whose deviation stays within the measured λ
    /// (2% slack for power-iteration error).
    pub mixing_ok: usize,
    /// Cuts sampled.
    pub mixing_total: usize,
}

/// E15's measurement ([`MeasureSpec::SpectralAudit`]): builds `entry`'s
/// graph once per seed, measures the second eigenvalue by power
/// iteration and samples random cuts against the Expander Mixing Lemma
/// bound — auditing the *generator* the whole ladder stands on, with no
/// broadcast at all. Streams ride on
/// `(experiment_id, entry.config_ix, seed)` and the graph build consumes
/// the RNG exactly as the legacy hand-wired E15 driver did, so measured
/// vectors are byte-identical to it.
pub fn spectral_audit(experiment_id: u64, entry: &LadderEntry, seeds: u64) -> Vec<SpectralSample> {
    replicate(experiment_id, entry.config_ix, seeds, |_, rng| {
        let g = entry.spec.graph.build(rng).expect("graph generation");
        let l2 = spectral::second_eigenvalue(&g, 600, rng).expect("power iteration");
        let samples = spectral::expander_mixing_deviation(&g, 24, rng).expect("mixing");
        let mut worst: f64 = 0.0;
        let mut ok = 0usize;
        let total = samples.len();
        for s in samples {
            worst = worst.max(s.normalized_deviation);
            if s.normalized_deviation <= l2.value * 1.02 + 1e-9 {
                ok += 1;
            }
        }
        SpectralSample { lambda: l2.value, max_deviation: worst, mixing_ok: ok, mixing_total: total }
    })
}
