//! `rrb compare` — diffs two run-artifact directories (see
//! [`crate::artifact`]) and classifies the differences.
//!
//! The comparison is asymmetric: the first directory is the **baseline**,
//! the second the **candidate**. Records pair up by
//! `(experiment, config_ix)` within same-named `*.jsonl` files. Two
//! tolerance bands separate the deterministic from the machine-dependent:
//!
//! * **statistics** (`mean_rounds`, `mean_transmissions`,
//!   `success_rate`) are exact functions of the spec and seeds, so their
//!   band defaults to zero — any drift means the measured behaviour
//!   changed;
//! * **wall-clock** is machine- and load-dependent, so its band is a
//!   generous relative factor, and only *regressions* (candidate slower
//!   than `baseline × (1 + tol)`) count as drift — speedups never fail a
//!   gate. Per-phase timings are reported as context, never gated; peak
//!   RSS is gated only against an explicit absolute budget
//!   (`--rss-budget-kib`), since it is candidate-machine-dependent.
//!
//! A missing candidate file or record, a seed-count change, or a
//! `spec_hash` change (the rung now measures a different scenario) is
//! always drift. The CI perf gate runs this against a committed baseline
//! and fails the build when [`CompareReport::clean`] is false.

use std::path::Path;

use crate::artifact::{read_jsonl, RunArtifact};

/// Tolerance bands for [`compare_dirs`] / [`compare_records`].
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative wall-clock regression band: candidate wall-clock above
    /// `baseline * (1 + wall_tol)` is drift. Use `f64::INFINITY` to
    /// ignore wall-clock entirely.
    pub wall_tol: f64,
    /// Relative band on the replication statistics (0 = exact up to
    /// float formatting).
    pub stat_tol: f64,
    /// Absolute peak-RSS ceiling (KiB) on the **candidate**: any record
    /// whose probed `peak_rss_kib` exceeds it is drift. `None` (the
    /// default) leaves memory ungated; the baseline's RSS is never
    /// consulted, so re-recording a baseline cannot loosen the budget.
    pub rss_budget_kib: Option<u64>,
}

impl Default for Tolerance {
    fn default() -> Self {
        // Statistics are deterministic; wall-clock gets 50% slack for
        // same-machine noise (CI gates across machines pass more).
        Tolerance { wall_tol: 0.5, stat_tol: 0.0, rss_budget_kib: None }
    }
}

/// One detected difference outside its tolerance band.
#[derive(Debug, Clone)]
pub struct Drift {
    /// `file experiment/config_ix (label)` locator.
    pub key: String,
    /// What drifted, with baseline and candidate values.
    pub what: String,
}

/// Outcome of a comparison.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Record pairs compared.
    pub compared: usize,
    /// Differences outside the tolerance bands — non-empty fails a gate.
    pub drifts: Vec<Drift>,
    /// Informational notes (candidate-only files/records, wall-clock
    /// improvements), never gating.
    pub notes: Vec<String>,
}

impl CompareReport {
    /// True when no drift was detected (the gate passes).
    pub fn clean(&self) -> bool {
        self.drifts.is_empty()
    }
}

fn stat_drifted(base: f64, cand: f64, tol: f64) -> bool {
    (cand - base).abs() > tol * base.abs() + 1e-9
}

/// Compares two record sets from same-named files, appending to `report`.
pub fn compare_records(
    file: &str,
    baseline: &[RunArtifact],
    candidate: &[RunArtifact],
    tol: Tolerance,
    report: &mut CompareReport,
) {
    for b in baseline {
        let key = format!("{file}: {}/{} ({})", b.experiment, b.config_ix, b.label);
        let Some(c) = candidate
            .iter()
            .find(|c| c.experiment == b.experiment && c.config_ix == b.config_ix)
        else {
            report
                .drifts
                .push(Drift { key, what: "record missing from candidate".into() });
            continue;
        };
        report.compared += 1;
        let mut drift = |what: String| report.drifts.push(Drift { key: key.clone(), what });
        if c.spec_hash != b.spec_hash {
            drift(format!("spec_hash changed: {} -> {}", b.spec_hash, c.spec_hash));
        }
        if c.seeds != b.seeds {
            drift(format!("seed count changed: {} -> {}", b.seeds, c.seeds));
        }
        for (name, bv, cv) in [
            ("mean_rounds", b.mean_rounds, c.mean_rounds),
            ("mean_transmissions", b.mean_transmissions, c.mean_transmissions),
            ("success_rate", b.success_rate, c.success_rate),
        ] {
            if stat_drifted(bv, cv, tol.stat_tol) {
                drift(format!("{name} drifted: {bv} -> {cv}"));
            }
        }
        if tol.wall_tol.is_finite() && c.wall_ms > b.wall_ms * (1.0 + tol.wall_tol) {
            drift(format!(
                "wall-clock regression: {:.3} ms -> {:.3} ms (tolerance {:.0}%)",
                b.wall_ms,
                c.wall_ms,
                tol.wall_tol * 100.0
            ));
        } else if c.wall_ms < b.wall_ms / (1.0 + tol.wall_tol) {
            report.notes.push(format!(
                "{key}: wall-clock improved {:.3} ms -> {:.3} ms",
                b.wall_ms, c.wall_ms
            ));
        }
        if let (Some(budget), Some(rss)) = (tol.rss_budget_kib, c.peak_rss_kib) {
            if rss > budget {
                drift(format!("peak RSS {rss} KiB exceeds the {budget} KiB budget"));
            }
        }
    }
    for c in candidate {
        if !baseline
            .iter()
            .any(|b| b.experiment == c.experiment && b.config_ix == c.config_ix)
        {
            report.notes.push(format!(
                "{file}: {}/{} ({}) only in candidate",
                c.experiment, c.config_ix, c.label
            ));
        }
    }
}

/// Sorted `*.jsonl` file names directly inside `dir`.
fn jsonl_files(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".jsonl") {
            names.push(name);
        }
    }
    names.sort_unstable();
    Ok(names)
}

/// Compares every baseline `*.jsonl` file against its same-named
/// candidate file.
pub fn compare_dirs(
    baseline: &Path,
    candidate: &Path,
    tol: Tolerance,
) -> Result<CompareReport, String> {
    let base_files = jsonl_files(baseline)?;
    if base_files.is_empty() {
        return Err(format!("no .jsonl artifacts in baseline {}", baseline.display()));
    }
    let cand_files = jsonl_files(candidate)?;
    let mut report = CompareReport::default();
    for name in &base_files {
        let cand_path = candidate.join(name);
        if !cand_path.is_file() {
            report.drifts.push(Drift {
                key: name.clone(),
                what: "artifact file missing from candidate".into(),
            });
            continue;
        }
        let base_records = read_jsonl(&baseline.join(name))?;
        let cand_records = read_jsonl(&cand_path)?;
        compare_records(name, &base_records, &cand_records, tol, &mut report);
    }
    for name in cand_files {
        if !base_files.contains(&name) {
            report.notes.push(format!("{name}: only in candidate"));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::write_jsonl;
    use rrb_engine::StepPhase;

    fn record(config_ix: u64, wall_ms: f64) -> RunArtifact {
        RunArtifact {
            experiment: "e1".into(),
            config_ix,
            label: format!("rung_{config_ix}"),
            spec_hash: "00ff00ff00ff00ff".into(),
            n: 1024,
            seeds: 3,
            wall_ms,
            mean_rounds: 14.5,
            mean_transmissions: 4806.0,
            success_rate: 1.0,
            shards: 1,
            phase_ms: Some([0.5; StepPhase::COUNT]),
            shard_phase_ms: None,
            peak_rss_kib: Some(9216),
        }
    }

    #[test]
    fn identical_records_are_clean() {
        let base = vec![record(1, 10.0), record(2, 20.0)];
        let mut report = CompareReport::default();
        compare_records("e1.jsonl", &base, &base, Tolerance::default(), &mut report);
        assert!(report.clean(), "{:?}", report.drifts);
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn statistics_drift_is_flagged_exactly() {
        let base = vec![record(1, 10.0)];
        let mut cand = base.clone();
        cand[0].mean_rounds += 0.5;
        let mut report = CompareReport::default();
        compare_records("e1.jsonl", &base, &cand, Tolerance::default(), &mut report);
        assert_eq!(report.drifts.len(), 1);
        assert!(report.drifts[0].what.contains("mean_rounds"), "{:?}", report.drifts);
        // A relative band wide enough swallows the same delta.
        let mut report = CompareReport::default();
        let tol = Tolerance { stat_tol: 0.1, ..Tolerance::default() };
        compare_records("e1.jsonl", &base, &cand, tol, &mut report);
        assert!(report.clean());
    }

    #[test]
    fn wall_clock_gates_regressions_only() {
        let base = vec![record(1, 10.0)];
        let mut slow = base.clone();
        slow[0].wall_ms = 16.0; // +60% > the default 50% band
        let mut report = CompareReport::default();
        compare_records("e1.jsonl", &base, &slow, Tolerance::default(), &mut report);
        assert_eq!(report.drifts.len(), 1);
        assert!(report.drifts[0].what.contains("wall-clock"), "{:?}", report.drifts);
        // Within the band: clean. Faster: clean (a note, not drift).
        for (wall, tol) in [(14.0, Tolerance::default()), (1.0, Tolerance::default())] {
            let mut cand = base.clone();
            cand[0].wall_ms = wall;
            let mut report = CompareReport::default();
            compare_records("e1.jsonl", &base, &cand, tol, &mut report);
            assert!(report.clean(), "wall {wall}: {:?}", report.drifts);
        }
        // Infinite band ignores even a huge regression.
        let mut report = CompareReport::default();
        let tol = Tolerance { wall_tol: f64::INFINITY, ..Tolerance::default() };
        compare_records("e1.jsonl", &base, &slow, tol, &mut report);
        assert!(report.clean());
    }

    #[test]
    fn rss_budget_gates_candidate_only() {
        let base = vec![record(1, 10.0)]; // baseline RSS 9216 KiB
        let mut cand = base.clone();
        cand[0].peak_rss_kib = Some(10_000);
        // No budget set: RSS is context only, never drift.
        let mut report = CompareReport::default();
        compare_records("e1.jsonl", &base, &cand, Tolerance::default(), &mut report);
        assert!(report.clean(), "{:?}", report.drifts);
        // Budget above the candidate's peak: clean.
        let tol = Tolerance { rss_budget_kib: Some(16_384), ..Tolerance::default() };
        let mut report = CompareReport::default();
        compare_records("e1.jsonl", &base, &cand, tol, &mut report);
        assert!(report.clean(), "{:?}", report.drifts);
        // Budget below it: drift — even though the *baseline* fits.
        let tol = Tolerance { rss_budget_kib: Some(9_500), ..Tolerance::default() };
        let mut report = CompareReport::default();
        compare_records("e1.jsonl", &base, &cand, tol, &mut report);
        assert_eq!(report.drifts.len(), 1);
        assert!(report.drifts[0].what.contains("RSS"), "{:?}", report.drifts);
        // A record with no RSS probe passes any budget.
        cand[0].peak_rss_kib = None;
        let tol = Tolerance { rss_budget_kib: Some(1), ..Tolerance::default() };
        let mut report = CompareReport::default();
        compare_records("e1.jsonl", &base, &cand, tol, &mut report);
        assert!(report.clean(), "{:?}", report.drifts);
    }

    #[test]
    fn identity_changes_are_always_drift() {
        let base = vec![record(1, 10.0), record(2, 10.0)];
        let mut cand = vec![base[0].clone()];
        cand[0].spec_hash = "deadbeefdeadbeef".into();
        let mut report = CompareReport::default();
        let tol =
            Tolerance { wall_tol: f64::INFINITY, stat_tol: 1e9, rss_budget_kib: None };
        compare_records("e1.jsonl", &base, &cand, tol, &mut report);
        let whats: Vec<&str> = report.drifts.iter().map(|d| d.what.as_str()).collect();
        assert_eq!(report.drifts.len(), 2, "{whats:?}");
        assert!(whats.iter().any(|w| w.contains("spec_hash")), "{whats:?}");
        assert!(whats.iter().any(|w| w.contains("missing")), "{whats:?}");
    }

    #[test]
    fn directory_comparison_detects_doctored_baseline() {
        let root = std::env::temp_dir().join(format!("rrb_compare_{}", std::process::id()));
        let (a, b) = (root.join("a"), root.join("b"));
        let records = vec![record(1, 10.0), record(2, 12.0)];
        write_jsonl(&a.join("e1.jsonl"), &records).unwrap();
        write_jsonl(&b.join("e1.jsonl"), &records).unwrap();
        let clean = compare_dirs(&a, &b, Tolerance::default()).unwrap();
        assert!(clean.clean(), "{:?}", clean.drifts);
        assert_eq!(clean.compared, 2);

        // Doctor the candidate's statistics: the gate must trip.
        let mut doctored = records.clone();
        doctored[1].mean_transmissions *= 2.0;
        write_jsonl(&b.join("e1.jsonl"), &doctored).unwrap();
        let dirty = compare_dirs(&a, &b, Tolerance::default()).unwrap();
        assert!(!dirty.clean());

        // A baseline file with no candidate twin is drift too.
        write_jsonl(&a.join("e2.jsonl"), &records).unwrap();
        let missing = compare_dirs(&a, &b, Tolerance::default()).unwrap();
        assert!(missing.drifts.iter().any(|d| d.what.contains("file missing")));
        std::fs::remove_dir_all(&root).ok();
    }
}
