//! Structured run artifacts (schema `rrb-run-artifact-v1`): one JSONL
//! record per ladder rung, written by `rrb run <exp> --out DIR`.
//!
//! Each record captures what a perf-regression gate needs to re-check a
//! rung later: the identity of what ran (experiment, `config_ix`, label,
//! an FNV-1a hash of the spec JSON), the replication statistics (seeds,
//! mean rounds, mean transmissions, success rate — deterministic given
//! the spec, so exact across machines), and the run-cost observables
//! (configuration wall-clock, per-phase attribution from a probed seed-0
//! replay, peak RSS) that only compare within tolerance bands.
//!
//! The dialect is the same hand-rolled JSON the workspace already writes
//! ([`BenchRecorder`](crate::BenchRecorder)) and reads (the
//! [`scenario`](crate::scenario) parser): floats print in Rust's shortest
//! round-trip form, so **write → read → write is byte-identical**
//! (asserted by tests — `rrb compare` relies on records surviving
//! storage unchanged). See [`crate::compare`] for the diffing side.

use std::io;
use std::path::Path;

use crate::registry::{self, Experiment};
use crate::scenario::{parse_json, Json};
use crate::{json_string, mean_of, mean_rounds_to_coverage, success_rate, ExpConfig};
use rrb_engine::StepPhase;

/// Schema tag every record carries.
pub const SCHEMA: &str = "rrb-run-artifact-v1";

/// One ladder rung's structured run record.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifact {
    /// Registry name of the experiment (`"e1"` …).
    pub experiment: String,
    /// The rung's RNG stream coordinate.
    pub config_ix: u64,
    /// The rung's scenario label.
    pub label: String,
    /// FNV-1a 64-bit hash (hex) of the scenario's spec JSON — drift here
    /// means the two runs measured different scenarios.
    pub spec_hash: String,
    /// Node count.
    pub n: usize,
    /// Seeds replicated.
    pub seeds: u64,
    /// Wall-clock of the whole replicated configuration, milliseconds.
    pub wall_ms: f64,
    /// Mean rounds to coverage across the replications.
    pub mean_rounds: f64,
    /// Mean total transmissions across the replications.
    pub mean_transmissions: f64,
    /// Fraction of replications reaching full coverage.
    pub success_rate: f64,
    /// Node-slot shard count the runs executed under (run provenance;
    /// `1` = the serial step path, and the default when an older record
    /// omits the field — statistics are identical at any value).
    pub shards: u64,
    /// Per-phase wall-clock (milliseconds, ordered as
    /// [`StepPhase::ALL`]) of the probed seed-0 replay; `None` for rungs
    /// the prober cannot replay (churn dynamics).
    pub phase_ms: Option<[f64; StepPhase::COUNT]>,
    /// Per-shard per-phase wall-clock of the probed replay (one row per
    /// shard, same phase order) — only sharded replays record it.
    /// Shard rows attribute overlapping *work*, not elapsed time.
    pub shard_phase_ms: Option<Vec<[f64; StepPhase::COUNT]>>,
    /// Peak RSS (`VmHWM`, kibibytes) sampled during the probed replay.
    pub peak_rss_kib: Option<u64>,
}

/// FNV-1a 64-bit hash of the spec's JSON serialisation, as 16 hex digits.
pub fn spec_hash(spec: &crate::scenario::ScenarioSpec) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in spec.to_json().as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

impl RunArtifact {
    /// Serialises the record as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"schema\": \"{SCHEMA}\", \"experiment\": {}, \"config_ix\": {}, \
             \"label\": {}, \"spec_hash\": {}, \"n\": {}, \"seeds\": {}, \
             \"wall_ms\": {}, \"mean_rounds\": {}, \"mean_transmissions\": {}, \
             \"success_rate\": {}",
            json_string(&self.experiment),
            self.config_ix,
            json_string(&self.label),
            json_string(&self.spec_hash),
            self.n,
            self.seeds,
            self.wall_ms,
            self.mean_rounds,
            self.mean_transmissions,
            self.success_rate,
        );
        if self.shards != 1 {
            out.push_str(&format!(", \"shards\": {}", self.shards));
        }
        if let Some(phase_ms) = &self.phase_ms {
            out.push_str(", \"phase_ms\": {");
            for (i, phase) in StepPhase::ALL.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", phase.label(), phase_ms[i]));
            }
            out.push('}');
        }
        if let Some(rows) = &self.shard_phase_ms {
            out.push_str(", \"shard_phase_ms\": [");
            for (s, row) in rows.iter().enumerate() {
                if s > 0 {
                    out.push_str(", ");
                }
                out.push('{');
                for (i, phase) in StepPhase::ALL.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {}", phase.label(), row[i]));
                }
                out.push('}');
            }
            out.push(']');
        }
        if let Some(kib) = self.peak_rss_kib {
            out.push_str(&format!(", \"peak_rss_kib\": {kib}"));
        }
        out.push('}');
        out
    }

    /// Deserialises one record from a parsed JSON object.
    pub fn from_json(v: &Json) -> Result<RunArtifact, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string \"{key}\""))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            v.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing number \"{key}\""))
        };
        let schema = str_field("schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported artifact schema {schema:?} (want {SCHEMA:?})"));
        }
        let phase_row = |p: &Json, what: &str| -> Result<[f64; StepPhase::COUNT], String> {
            let mut ms = [0.0; StepPhase::COUNT];
            for (slot, phase) in ms.iter_mut().zip(StepPhase::ALL) {
                *slot = p.get(phase.label()).and_then(Json::as_f64).ok_or_else(|| {
                    format!("{what:?} missing phase {:?}", phase.label())
                })?;
            }
            Ok(ms)
        };
        let phase_ms = match v.get("phase_ms") {
            None => None,
            Some(p) => Some(phase_row(p, "phase_ms")?),
        };
        let shard_phase_ms = match v.get("shard_phase_ms") {
            None => None,
            Some(Json::Arr(rows)) => Some(
                rows.iter()
                    .map(|row| phase_row(row, "shard_phase_ms"))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Some(_) => return Err("\"shard_phase_ms\" must be an array".into()),
        };
        Ok(RunArtifact {
            experiment: str_field("experiment")?,
            config_ix: v
                .get("config_ix")
                .and_then(Json::as_u64)
                .ok_or("missing integer \"config_ix\"")?,
            label: str_field("label")?,
            spec_hash: str_field("spec_hash")?,
            n: num_field("n")? as usize,
            seeds: v.get("seeds").and_then(Json::as_u64).ok_or("missing integer \"seeds\"")?,
            wall_ms: num_field("wall_ms")?,
            mean_rounds: num_field("mean_rounds")?,
            mean_transmissions: num_field("mean_transmissions")?,
            success_rate: num_field("success_rate")?,
            shards: v.get("shards").and_then(Json::as_u64).unwrap_or(1),
            phase_ms,
            shard_phase_ms,
            peak_rss_kib: v.get("peak_rss_kib").and_then(Json::as_u64),
        })
    }
}

/// Runs `exp`'s full ladder through the shared
/// [`run_entry`](registry::run_entry) harness and collects one
/// [`RunArtifact`] per rung: replicated statistics plus, for static
/// rungs, the probed seed-0 replay's per-phase timings and peak RSS
/// (see [`registry::instrument_entry`]).
pub fn collect(exp: &Experiment, cfg: &ExpConfig) -> Vec<RunArtifact> {
    (exp.scenarios)(cfg.quick)
        .iter()
        .map(|entry| {
            let (reports, wall_ms) = registry::run_entry(exp.id, entry, cfg);
            let timings = registry::instrument_entry(exp.id, entry, cfg.shards);
            let shard_rows = timings.as_ref().map(|t| t.shard_phase_ms()).unwrap_or_default();
            RunArtifact {
                experiment: exp.name.to_string(),
                config_ix: entry.config_ix,
                label: entry.spec.label.clone(),
                spec_hash: spec_hash(&entry.spec),
                n: entry.spec.graph.node_count(),
                seeds: cfg.seeds,
                wall_ms,
                mean_rounds: mean_rounds_to_coverage(&reports),
                mean_transmissions: mean_of(&reports, |r| r.total_tx() as f64),
                success_rate: success_rate(&reports),
                shards: cfg.shards as u64,
                phase_ms: timings.as_ref().map(|t| t.phase_ms()),
                shard_phase_ms: (!shard_rows.is_empty()).then_some(shard_rows),
                peak_rss_kib: timings.as_ref().and_then(|t| t.peak_rss_kib()),
            }
        })
        .collect()
}

/// Writes `records` as JSONL (one record per line, trailing newline).
pub fn write_jsonl(path: &Path, records: &[RunArtifact]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Reads a JSONL artifact file back (blank lines skipped).
pub fn read_jsonl(path: &Path) -> Result<Vec<RunArtifact>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line)
            .map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?;
        records.push(
            RunArtifact::from_json(&v)
                .map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?,
        );
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    pub(crate) fn sample_records() -> Vec<RunArtifact> {
        vec![
            RunArtifact {
                experiment: "e1".into(),
                config_ix: 10,
                label: "d8_n1024".into(),
                spec_hash: "00ff00ff00ff00ff".into(),
                n: 1024,
                seeds: 3,
                wall_ms: 12.25,
                mean_rounds: 14.333333333333334,
                mean_transmissions: 4806.0,
                success_rate: 1.0,
                shards: 4,
                phase_ms: Some([0.0, 1.5, 0.25, 3.125, 0.5, 0.0625]),
                shard_phase_ms: Some(vec![
                    [0.0, 0.5, 0.125, 1.5, 0.25, 0.0],
                    [0.0, 0.75, 0.125, 1.25, 0.25, 0.0625],
                ]),
                peak_rss_kib: Some(9216),
            },
            RunArtifact {
                experiment: "e10".into(),
                config_ix: 2,
                label: "churn_2.0".into(),
                spec_hash: "123456789abcdef0".into(),
                n: 4096,
                seeds: 10,
                wall_ms: 98.5,
                mean_rounds: 21.0,
                mean_transmissions: 60000.5,
                success_rate: 0.9,
                shards: 1,
                phase_ms: None,
                shard_phase_ms: None,
                peak_rss_kib: None,
            },
        ]
    }

    #[test]
    fn record_round_trips_through_json() {
        for r in sample_records() {
            let line = r.to_json_line();
            let back = RunArtifact::from_json(&parse_json(&line).unwrap()).unwrap();
            assert_eq!(r, back);
            // Shortest-round-trip float printing: a re-serialisation is
            // byte-identical, so stored artifacts survive rewriting.
            assert_eq!(line, back.to_json_line());
        }
    }

    #[test]
    fn jsonl_file_round_trips_byte_identically() {
        let dir = std::env::temp_dir().join(format!("rrb_artifact_{}", std::process::id()));
        let path = dir.join("sample.jsonl");
        let records = sample_records();
        write_jsonl(&path, &records).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(records, back);
        write_jsonl(&path, &back).unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second, "rewrite must be byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let line = sample_records()[0].to_json_line().replace(SCHEMA, "rrb-run-artifact-v0");
        let err = RunArtifact::from_json(&parse_json(&line).unwrap()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn collect_covers_every_rung_with_stats_and_phase_timings() {
        let exp = registry::find("e5").unwrap();
        let cfg = ExpConfig { quick: true, seeds: 2, threads: None, shards: 1 };
        let records = collect(exp, &cfg);
        assert_eq!(records.len(), (exp.scenarios)(true).len());
        for r in &records {
            assert_eq!(r.experiment, "e5");
            assert_eq!(r.seeds, 2);
            assert_eq!(r.spec_hash.len(), 16);
            assert!(r.mean_transmissions > 0.0, "{}: no transmissions", r.label);
            let phase_ms = r.phase_ms.expect("static rung instruments");
            assert!(phase_ms.iter().sum::<f64>() > 0.0, "{}: no phase time", r.label);
        }
        // Deterministic statistics: a second collection matches exactly
        // on everything but the run-cost observables.
        let again = collect(exp, &cfg);
        for (a, b) in records.iter().zip(&again) {
            assert_eq!(a.spec_hash, b.spec_hash);
            assert_eq!(a.mean_rounds, b.mean_rounds);
            assert_eq!(a.mean_transmissions, b.mean_transmissions);
            assert_eq!(a.success_rate, b.success_rate);
        }
    }
}
