//! Declarative scenario layer: the paper's whole experiment space — graph
//! family × protocol × failure/fault model × membership dynamics × stop
//! rule × measurement — as plain **data**.
//!
//! A [`ScenarioSpec`] is one point of that space. It compiles to concrete
//! machinery on demand ([`GraphSpec::build`] → a `rrb_graph::Graph`,
//! [`ProtocolSpec::build`] → an [`AnyProtocol`] implementing
//! `rrb_engine::Protocol`, [`ScenarioSpec::sim_config`] → a `SimConfig`)
//! and (de)serialises to the same hand-rolled JSON dialect the
//! [`BenchRecorder`](crate::BenchRecorder) uses, so a scenario can live in
//! a file and run via `rrb run --spec file.json` — no new binary required.
//!
//! The experiment registry ([`crate::registry`]) expresses the E1–E18
//! config ladders as `ScenarioSpec` values.

use rand::Rng;

use rrb_baselines::{Budgeted, GossipMode, MedianCounter, PushThenPull, QuasirandomPush};
use rrb_core::{FourChoice, Phase, PhaseSchedule, SequentialFourChoice};
use rrb_engine::protocols::{FloodPull, FloodPush, FloodPushPull, SilentProtocol};
use rrb_engine::{
    AdversarySpec, AdversaryTarget, Capabilities, ChoicePolicy, ClockSpec, FailureModel,
    FaultEvent, FaultPlan, GilbertElliott, LatencySpec, NodeView, Observation, OutageSpec, Plan,
    Protocol, Round, RumorMeta, SimConfig,
};
use rrb_graph::{gen, Graph};
use rrb_p2p::ChurnProcess;

// ---------------------------------------------------------------------------
// Spec types
// ---------------------------------------------------------------------------

/// Channel-opening policy as data (compiles to [`ChoicePolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// `k` distinct stubs per round (`Distinct(k)`); the paper uses 4.
    Distinct(usize),
    /// One stub per round avoiding the last `window` choices (footnote 2).
    Memory(usize),
    /// Quasirandom cyclic neighbour lists \[9\].
    Cyclic,
}

impl PolicySpec {
    /// The standard single-choice phone call model.
    pub const STANDARD: PolicySpec = PolicySpec::Distinct(1);

    /// Compiles to the engine's [`ChoicePolicy`].
    pub fn to_policy(self) -> ChoicePolicy {
        match self {
            PolicySpec::Distinct(k) => ChoicePolicy::Distinct(k),
            PolicySpec::Memory(window) => ChoicePolicy::SequentialMemory { window },
            PolicySpec::Cyclic => ChoicePolicy::Cyclic,
        }
    }
}

/// Degree-regime selection for the four-choice schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegimeSpec {
    /// Pick Algorithm 1 or 2 from `(n̂, d)` (the paper's threshold).
    Auto,
    /// Force Algorithm 1 (four phases, small-degree analysis).
    Small,
    /// Force Algorithm 2 (long pull phase, large-degree analysis).
    Large,
}

impl RegimeSpec {
    fn to_regime(self) -> rrb_core::DegreeRegime {
        match self {
            RegimeSpec::Auto => rrb_core::DegreeRegime::default(),
            RegimeSpec::Small => rrb_core::DegreeRegime::ForceSmall,
            RegimeSpec::Large => rrb_core::DegreeRegime::ForceLarge,
        }
    }
}

/// Transmission direction(s) of a budgeted flood, as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GossipModeSpec {
    /// Callers send to callees.
    Push,
    /// Callees answer callers.
    Pull,
    /// Both directions (Karp et al.).
    PushPull,
}

impl GossipModeSpec {
    fn to_mode(self) -> GossipMode {
        match self {
            GossipModeSpec::Push => GossipMode::Push,
            GossipModeSpec::Pull => GossipMode::Pull,
            GossipModeSpec::PushPull => GossipMode::PushPull,
        }
    }
}

/// Topology family and parameters; compiles to a graph via
/// `rrb_graph::gen`.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSpec {
    /// Simple random `d`-regular graph (configuration model + repair).
    RandomRegular {
        /// Node count.
        n: usize,
        /// Degree.
        d: usize,
    },
    /// Raw configuration-model multigraph (self-loops/parallel edges kept).
    ConfigurationModel {
        /// Node count.
        n: usize,
        /// Degree.
        d: usize,
    },
    /// Erdős–Rényi `G(n,p)` with `p = expected_degree / (n-1)`.
    Gnp {
        /// Node count.
        n: usize,
        /// Expected degree `p·(n-1)`.
        expected_degree: f64,
    },
    /// Complete graph `K_n`.
    Complete {
        /// Node count.
        n: usize,
    },
    /// Hypercube of the given dimension (`n = 2^dim`).
    Hypercube {
        /// Dimension.
        dim: u32,
    },
    /// 2-D torus grid.
    Torus {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Cycle `C_n`.
    Cycle {
        /// Node count.
        n: usize,
    },
    /// Cartesian product of a random `base_d`-regular graph with a clique
    /// `K_clique` — the §5 counterexample (`G □ K5`).
    ProductK {
        /// Nodes of the random regular base graph.
        base_n: usize,
        /// Degree of the base graph.
        base_d: usize,
        /// Clique size (5 in the paper's example).
        clique: usize,
    },
    /// Preferential-attachment graph with `m` edges per arriving node.
    PreferentialAttachment {
        /// Node count.
        n: usize,
        /// Attachment parameter.
        m: usize,
    },
}

impl GraphSpec {
    /// Number of node slots the topology will have.
    pub fn node_count(&self) -> usize {
        match *self {
            GraphSpec::RandomRegular { n, .. }
            | GraphSpec::ConfigurationModel { n, .. }
            | GraphSpec::Gnp { n, .. }
            | GraphSpec::Complete { n }
            | GraphSpec::Cycle { n }
            | GraphSpec::PreferentialAttachment { n, .. } => n,
            GraphSpec::Hypercube { dim } => 1usize << dim,
            GraphSpec::Torus { rows, cols } => rows * cols,
            GraphSpec::ProductK { base_n, clique, .. } => base_n * clique,
        }
    }

    /// Builds the topology (random families consume `rng`).
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Graph, String> {
        match *self {
            GraphSpec::RandomRegular { n, d } => {
                gen::random_regular(n, d, rng).map_err(|e| e.to_string())
            }
            GraphSpec::ConfigurationModel { n, d } => {
                gen::configuration_model(n, d, rng).map_err(|e| e.to_string())
            }
            GraphSpec::Gnp { n, expected_degree } => {
                let p = expected_degree / (n.max(2) as f64 - 1.0);
                gen::gnp(n, p, rng).map_err(|e| e.to_string())
            }
            GraphSpec::Complete { n } => Ok(gen::complete(n)),
            GraphSpec::Hypercube { dim } => Ok(gen::hypercube(dim)),
            GraphSpec::Torus { rows, cols } => Ok(gen::torus(rows, cols)),
            GraphSpec::Cycle { n } => Ok(gen::cycle(n)),
            GraphSpec::ProductK { base_n, base_d, clique } => {
                let base = gen::random_regular(base_n, base_d, rng).map_err(|e| e.to_string())?;
                Ok(gen::cartesian_product(&base, &gen::complete(clique)))
            }
            GraphSpec::PreferentialAttachment { n, m } => {
                gen::preferential_attachment(n, m, rng).map_err(|e| e.to_string())
            }
        }
    }

    /// The natural per-node degree of this family — the target degree the
    /// churn overlay's joins aim for when the scenario runs under
    /// [`DynamicsSpec::Churn`].
    pub fn target_degree(&self) -> usize {
        match *self {
            GraphSpec::RandomRegular { d, .. } | GraphSpec::ConfigurationModel { d, .. } => d,
            GraphSpec::Gnp { expected_degree, .. } => (expected_degree.round() as usize).max(1),
            GraphSpec::Complete { n } => n.saturating_sub(1).max(1),
            GraphSpec::Hypercube { dim } => (dim as usize).max(1),
            GraphSpec::Torus { .. } => 4,
            GraphSpec::Cycle { .. } => 2,
            GraphSpec::ProductK { base_d, clique, .. } => base_d + clique.saturating_sub(1),
            GraphSpec::PreferentialAttachment { m, .. } => (2 * m).max(1),
        }
    }

    /// Short human-readable description (table rows, listings).
    pub fn label(&self) -> String {
        match *self {
            GraphSpec::RandomRegular { n, d } => format!("G(n={n}, d={d})"),
            GraphSpec::ConfigurationModel { n, d } => format!("CM(n={n}, d={d})"),
            GraphSpec::Gnp { n, expected_degree } => {
                format!("Gnp(n={n}, E[deg]={expected_degree:.1})")
            }
            GraphSpec::Complete { n } => format!("K{n}"),
            GraphSpec::Hypercube { dim } => format!("Q{dim}"),
            GraphSpec::Torus { rows, cols } => format!("torus({rows}x{cols})"),
            GraphSpec::Cycle { n } => format!("C{n}"),
            GraphSpec::ProductK { base_n, base_d, clique } => {
                format!("G({base_n},{base_d}) x K{clique}")
            }
            GraphSpec::PreferentialAttachment { n, m } => format!("PA(n={n}, m={m})"),
        }
    }
}

/// Protocol family and parameters; compiles to an [`AnyProtocol`] via
/// [`ProtocolSpec::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolSpec {
    /// The paper's four-choice algorithm (Algorithms 1/2).
    FourChoice {
        /// Size estimate n̂ the schedule is computed from.
        n_estimate: usize,
        /// Degree (drives the regime split).
        degree: usize,
        /// Schedule constant α.
        alpha: f64,
        /// Distinct choices per round (4 in the paper; E6 ablates).
        choices: usize,
        /// Degree-regime selection.
        regime: RegimeSpec,
    },
    /// Sequentialised four-choice (footnote 2; 4 steps ≙ 1 parallel step).
    SequentialFourChoice {
        /// Size estimate.
        n_estimate: usize,
        /// Degree.
        degree: usize,
    },
    /// Age-budgeted flood in the standard model (`max_age = ⌈c·log2 n⌉`).
    Budgeted {
        /// Transmission direction(s).
        mode: GossipModeSpec,
        /// Network size the budget is computed from.
        n: usize,
        /// Budget multiplier `c`.
        budget: f64,
        /// Channel policy (the classics use the standard model).
        policy: PolicySpec,
    },
    /// Push-then-pull baseline with birth-age switching.
    PushThenPull {
        /// Network size the schedule is computed from.
        n: usize,
    },
    /// Karp et al.'s median-counter rule \[25\].
    MedianCounter {
        /// Network size the default thresholds are computed from.
        n: usize,
        /// Override: counter saturation threshold.
        ctr_max: Option<u32>,
        /// Override: length of the C tail.
        c_rounds: Option<u32>,
        /// Override: deterministic age failsafe.
        age_cutoff: Option<u32>,
    },
    /// Quasirandom push \[9\] (cyclic lists, random offsets).
    Quasirandom {
        /// Optional age budget (`None` = unbounded).
        max_age: Option<u32>,
    },
    /// Unbounded push flooding.
    FloodPush {
        /// Channel policy.
        policy: PolicySpec,
    },
    /// Unbounded pull flooding.
    FloodPull {
        /// Channel policy.
        policy: PolicySpec,
    },
    /// Unbounded push&pull flooding.
    FloodPushPull {
        /// Channel policy.
        policy: PolicySpec,
    },
    /// Never transmits (null baseline).
    Silent,
    /// E18's phase-design ablation of Algorithm 1.
    Ablated {
        /// Size estimate the schedule is computed from.
        n_estimate: usize,
        /// Degree.
        degree: usize,
        /// Schedule constant α.
        alpha: f64,
        /// Phase 1 pushes every round instead of once.
        phase1_always_push: bool,
        /// Phases 3–4 replaced by more pushing.
        no_pull: bool,
    },
}

impl ProtocolSpec {
    /// Compiles the spec into a runnable protocol (the enum-dispatch glue
    /// the single `rrb` runner is built on).
    pub fn build(&self) -> AnyProtocol {
        match *self {
            ProtocolSpec::FourChoice { n_estimate, degree, alpha, choices, regime } => {
                AnyProtocol::FourChoice(
                    FourChoice::builder(n_estimate, degree)
                        .alpha(alpha)
                        .choice_policy(ChoicePolicy::Distinct(choices))
                        .regime(regime.to_regime())
                        .build(),
                )
            }
            ProtocolSpec::SequentialFourChoice { n_estimate, degree } => {
                AnyProtocol::SequentialFourChoice(SequentialFourChoice::for_graph(
                    n_estimate, degree,
                ))
            }
            ProtocolSpec::Budgeted { mode, n, budget, policy } => AnyProtocol::Budgeted(
                Budgeted::for_size(mode.to_mode(), n, budget).with_policy(policy.to_policy()),
            ),
            ProtocolSpec::PushThenPull { n } => {
                AnyProtocol::PushThenPull(PushThenPull::for_size(n))
            }
            ProtocolSpec::MedianCounter { n, ctr_max, c_rounds, age_cutoff } => {
                let base = MedianCounter::for_size(n);
                AnyProtocol::MedianCounter(MedianCounter::new(
                    ctr_max.unwrap_or_else(|| base.ctr_max()),
                    c_rounds.unwrap_or_else(|| base.c_rounds()),
                    age_cutoff.unwrap_or_else(|| base.age_cutoff()),
                ))
            }
            ProtocolSpec::Quasirandom { max_age } => AnyProtocol::Quasirandom(match max_age {
                Some(a) => QuasirandomPush::with_budget(a),
                None => QuasirandomPush::unbounded(),
            }),
            ProtocolSpec::FloodPush { policy } => {
                AnyProtocol::FloodPush(FloodPush::with_policy(policy.to_policy()))
            }
            ProtocolSpec::FloodPull { policy } => {
                AnyProtocol::FloodPull(FloodPull::with_policy(policy.to_policy()))
            }
            ProtocolSpec::FloodPushPull { policy } => {
                AnyProtocol::FloodPushPull(FloodPushPull::with_policy(policy.to_policy()))
            }
            ProtocolSpec::Silent => AnyProtocol::Silent(SilentProtocol),
            ProtocolSpec::Ablated { n_estimate, degree, alpha, phase1_always_push, no_pull } => {
                let reference = FourChoice::builder(n_estimate, degree)
                    .alpha(alpha)
                    .force_small_degree()
                    .build();
                AnyProtocol::Ablated(AblatedFourChoice {
                    schedule: *reference.schedule(),
                    phase1_always_push,
                    no_pull,
                })
            }
        }
    }

    /// Short human-readable description.
    pub fn label(&self) -> String {
        match *self {
            ProtocolSpec::FourChoice { choices, alpha, .. } => {
                format!("{choices}-choice(a={alpha})")
            }
            ProtocolSpec::SequentialFourChoice { .. } => "sequential-4-choice".into(),
            ProtocolSpec::Budgeted { mode, budget, .. } => {
                let m = match mode {
                    GossipModeSpec::Push => "push",
                    GossipModeSpec::Pull => "pull",
                    GossipModeSpec::PushPull => "push-pull",
                };
                format!("{m}(c={budget})")
            }
            ProtocolSpec::PushThenPull { .. } => "push-then-pull".into(),
            ProtocolSpec::MedianCounter { .. } => "median-counter".into(),
            ProtocolSpec::Quasirandom { .. } => "quasirandom".into(),
            ProtocolSpec::FloodPush { .. } => "flood-push".into(),
            ProtocolSpec::FloodPull { .. } => "flood-pull".into(),
            ProtocolSpec::FloodPushPull { .. } => "flood-push-pull".into(),
            ProtocolSpec::Silent => "silent".into(),
            ProtocolSpec::Ablated { phase1_always_push, no_pull, .. } => {
                format!("ablated(p1-always={phase1_always_push}, no-pull={no_pull})")
            }
        }
    }
}

/// Failure injection rates (compiles to [`FailureModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FailureSpec {
    /// Per-channel establishment failure probability.
    pub channel: f64,
    /// Per-transmission loss probability (counted but undelivered).
    pub transmission: f64,
    /// Per-node-per-round crash-stop probability.
    pub crash: f64,
}

impl FailureSpec {
    /// No failures.
    pub const NONE: FailureSpec = FailureSpec { channel: 0.0, transmission: 0.0, crash: 0.0 };

    /// Compiles to the engine's [`FailureModel`]. Every rate goes through
    /// the model's validating builders, so an out-of-range spec value hits
    /// the `[0, 1)` assertion instead of bypassing it (parse-time
    /// validation in [`ScenarioSpec::from_json`] rejects such specs with a
    /// named field before this can fire).
    pub fn to_model(self) -> FailureModel {
        let mut m = FailureModel::NONE;
        if self.channel > 0.0 {
            m = m.with_channels(self.channel);
        }
        if self.transmission > 0.0 {
            m = m.with_transmissions(self.transmission);
        }
        if self.crash > 0.0 {
            m = m.with_crashes(self.crash);
        }
        m
    }

    /// `true` if all rates are zero.
    pub fn is_none(&self) -> bool {
        self.channel == 0.0 && self.transmission == 0.0 && self.crash == 0.0
    }
}

/// The full failure dimension of a scenario: baseline i.i.d. rates
/// ([`FailureSpec`]) plus the engine's adversarial [`FaultPlan`]
/// dimensions — correlated burst loss, scripted round-keyed events, a
/// budget-limited targeting adversary, and transient outages.
///
/// `From<FailureSpec>` keeps plain-rate call sites working unchanged, and
/// a spec with only rates serialises byte-identically to the pre-fault
/// `"failures"` JSON object (the plan keys appear only when present).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Baseline i.i.d. failure rates.
    pub rates: FailureSpec,
    /// Correlated/bursty channel loss (Gilbert–Elliott chains).
    pub burst: Option<GilbertElliott>,
    /// Deterministic round-keyed events (partitions that heal, targeted
    /// crash sets, loss windows).
    pub schedule: Vec<FaultEvent>,
    /// Budget-limited targeted crashes.
    pub adversary: Option<AdversarySpec>,
    /// Transient node outages (suspension with state intact).
    pub outages: Option<OutageSpec>,
}

impl FaultSpec {
    /// No failures and no fault plan.
    pub const NONE: FaultSpec = FaultSpec {
        rates: FailureSpec::NONE,
        burst: None,
        schedule: Vec::new(),
        adversary: None,
        outages: None,
    };

    /// Compiles the baseline rates to the engine's [`FailureModel`] (the
    /// plan dimensions compile separately via [`Self::to_plan`]).
    pub fn to_model(&self) -> FailureModel {
        self.rates.to_model()
    }

    /// Compiles the plan dimensions to the engine's [`FaultPlan`].
    pub fn to_plan(&self) -> FaultPlan {
        FaultPlan {
            burst: self.burst,
            schedule: self.schedule.clone(),
            adversary: self.adversary,
            outages: self.outages,
        }
    }

    /// `true` when no fault-plan dimension is present — the scenario is a
    /// plain i.i.d.-rates run and needs no `rrb_engine::FaultState`
    /// installed.
    pub fn is_plain(&self) -> bool {
        self.burst.is_none()
            && self.schedule.is_empty()
            && self.adversary.is_none()
            && self.outages.is_none()
    }

    /// `true` when nothing fails at all.
    pub fn is_none(&self) -> bool {
        self.rates.is_none() && self.is_plain()
    }

    /// The round after the last scripted partition heals (the reference
    /// point for the `recovery_rounds` degradation metric), if the
    /// schedule contains one.
    pub fn heal_round(&self) -> Option<Round> {
        self.schedule
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Partition { until, .. } => Some(*until),
                _ => None,
            })
            .max()
    }

    /// Compact human-readable description of every active dimension, for
    /// `rrb describe` listings (`"none"` when nothing fails).
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        let r = &self.rates;
        if !r.is_none() {
            let mut iid = Vec::new();
            if r.channel > 0.0 {
                iid.push(format!("ch={}", r.channel));
            }
            if r.transmission > 0.0 {
                iid.push(format!("tx={}", r.transmission));
            }
            if r.crash > 0.0 {
                iid.push(format!("crash={}", r.crash));
            }
            parts.push(format!("iid({})", iid.join(", ")));
        }
        if let Some(g) = &self.burst {
            parts.push(format!("burst(GE loss {}/{})", g.loss_good, g.loss_bad));
        }
        for e in &self.schedule {
            parts.push(match e {
                FaultEvent::Partition { from, until, parts: k } => {
                    format!("partition(x{k} [{from},{until}))")
                }
                FaultEvent::CrashNodes { at, nodes } => {
                    format!("crash({} nodes @{at})", nodes.len())
                }
                FaultEvent::LossWindow { from, until, .. } => {
                    format!("loss-window([{from},{until}))")
                }
            });
        }
        if let Some(a) = &self.adversary {
            let t = match a.target {
                AdversaryTarget::HighestDegree => "hubs",
                AdversaryTarget::EarliestInformed => "earliest-informed",
            };
            parts.push(format!("adversary({t}, {}/round, budget {})", a.per_round, a.budget));
        }
        if let Some(o) = &self.outages {
            parts.push(format!("outages(rate {}, {}-{} rounds)", o.rate, o.min_down, o.max_down));
        }
        if parts.is_empty() {
            "none".into()
        } else {
            parts.join(" + ")
        }
    }
}

impl From<FailureSpec> for FaultSpec {
    fn from(rates: FailureSpec) -> Self {
        FaultSpec { rates, ..FaultSpec::NONE }
    }
}

/// Stochastic membership churn as declarative scenario data (compiles to a
/// [`ChurnProcess`] plus a per-round flip-rewiring budget).
///
/// Rates are *expected events per round*; fractional rates accumulate
/// across rounds (`leaves_per_round = 0.25` departs one node every four
/// rounds on average). The runner interleaves one churn step and
/// `rewire_per_round` degree-preserving 2-switches after every engine
/// round, then feeds the resulting join/leave node lists to the engine's
/// alive census.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Expected joins per round.
    pub joins_per_round: f64,
    /// Expected leaves per round.
    pub leaves_per_round: f64,
    /// Floor on the alive population; `None` defaults to half the
    /// topology's initial size.
    pub min_alive: Option<usize>,
    /// Degree-preserving 2-switches applied per round (the flip-chain
    /// remixing of Mahlmann–Schindelhauer \[29\]).
    pub rewire_per_round: usize,
}

impl ChurnSpec {
    /// Symmetric join/leave churn with a rewiring budget of twice the
    /// (ceiled) rate — the E10 shape.
    pub fn symmetric(rate_per_round: f64) -> Self {
        ChurnSpec {
            joins_per_round: rate_per_round,
            leaves_per_round: rate_per_round,
            min_alive: None,
            rewire_per_round: (rate_per_round.ceil() as usize) * 2,
        }
    }

    /// Compiles to the runtime churn driver for a topology of initial size
    /// `n` (resolving the `min_alive` default).
    pub fn to_process(&self, n: usize) -> ChurnProcess {
        ChurnProcess::new(
            self.joins_per_round,
            self.leaves_per_round,
            self.min_alive.unwrap_or(n / 2),
        )
    }
}

/// How the topology's membership behaves while the scenario runs — the
/// dynamics dimension of the scenario space. `Static` is the default (and
/// serialises to nothing, so existing spec files are untouched).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DynamicsSpec {
    /// Membership never changes (crash-stop failures, if any, are part of
    /// [`FailureSpec`], not dynamics).
    #[default]
    Static,
    /// Peers join and leave during the run per the churn process.
    Churn(ChurnSpec),
}

impl DynamicsSpec {
    /// `true` when membership never changes.
    pub fn is_static(&self) -> bool {
        matches!(self, DynamicsSpec::Static)
    }
}

/// When nodes act — the timing dimension of the scenario space. `Sync`
/// is the default round-synchronous barrier (and serialises to nothing,
/// so existing spec files and spec hashes are untouched); `Async` runs
/// the deterministic event-queue engine with per-node clocks and
/// per-copy in-flight latency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TimingSpec {
    /// All nodes exchange in lockstep rounds (both round engines).
    #[default]
    Sync,
    /// Each node fires on its own clock; copies take latency-drawn time
    /// in flight ([`AsyncSimState`](rrb_engine::AsyncSimState)).
    Async {
        /// Per-node inter-fire model.
        clock: ClockSpec,
        /// Per-copy in-flight time model.
        latency: LatencySpec,
    },
}

impl TimingSpec {
    /// `true` for the round-synchronous default.
    pub fn is_sync(&self) -> bool {
        matches!(self, TimingSpec::Sync)
    }

    /// One-line human summary for `rrb describe`.
    pub fn summary(&self) -> String {
        match self {
            TimingSpec::Sync => "sync (round barrier)".into(),
            TimingSpec::Async { clock, latency } => {
                let clock = match clock {
                    ClockSpec::Fixed { interval } => format!("fixed interval {interval}"),
                    ClockSpec::Exponential { rate } => format!("poisson rate {rate}"),
                    ClockSpec::Stragglers { rate, slow_fraction, slow_factor } => format!(
                        "poisson rate {rate} with {:.0}% stragglers at 1/{slow_factor} speed",
                        slow_fraction * 100.0
                    ),
                };
                let latency = match latency {
                    LatencySpec::Zero => "zero latency".into(),
                    LatencySpec::Fixed { delay } => format!("fixed latency {delay}"),
                    LatencySpec::Uniform { min, max } => format!("latency U[{min}, {max}]"),
                    LatencySpec::Exponential { mean } => format!("exp latency mean {mean}"),
                };
                format!("async ({clock}; {latency})")
            }
        }
    }
}

/// Stop condition (compiles into [`SimConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopSpec {
    /// Stop as soon as every alive node is informed (or at the cap).
    Coverage {
        /// Hard round cap.
        max_rounds: u32,
    },
    /// Run the protocol to quiescence (full message bill) or the cap.
    Quiescent {
        /// Hard round cap.
        max_rounds: u32,
    },
}

impl StopSpec {
    /// Coverage stop with the engine's default cap.
    pub const COVERAGE: StopSpec = StopSpec::Coverage { max_rounds: 10_000 };
    /// Quiescence stop with the engine's default cap.
    pub const QUIESCENT: StopSpec = StopSpec::Quiescent { max_rounds: 10_000 };
}

/// What to record for each run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureSpec {
    /// Standard end-of-run metrics (rounds, transmissions, coverage).
    Standard,
    /// Standard metrics plus the per-round history trace.
    Trace,
    /// Per-round history reduced to the paper's phase milestones —
    /// informed after Phase 1, uninformed after Phase 2, growth/decay
    /// factors (Cor. 1, Lemmas 1–3). Driven by
    /// [`measure::phase_milestones`](crate::measure::phase_milestones).
    PhaseMilestones,
    /// Per-round history reduced to the push/pull crossover split: rounds
    /// from the origin to n/2 informed, and from n/2 to full coverage.
    /// Driven by [`measure::crossover_trace`](crate::measure::crossover_trace).
    Crossover,
    /// Standard metrics plus the graceful-degradation derivations the
    /// runner computes for faulted scenarios: residual survivor coverage,
    /// and `recovery_rounds` (rounds from the last scripted heal to full
    /// coverage) when the fault plan schedules a partition.
    Degradation,
    /// No broadcast at all: audit the generated topology's spectral
    /// expansion instead — second adjacency eigenvalue vs the Ramanujan
    /// bound, plus an expander-mixing-lemma deviation sample. Driven by
    /// [`measure::spectral_audit`](crate::measure::spectral_audit).
    SpectralAudit,
    /// Experiment-specific measurement implemented in the registry (named
    /// for documentation; the generic runner treats it like `Standard`).
    Custom(String),
}

/// One fully-specified scenario: everything the runner needs, as data.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Configuration label (table rows, recorder entries).
    pub label: String,
    /// Topology.
    pub graph: GraphSpec,
    /// Protocol.
    pub protocol: ProtocolSpec,
    /// Failure injection: baseline i.i.d. rates plus the optional
    /// adversarial fault plan.
    pub failures: FaultSpec,
    /// Membership dynamics (churn); static by default.
    pub dynamics: DynamicsSpec,
    /// Timing model (round-synchronous or event-queue asynchronous);
    /// sync by default.
    pub timing: TimingSpec,
    /// Stop condition.
    pub stop: StopSpec,
    /// Measurement mode.
    pub measure: MeasureSpec,
}

impl ScenarioSpec {
    /// Convenience constructor with no failures, quiescence stop and
    /// standard measurement — the most common shape in the registry.
    pub fn new(label: impl Into<String>, graph: GraphSpec, protocol: ProtocolSpec) -> Self {
        ScenarioSpec {
            label: label.into(),
            graph,
            protocol,
            failures: FaultSpec::NONE,
            dynamics: DynamicsSpec::Static,
            timing: TimingSpec::Sync,
            stop: StopSpec::QUIESCENT,
            measure: MeasureSpec::Standard,
        }
    }

    /// Builder-style: set the failure dimension — plain [`FailureSpec`]
    /// rates or a full [`FaultSpec`] plan.
    pub fn with_failures(mut self, failures: impl Into<FaultSpec>) -> Self {
        self.failures = failures.into();
        self
    }

    /// Builder-style: set the membership dynamics.
    pub fn with_dynamics(mut self, dynamics: DynamicsSpec) -> Self {
        self.dynamics = dynamics;
        self
    }

    /// Builder-style: set the timing model.
    pub fn with_timing(mut self, timing: TimingSpec) -> Self {
        self.timing = timing;
        self
    }

    /// Builder-style: set the stop condition.
    pub fn with_stop(mut self, stop: StopSpec) -> Self {
        self.stop = stop;
        self
    }

    /// Builder-style: set the measurement mode.
    pub fn with_measure(mut self, measure: MeasureSpec) -> Self {
        self.measure = measure;
        self
    }

    /// Compiles stop + failures + measurement into the engine config.
    pub fn sim_config(&self) -> SimConfig {
        let mut config = match self.stop {
            StopSpec::Coverage { max_rounds } => SimConfig::default().with_max_rounds(max_rounds),
            StopSpec::Quiescent { max_rounds } => {
                SimConfig::until_quiescent().with_max_rounds(max_rounds)
            }
        };
        config = config.with_failures(self.failures.to_model());
        // Every history-reducing measurement needs the per-round trace.
        if matches!(
            self.measure,
            MeasureSpec::Trace | MeasureSpec::PhaseMilestones | MeasureSpec::Crossover
        ) {
            config = config.with_history();
        }
        config
    }
}

// ---------------------------------------------------------------------------
// The unified protocol enum
// ---------------------------------------------------------------------------

/// E18's ablation of Algorithm 1 against the public engine API: the
/// paper's schedule with the two load-bearing design choices removable.
#[derive(Debug, Clone, Copy)]
pub struct AblatedFourChoice {
    /// The paper's (Algorithm 1) phase schedule.
    pub schedule: PhaseSchedule,
    /// Phase 1: push every round while informed (instead of once).
    pub phase1_always_push: bool,
    /// Phases 3–4 replaced by more phase-2-style pushing.
    pub no_pull: bool,
}

impl Protocol for AblatedFourChoice {
    type State = ();

    fn init(&self, _creator: bool) -> Self::State {}

    fn choice_policy(&self) -> ChoicePolicy {
        ChoicePolicy::FOUR
    }

    fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan {
        let meta = RumorMeta { age: t, counter: 0 };
        match self.schedule.phase(t) {
            Phase::One => {
                if self.phase1_always_push || view.informed_at + 1 == t {
                    Plan::push_with(meta)
                } else {
                    Plan::SILENT
                }
            }
            Phase::Two => Plan::push_with(meta),
            Phase::Three | Phase::Four if self.no_pull => Plan::push_with(meta),
            Phase::Three => Plan::pull_with(meta),
            Phase::Four => {
                if view.informed_at > self.schedule.phase2_end() {
                    Plan::push_with(meta)
                } else {
                    Plan::SILENT
                }
            }
            Phase::Done => Plan::SILENT,
        }
    }

    fn update(&self, _s: &mut Self::State, _ia: Option<Round>, _t: Round, _o: &Observation) {}

    fn is_quiescent(&self, _s: &Self::State, _ia: Round, t: Round) -> bool {
        self.schedule.is_done(t)
    }

    fn deadline(&self) -> Option<Round> {
        Some(self.schedule.end())
    }

    fn capabilities(&self) -> Capabilities {
        if self.no_pull {
            Capabilities::PUSH_ONLY
        } else {
            Capabilities::ALL
        }
    }
}

/// Per-node state of an [`AnyProtocol`] (union of the concrete protocols'
/// state types).
#[derive(Debug, Clone)]
pub enum AnyState {
    /// Stateless protocols.
    Unit,
    /// [`MedianCounter`] counter state.
    Counter(rrb_baselines::CounterState),
    /// [`PushThenPull`] birth state.
    Birth(rrb_baselines::BirthState),
}

/// Unified protocol enum covering every concrete protocol in
/// `rrb_engine::protocols`, `rrb_baselines` and `rrb_core` (plus the E18
/// ablation) — the enum-dispatch target of [`ProtocolSpec::build`], which
/// lets one runner drive any scenario without monomorphising per protocol.
#[derive(Debug, Clone)]
pub enum AnyProtocol {
    /// The paper's four-choice algorithm.
    FourChoice(FourChoice),
    /// Sequentialised four-choice.
    SequentialFourChoice(SequentialFourChoice),
    /// Age-budgeted flood.
    Budgeted(Budgeted),
    /// Push-then-pull baseline.
    PushThenPull(PushThenPull),
    /// Median-counter rule.
    MedianCounter(MedianCounter),
    /// Quasirandom push.
    Quasirandom(QuasirandomPush),
    /// Unbounded push flood.
    FloodPush(FloodPush),
    /// Unbounded pull flood.
    FloodPull(FloodPull),
    /// Unbounded push&pull flood.
    FloodPushPull(FloodPushPull),
    /// Null protocol.
    Silent(SilentProtocol),
    /// E18 phase ablation.
    Ablated(AblatedFourChoice),
}

/// Maps a `NodeView<AnyState>` onto a unit-state view for the stateless
/// protocols.
fn unit_view<'a>(view: &NodeView<'a, AnyState>) -> NodeView<'a, ()> {
    NodeView { informed_at: view.informed_at, is_creator: view.is_creator, state: &() }
}

impl Protocol for AnyProtocol {
    type State = AnyState;

    fn init(&self, creator: bool) -> Self::State {
        match self {
            AnyProtocol::MedianCounter(p) => AnyState::Counter(p.init(creator)),
            AnyProtocol::PushThenPull(p) => AnyState::Birth(p.init(creator)),
            _ => AnyState::Unit,
        }
    }

    fn choice_policy(&self) -> ChoicePolicy {
        match self {
            AnyProtocol::FourChoice(p) => p.choice_policy(),
            AnyProtocol::SequentialFourChoice(p) => p.choice_policy(),
            AnyProtocol::Budgeted(p) => p.choice_policy(),
            AnyProtocol::PushThenPull(p) => p.choice_policy(),
            AnyProtocol::MedianCounter(p) => p.choice_policy(),
            AnyProtocol::Quasirandom(p) => p.choice_policy(),
            AnyProtocol::FloodPush(p) => p.choice_policy(),
            AnyProtocol::FloodPull(p) => p.choice_policy(),
            AnyProtocol::FloodPushPull(p) => p.choice_policy(),
            AnyProtocol::Silent(p) => p.choice_policy(),
            AnyProtocol::Ablated(p) => p.choice_policy(),
        }
    }

    fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan {
        match (self, view.state) {
            (AnyProtocol::FourChoice(p), _) => p.plan(unit_view(&view), t),
            (AnyProtocol::SequentialFourChoice(p), _) => p.plan(unit_view(&view), t),
            (AnyProtocol::Budgeted(p), _) => p.plan(unit_view(&view), t),
            (AnyProtocol::PushThenPull(p), AnyState::Birth(s)) => p.plan(
                NodeView { informed_at: view.informed_at, is_creator: view.is_creator, state: s },
                t,
            ),
            (AnyProtocol::MedianCounter(p), AnyState::Counter(s)) => p.plan(
                NodeView { informed_at: view.informed_at, is_creator: view.is_creator, state: s },
                t,
            ),
            (AnyProtocol::Quasirandom(p), _) => p.plan(unit_view(&view), t),
            (AnyProtocol::FloodPush(p), _) => p.plan(unit_view(&view), t),
            (AnyProtocol::FloodPull(p), _) => p.plan(unit_view(&view), t),
            (AnyProtocol::FloodPushPull(p), _) => p.plan(unit_view(&view), t),
            (AnyProtocol::Silent(p), _) => p.plan(unit_view(&view), t),
            (AnyProtocol::Ablated(p), _) => p.plan(unit_view(&view), t),
            (p, s) => unreachable!("state {s:?} does not belong to protocol {p:?}"),
        }
    }

    fn update(
        &self,
        state: &mut Self::State,
        informed_at: Option<Round>,
        t: Round,
        obs: &Observation,
    ) {
        match (self, state) {
            (AnyProtocol::MedianCounter(p), AnyState::Counter(s)) => {
                p.update(s, informed_at, t, obs)
            }
            (AnyProtocol::PushThenPull(p), AnyState::Birth(s)) => p.update(s, informed_at, t, obs),
            // Every other protocol is stateless; nothing to digest.
            (_, AnyState::Unit) => {}
            (p, s) => unreachable!("state {s:?} does not belong to protocol {p:?}"),
        }
    }

    fn is_quiescent(&self, state: &Self::State, informed_at: Round, t: Round) -> bool {
        match (self, state) {
            (AnyProtocol::FourChoice(p), _) => p.is_quiescent(&(), informed_at, t),
            (AnyProtocol::SequentialFourChoice(p), _) => p.is_quiescent(&(), informed_at, t),
            (AnyProtocol::Budgeted(p), _) => p.is_quiescent(&(), informed_at, t),
            (AnyProtocol::PushThenPull(p), AnyState::Birth(s)) => p.is_quiescent(s, informed_at, t),
            (AnyProtocol::MedianCounter(p), AnyState::Counter(s)) => {
                p.is_quiescent(s, informed_at, t)
            }
            (AnyProtocol::Quasirandom(p), _) => p.is_quiescent(&(), informed_at, t),
            (AnyProtocol::FloodPush(p), _) => p.is_quiescent(&(), informed_at, t),
            (AnyProtocol::FloodPull(p), _) => p.is_quiescent(&(), informed_at, t),
            (AnyProtocol::FloodPushPull(p), _) => p.is_quiescent(&(), informed_at, t),
            (AnyProtocol::Silent(p), _) => p.is_quiescent(&(), informed_at, t),
            (AnyProtocol::Ablated(p), _) => p.is_quiescent(&(), informed_at, t),
            (p, s) => unreachable!("state {s:?} does not belong to protocol {p:?}"),
        }
    }

    fn deadline(&self) -> Option<Round> {
        match self {
            AnyProtocol::FourChoice(p) => p.deadline(),
            AnyProtocol::SequentialFourChoice(p) => p.deadline(),
            AnyProtocol::Budgeted(p) => p.deadline(),
            AnyProtocol::PushThenPull(p) => p.deadline(),
            AnyProtocol::MedianCounter(p) => p.deadline(),
            AnyProtocol::Quasirandom(p) => p.deadline(),
            AnyProtocol::FloodPush(p) => p.deadline(),
            AnyProtocol::FloodPull(p) => p.deadline(),
            AnyProtocol::FloodPushPull(p) => p.deadline(),
            AnyProtocol::Silent(p) => p.deadline(),
            AnyProtocol::Ablated(p) => p.deadline(),
        }
    }

    fn capabilities(&self) -> Capabilities {
        match self {
            AnyProtocol::FourChoice(p) => p.capabilities(),
            AnyProtocol::SequentialFourChoice(p) => p.capabilities(),
            AnyProtocol::Budgeted(p) => p.capabilities(),
            AnyProtocol::PushThenPull(p) => p.capabilities(),
            AnyProtocol::MedianCounter(p) => p.capabilities(),
            AnyProtocol::Quasirandom(p) => p.capabilities(),
            AnyProtocol::FloodPush(p) => p.capabilities(),
            AnyProtocol::FloodPull(p) => p.capabilities(),
            AnyProtocol::FloodPushPull(p) => p.capabilities(),
            AnyProtocol::Silent(p) => p.capabilities(),
            AnyProtocol::Ablated(p) => p.capabilities(),
        }
    }
}

// ---------------------------------------------------------------------------
// JSON (de)serialisation — same hand-rolled dialect as BenchRecorder
// ---------------------------------------------------------------------------

/// Schema tag written into serialised scenarios.
pub const SCENARIO_SCHEMA: &str = "rrb-scenario-v1";

fn fault_event_json(e: &FaultEvent) -> String {
    match e {
        FaultEvent::Partition { from, until, parts } => format!(
            "{{\"kind\": \"partition\", \"from\": {from}, \"until\": {until}, \"parts\": {parts}}}"
        ),
        FaultEvent::CrashNodes { at, nodes } => {
            let list = nodes.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ");
            format!("{{\"kind\": \"crash_nodes\", \"at\": {at}, \"nodes\": [{list}]}}")
        }
        FaultEvent::LossWindow { from, until, channel, transmission } => {
            let mut s =
                format!("{{\"kind\": \"loss_window\", \"from\": {from}, \"until\": {until}");
            if let Some(c) = channel {
                s.push_str(&format!(", \"channel\": {c}"));
            }
            if let Some(t) = transmission {
                s.push_str(&format!(", \"transmission\": {t}"));
            }
            s.push('}');
            s
        }
    }
}

fn policy_json(p: PolicySpec) -> String {
    match p {
        PolicySpec::Distinct(k) => format!("{{\"kind\": \"distinct\", \"k\": {k}}}"),
        PolicySpec::Memory(w) => format!("{{\"kind\": \"memory\", \"window\": {w}}}"),
        PolicySpec::Cyclic => "{\"kind\": \"cyclic\"}".into(),
    }
}

impl ScenarioSpec {
    /// Serialises the scenario as JSON (schema [`SCENARIO_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let graph = match &self.graph {
            GraphSpec::RandomRegular { n, d } => {
                format!("{{\"kind\": \"random_regular\", \"n\": {n}, \"d\": {d}}}")
            }
            GraphSpec::ConfigurationModel { n, d } => {
                format!("{{\"kind\": \"configuration_model\", \"n\": {n}, \"d\": {d}}}")
            }
            GraphSpec::Gnp { n, expected_degree } => format!(
                "{{\"kind\": \"gnp\", \"n\": {n}, \"expected_degree\": {expected_degree}}}"
            ),
            GraphSpec::Complete { n } => format!("{{\"kind\": \"complete\", \"n\": {n}}}"),
            GraphSpec::Hypercube { dim } => format!("{{\"kind\": \"hypercube\", \"dim\": {dim}}}"),
            GraphSpec::Torus { rows, cols } => {
                format!("{{\"kind\": \"torus\", \"rows\": {rows}, \"cols\": {cols}}}")
            }
            GraphSpec::Cycle { n } => format!("{{\"kind\": \"cycle\", \"n\": {n}}}"),
            GraphSpec::ProductK { base_n, base_d, clique } => format!(
                "{{\"kind\": \"product_k\", \"base_n\": {base_n}, \"base_d\": {base_d}, \
                 \"clique\": {clique}}}"
            ),
            GraphSpec::PreferentialAttachment { n, m } => {
                format!("{{\"kind\": \"preferential_attachment\", \"n\": {n}, \"m\": {m}}}")
            }
        };
        let protocol = match &self.protocol {
            ProtocolSpec::FourChoice { n_estimate, degree, alpha, choices, regime } => {
                let regime = match regime {
                    RegimeSpec::Auto => "auto",
                    RegimeSpec::Small => "small",
                    RegimeSpec::Large => "large",
                };
                format!(
                    "{{\"kind\": \"four_choice\", \"n_estimate\": {n_estimate}, \
                     \"degree\": {degree}, \"alpha\": {alpha}, \"choices\": {choices}, \
                     \"regime\": \"{regime}\"}}"
                )
            }
            ProtocolSpec::SequentialFourChoice { n_estimate, degree } => format!(
                "{{\"kind\": \"sequential_four_choice\", \"n_estimate\": {n_estimate}, \
                 \"degree\": {degree}}}"
            ),
            ProtocolSpec::Budgeted { mode, n, budget, policy } => {
                let mode = match mode {
                    GossipModeSpec::Push => "push",
                    GossipModeSpec::Pull => "pull",
                    GossipModeSpec::PushPull => "push_pull",
                };
                format!(
                    "{{\"kind\": \"budgeted\", \"mode\": \"{mode}\", \"n\": {n}, \
                     \"budget\": {budget}, \"policy\": {}}}",
                    policy_json(*policy)
                )
            }
            ProtocolSpec::PushThenPull { n } => {
                format!("{{\"kind\": \"push_then_pull\", \"n\": {n}}}")
            }
            ProtocolSpec::MedianCounter { n, ctr_max, c_rounds, age_cutoff } => {
                let mut s = format!("{{\"kind\": \"median_counter\", \"n\": {n}");
                if let Some(v) = ctr_max {
                    s.push_str(&format!(", \"ctr_max\": {v}"));
                }
                if let Some(v) = c_rounds {
                    s.push_str(&format!(", \"c_rounds\": {v}"));
                }
                if let Some(v) = age_cutoff {
                    s.push_str(&format!(", \"age_cutoff\": {v}"));
                }
                s.push('}');
                s
            }
            ProtocolSpec::Quasirandom { max_age } => match max_age {
                Some(a) => format!("{{\"kind\": \"quasirandom\", \"max_age\": {a}}}"),
                None => "{\"kind\": \"quasirandom\"}".into(),
            },
            ProtocolSpec::FloodPush { policy } => {
                format!("{{\"kind\": \"flood_push\", \"policy\": {}}}", policy_json(*policy))
            }
            ProtocolSpec::FloodPull { policy } => {
                format!("{{\"kind\": \"flood_pull\", \"policy\": {}}}", policy_json(*policy))
            }
            ProtocolSpec::FloodPushPull { policy } => {
                format!("{{\"kind\": \"flood_push_pull\", \"policy\": {}}}", policy_json(*policy))
            }
            ProtocolSpec::Silent => "{\"kind\": \"silent\"}".into(),
            ProtocolSpec::Ablated { n_estimate, degree, alpha, phase1_always_push, no_pull } => {
                format!(
                    "{{\"kind\": \"ablated\", \"n_estimate\": {n_estimate}, \
                     \"degree\": {degree}, \"alpha\": {alpha}, \
                     \"phase1_always_push\": {phase1_always_push}, \"no_pull\": {no_pull}}}"
                )
            }
        };
        let (stop_mode, max_rounds) = match self.stop {
            StopSpec::Coverage { max_rounds } => ("coverage", max_rounds),
            StopSpec::Quiescent { max_rounds } => ("quiescent", max_rounds),
        };
        let measure = match &self.measure {
            MeasureSpec::Standard => "{\"kind\": \"standard\"}".into(),
            MeasureSpec::Trace => "{\"kind\": \"trace\"}".into(),
            MeasureSpec::PhaseMilestones => "{\"kind\": \"phase_milestones\"}".into(),
            MeasureSpec::Crossover => "{\"kind\": \"crossover\"}".into(),
            MeasureSpec::Degradation => "{\"kind\": \"degradation\"}".into(),
            MeasureSpec::SpectralAudit => "{\"kind\": \"spectral_audit\"}".into(),
            MeasureSpec::Custom(name) => {
                format!("{{\"kind\": \"custom\", \"name\": {}}}", crate::json_string(name))
            }
        };
        // Plan dimensions serialise only when present, so plain-rates
        // specs keep the pre-fault "failures" object byte-for-byte.
        let failures = {
            let mut f = format!(
                "{{\"channel\": {}, \"transmission\": {}, \"crash\": {}",
                self.failures.rates.channel,
                self.failures.rates.transmission,
                self.failures.rates.crash,
            );
            if let Some(g) = &self.failures.burst {
                f.push_str(&format!(
                    ", \"burst\": {{\"p_gb\": {}, \"p_bg\": {}, \"loss_good\": {}, \
                     \"loss_bad\": {}}}",
                    g.p_gb, g.p_bg, g.loss_good, g.loss_bad
                ));
            }
            if !self.failures.schedule.is_empty() {
                let events: Vec<String> =
                    self.failures.schedule.iter().map(fault_event_json).collect();
                f.push_str(&format!(", \"schedule\": [{}]", events.join(", ")));
            }
            if let Some(a) = &self.failures.adversary {
                let target = match a.target {
                    AdversaryTarget::HighestDegree => "highest_degree",
                    AdversaryTarget::EarliestInformed => "earliest_informed",
                };
                f.push_str(&format!(
                    ", \"adversary\": {{\"target\": \"{target}\", \"per_round\": {}, \
                     \"budget\": {}",
                    a.per_round, a.budget
                ));
                if a.from_round != 1 {
                    f.push_str(&format!(", \"from_round\": {}", a.from_round));
                }
                f.push('}');
            }
            if let Some(o) = &self.failures.outages {
                f.push_str(&format!(
                    ", \"outages\": {{\"rate\": {}, \"min_down\": {}, \"max_down\": {}}}",
                    o.rate, o.min_down, o.max_down
                ));
            }
            f.push('}');
            f
        };
        // Static dynamics serialise to nothing, so pre-dynamics spec files
        // round-trip byte-identically.
        let dynamics = match self.dynamics {
            DynamicsSpec::Static => String::new(),
            DynamicsSpec::Churn(c) => {
                let min_alive = c
                    .min_alive
                    .map(|m| format!(", \"min_alive\": {m}"))
                    .unwrap_or_default();
                format!(
                    "  \"dynamics\": {{\"churn\": {{\"joins_per_round\": {}, \
                     \"leaves_per_round\": {}, \"rewire_per_round\": {}{min_alive}}}}},\n",
                    c.joins_per_round, c.leaves_per_round, c.rewire_per_round,
                )
            }
        };
        // Sync timing likewise serialises to nothing, keeping pre-async
        // spec files and their artifact spec hashes byte-identical.
        let timing = match self.timing {
            TimingSpec::Sync => String::new(),
            TimingSpec::Async { clock, latency } => {
                let clock = match clock {
                    ClockSpec::Fixed { interval } => {
                        format!("{{\"kind\": \"fixed\", \"interval\": {interval}}}")
                    }
                    ClockSpec::Exponential { rate } => {
                        format!("{{\"kind\": \"exponential\", \"rate\": {rate}}}")
                    }
                    ClockSpec::Stragglers { rate, slow_fraction, slow_factor } => format!(
                        "{{\"kind\": \"stragglers\", \"rate\": {rate}, \
                         \"slow_fraction\": {slow_fraction}, \"slow_factor\": {slow_factor}}}"
                    ),
                };
                let latency = match latency {
                    LatencySpec::Zero => "{\"kind\": \"zero\"}".to_string(),
                    LatencySpec::Fixed { delay } => {
                        format!("{{\"kind\": \"fixed\", \"delay\": {delay}}}")
                    }
                    LatencySpec::Uniform { min, max } => {
                        format!("{{\"kind\": \"uniform\", \"min\": {min}, \"max\": {max}}}")
                    }
                    LatencySpec::Exponential { mean } => {
                        format!("{{\"kind\": \"exponential\", \"mean\": {mean}}}")
                    }
                };
                format!(
                    "  \"timing\": {{\"mode\": \"async\", \"clock\": {clock}, \
                     \"latency\": {latency}}},\n"
                )
            }
        };
        format!(
            "{{\n  \"schema\": \"{SCENARIO_SCHEMA}\",\n  \"label\": {},\n  \"graph\": {graph},\n  \
             \"protocol\": {protocol},\n  \"failures\": {failures},\n{dynamics}{timing}  \
             \"stop\": {{\"mode\": \"{stop_mode}\", \"max_rounds\": {max_rounds}}},\n  \
             \"measure\": {measure}\n}}\n",
            crate::json_string(&self.label),
        )
    }

    /// Parses a scenario from its JSON form.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, String> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parses either a single scenario object or a JSON **array** of them
    /// (a whole hand-written ladder in one file — `rrb run --spec` runs
    /// every element in order).
    pub fn list_from_json(text: &str) -> Result<Vec<ScenarioSpec>, String> {
        match json::parse(text)? {
            Json::Arr(items) => {
                if items.is_empty() {
                    return Err("the scenario array is empty".into());
                }
                items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| {
                        Self::from_value(item).map_err(|e| format!("scenario [{i}]: {e}"))
                    })
                    .collect()
            }
            v => Ok(vec![Self::from_value(&v)?]),
        }
    }

    /// Parses a scenario from an already-parsed JSON value.
    fn from_value(v: &Json) -> Result<ScenarioSpec, String> {
        expect_keys(
            v,
            &[
                "schema", "label", "graph", "protocol", "failures", "dynamics", "timing", "stop",
                "measure",
            ],
            "the scenario object",
        )?;
        if let Some(schema) = v.get("schema").and_then(Json::as_str) {
            if schema != SCENARIO_SCHEMA {
                return Err(format!("unsupported schema {schema:?}"));
            }
        }
        let label = v
            .get("label")
            .and_then(Json::as_str)
            .ok_or("missing \"label\"")?
            .to_string();
        let graph = parse_graph(v.get("graph").ok_or("missing \"graph\"")?)?;
        let protocol = parse_protocol(v.get("protocol").ok_or("missing \"protocol\"")?)?;
        let failures = match v.get("failures") {
            Some(f) => parse_faults(f)?,
            None => FaultSpec::NONE,
        };
        let dynamics = match v.get("dynamics") {
            Some(d) => parse_dynamics(d)?,
            None => DynamicsSpec::Static,
        };
        let timing = match v.get("timing") {
            Some(t) => parse_timing(t)?,
            None => TimingSpec::Sync,
        };
        let stop = match v.get("stop") {
            Some(s) => {
                expect_keys(s, &["mode", "max_rounds"], "\"stop\"")?;
                let max_rounds = opt_u64(s, "max_rounds", 10_000)? as u32;
                match s.get("mode").and_then(Json::as_str) {
                    Some("coverage") => StopSpec::Coverage { max_rounds },
                    Some("quiescent") | None => StopSpec::Quiescent { max_rounds },
                    Some(other) => return Err(format!("unknown stop mode {other:?}")),
                }
            }
            None => StopSpec::QUIESCENT,
        };
        let measure = match v.get("measure") {
            Some(m) => {
                expect_keys(m, &["kind", "name"], "\"measure\"")?;
                match m.get("kind").and_then(Json::as_str) {
                    Some("standard") | None => MeasureSpec::Standard,
                    Some("trace") => MeasureSpec::Trace,
                    Some("phase_milestones") => MeasureSpec::PhaseMilestones,
                    Some("crossover") => MeasureSpec::Crossover,
                    Some("degradation") => MeasureSpec::Degradation,
                    Some("spectral_audit") => MeasureSpec::SpectralAudit,
                    Some("custom") => MeasureSpec::Custom(
                        m.get("name").and_then(Json::as_str).unwrap_or("custom").to_string(),
                    ),
                    Some(other) => return Err(format!("unknown measure kind {other:?}")),
                }
            }
            None => MeasureSpec::Standard,
        };
        Ok(ScenarioSpec { label, graph, protocol, failures, dynamics, timing, stop, measure })
    }
}

/// Parses the `"timing"` object. `{"mode": "sync"}` (or an absent object)
/// is the round-synchronous default; `"async"` requires a `"clock"` and
/// takes an optional `"latency"` (zero when omitted). Every rate and
/// window is validated here with a named field, mirroring
/// [`parse_faults`]'s strictness.
fn parse_timing(t: &Json) -> Result<TimingSpec, String> {
    expect_keys(t, &["mode", "clock", "latency"], "\"timing\"")?;
    match t.get("mode").and_then(Json::as_str) {
        Some("sync") => {
            if t.get("clock").is_some() || t.get("latency").is_some() {
                return Err("sync timing takes no \"clock\"/\"latency\"".into());
            }
            Ok(TimingSpec::Sync)
        }
        Some("async") => {
            let clock = parse_clock(t.get("clock").ok_or("async timing requires a \"clock\"")?)?;
            let latency = match t.get("latency") {
                Some(l) => parse_latency(l)?,
                None => LatencySpec::Zero,
            };
            Ok(TimingSpec::Async { clock, latency })
        }
        Some(other) => Err(format!("unknown timing mode {other:?}")),
        None => Err("\"timing\" requires a \"mode\"".into()),
    }
}

/// Parses a `"clock"` object (see [`ClockSpec`]).
fn parse_clock(c: &Json) -> Result<ClockSpec, String> {
    expect_keys(c, &["kind", "interval", "rate", "slow_fraction", "slow_factor"], "\"clock\"")?;
    let pos = |field: &str| -> Result<f64, String> {
        let v = c
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("\"clock\" requires a numeric {field:?}"))?;
        if v.is_finite() && v > 0.0 {
            Ok(v)
        } else {
            Err(format!("clock {field} must be positive and finite, got {v}"))
        }
    };
    match c.get("kind").and_then(Json::as_str) {
        Some("fixed") => Ok(ClockSpec::Fixed { interval: pos("interval")? }),
        Some("exponential") => Ok(ClockSpec::Exponential { rate: pos("rate")? }),
        Some("stragglers") => {
            let rate = pos("rate")?;
            let slow_fraction = c
                .get("slow_fraction")
                .and_then(Json::as_f64)
                .ok_or("\"clock\" requires a numeric \"slow_fraction\"")?;
            if !(0.0..=1.0).contains(&slow_fraction) {
                return Err(format!("clock slow_fraction must be in [0, 1], got {slow_fraction}"));
            }
            let slow_factor = pos("slow_factor")?;
            if slow_factor < 1.0 {
                return Err(format!("clock slow_factor must be >= 1, got {slow_factor}"));
            }
            Ok(ClockSpec::Stragglers { rate, slow_fraction, slow_factor })
        }
        Some(other) => Err(format!("unknown clock kind {other:?}")),
        None => Err("\"clock\" requires a \"kind\"".into()),
    }
}

/// Parses a `"latency"` object (see [`LatencySpec`]).
fn parse_latency(l: &Json) -> Result<LatencySpec, String> {
    expect_keys(l, &["kind", "delay", "min", "max", "mean"], "\"latency\"")?;
    let nonneg = |field: &str| -> Result<f64, String> {
        let v = l
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("\"latency\" requires a numeric {field:?}"))?;
        if v.is_finite() && v >= 0.0 {
            Ok(v)
        } else {
            Err(format!("latency {field} must be >= 0 and finite, got {v}"))
        }
    };
    match l.get("kind").and_then(Json::as_str) {
        Some("zero") => Ok(LatencySpec::Zero),
        Some("fixed") => Ok(LatencySpec::Fixed { delay: nonneg("delay")? }),
        Some("uniform") => {
            let min = nonneg("min")?;
            let max = nonneg("max")?;
            if max < min {
                return Err(format!("latency max ({max}) must be >= min ({min})"));
            }
            Ok(LatencySpec::Uniform { min, max })
        }
        Some("exponential") => {
            let mean = nonneg("mean")?;
            if mean == 0.0 {
                return Err("latency mean must be positive (use kind \"zero\" instead)".into());
            }
            Ok(LatencySpec::Exponential { mean })
        }
        Some(other) => Err(format!("unknown latency kind {other:?}")),
        None => Err("\"latency\" requires a \"kind\"".into()),
    }
}

/// Parses the `"failures"` object: the three i.i.d. rates plus the
/// optional adversarial fault-plan dimensions (`burst`, `schedule`,
/// `adversary`, `outages`). Every probability and window is validated
/// here, so a bad spec fails at parse time with a named field instead of
/// tripping an engine assertion mid-run.
fn parse_faults(f: &Json) -> Result<FaultSpec, String> {
    expect_keys(
        f,
        &["channel", "transmission", "crash", "burst", "schedule", "adversary", "outages"],
        "\"failures\"",
    )?;
    let rates = FailureSpec {
        channel: opt_f64(f, "channel", 0.0)?,
        transmission: opt_f64(f, "transmission", 0.0)?,
        crash: opt_f64(f, "crash", 0.0)?,
    };
    for (name, p) in
        [("channel", rates.channel), ("transmission", rates.transmission), ("crash", rates.crash)]
    {
        if !(0.0..1.0).contains(&p) {
            return Err(format!("\"{name}\" must be a probability in [0, 1)"));
        }
    }
    let burst = match f.get("burst") {
        None => None,
        Some(b) => {
            expect_keys(b, &["p_gb", "p_bg", "loss_good", "loss_bad"], "\"burst\"")?;
            let g = GilbertElliott {
                p_gb: req_f64(b, "p_gb")?,
                p_bg: req_f64(b, "p_bg")?,
                loss_good: req_f64(b, "loss_good")?,
                loss_bad: req_f64(b, "loss_bad")?,
            };
            for (name, p) in [
                ("p_gb", g.p_gb),
                ("p_bg", g.p_bg),
                ("loss_good", g.loss_good),
                ("loss_bad", g.loss_bad),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("\"burst\".\"{name}\" must be a probability in [0, 1]"));
                }
            }
            Some(g)
        }
    };
    let schedule = match f.get("schedule") {
        None => Vec::new(),
        Some(Json::Arr(items)) => items
            .iter()
            .enumerate()
            .map(|(i, e)| parse_fault_event(e).map_err(|err| format!("\"schedule\"[{i}]: {err}")))
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err("\"schedule\" must be an array of fault events".into()),
    };
    let adversary = match f.get("adversary") {
        None => None,
        Some(a) => {
            expect_keys(a, &["target", "per_round", "budget", "from_round"], "\"adversary\"")?;
            let target = match a.get("target").and_then(Json::as_str) {
                Some("highest_degree") => AdversaryTarget::HighestDegree,
                Some("earliest_informed") => AdversaryTarget::EarliestInformed,
                other => return Err(format!("unknown adversary target {other:?}")),
            };
            Some(AdversarySpec {
                target,
                per_round: req_usize(a, "per_round")?,
                budget: req_usize(a, "budget")?,
                from_round: opt_u64(a, "from_round", 1)? as Round,
            })
        }
    };
    let outages = match f.get("outages") {
        None => None,
        Some(o) => {
            expect_keys(o, &["rate", "min_down", "max_down"], "\"outages\"")?;
            let rate = req_f64(o, "rate")?;
            if !(0.0..1.0).contains(&rate) {
                return Err("\"outages\".\"rate\" must be a probability in [0, 1)".into());
            }
            let min_down = req_usize(o, "min_down")? as Round;
            let max_down = req_usize(o, "max_down")? as Round;
            if min_down < 1 {
                return Err("\"min_down\" must be at least 1 round".into());
            }
            if min_down > max_down {
                return Err("\"min_down\" must not exceed \"max_down\"".into());
            }
            Some(OutageSpec { rate, min_down, max_down })
        }
    };
    Ok(FaultSpec { rates, burst, schedule, adversary, outages })
}

/// Parses one entry of the `"schedule"` array.
fn parse_fault_event(v: &Json) -> Result<FaultEvent, String> {
    let kind = v.get("kind").and_then(Json::as_str);
    expect_keys(
        v,
        match kind {
            Some("partition") => &["kind", "from", "until", "parts"],
            Some("crash_nodes") => &["kind", "at", "nodes"],
            Some("loss_window") => &["kind", "from", "until", "channel", "transmission"],
            _ => &["kind"],
        },
        "the fault event",
    )?;
    match kind {
        Some("partition") => {
            let parts = req_usize(v, "parts")? as u32;
            if parts == 0 {
                return Err("\"parts\" must be at least 1".into());
            }
            Ok(FaultEvent::Partition {
                from: req_usize(v, "from")? as Round,
                until: req_usize(v, "until")? as Round,
                parts,
            })
        }
        Some("crash_nodes") => {
            let nodes = match v.get("nodes") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|n| n.as_u64().map(|x| x as u32))
                    .collect::<Option<Vec<u32>>>()
                    .ok_or("\"nodes\" must be an array of node indices")?,
                _ => return Err("\"nodes\" must be an array of node indices".into()),
            };
            Ok(FaultEvent::CrashNodes { at: req_usize(v, "at")? as Round, nodes })
        }
        Some("loss_window") => {
            let channel = opt_f64_field(v, "channel")?;
            let transmission = opt_f64_field(v, "transmission")?;
            for (name, p) in [("channel", channel), ("transmission", transmission)] {
                if let Some(p) = p {
                    if !(0.0..1.0).contains(&p) {
                        return Err(format!("\"{name}\" must be a probability in [0, 1)"));
                    }
                }
            }
            Ok(FaultEvent::LossWindow {
                from: req_usize(v, "from")? as Round,
                until: req_usize(v, "until")? as Round,
                channel,
                transmission,
            })
        }
        other => Err(format!("unknown fault event kind {other:?}")),
    }
}

/// Parses the `"dynamics"` object with the same strictness as every other
/// section: unknown keys, mistyped values and out-of-range rates are
/// refused loudly instead of silently running a different scenario.
fn parse_dynamics(v: &Json) -> Result<DynamicsSpec, String> {
    expect_keys(v, &["churn"], "\"dynamics\"")?;
    let Some(c) = v.get("churn") else {
        return Ok(DynamicsSpec::Static);
    };
    expect_keys(
        c,
        &["joins_per_round", "leaves_per_round", "min_alive", "rewire_per_round"],
        "\"dynamics\".\"churn\"",
    )?;
    let joins_per_round = opt_f64(c, "joins_per_round", 0.0)?;
    let leaves_per_round = opt_f64(c, "leaves_per_round", 0.0)?;
    for (name, rate) in
        [("joins_per_round", joins_per_round), ("leaves_per_round", leaves_per_round)]
    {
        if !rate.is_finite() || rate < 0.0 {
            return Err(format!("\"{name}\" must be a finite non-negative rate"));
        }
    }
    let min_alive = match c.get("min_alive") {
        None => None,
        Some(j) => Some(
            j.as_u64().ok_or("\"min_alive\" must be a non-negative integer")? as usize,
        ),
    };
    let rewire_per_round = opt_u64(c, "rewire_per_round", 0)? as usize;
    Ok(DynamicsSpec::Churn(ChurnSpec {
        joins_per_round,
        leaves_per_round,
        min_alive,
        rewire_per_round,
    }))
}

fn req_usize(v: &Json, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .map(|x| x as usize)
        .ok_or_else(|| format!("missing or invalid \"{key}\""))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing or invalid \"{key}\""))
}

/// Optional numeric field: absent ⇒ `default`, present-but-not-a-number ⇒
/// error. Hand-edited specs must never have a mistyped value silently
/// replaced by a default (e.g. `"channel": "0.3"` running failure-free).
fn opt_f64(v: &Json, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j.as_f64().ok_or_else(|| format!("\"{key}\" must be a number")),
    }
}

/// Optional non-negative integer field with a default (see [`opt_f64`]).
fn opt_u64(v: &Json, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => {
            j.as_u64().ok_or_else(|| format!("\"{key}\" must be a non-negative integer"))
        }
    }
}

/// Truly optional numeric field (`None` when absent; see [`opt_f64`]).
fn opt_f64_field(v: &Json, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(j) => j.as_f64().map(Some).ok_or_else(|| format!("\"{key}\" must be a number")),
    }
}

/// Truly optional non-negative integer field (`None` when absent).
fn opt_u32_field(v: &Json, key: &str) -> Result<Option<u32>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(j) => j
            .as_u64()
            .map(|x| Some(x as u32))
            .ok_or_else(|| format!("\"{key}\" must be a non-negative integer")),
    }
}

/// Optional boolean field with a default (see [`opt_f64`]).
fn opt_bool(v: &Json, key: &str, default: bool) -> Result<bool, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j.as_bool().ok_or_else(|| format!("\"{key}\" must be a boolean")),
    }
}

/// Rejects unknown keys in an object, so a misspelled field (`"chanel"`)
/// errors instead of silently falling back to the default.
fn expect_keys(v: &Json, allowed: &[&str], ctx: &str) -> Result<(), String> {
    if let Json::Obj(fields) = v {
        for (k, _) in fields {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("unknown key {k:?} in {ctx}"));
            }
        }
    }
    Ok(())
}

fn parse_policy(v: Option<&Json>) -> Result<PolicySpec, String> {
    let Some(v) = v else { return Ok(PolicySpec::STANDARD) };
    let kind = v.get("kind").and_then(Json::as_str);
    expect_keys(
        v,
        match kind {
            Some("distinct") => &["kind", "k"],
            Some("memory") => &["kind", "window"],
            _ => &["kind"],
        },
        "the policy object",
    )?;
    match kind {
        Some("distinct") => Ok(PolicySpec::Distinct(req_usize(v, "k")?)),
        Some("memory") => Ok(PolicySpec::Memory(req_usize(v, "window")?)),
        Some("cyclic") => Ok(PolicySpec::Cyclic),
        other => Err(format!("unknown policy kind {other:?}")),
    }
}

fn parse_graph(v: &Json) -> Result<GraphSpec, String> {
    let kind = v.get("kind").and_then(Json::as_str);
    expect_keys(
        v,
        match kind {
            Some("random_regular") | Some("configuration_model") => &["kind", "n", "d"],
            Some("gnp") => &["kind", "n", "expected_degree"],
            Some("complete") | Some("cycle") => &["kind", "n"],
            Some("hypercube") => &["kind", "dim"],
            Some("torus") => &["kind", "rows", "cols"],
            Some("product_k") => &["kind", "base_n", "base_d", "clique"],
            Some("preferential_attachment") => &["kind", "n", "m"],
            _ => &["kind"],
        },
        "the graph object",
    )?;
    match kind {
        Some("random_regular") => {
            Ok(GraphSpec::RandomRegular { n: req_usize(v, "n")?, d: req_usize(v, "d")? })
        }
        Some("configuration_model") => {
            Ok(GraphSpec::ConfigurationModel { n: req_usize(v, "n")?, d: req_usize(v, "d")? })
        }
        Some("gnp") => Ok(GraphSpec::Gnp {
            n: req_usize(v, "n")?,
            expected_degree: req_f64(v, "expected_degree")?,
        }),
        Some("complete") => Ok(GraphSpec::Complete { n: req_usize(v, "n")? }),
        Some("hypercube") => Ok(GraphSpec::Hypercube { dim: req_usize(v, "dim")? as u32 }),
        Some("torus") => {
            Ok(GraphSpec::Torus { rows: req_usize(v, "rows")?, cols: req_usize(v, "cols")? })
        }
        Some("cycle") => Ok(GraphSpec::Cycle { n: req_usize(v, "n")? }),
        Some("product_k") => Ok(GraphSpec::ProductK {
            base_n: req_usize(v, "base_n")?,
            base_d: req_usize(v, "base_d")?,
            clique: req_usize(v, "clique")?,
        }),
        Some("preferential_attachment") => Ok(GraphSpec::PreferentialAttachment {
            n: req_usize(v, "n")?,
            m: req_usize(v, "m")?,
        }),
        other => Err(format!("unknown graph kind {other:?}")),
    }
}

fn parse_protocol(v: &Json) -> Result<ProtocolSpec, String> {
    let kind = v.get("kind").and_then(Json::as_str);
    expect_keys(
        v,
        match kind {
            Some("four_choice") => &["kind", "n_estimate", "degree", "alpha", "choices", "regime"],
            Some("sequential_four_choice") => &["kind", "n_estimate", "degree"],
            Some("budgeted") => &["kind", "mode", "n", "budget", "policy"],
            Some("push_then_pull") => &["kind", "n"],
            Some("median_counter") => &["kind", "n", "ctr_max", "c_rounds", "age_cutoff"],
            Some("quasirandom") => &["kind", "max_age"],
            Some("flood_push") | Some("flood_pull") | Some("flood_push_pull") => {
                &["kind", "policy"]
            }
            Some("ablated") => {
                &["kind", "n_estimate", "degree", "alpha", "phase1_always_push", "no_pull"]
            }
            _ => &["kind"],
        },
        "the protocol object",
    )?;
    match kind {
        Some("four_choice") => Ok(ProtocolSpec::FourChoice {
            n_estimate: req_usize(v, "n_estimate")?,
            degree: req_usize(v, "degree")?,
            alpha: opt_f64(v, "alpha", 1.5)?,
            choices: opt_u64(v, "choices", 4)? as usize,
            regime: match v.get("regime").and_then(Json::as_str) {
                Some("small") => RegimeSpec::Small,
                Some("large") => RegimeSpec::Large,
                Some("auto") | None => RegimeSpec::Auto,
                Some(other) => return Err(format!("unknown regime {other:?}")),
            },
        }),
        Some("sequential_four_choice") => Ok(ProtocolSpec::SequentialFourChoice {
            n_estimate: req_usize(v, "n_estimate")?,
            degree: req_usize(v, "degree")?,
        }),
        Some("budgeted") => Ok(ProtocolSpec::Budgeted {
            mode: match v.get("mode").and_then(Json::as_str) {
                Some("push") => GossipModeSpec::Push,
                Some("pull") => GossipModeSpec::Pull,
                Some("push_pull") => GossipModeSpec::PushPull,
                other => return Err(format!("unknown gossip mode {other:?}")),
            },
            n: req_usize(v, "n")?,
            budget: req_f64(v, "budget")?,
            policy: parse_policy(v.get("policy"))?,
        }),
        Some("push_then_pull") => Ok(ProtocolSpec::PushThenPull { n: req_usize(v, "n")? }),
        Some("median_counter") => Ok(ProtocolSpec::MedianCounter {
            n: req_usize(v, "n")?,
            ctr_max: opt_u32_field(v, "ctr_max")?,
            c_rounds: opt_u32_field(v, "c_rounds")?,
            age_cutoff: opt_u32_field(v, "age_cutoff")?,
        }),
        Some("quasirandom") => {
            Ok(ProtocolSpec::Quasirandom { max_age: opt_u32_field(v, "max_age")? })
        }
        Some("flood_push") => Ok(ProtocolSpec::FloodPush { policy: parse_policy(v.get("policy"))? }),
        Some("flood_pull") => Ok(ProtocolSpec::FloodPull { policy: parse_policy(v.get("policy"))? }),
        Some("flood_push_pull") => {
            Ok(ProtocolSpec::FloodPushPull { policy: parse_policy(v.get("policy"))? })
        }
        Some("silent") => Ok(ProtocolSpec::Silent),
        Some("ablated") => Ok(ProtocolSpec::Ablated {
            n_estimate: req_usize(v, "n_estimate")?,
            degree: req_usize(v, "degree")?,
            alpha: opt_f64(v, "alpha", 1.5)?,
            phase1_always_push: opt_bool(v, "phase1_always_push", false)?,
            no_pull: opt_bool(v, "no_pull", false)?,
        }),
        other => Err(format!("unknown protocol kind {other:?}")),
    }
}

pub use json::{parse as parse_json, Json};

/// Minimal JSON reader for the spec dialect (objects, arrays, strings,
/// numbers, booleans, null); just enough to parse what
/// [`ScenarioSpec::to_json`] writes plus hand-edited spec files.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (stored as `f64`).
        Num(f64),
        /// String.
        Str(String),
        /// Array.
        Arr(Vec<Json>),
        /// Object (insertion-ordered).
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(x) => Some(*x),
                _ => None,
            }
        }

        /// Non-negative integer value, if this is a whole number.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
                _ => None,
            }
        }

        /// String value.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Boolean value.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Json::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// Parses `text` into a [`Json`] value (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_obj(b, pos),
            Some(b'[') => parse_arr(b, pos),
            Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Json::Null),
            Some(_) => parse_num(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while *pos < b.len()
            && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            *pos += 4;
                        }
                        _ => return Err("invalid escape".into()),
                    }
                    *pos += 1;
                }
                c => {
                    // Multi-byte UTF-8 sequences pass through unharmed: we
                    // copy bytes until the next ASCII quote/backslash.
                    let start = *pos;
                    while *pos < b.len() && !matches!(b[*pos], b'"' | b'\\') {
                        *pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?,
                    );
                    let _ = c;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            fields.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rrb_engine::Simulation;
    use rrb_graph::NodeId;

    fn sample_specs() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::new(
                "e1-style",
                GraphSpec::RandomRegular { n: 1024, d: 8 },
                ProtocolSpec::FourChoice {
                    n_estimate: 1024,
                    degree: 8,
                    alpha: 1.5,
                    choices: 4,
                    regime: RegimeSpec::Auto,
                },
            ),
            ScenarioSpec::new(
                "failures",
                GraphSpec::Gnp { n: 512, expected_degree: 18.0 },
                ProtocolSpec::Budgeted {
                    mode: GossipModeSpec::Push,
                    n: 512,
                    budget: 3.0,
                    policy: PolicySpec::STANDARD,
                },
            )
            .with_failures(FailureSpec { channel: 0.1, transmission: 0.05, crash: 0.01 })
            .with_stop(StopSpec::Coverage { max_rounds: 500 })
            .with_measure(MeasureSpec::Trace),
            ScenarioSpec::new(
                "product",
                GraphSpec::ProductK { base_n: 128, base_d: 8, clique: 5 },
                ProtocolSpec::Ablated {
                    n_estimate: 640,
                    degree: 12,
                    alpha: 0.5,
                    phase1_always_push: true,
                    no_pull: false,
                },
            )
            .with_measure(MeasureSpec::Custom("growth-factor".into())),
            ScenarioSpec::new(
                "memory-push",
                GraphSpec::PreferentialAttachment { n: 256, m: 4 },
                ProtocolSpec::FloodPush { policy: PolicySpec::Memory(3) },
            )
            .with_stop(StopSpec::Coverage { max_rounds: 10_000 }),
            ScenarioSpec::new(
                "counter",
                GraphSpec::Complete { n: 64 },
                ProtocolSpec::MedianCounter {
                    n: 64,
                    ctr_max: Some(5),
                    c_rounds: None,
                    age_cutoff: None,
                },
            ),
            ScenarioSpec::new(
                "quasi",
                GraphSpec::Hypercube { dim: 6 },
                ProtocolSpec::Quasirandom { max_age: Some(40) },
            ),
            ScenarioSpec::new(
                "churny",
                GraphSpec::RandomRegular { n: 512, d: 8 },
                ProtocolSpec::FourChoice {
                    n_estimate: 512,
                    degree: 8,
                    alpha: 1.5,
                    choices: 4,
                    regime: RegimeSpec::Auto,
                },
            )
            .with_dynamics(DynamicsSpec::Churn(ChurnSpec {
                joins_per_round: 4.0,
                leaves_per_round: 2.5,
                min_alive: Some(128),
                rewire_per_round: 8,
            })),
            ScenarioSpec::new(
                "churny-defaults",
                GraphSpec::RandomRegular { n: 256, d: 6 },
                ProtocolSpec::FloodPushPull { policy: PolicySpec::Distinct(4) },
            )
            .with_dynamics(DynamicsSpec::Churn(ChurnSpec::symmetric(1.0))),
            ScenarioSpec::new(
                "faulty",
                GraphSpec::RandomRegular { n: 256, d: 8 },
                ProtocolSpec::FloodPushPull { policy: PolicySpec::Distinct(4) },
            )
            .with_failures(FaultSpec {
                rates: FailureSpec { channel: 0.05, transmission: 0.0, crash: 0.0 },
                burst: Some(GilbertElliott {
                    p_gb: 0.1,
                    p_bg: 0.4,
                    loss_good: 0.01,
                    loss_bad: 0.75,
                }),
                schedule: vec![
                    FaultEvent::Partition { from: 2, until: 10, parts: 2 },
                    FaultEvent::CrashNodes { at: 4, nodes: vec![1, 17, 33] },
                    FaultEvent::LossWindow {
                        from: 6,
                        until: 12,
                        channel: Some(0.4),
                        transmission: None,
                    },
                ],
                adversary: Some(AdversarySpec::new(AdversaryTarget::HighestDegree, 1, 8)),
                outages: Some(OutageSpec::new(0.05, 2, 5)),
            })
            .with_stop(StopSpec::Coverage { max_rounds: 400 })
            .with_measure(MeasureSpec::Degradation),
            ScenarioSpec::new(
                "async-poisson",
                GraphSpec::RandomRegular { n: 512, d: 8 },
                ProtocolSpec::FloodPush { policy: PolicySpec::Distinct(4) },
            )
            .with_timing(TimingSpec::Async {
                clock: ClockSpec::Exponential { rate: 1.5 },
                latency: LatencySpec::Uniform { min: 0.05, max: 0.5 },
            })
            .with_stop(StopSpec::Coverage { max_rounds: 200 }),
            ScenarioSpec::new(
                "async-stragglers",
                GraphSpec::RandomRegular { n: 256, d: 8 },
                ProtocolSpec::FloodPushPull { policy: PolicySpec::Distinct(4) },
            )
            .with_timing(TimingSpec::Async {
                clock: ClockSpec::Stragglers { rate: 1.0, slow_fraction: 0.2, slow_factor: 4.0 },
                latency: LatencySpec::Exponential { mean: 0.25 },
            }),
            ScenarioSpec::new(
                "async-fixed",
                GraphSpec::Complete { n: 64 },
                ProtocolSpec::Silent,
            )
            .with_timing(TimingSpec::Async {
                clock: ClockSpec::Fixed { interval: 2.0 },
                latency: LatencySpec::Fixed { delay: 0.1 },
            }),
            ScenarioSpec::new(
                "async-spectral",
                GraphSpec::RandomRegular { n: 512, d: 16 },
                ProtocolSpec::Silent,
            )
            .with_measure(MeasureSpec::SpectralAudit),
        ]
    }

    #[test]
    fn json_round_trip_preserves_every_spec() {
        for spec in sample_specs() {
            let json = spec.to_json();
            let back = ScenarioSpec::from_json(&json)
                .unwrap_or_else(|e| panic!("{}: {e}\n{json}", spec.label));
            assert_eq!(spec, back, "round trip changed the spec:\n{json}");
        }
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(ScenarioSpec::from_json("").is_err());
        assert!(ScenarioSpec::from_json("{}").is_err());
        assert!(ScenarioSpec::from_json("{\"label\": \"x\"}").is_err());
        assert!(ScenarioSpec::from_json(
            "{\"label\": \"x\", \"graph\": {\"kind\": \"blob\"}, \
             \"protocol\": {\"kind\": \"silent\"}}"
        )
        .is_err());
        // Unknown schema versions are refused loudly.
        assert!(ScenarioSpec::from_json(
            "{\"schema\": \"rrb-scenario-v999\", \"label\": \"x\", \
             \"graph\": {\"kind\": \"complete\", \"n\": 4}, \
             \"protocol\": {\"kind\": \"silent\"}}"
        )
        .is_err());
    }

    #[test]
    fn json_rejects_mistyped_and_misspelled_fields() {
        let with = |failures: &str| {
            format!(
                "{{\"label\": \"x\", \"graph\": {{\"kind\": \"complete\", \"n\": 4}}, \
                 \"protocol\": {{\"kind\": \"silent\"}}, \"failures\": {failures}}}"
            )
        };
        // Baseline: well-formed failures parse.
        let ok = ScenarioSpec::from_json(&with("{\"channel\": 0.3}")).unwrap();
        assert_eq!(ok.failures.rates.channel, 0.3);
        // A mistyped value must error, never silently run failure-free.
        assert!(ScenarioSpec::from_json(&with("{\"channel\": \"0.3\"}")).is_err());
        // A misspelled key must error, never silently default.
        assert!(ScenarioSpec::from_json(&with("{\"chanel\": 0.3}")).is_err());
        // Out-of-range probabilities are refused.
        assert!(ScenarioSpec::from_json(&with("{\"crash\": 1.5}")).is_err());
        // Same strictness for stop, measure, and protocol parameters.
        assert!(ScenarioSpec::from_json(
            "{\"label\": \"x\", \"graph\": {\"kind\": \"complete\", \"n\": 4}, \
             \"protocol\": {\"kind\": \"silent\"}, \
             \"stop\": {\"mode\": \"coverage\", \"max_rounds\": \"many\"}}"
        )
        .is_err());
        assert!(ScenarioSpec::from_json(
            "{\"label\": \"x\", \"graph\": {\"kind\": \"complete\", \"n\": 4}, \
             \"protocol\": {\"kind\": \"silent\"}, \"measure\": {\"knd\": \"trace\"}}"
        )
        .is_err());
        assert!(ScenarioSpec::from_json(
            "{\"label\": \"x\", \"graph\": {\"kind\": \"complete\", \"n\": 4}, \
             \"protocol\": {\"kind\": \"four_choice\", \"n_estimate\": 4, \
             \"degree\": 3, \"apha\": 2.0}}"
        )
        .is_err());
        assert!(ScenarioSpec::from_json(
            "{\"label\": \"x\", \"graph\": {\"kind\": \"complete\", \"n\": 4}, \
             \"protocol\": {\"kind\": \"four_choice\", \"n_estimate\": 4, \
             \"degree\": 3, \"alpha\": \"big\"}}"
        )
        .is_err());
    }

    #[test]
    fn fault_spec_json_is_backward_compatible() {
        // A plain-rates spec serialises exactly as before the fault layer…
        let plain =
            ScenarioSpec::new("plain", GraphSpec::Complete { n: 8 }, ProtocolSpec::Silent)
                .with_failures(FailureSpec { channel: 0.1, transmission: 0.05, crash: 0.01 });
        let json = plain.to_json();
        assert!(
            json.contains(
                "\"failures\": {\"channel\": 0.1, \"transmission\": 0.05, \"crash\": 0.01}"
            ),
            "{json}"
        );
        assert!(!json.contains("burst") && !json.contains("schedule"), "{json}");
        // …and every pre-existing FailureSpec JSON parses to a plain plan.
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert!(back.failures.is_plain());
        assert!(!back.failures.is_none());
        assert_eq!(back.failures.rates.channel, 0.1);
        assert_eq!(back, plain);
        assert_eq!(FaultSpec::NONE.summary(), "none");
        assert!(FaultSpec::NONE.is_none());
    }

    #[test]
    fn sync_timing_serialises_to_nothing() {
        // A sync spec's JSON carries no timing block at all, mirroring
        // DynamicsSpec::Static — so every pre-async spec hash and
        // committed artifact stays byte-identical.
        let plain =
            ScenarioSpec::new("plain", GraphSpec::Complete { n: 8 }, ProtocolSpec::Silent);
        assert!(plain.timing.is_sync());
        let json = plain.to_json();
        assert!(!json.contains("timing"), "{json}");
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), plain);
        // An explicit sync block parses back to the same spec…
        let explicit = "{\"label\": \"plain\", \"graph\": {\"kind\": \"complete\", \"n\": 8}, \
             \"protocol\": {\"kind\": \"silent\"}, \"timing\": {\"mode\": \"sync\"}}";
        assert_eq!(ScenarioSpec::from_json(explicit).unwrap(), plain);
        // …and async latency defaults to zero when omitted.
        let defaulted = "{\"label\": \"plain\", \"graph\": {\"kind\": \"complete\", \"n\": 8}, \
             \"protocol\": {\"kind\": \"silent\"}, \"timing\": {\"mode\": \"async\", \
             \"clock\": {\"kind\": \"fixed\", \"interval\": 1.0}}}";
        let spec = ScenarioSpec::from_json(defaulted).unwrap();
        assert_eq!(
            spec.timing,
            TimingSpec::Async { clock: ClockSpec::UNIT, latency: LatencySpec::Zero }
        );
    }

    #[test]
    fn timing_json_validates_each_dimension() {
        let with = |timing: &str| {
            format!(
                "{{\"label\": \"x\", \"graph\": {{\"kind\": \"complete\", \"n\": 4}}, \
                 \"protocol\": {{\"kind\": \"silent\"}}, \"timing\": {timing}}}"
            )
        };
        // Baseline: a well-formed async block parses.
        let ok = ScenarioSpec::from_json(&with(
            "{\"mode\": \"async\", \"clock\": {\"kind\": \"exponential\", \"rate\": 2.0}, \
             \"latency\": {\"kind\": \"uniform\", \"min\": 0.1, \"max\": 0.4}}",
        ))
        .unwrap();
        assert!(!ok.timing.is_sync());
        // Sync must not smuggle a clock in.
        assert!(ScenarioSpec::from_json(&with(
            "{\"mode\": \"sync\", \"clock\": {\"kind\": \"fixed\", \"interval\": 1.0}}"
        ))
        .is_err());
        // Async requires a clock.
        assert!(ScenarioSpec::from_json(&with("{\"mode\": \"async\"}")).is_err());
        // Unknown clock kinds, non-positive rates and misspelled keys error.
        assert!(ScenarioSpec::from_json(&with(
            "{\"mode\": \"async\", \"clock\": {\"kind\": \"sundial\"}}"
        ))
        .is_err());
        assert!(ScenarioSpec::from_json(&with(
            "{\"mode\": \"async\", \"clock\": {\"kind\": \"exponential\", \"rate\": 0.0}}"
        ))
        .is_err());
        assert!(ScenarioSpec::from_json(&with(
            "{\"mode\": \"async\", \"clock\": {\"kind\": \"exponential\", \"rte\": 1.0}}"
        ))
        .is_err());
        // Stragglers validate their fraction and slowdown factor.
        assert!(ScenarioSpec::from_json(&with(
            "{\"mode\": \"async\", \"clock\": {\"kind\": \"stragglers\", \"rate\": 1.0, \
             \"slow_fraction\": 1.5, \"slow_factor\": 4.0}}"
        ))
        .is_err());
        assert!(ScenarioSpec::from_json(&with(
            "{\"mode\": \"async\", \"clock\": {\"kind\": \"stragglers\", \"rate\": 1.0, \
             \"slow_fraction\": 0.1, \"slow_factor\": 0.5}}"
        ))
        .is_err());
        // An inverted uniform latency window is refused.
        assert!(ScenarioSpec::from_json(&with(
            "{\"mode\": \"async\", \"clock\": {\"kind\": \"fixed\", \"interval\": 1.0}, \
             \"latency\": {\"kind\": \"uniform\", \"min\": 0.5, \"max\": 0.1}}"
        ))
        .is_err());
    }

    #[test]
    fn fault_json_validates_each_dimension() {
        let with = |failures: &str| {
            format!(
                "{{\"label\": \"x\", \"graph\": {{\"kind\": \"complete\", \"n\": 4}}, \
                 \"protocol\": {{\"kind\": \"silent\"}}, \"failures\": {failures}}}"
            )
        };
        // Rates are validated to [0, 1): total loss is not a rate.
        assert!(ScenarioSpec::from_json(&with("{\"channel\": 1.0}")).is_err());
        // Burst chain parameters must be present and probabilities.
        assert!(ScenarioSpec::from_json(&with(
            "{\"burst\": {\"p_gb\": 1.5, \"p_bg\": 0.5, \"loss_good\": 0.0, \"loss_bad\": 0.8}}"
        ))
        .is_err());
        assert!(ScenarioSpec::from_json(&with("{\"burst\": {\"p_gb\": 0.5}}")).is_err());
        // Unknown event kinds, zero-part partitions and bad node lists.
        assert!(ScenarioSpec::from_json(&with(
            "{\"schedule\": [{\"kind\": \"partitio\", \"from\": 1, \"until\": 2, \"parts\": 2}]}"
        ))
        .is_err());
        assert!(ScenarioSpec::from_json(&with(
            "{\"schedule\": [{\"kind\": \"partition\", \"from\": 1, \"until\": 2, \"parts\": 0}]}"
        ))
        .is_err());
        assert!(ScenarioSpec::from_json(&with(
            "{\"schedule\": [{\"kind\": \"crash_nodes\", \"at\": 1, \"nodes\": [1, -2]}]}"
        ))
        .is_err());
        assert!(ScenarioSpec::from_json(&with("{\"schedule\": 3}")).is_err());
        // Adversary target names form a closed set.
        assert!(ScenarioSpec::from_json(&with(
            "{\"adversary\": {\"target\": \"tallest\", \"per_round\": 1, \"budget\": 2}}"
        ))
        .is_err());
        // Outage windows must be ordered, at least one round, sub-certain.
        assert!(ScenarioSpec::from_json(&with(
            "{\"outages\": {\"rate\": 0.1, \"min_down\": 5, \"max_down\": 2}}"
        ))
        .is_err());
        assert!(ScenarioSpec::from_json(&with(
            "{\"outages\": {\"rate\": 0.1, \"min_down\": 0, \"max_down\": 2}}"
        ))
        .is_err());
        assert!(ScenarioSpec::from_json(&with(
            "{\"outages\": {\"rate\": 1.0, \"min_down\": 1, \"max_down\": 2}}"
        ))
        .is_err());
        // A valid full plan parses and compiles.
        let ok = ScenarioSpec::from_json(&with(
            "{\"channel\": 0.1, \
              \"burst\": {\"p_gb\": 0.1, \"p_bg\": 0.4, \"loss_good\": 0.0, \"loss_bad\": 0.8}, \
              \"schedule\": [{\"kind\": \"partition\", \"from\": 2, \"until\": 9, \"parts\": 3}, \
                             {\"kind\": \"loss_window\", \"from\": 3, \"until\": 5, \
                              \"transmission\": 0.6}], \
              \"adversary\": {\"target\": \"earliest_informed\", \"per_round\": 1, \"budget\": 4}, \
              \"outages\": {\"rate\": 0.05, \"min_down\": 1, \"max_down\": 3}}"
        ))
        .unwrap();
        assert!(!ok.failures.is_plain());
        assert_eq!(ok.failures.heal_round(), Some(9));
        let plan = ok.failures.to_plan();
        assert!(!plan.is_empty());
        assert_eq!(plan.schedule.len(), 2);
        assert!(plan.adversary.is_some() && plan.burst.is_some() && plan.outages.is_some());
        let summary = ok.failures.summary();
        for needle in ["iid(ch=0.1)", "burst", "partition(x3 [2,9))", "adversary", "outages"] {
            assert!(summary.contains(needle), "{summary:?} missing {needle:?}");
        }
    }

    #[test]
    fn dynamics_json_round_trips_and_validates_strictly() {
        let with = |dynamics: &str| {
            format!(
                "{{\"label\": \"x\", \"graph\": {{\"kind\": \"complete\", \"n\": 8}}, \
                 \"protocol\": {{\"kind\": \"silent\"}}, \"dynamics\": {dynamics}}}"
            )
        };
        // Well-formed churn parses with defaults resolved lazily.
        let ok = ScenarioSpec::from_json(&with(
            "{\"churn\": {\"joins_per_round\": 2, \"leaves_per_round\": 0.5}}",
        ))
        .unwrap();
        let DynamicsSpec::Churn(c) = ok.dynamics else { panic!("expected churn") };
        assert_eq!(c.joins_per_round, 2.0);
        assert_eq!(c.leaves_per_round, 0.5);
        assert_eq!(c.min_alive, None);
        assert_eq!(c.rewire_per_round, 0);
        assert_eq!(c.to_process(100).min_alive, 50, "min_alive defaults to n/2");
        // An empty dynamics object means static.
        assert!(ScenarioSpec::from_json(&with("{}")).unwrap().dynamics.is_static());
        // Misspelled / mistyped / out-of-range fields error loudly.
        assert!(ScenarioSpec::from_json(&with("{\"chrn\": {}}")).is_err());
        assert!(ScenarioSpec::from_json(&with(
            "{\"churn\": {\"joins_per_rnd\": 2}}"
        ))
        .is_err());
        assert!(ScenarioSpec::from_json(&with(
            "{\"churn\": {\"joins_per_round\": \"two\"}}"
        ))
        .is_err());
        assert!(ScenarioSpec::from_json(&with(
            "{\"churn\": {\"joins_per_round\": -1}}"
        ))
        .is_err());
        assert!(ScenarioSpec::from_json(&with(
            "{\"churn\": {\"min_alive\": 1.5}}"
        ))
        .is_err());
    }

    #[test]
    fn spec_arrays_parse_as_ladders() {
        let one = ScenarioSpec::new("solo", GraphSpec::Complete { n: 8 }, ProtocolSpec::Silent);
        // A single object still parses through the list entry point.
        let parsed = ScenarioSpec::list_from_json(&one.to_json()).unwrap();
        assert_eq!(parsed, vec![one]);
        // An array parses element-wise, order preserved.
        let ladder = sample_specs();
        let joined = format!(
            "[\n{}\n]",
            ladder.iter().map(|s| s.to_json()).collect::<Vec<_>>().join(",\n")
        );
        let parsed = ScenarioSpec::list_from_json(&joined).unwrap();
        assert_eq!(parsed, ladder);
        // Errors name the offending element.
        let err = ScenarioSpec::list_from_json("[{\"label\": \"x\"}]").unwrap_err();
        assert!(err.starts_with("scenario [0]"), "{err}");
        assert!(ScenarioSpec::list_from_json("[]").is_err());
    }

    #[test]
    fn graph_specs_build_expected_sizes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let specs = [
            GraphSpec::RandomRegular { n: 64, d: 4 },
            GraphSpec::ConfigurationModel { n: 64, d: 4 },
            GraphSpec::Gnp { n: 64, expected_degree: 8.0 },
            GraphSpec::Complete { n: 64 },
            GraphSpec::Hypercube { dim: 6 },
            GraphSpec::Torus { rows: 8, cols: 8 },
            GraphSpec::Cycle { n: 64 },
            GraphSpec::ProductK { base_n: 16, base_d: 4, clique: 4 },
            GraphSpec::PreferentialAttachment { n: 64, m: 4 },
        ];
        for spec in specs {
            let g = spec.build(&mut rng).unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
            assert_eq!(g.node_count(), spec.node_count(), "{}", spec.label());
        }
    }

    #[test]
    fn any_protocol_runs_every_variant_to_coverage() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = GraphSpec::RandomRegular { n: 128, d: 8 }.build(&mut rng).unwrap();
        let protos = [
            ProtocolSpec::FourChoice {
                n_estimate: 128,
                degree: 8,
                alpha: 1.5,
                choices: 4,
                regime: RegimeSpec::Auto,
            },
            ProtocolSpec::SequentialFourChoice { n_estimate: 128, degree: 8 },
            ProtocolSpec::Budgeted {
                mode: GossipModeSpec::PushPull,
                n: 128,
                budget: 3.0,
                policy: PolicySpec::STANDARD,
            },
            ProtocolSpec::PushThenPull { n: 128 },
            ProtocolSpec::MedianCounter { n: 128, ctr_max: None, c_rounds: None, age_cutoff: None },
            ProtocolSpec::Quasirandom { max_age: None },
            ProtocolSpec::FloodPush { policy: PolicySpec::STANDARD },
            ProtocolSpec::FloodPull { policy: PolicySpec::STANDARD },
            ProtocolSpec::FloodPushPull { policy: PolicySpec::STANDARD },
            ProtocolSpec::Ablated {
                n_estimate: 128,
                degree: 8,
                alpha: 1.5,
                phase1_always_push: false,
                no_pull: false,
            },
        ];
        for spec in protos {
            let proto = spec.build();
            let mut rng = SmallRng::seed_from_u64(3);
            let report = Simulation::new(&g, proto, SimConfig::default())
                .run(NodeId::new(0), &mut rng);
            assert!(
                report.coverage() > 0.9,
                "{}: coverage {}",
                spec.label(),
                report.coverage()
            );
        }
        // And the null protocol stays silent.
        let mut rng = SmallRng::seed_from_u64(4);
        let report = Simulation::new(&g, ProtocolSpec::Silent.build(), SimConfig::default())
            .run(NodeId::new(0), &mut rng);
        assert_eq!(report.total_tx(), 0);
    }

    #[test]
    fn any_protocol_matches_concrete_protocol_seed_for_seed() {
        // The enum dispatch layer must be a zero-cost wrapper in behaviour:
        // identical plans, identical RNG consumption, identical reports.
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::random_regular(256, 8, &mut rng).unwrap();
        let spec = ProtocolSpec::FourChoice {
            n_estimate: 256,
            degree: 8,
            alpha: 1.5,
            choices: 4,
            regime: RegimeSpec::Auto,
        };
        let concrete = FourChoice::for_graph(256, 8);
        let run_any = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Simulation::new(&g, spec.build(), SimConfig::until_quiescent().with_history())
                .run(NodeId::new(0), &mut rng)
        };
        let run_concrete = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Simulation::new(&g, concrete, SimConfig::until_quiescent().with_history())
                .run(NodeId::new(0), &mut rng)
        };
        assert_eq!(run_any(9), run_concrete(9));
        // Stateful protocols too (MedianCounter carries CounterState).
        let mc_spec =
            ProtocolSpec::MedianCounter { n: 256, ctr_max: None, c_rounds: None, age_cutoff: None };
        let mc = MedianCounter::for_size(256);
        let any = {
            let mut rng = SmallRng::seed_from_u64(6);
            Simulation::new(&g, mc_spec.build(), SimConfig::until_quiescent())
                .run(NodeId::new(0), &mut rng)
        };
        let conc = {
            let mut rng = SmallRng::seed_from_u64(6);
            Simulation::new(&g, mc, SimConfig::until_quiescent()).run(NodeId::new(0), &mut rng)
        };
        assert_eq!(any, conc);
    }

    #[test]
    fn capabilities_flow_through_the_enum() {
        let push = ProtocolSpec::Budgeted {
            mode: GossipModeSpec::Push,
            n: 64,
            budget: 3.0,
            policy: PolicySpec::STANDARD,
        };
        assert_eq!(push.build().capabilities(), Capabilities::PUSH_ONLY);
        let ablated_no_pull = ProtocolSpec::Ablated {
            n_estimate: 64,
            degree: 8,
            alpha: 1.5,
            phase1_always_push: true,
            no_pull: true,
        };
        assert_eq!(ablated_no_pull.build().capabilities(), Capabilities::PUSH_ONLY);
        let four = ProtocolSpec::FourChoice {
            n_estimate: 64,
            degree: 8,
            alpha: 1.5,
            choices: 4,
            regime: RegimeSpec::Auto,
        };
        assert_eq!(four.build().capabilities(), Capabilities::ALL);
    }

    #[test]
    fn sim_config_compiles_stop_failures_measure() {
        let spec = ScenarioSpec::new(
            "cfg",
            GraphSpec::Complete { n: 8 },
            ProtocolSpec::Silent,
        )
        .with_failures(FailureSpec { channel: 0.2, transmission: 0.0, crash: 0.05 })
        .with_stop(StopSpec::Coverage { max_rounds: 77 })
        .with_measure(MeasureSpec::Trace);
        let cfg = spec.sim_config();
        assert!(cfg.stop_at_coverage);
        assert_eq!(cfg.max_rounds, 77);
        assert!(cfg.record_history);
        assert_eq!(cfg.failures.channel_failure, 0.2);
        assert_eq!(cfg.failures.node_crash, 0.05);
        let quiet = ScenarioSpec::new("q", GraphSpec::Complete { n: 8 }, ProtocolSpec::Silent)
            .sim_config();
        assert!(!quiet.stop_at_coverage);
        assert!(quiet.failures.is_none());
    }
}
