//! The experiment registry: every E1–E21 measurement of the paper as a
//! named entry whose configuration ladder is [`ScenarioSpec`] **data**.
//!
//! One binary (`rrb`) drives the whole fleet:
//!
//! ```text
//! rrb list                 # what's registered
//! rrb describe e5          # a ladder's specs as JSON
//! rrb run e5 --quick       # run an experiment (same flags as the old binaries)
//! rrb run --spec file.json # run a single hand-written scenario
//! ```
//!
//! The legacy `exp_*` binaries still exist as thin wrappers over their
//! registry entries, so `cargo run --bin exp_e5_crossover` and
//! `rrb run e5` are the same code path — seed for seed.

use std::time::Instant;

use crate::scenario::{DynamicsSpec, ScenarioSpec, TimingSpec};
use crate::{
    run_replicated_async_timed, run_replicated_churned, run_replicated_faulted_timed,
    run_replicated_timed, AsyncRunReport, BenchRecorder, ChurnRunReport, ExpConfig,
};
use rand::Rng;
use rrb_engine::{AsyncSimState, FaultState, PhaseTimings, Protocol, Round, RunReport, SimState};

/// One rung of an experiment's configuration ladder: a scenario plus the
/// `config_ix` RNG coordinate it runs under (kept identical to the indices
/// the pre-registry binaries used, so results stay comparable).
#[derive(Debug, Clone)]
pub struct LadderEntry {
    /// Second coordinate of the [`crate::rng_for`] stream.
    pub config_ix: u64,
    /// The scenario to run.
    pub spec: ScenarioSpec,
}

impl LadderEntry {
    /// Convenience constructor.
    pub fn new(config_ix: u64, spec: ScenarioSpec) -> Self {
        LadderEntry { config_ix, spec }
    }
}

/// Signature of an experiment driver: runs the ladder, prints the analysis
/// and returns the per-configuration timings when the experiment produces
/// them (sweep-style experiments do; bespoke measurements return `None`).
pub type RunFn = fn(&ExpConfig) -> Option<BenchRecorder>;

/// Signature of a ladder builder (`quick` shrinks it like `--quick`).
pub type ScenariosFn = fn(bool) -> Vec<LadderEntry>;

/// A registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Registry name (`"e1"` … `"e19"`).
    pub name: &'static str,
    /// First coordinate of the [`crate::rng_for`] stream.
    pub id: u64,
    /// One-line title shown by `rrb list`.
    pub title: &'static str,
    /// What the experiment demonstrates (paper reference included).
    pub description: &'static str,
    /// The configuration ladder as scenario data.
    pub scenarios: ScenariosFn,
    /// The driver.
    pub run: RunFn,
}

/// All registered experiments, in E-number order.
pub fn all() -> &'static [Experiment] {
    crate::experiments::REGISTRY
}

/// Looks an experiment up by name (`"e5"`), case-insensitive.
pub fn find(name: &str) -> Option<&'static Experiment> {
    let needle = name.to_ascii_lowercase();
    all().iter().find(|e| e.name == needle)
}

/// Entry point for the thin `exp_*` wrapper binaries: parse the shared
/// CLI flags and run the named experiment.
pub fn cli_main(name: &str) {
    let cfg = ExpConfig::from_args();
    let exp = find(name).unwrap_or_else(|| panic!("experiment {name:?} not registered"));
    (exp.run)(&cfg);
}

/// Runs one ladder entry through the shared replication harness:
/// spec → protocol/graph/config, fanned out over the rayon pool under
/// `(experiment_id, entry.config_ix, seed)` RNG streams. Specs with churn
/// dynamics route through the churn harness (per-seed mutable overlays
/// over a shared base graph) and return the plain engine reports; use
/// [`run_entry_churned`] when the churn totals matter too. Specs with a
/// fault plan route through the faulted harness, which installs the plan
/// on the reserved [`crate::FAULT_STREAM`]; plain specs keep the
/// pre-fault code path byte for byte.
///
/// `cfg.shards > 1` fans every synchronous run's RNG-free phases out over
/// node-slot shards (`SimConfig::with_shards`) — reports stay
/// seed-for-seed identical at any shard count, only wall-clock moves.
/// Async-timing specs ignore the shard count (the event-queue engine
/// processes one event at a time by construction).
pub fn run_entry(
    experiment_id: u64,
    entry: &LadderEntry,
    cfg: &ExpConfig,
) -> (Vec<RunReport>, f64) {
    if !entry.spec.timing.is_sync() {
        let (runs, wall_ms) = run_entry_async(experiment_id, entry, cfg);
        return (runs.into_iter().map(|r| r.report).collect(), wall_ms);
    }
    match entry.spec.dynamics {
        DynamicsSpec::Static if entry.spec.failures.is_plain() => {
            let proto = entry.spec.protocol.build();
            let config = entry.spec.sim_config().with_shards(cfg.shards);
            let graph = entry.spec.graph.clone();
            run_replicated_timed(
                move |rng| {
                    graph
                        .build(rng)
                        .unwrap_or_else(|e| panic!("graph generation for {}: {e}", graph.label()))
                },
                &proto,
                config,
                experiment_id,
                entry.config_ix,
                cfg.seeds,
            )
        }
        DynamicsSpec::Static => {
            let proto = entry.spec.protocol.build();
            let config = entry.spec.sim_config().with_shards(cfg.shards);
            let plan = entry.spec.failures.to_plan();
            let graph = entry.spec.graph.clone();
            run_replicated_faulted_timed(
                move |rng| {
                    graph
                        .build(rng)
                        .unwrap_or_else(|e| panic!("graph generation for {}: {e}", graph.label()))
                },
                &proto,
                config,
                &plan,
                experiment_id,
                entry.config_ix,
                cfg.seeds,
            )
        }
        DynamicsSpec::Churn(_) => {
            let (runs, wall_ms) = run_entry_churned(experiment_id, entry, cfg);
            (runs.into_iter().map(|r| r.report).collect(), wall_ms)
        }
    }
}

/// Churn-dynamics twin of [`run_entry`], additionally surfacing the
/// membership-event totals of every seed.
///
/// # Panics
///
/// Panics if the entry's spec has static dynamics.
pub fn run_entry_churned(
    experiment_id: u64,
    entry: &LadderEntry,
    cfg: &ExpConfig,
) -> (Vec<ChurnRunReport>, f64) {
    let DynamicsSpec::Churn(churn) = entry.spec.dynamics else {
        panic!("run_entry_churned on a static spec ({})", entry.spec.label);
    };
    assert!(
        entry.spec.failures.is_plain(),
        "fault plans are not supported under churn dynamics yet ({})",
        entry.spec.label
    );
    let proto = entry.spec.protocol.build();
    let config = entry.spec.sim_config().with_shards(cfg.shards);
    let graph = entry.spec.graph.clone();
    let n = graph.node_count();
    let target_degree = graph.target_degree();
    let start = Instant::now();
    let runs = run_replicated_churned(
        move |rng| {
            graph
                .build(rng)
                .unwrap_or_else(|e| panic!("graph generation for {}: {e}", graph.label()))
        },
        target_degree,
        &proto,
        config,
        churn.to_process(n),
        churn.rewire_per_round,
        experiment_id,
        entry.config_ix,
        cfg.seeds,
    );
    (runs, start.elapsed().as_secs_f64() * 1e3)
}

/// Asynchronous-timing twin of [`run_entry`], surfacing the
/// continuous-time quantities (`time`, `coverage_time`, `events`) the
/// round report cannot carry. Routes through
/// [`crate::run_replicated_async`]: the spec's clock and latency drive an
/// [`AsyncSimState`] per seed, with the fault plan (when present) consumed
/// time-windowed on the reserved [`crate::FAULT_STREAM`].
///
/// # Panics
///
/// Panics on a sync-timing spec, or on churn dynamics (the event queue
/// does not take membership deltas yet — model outages with a fault plan
/// instead).
pub fn run_entry_async(
    experiment_id: u64,
    entry: &LadderEntry,
    cfg: &ExpConfig,
) -> (Vec<AsyncRunReport>, f64) {
    let TimingSpec::Async { clock, latency } = entry.spec.timing else {
        panic!("run_entry_async on a sync-timing spec ({})", entry.spec.label);
    };
    assert!(
        matches!(entry.spec.dynamics, DynamicsSpec::Static),
        "async timing does not support churn dynamics ({})",
        entry.spec.label
    );
    let proto = entry.spec.protocol.build();
    let config = entry.spec.sim_config();
    let plan = entry.spec.failures.to_plan();
    let graph = entry.spec.graph.clone();
    run_replicated_async_timed(
        move |rng| {
            graph
                .build(rng)
                .unwrap_or_else(|e| panic!("graph generation for {}: {e}", graph.label()))
        },
        &proto,
        config,
        clock,
        latency,
        &plan,
        experiment_id,
        entry.config_ix,
        cfg.seeds,
    )
}

/// Replays one ladder rung's **seed-0 replication** with a
/// [`PhaseTimings`] probe installed and returns the accumulated
/// telemetry: per-phase wall-clock attribution, counter totals and the
/// peak-RSS high-water mark.
///
/// The instrumented run uses exactly [`run_entry`]'s streams — the shared
/// [`crate::TOPOLOGY_STREAM`] topology, origin and run randomness from
/// `(experiment_id, config_ix, seed 0)`, and the fault plan (when
/// present) on [`crate::FAULT_STREAM`] — and probes never touch the RNG,
/// so the replayed run is byte-identical to the first replication the
/// statistics describe. Async-timing specs replay on the event-queue
/// engine over the same streams (probe phases map onto the event
/// lifecycle). Returns `None` for churn dynamics (the churn stepping
/// loop does not take probes yet) and on graph-generation failure.
///
/// `shards > 1` replays the synchronous run on the sharded step path, so
/// the probe additionally accumulates **per-shard** phase attribution
/// ([`PhaseTimings::shard_phase_ms`]); the replayed trajectory — and
/// every counter — is still byte-identical to the serial replay.
pub fn instrument_entry(
    experiment_id: u64,
    entry: &LadderEntry,
    shards: usize,
) -> Option<PhaseTimings> {
    if !matches!(entry.spec.dynamics, DynamicsSpec::Static) {
        return None;
    }
    let proto = entry.spec.protocol.build();
    let config = entry.spec.sim_config().with_shards(shards);
    let mut topo_rng = crate::rng_for(experiment_id, entry.config_ix, crate::TOPOLOGY_STREAM);
    let topo = entry.spec.graph.build(&mut topo_rng).ok()?;
    // Replays seed index 0 of the ladder, so the run stream is the one
    // `run_replicated*` gives the first replication.
    let seed0: u64 = 0;
    let mut rng = crate::rng_for(experiment_id, entry.config_ix, seed0);
    let origin = crate::random_alive_origin(&topo, &mut rng);
    if let TimingSpec::Async { clock, latency } = entry.spec.timing {
        let mut state = AsyncSimState::new(&proto, topo.node_count(), origin, clock, latency);
        if !entry.spec.failures.is_plain() {
            // Seed index 0 replay, so the stream key is FAULT_STREAM ^ 0.
            let fault_seed: u64 =
                crate::rng_for(experiment_id, entry.config_ix, crate::FAULT_STREAM).gen();
            let plan = entry.spec.failures.to_plan();
            state.set_faults(Some(FaultState::new(&plan, topo.node_count(), fault_seed)));
        }
        state.set_probe(Some(Box::new(PhaseTimings::new())));
        state.run_to_completion(&topo, &proto, config, &mut rng);
        let probe = state.take_probe()?;
        return probe.as_any().downcast_ref::<PhaseTimings>().cloned();
    }
    let mut state = SimState::new(&proto, topo.node_count(), origin);
    if !entry.spec.failures.is_plain() {
        // Seed index 0 replay, so the stream key is FAULT_STREAM ^ 0.
        let fault_seed: u64 =
            crate::rng_for(experiment_id, entry.config_ix, crate::FAULT_STREAM).gen();
        let plan = entry.spec.failures.to_plan();
        state.set_faults(Some(FaultState::new(&plan, topo.node_count(), fault_seed)));
    }
    state.set_probe(Some(Box::new(PhaseTimings::new())));
    state.run_to_completion(&topo, &proto, config, &mut rng);
    let probe = state.take_probe()?;
    probe.as_any().downcast_ref::<PhaseTimings>().cloned()
}

/// The protocol's designed round budget (schedule end), if it has one —
/// the "schedule end" column of several tables.
pub fn deadline_of(spec: &ScenarioSpec) -> Option<Round> {
    spec.protocol.build().deadline()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        ChurnSpec, GraphSpec, MeasureSpec, PolicySpec, ProtocolSpec, RegimeSpec, StopSpec,
    };

    #[test]
    fn registry_is_complete_and_names_unique() {
        let exps = all();
        assert_eq!(exps.len(), 21, "all 21 experiments must be registered");
        for (i, e) in exps.iter().enumerate() {
            assert_eq!(e.name, format!("e{}", i + 1), "registry out of order");
            assert_eq!(e.id, (i + 1) as u64, "experiment id must match its E number");
            assert!(!e.title.is_empty() && !e.description.is_empty());
        }
        let mut names: Vec<&str> = exps.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21, "duplicate experiment names");
    }

    #[test]
    fn every_ladder_is_nonempty_and_serialisable() {
        for exp in all() {
            for quick in [true, false] {
                let ladder = (exp.scenarios)(quick);
                assert!(!ladder.is_empty(), "{} has an empty ladder", exp.name);
                for entry in &ladder {
                    let json = entry.spec.to_json();
                    let back = ScenarioSpec::from_json(&json).unwrap_or_else(|e| {
                        panic!("{}/{}: {e}", exp.name, entry.spec.label)
                    });
                    assert_eq!(entry.spec, back, "{} spec not round-trippable", exp.name);
                }
                // config_ix values must be distinct within a ladder: they
                // are RNG stream coordinates.
                let mut ixs: Vec<u64> = ladder.iter().map(|l| l.config_ix).collect();
                ixs.sort_unstable();
                let len = ixs.len();
                ixs.dedup();
                assert_eq!(ixs.len(), len, "{} reuses config_ix values", exp.name);
            }
        }
    }

    #[test]
    fn quick_ladders_are_no_larger_than_full() {
        for exp in all() {
            let quick = (exp.scenarios)(true).len();
            let full = (exp.scenarios)(false).len();
            assert!(quick <= full, "{}: quick ladder larger than full", exp.name);
        }
    }

    #[test]
    fn find_is_case_insensitive_and_total() {
        assert!(find("e1").is_some());
        assert!(find("E18").is_some());
        assert!(find("e19").is_some());
        assert!(find("E20").is_some());
        assert!(find("e21").is_some());
        assert!(find("e22").is_none());
        assert!(find("bogus").is_none());
    }

    #[test]
    fn run_entry_matches_hand_wired_plumbing() {
        // The declarative path (spec → run_entry) must reproduce the
        // hand-wired legacy plumbing seed for seed: same protocol, same
        // graph stream, same per-seed streams.
        use rrb_core::FourChoice;
        use rrb_engine::SimConfig;
        use rrb_graph::gen;

        let cfg = ExpConfig { quick: true, seeds: 4, threads: None, shards: 1 };
        let entry = LadderEntry::new(
            302,
            ScenarioSpec::new(
                "cross-check",
                GraphSpec::RandomRegular { n: 256, d: 8 },
                ProtocolSpec::FourChoice {
                    n_estimate: 256,
                    degree: 8,
                    alpha: 1.5,
                    choices: 4,
                    regime: RegimeSpec::Auto,
                },
            ),
        );
        let (via_spec, _) = run_entry(77, &entry, &cfg);
        let via_hand = crate::run_replicated(
            |rng| gen::random_regular(256, 8, rng).expect("generation"),
            &FourChoice::for_graph(256, 8),
            SimConfig::until_quiescent(),
            77,
            302,
            4,
        );
        assert_eq!(via_spec, via_hand);
    }

    #[test]
    fn churned_entries_are_seed_for_seed_deterministic() {
        let cfg = ExpConfig { quick: true, seeds: 3, threads: None, shards: 1 };
        let entry = LadderEntry::new(
            7,
            ScenarioSpec::new(
                "churn-x",
                GraphSpec::RandomRegular { n: 128, d: 6 },
                ProtocolSpec::FloodPushPull { policy: PolicySpec::Distinct(4) },
            )
            .with_dynamics(DynamicsSpec::Churn(ChurnSpec::symmetric(2.0)))
            .with_stop(StopSpec::Coverage { max_rounds: 200 }),
        );
        let (a, _) = run_entry_churned(99, &entry, &cfg);
        let (b, _) = run_entry_churned(99, &entry, &cfg);
        assert_eq!(a, b, "churned entry must be seed-for-seed deterministic");
        assert!(a.iter().any(|r| r.churn.joins > 0), "churn never fired");
        // The generic entry point dispatches to the same path.
        let (plain, _) = run_entry(99, &entry, &cfg);
        let reports: Vec<_> = a.into_iter().map(|r| r.report).collect();
        assert_eq!(plain, reports);
    }

    #[test]
    fn faulted_entries_dispatch_and_are_deterministic() {
        use crate::scenario::{FailureSpec, FaultSpec};
        use rrb_engine::FaultEvent;

        let cfg = ExpConfig { quick: true, seeds: 3, threads: None, shards: 1 };
        let entry = LadderEntry::new(
            5,
            ScenarioSpec::new(
                "fault-x",
                GraphSpec::RandomRegular { n: 128, d: 6 },
                ProtocolSpec::FloodPushPull { policy: PolicySpec::Distinct(4) },
            )
            .with_failures(FaultSpec {
                rates: FailureSpec { channel: 0.05, transmission: 0.0, crash: 0.0 },
                schedule: vec![FaultEvent::Partition { from: 1, until: 10, parts: 2 }],
                ..FaultSpec::NONE
            })
            .with_stop(StopSpec::Coverage { max_rounds: 300 }),
        );
        let (a, _) = run_entry(98, &entry, &cfg);
        let (b, _) = run_entry(98, &entry, &cfg);
        assert_eq!(a, b, "faulted entry must be seed-for-seed deterministic");
        // The plan actually bit: no seed covers before the heal.
        for r in &a {
            assert!(r.full_coverage_at.unwrap_or(10) >= 10, "covered mid-partition");
        }
        // A plain spec must not be rerouted through the faulted runner.
        let plain = LadderEntry::new(
            5,
            ScenarioSpec::new(
                "plain-x",
                GraphSpec::RandomRegular { n: 128, d: 6 },
                ProtocolSpec::FloodPushPull { policy: PolicySpec::Distinct(4) },
            )
            .with_stop(StopSpec::Coverage { max_rounds: 300 }),
        );
        let (via_entry, _) = run_entry(98, &plain, &cfg);
        let via_hand = crate::run_replicated(
            |rng| rrb_graph::gen::random_regular(128, 6, rng).expect("generation"),
            &rrb_engine::protocols::FloodPushPull::with_policy(rrb_engine::ChoicePolicy::Distinct(
                4,
            )),
            rrb_engine::SimConfig::default().with_max_rounds(300),
            98,
            5,
            3,
        );
        assert_eq!(via_entry, via_hand);
    }

    #[test]
    fn async_entries_dispatch_instrument_and_are_deterministic() {
        use rrb_engine::{ClockSpec, LatencySpec};
        let cfg = ExpConfig { quick: true, seeds: 3, threads: None, shards: 1 };
        let entry = LadderEntry::new(
            9,
            ScenarioSpec::new(
                "async-x",
                GraphSpec::RandomRegular { n: 128, d: 6 },
                ProtocolSpec::FloodPushPull { policy: PolicySpec::Distinct(4) },
            )
            .with_timing(TimingSpec::Async {
                clock: ClockSpec::Exponential { rate: 1.0 },
                latency: LatencySpec::Uniform { min: 0.05, max: 0.3 },
            })
            .with_stop(StopSpec::Coverage { max_rounds: 200 }),
        );
        let (a, _) = run_entry_async(97, &entry, &cfg);
        let (b, _) = run_entry_async(97, &entry, &cfg);
        assert_eq!(a, b, "async entry must be seed-for-seed deterministic");
        assert!(a.iter().all(|r| r.report.all_informed()));
        // The generic entry point dispatches to the same path.
        let (plain, _) = run_entry(97, &entry, &cfg);
        let reports: Vec<_> = a.iter().map(|r| r.report.clone()).collect();
        assert_eq!(plain, reports);
        // The probed replay rides seed 0's exact streams.
        let timings = instrument_entry(97, &entry, 1).expect("async entry instruments");
        assert_eq!(timings.rounds(), a[0].report.rounds);
        assert_eq!(timings.tx(), a[0].report.total_tx());
    }

    #[test]
    fn instrumented_replay_matches_seed_zero_statistics() {
        // The probed replay rides the same streams as run_entry's first
        // replication, so its counters must equal seed 0's report exactly.
        let cfg = ExpConfig { quick: true, seeds: 1, threads: None, shards: 1 };
        let entry = LadderEntry::new(
            11,
            ScenarioSpec::new(
                "probe-x",
                GraphSpec::RandomRegular { n: 256, d: 8 },
                ProtocolSpec::FloodPushPull { policy: PolicySpec::Distinct(4) },
            )
            .with_stop(StopSpec::Coverage { max_rounds: 200 }),
        );
        let (reports, _) = run_entry(42, &entry, &cfg);
        let timings = instrument_entry(42, &entry, 1).expect("static entry instruments");
        assert_eq!(timings.rounds(), reports[0].rounds);
        assert_eq!(timings.tx(), reports[0].total_tx());
        assert_eq!(timings.last_round().informed, reports[0].informed_count);
        assert!(
            timings.phase_ms().iter().sum::<f64>() > 0.0,
            "phase attribution recorded no time"
        );
    }

    #[test]
    fn churned_entries_are_not_instrumented() {
        let entry = LadderEntry::new(
            7,
            ScenarioSpec::new(
                "churn-probe",
                GraphSpec::RandomRegular { n: 128, d: 6 },
                ProtocolSpec::FloodPushPull { policy: PolicySpec::Distinct(4) },
            )
            .with_dynamics(DynamicsSpec::Churn(ChurnSpec::symmetric(2.0))),
        );
        assert!(instrument_entry(99, &entry, 1).is_none());
    }

    #[test]
    fn deadline_reporting() {
        let spec = ScenarioSpec::new(
            "d",
            GraphSpec::RandomRegular { n: 1024, d: 8 },
            ProtocolSpec::FourChoice {
                n_estimate: 1024,
                degree: 8,
                alpha: 1.5,
                choices: 4,
                regime: RegimeSpec::Auto,
            },
        );
        assert!(deadline_of(&spec).unwrap() > 0);
        let flood = ScenarioSpec::new(
            "f",
            GraphSpec::Complete { n: 8 },
            ProtocolSpec::FloodPush { policy: crate::scenario::PolicySpec::STANDARD },
        )
        .with_measure(MeasureSpec::Standard);
        assert!(deadline_of(&flood).is_none());
    }
}
