//! Shared harness for the experiment binaries (`src/bin/exp_*.rs`).
//!
//! Every experiment reproduces one quantitative claim of the paper (see
//! `DESIGN.md` §4 for the index and `EXPERIMENTS.md` for recorded results).
//! The binaries accept `--quick` to shrink the size ladder and seed count
//! for smoke-testing, `--seeds N` to set the replication count and
//! `--threads N` to bound the worker pool; default parameters produce the
//! tables recorded in `EXPERIMENTS.md`.
//!
//! # Parallel seed replication
//!
//! Independent seed replications fan out over a rayon thread pool via
//! [`run_replicated`] (engine runs producing [`RunReport`]s) and
//! [`replicate`] (arbitrary per-seed measurement closures). Each seed draws
//! its RNG from the deterministic [`rng_for`] stream keyed by
//! `(experiment, configuration, seed)`, so results are **identical for
//! every thread count** — parallelism changes only wall-clock, never
//! numbers. Reports come back in seed order. [`run_replicated`] generates
//! the topology **once per configuration** (on the reserved
//! [`TOPOLOGY_STREAM`] stream) and shares it across the seed replications,
//! since graph generation dominates wall-clock on large-n ladders.
//!
//! # Perf trajectory
//!
//! [`BenchRecorder`] captures per-configuration wall-clock, rounds and
//! transmission counts and serialises them to `BENCH_engine.json` (see
//! `exp_e1_runtime`), giving future engine work a baseline to beat.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod compare;
pub mod measure;
pub mod registry;
pub mod scenario;

mod experiments;

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use rrb_engine::{
    AsyncSimState, ClockSpec, FaultPlan, FaultState, LatencySpec, MultiRumorReport, MultiSimState,
    Protocol, Round, RumorInjection, RunReport, SimConfig, SimState, Simulation, Topology,
};
use rrb_graph::{Graph, NodeId};
use rrb_p2p::{ChurnProcess, ChurnStats, Overlay};

/// Command-line configuration shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Reduced ladder/seeds for smoke tests (`--quick`).
    pub quick: bool,
    /// Number of independent seeds per configuration.
    pub seeds: u64,
    /// Worker threads for seed replication (`--threads N`; `None` = all
    /// available cores).
    pub threads: Option<usize>,
    /// Node-slot shards for **single-run** parallelism (`--shards N`):
    /// every engine run fans its RNG-free phases out over this many
    /// contiguous slot shards. Results are seed-for-seed identical at any
    /// value (see `rrb_engine::shard`); `1` keeps the serial step path.
    pub shards: usize,
}

impl ExpConfig {
    /// Parses `--quick`, `--seeds N`, `--threads N` and `--shards N` from
    /// `std::env::args`, installing the requested global thread pool.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        fn flag_value<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
        }
        let quick = args.iter().any(|a| a == "--quick");
        Self::with_flags(
            quick,
            flag_value(&args, "--seeds"),
            flag_value(&args, "--threads"),
            flag_value(&args, "--shards"),
        )
    }

    /// Builds a config from explicit flag values, applying the shared seed
    /// default (3 quick / 10 full) and installing the requested global
    /// thread pool — the single code path behind both [`Self::from_args`]
    /// (the `exp_*` wrappers) and `rrb run`, so the two stay seed-for-seed
    /// identical by construction.
    pub fn with_flags(
        quick: bool,
        seeds: Option<u64>,
        threads: Option<usize>,
        shards: Option<usize>,
    ) -> Self {
        let seeds = seeds.unwrap_or(if quick { 3 } else { 10 });
        let threads = threads.map(|t| t.max(1));
        if let Some(t) = threads {
            let _ = rayon::ThreadPoolBuilder::new().num_threads(t).build_global();
        }
        ExpConfig { quick, seeds, threads, shards: shards.unwrap_or(1).max(1) }
    }

    /// The exponent ladder for n = 2^e sweeps: shorter under `--quick`.
    pub fn size_exponents(&self, full: std::ops::RangeInclusive<u32>) -> Vec<u32> {
        if self.quick {
            let hi = (*full.start() + 2).min(*full.end());
            (*full.start()..=hi).collect()
        } else {
            full.collect()
        }
    }
}

/// Deterministic per-(experiment, configuration, seed) RNG.
pub fn rng_for(experiment: u64, config_ix: u64, seed: u64) -> SmallRng {
    // SplitMix-style mixing of the three coordinates.
    let mut z = experiment
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(config_ix.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(seed.wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 31;
    SmallRng::seed_from_u64(z)
}

/// Fans an arbitrary per-seed measurement out over the rayon pool.
///
/// Each seed gets its own [`rng_for`] stream, so the outcome vector (in
/// seed order) is byte-identical regardless of thread count. This is the
/// building block for experiments whose per-seed work is more than a single
/// engine run (churn loops, replicated-DB runs, spectral audits, ...).
pub fn replicate<T, F>(experiment: u64, config_ix: u64, seeds: u64, per_seed: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut SmallRng) -> T + Sync,
{
    (0..seeds)
        .into_par_iter()
        .map(|s| {
            let mut rng = rng_for(experiment, config_ix, s);
            per_seed(s, &mut rng)
        })
        .collect()
}

/// Reserved seed coordinate of the per-configuration *topology stream*:
/// [`run_replicated`] draws the shared topology from
/// `rng_for(experiment, config_ix, TOPOLOGY_STREAM)`, disjoint from every
/// per-seed stream (seeds are small integers).
pub const TOPOLOGY_STREAM: u64 = 0x7070_1070;

/// Runs `protocol` once per seed from a random origin, replications fanned
/// out over the rayon pool, and returns the reports in seed order.
///
/// The topology is generated **once per configuration** (graph generation
/// dominates wall-clock for large-n ladders) from the dedicated
/// [`TOPOLOGY_STREAM`] RNG stream and shared by reference across the seed
/// replications; origin selection and the run itself stay on the per-seed
/// [`rng_for`] stream.
///
/// Determinism contract: report `i` depends only on
/// `(experiment, config_ix)` (via the shared topology) and
/// `(experiment, config_ix, seed i)` — never on the thread schedule.
pub fn run_replicated<T, P, F>(
    topo_builder: F,
    protocol: &P,
    config: SimConfig,
    experiment: u64,
    config_ix: u64,
    seeds: u64,
) -> Vec<RunReport>
where
    T: Topology + Sync,
    P: Protocol + Clone + Sync,
    F: FnOnce(&mut SmallRng) -> T,
{
    let mut topo_rng = rng_for(experiment, config_ix, TOPOLOGY_STREAM);
    let topo = topo_builder(&mut topo_rng);
    replicate(experiment, config_ix, seeds, |_, rng| {
        let origin = loop {
            let i = rng.gen_range(0..topo.node_count());
            if topo.is_alive(NodeId::new(i)) {
                break NodeId::new(i);
            }
        };
        Simulation::new(&topo, protocol.clone(), config).run(origin, rng)
    })
}

/// Reserved seed coordinate of the per-seed *fault stream*:
/// [`run_replicated_faulted`] seeds each replication's
/// [`FaultState`] from `rng_for(experiment, config_ix, FAULT_STREAM ^ seed)`,
/// disjoint from the per-seed run streams (seeds are small integers) and
/// from [`TOPOLOGY_STREAM`].
pub const FAULT_STREAM: u64 = 0xFA17_07A1;

/// Like [`run_replicated`], with an adversarial [`FaultPlan`] installed in
/// every replication. Each seed gets its own fault state on the reserved
/// [`FAULT_STREAM`], so outcomes stay byte-identical for every thread
/// count, and an **empty plan reproduces [`run_replicated`] exactly** —
/// the fault stream is derived but never advanced by the engine.
pub fn run_replicated_faulted<T, P, F>(
    topo_builder: F,
    protocol: &P,
    config: SimConfig,
    plan: &FaultPlan,
    experiment: u64,
    config_ix: u64,
    seeds: u64,
) -> Vec<RunReport>
where
    T: Topology + Sync,
    P: Protocol + Clone + Sync,
    F: FnOnce(&mut SmallRng) -> T,
{
    let mut topo_rng = rng_for(experiment, config_ix, TOPOLOGY_STREAM);
    let topo = topo_builder(&mut topo_rng);
    replicate(experiment, config_ix, seeds, |s, rng| {
        let origin = random_alive_origin(&topo, rng);
        let fault_seed: u64 = rng_for(experiment, config_ix, FAULT_STREAM ^ s).gen();
        let mut state = SimState::new(protocol, topo.node_count(), origin);
        state.set_faults(Some(FaultState::new(plan, topo.node_count(), fault_seed)));
        state.run_to_completion(&topo, protocol, config, rng);
        state.into_report(&topo, config)
    })
}

/// Like [`run_replicated_faulted`], additionally timing the
/// configuration's total wall-clock (milliseconds).
#[allow(clippy::too_many_arguments)]
pub fn run_replicated_faulted_timed<T, P, F>(
    topo_builder: F,
    protocol: &P,
    config: SimConfig,
    plan: &FaultPlan,
    experiment: u64,
    config_ix: u64,
    seeds: u64,
) -> (Vec<RunReport>, f64)
where
    T: Topology + Sync,
    P: Protocol + Clone + Sync,
    F: FnOnce(&mut SmallRng) -> T,
{
    let start = Instant::now();
    let reports =
        run_replicated_faulted(topo_builder, protocol, config, plan, experiment, config_ix, seeds);
    (reports, start.elapsed().as_secs_f64() * 1e3)
}

/// One seed's outcome of an **asynchronous-time** broadcast: the engine
/// report (rounds are the `ceil(T)` windows of the event clock) plus the
/// continuous-time quantities the round report cannot carry.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncRunReport {
    /// The engine's run report; `rounds`/`full_coverage_at` are unit-time
    /// windows of the event clock.
    pub report: RunReport,
    /// Simulated time at which the run stopped.
    pub time: f64,
    /// Simulated time of the delivery that completed coverage, if reached.
    pub coverage_time: Option<f64>,
    /// Total events processed (fires + deliveries).
    pub events: u64,
}

/// Replicated single-rumour broadcasts on the **asynchronous event-queue
/// engine** — the continuous-time twin of [`run_replicated_faulted`].
///
/// Topology is generated once per configuration on the
/// [`TOPOLOGY_STREAM`]; each seed runs its own [`AsyncSimState`] with the
/// given per-node clock and per-channel latency on the per-seed
/// [`rng_for`] stream, with the fault state (when `plan` is non-empty)
/// seeded from the reserved [`FAULT_STREAM`]. Outcomes are byte-identical
/// for every thread count, and an empty plan installs no fault state at
/// all — reproducing the plain async engine exactly.
#[allow(clippy::too_many_arguments)]
pub fn run_replicated_async<T, P, F>(
    topo_builder: F,
    protocol: &P,
    config: SimConfig,
    clock: ClockSpec,
    latency: LatencySpec,
    plan: &FaultPlan,
    experiment: u64,
    config_ix: u64,
    seeds: u64,
) -> Vec<AsyncRunReport>
where
    T: Topology + Sync,
    P: Protocol + Clone + Sync,
    F: FnOnce(&mut SmallRng) -> T,
{
    let mut topo_rng = rng_for(experiment, config_ix, TOPOLOGY_STREAM);
    let topo = topo_builder(&mut topo_rng);
    replicate(experiment, config_ix, seeds, |s, rng| {
        let origin = random_alive_origin(&topo, rng);
        let mut sim = AsyncSimState::new(protocol, topo.node_count(), origin, clock, latency);
        if !plan.is_empty() {
            let fault_seed: u64 = rng_for(experiment, config_ix, FAULT_STREAM ^ s).gen();
            sim.set_faults(Some(FaultState::new(plan, topo.node_count(), fault_seed)));
        }
        sim.run_to_completion(&topo, protocol, config, rng);
        let (time, coverage_time, events) = (sim.now(), sim.coverage_time(), sim.events_processed());
        AsyncRunReport { report: sim.into_report(&topo, config), time, coverage_time, events }
    })
}

/// Like [`run_replicated_async`], additionally timing the configuration's
/// total wall-clock (milliseconds).
#[allow(clippy::too_many_arguments)]
pub fn run_replicated_async_timed<T, P, F>(
    topo_builder: F,
    protocol: &P,
    config: SimConfig,
    clock: ClockSpec,
    latency: LatencySpec,
    plan: &FaultPlan,
    experiment: u64,
    config_ix: u64,
    seeds: u64,
) -> (Vec<AsyncRunReport>, f64)
where
    T: Topology + Sync,
    P: Protocol + Clone + Sync,
    F: FnOnce(&mut SmallRng) -> T,
{
    let start = Instant::now();
    let reports = run_replicated_async(
        topo_builder,
        protocol,
        config,
        clock,
        latency,
        plan,
        experiment,
        config_ix,
        seeds,
    );
    (reports, start.elapsed().as_secs_f64() * 1e3)
}

/// One seed's outcome of a broadcast under membership churn: the engine
/// report (coverage is measured over **survivors** — the alive, uncrashed
/// census at the end of the run) plus the totals of the membership events
/// applied while it ran.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnRunReport {
    /// The engine's run report; `alive_count` is the final survivor
    /// census, so `coverage()` is survivor coverage.
    pub report: RunReport,
    /// Join/leave totals applied over the run.
    pub churn: ChurnStats,
}

/// Replicated single-rumour broadcasts under membership churn — the
/// dynamic-membership twin of [`run_replicated`].
///
/// The **base graph** is generated once per configuration on the
/// [`TOPOLOGY_STREAM`] (generation dominates wall-clock at large n); each
/// seed then wraps it in its own mutable [`Overlay`] and runs its own
/// churn trajectory on the per-seed [`rng_for`] stream: one engine round,
/// one [`ChurnProcess`] step, `rewire_per_round` flip switches, then the
/// structured [`ChurnEvents`](rrb_p2p::ChurnEvents) are fed to the
/// engine's alive census (`apply_joins` / `apply_leaves`). Outcomes are
/// therefore byte-identical for every thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_replicated_churned<P, F>(
    base_builder: F,
    target_degree: usize,
    protocol: &P,
    config: SimConfig,
    churn: ChurnProcess,
    rewire_per_round: usize,
    experiment: u64,
    config_ix: u64,
    seeds: u64,
) -> Vec<ChurnRunReport>
where
    P: Protocol + Clone + Sync,
    F: FnOnce(&mut SmallRng) -> Graph,
{
    let mut topo_rng = rng_for(experiment, config_ix, TOPOLOGY_STREAM);
    let base = base_builder(&mut topo_rng);
    replicate(experiment, config_ix, seeds, |_, rng| {
        let mut overlay = Overlay::from_graph(&base, target_degree);
        let origin = random_alive_origin(&overlay, rng);
        let mut process = churn; // Copy: every seed starts with fresh debts
        let mut totals = ChurnStats::default();
        let mut sim = SimState::new(protocol, Topology::node_count(&overlay), origin);
        while !sim.finished(&overlay, protocol, config) {
            sim.step(&overlay, protocol, config, rng);
            let events = process.step(&mut overlay, rng).expect("churn step");
            overlay.rewire(rewire_per_round, rng);
            totals.absorb(events.stats());
            sim.apply_joins(protocol, &events.joined);
            sim.apply_leaves(&events.left);
            sim.apply_rejoins(protocol, &events.rejoined);
        }
        ChurnRunReport { report: sim.into_report(&overlay, config), churn: totals }
    })
}

/// One seed's outcome of a **multi-rumour** run under churn.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiChurnReport {
    /// The multi-rumour engine report (per-rumour `informed` counts alive,
    /// uncrashed survivors).
    pub report: MultiRumorReport,
    /// Join/leave totals applied over the run.
    pub churn: ChurnStats,
    /// Final survivor census — the denominator for per-rumour survivor
    /// coverage.
    pub final_alive: usize,
}

/// Replicated **multi-rumour** broadcasts under membership churn:
/// `rumors` rumours injected `stagger` rounds apart at random alive
/// origins, riding one shared channel fabric while peers join and leave —
/// the scenario family (multi-rumour × churn) the alive-census refactor
/// unlocked. Same topology-sharing and determinism contract as
/// [`run_replicated_churned`].
#[allow(clippy::too_many_arguments)]
pub fn run_replicated_multi_churned<P, F>(
    base_builder: F,
    target_degree: usize,
    protocol: &P,
    config: SimConfig,
    churn: ChurnProcess,
    rewire_per_round: usize,
    rumors: usize,
    stagger: Round,
    experiment: u64,
    config_ix: u64,
    seeds: u64,
) -> Vec<MultiChurnReport>
where
    P: Protocol + Clone + Sync,
    F: FnOnce(&mut SmallRng) -> Graph,
{
    let mut topo_rng = rng_for(experiment, config_ix, TOPOLOGY_STREAM);
    let base = base_builder(&mut topo_rng);
    replicate(experiment, config_ix, seeds, |_, rng| {
        let mut overlay = Overlay::from_graph(&base, target_degree);
        let injections: Vec<RumorInjection> = (0..rumors)
            .map(|r| RumorInjection {
                birth: r as Round * stagger,
                origin: random_alive_origin(&overlay, rng),
            })
            .collect();
        let mut process = churn;
        let mut totals = ChurnStats::default();
        let mut sim = MultiSimState::new(protocol, &overlay, &injections);
        while !sim.finished(protocol, config) {
            sim.step(&overlay, protocol, config, rng);
            let events = process.step(&mut overlay, rng).expect("churn step");
            overlay.rewire(rewire_per_round, rng);
            totals.absorb(events.stats());
            sim.apply_joins(protocol, &events.joined);
            sim.apply_leaves(&events.left);
            sim.apply_rejoins(protocol, &events.rejoined);
        }
        let final_alive = sim.effective_alive();
        MultiChurnReport { report: sim.into_report(), churn: totals, final_alive }
    })
}

fn random_alive_origin<T: Topology, R: rand::Rng + ?Sized>(topo: &T, rng: &mut R) -> NodeId {
    loop {
        let i = rng.gen_range(0..topo.node_count());
        if topo.is_alive(NodeId::new(i)) {
            return NodeId::new(i);
        }
    }
}

/// Peak resident set size of this process (`VmHWM`) in kibibytes; `None`
/// where the procfs field is unavailable. Used by the n = 10^6
/// memory-smoke rung of E1. Delegates to the engine's telemetry sampler
/// (the same probe [`rrb_engine::PhaseTimings`] reads once per round).
pub fn peak_rss_kib() -> Option<u64> {
    rrb_engine::telemetry::peak_rss_kib()
}

/// Like [`run_replicated`], additionally timing the configuration's total
/// wall-clock (milliseconds).
pub fn run_replicated_timed<T, P, F>(
    topo_builder: F,
    protocol: &P,
    config: SimConfig,
    experiment: u64,
    config_ix: u64,
    seeds: u64,
) -> (Vec<RunReport>, f64)
where
    T: Topology + Sync,
    P: Protocol + Clone + Sync,
    F: FnOnce(&mut SmallRng) -> T,
{
    let start = Instant::now();
    let reports = run_replicated(topo_builder, protocol, config, experiment, config_ix, seeds);
    (reports, start.elapsed().as_secs_f64() * 1e3)
}

/// Mean of a per-report metric.
pub fn mean_of<F: Fn(&RunReport) -> f64>(reports: &[RunReport], f: F) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(f).sum::<f64>() / reports.len() as f64
}

/// Fraction of reports with full coverage.
pub fn success_rate(reports: &[RunReport]) -> f64 {
    mean_of(reports, |r| if r.all_informed() { 1.0 } else { 0.0 })
}

/// Mean rounds-to-coverage over successful runs (cap value for failures).
pub fn mean_rounds_to_coverage(reports: &[RunReport]) -> f64 {
    mean_of(reports, |r| r.full_coverage_at.unwrap_or(r.rounds) as f64)
}

/// Mean survivor coverage across the replications — the *residual
/// coverage* of a degraded run (1.0 means every survivor was informed
/// despite the faults).
pub fn mean_coverage(reports: &[RunReport]) -> f64 {
    mean_of(reports, |r| r.coverage())
}

/// Mean **recovery rounds** — healed rounds needed to reach full coverage
/// after the scripted heal ([`FaultPlan::heal_round`], the first round the
/// last partition no longer blocks). Covering *in* the heal round counts
/// as 1; covering before the heal (the partition never bit) counts as 0.
/// Replications that never reach full coverage count at their total round
/// count, mirroring [`mean_rounds_to_coverage`]'s cap convention.
pub fn mean_recovery_rounds(reports: &[RunReport], heal: Round) -> f64 {
    mean_of(reports, |r| {
        (r.full_coverage_at.unwrap_or(r.rounds) + 1).saturating_sub(heal) as f64
    })
}

/// One timed configuration in a [`BenchRecorder`].
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Configuration label (e.g. `"d8_n1024"`).
    pub label: String,
    /// Node count.
    pub n: usize,
    /// Seeds replicated.
    pub seeds: u64,
    /// Wall-clock for the whole configuration, milliseconds.
    pub wall_ms: f64,
    /// Mean rounds to coverage across the replications.
    pub mean_rounds: f64,
    /// Mean total transmissions across the replications.
    pub mean_transmissions: f64,
    /// Fraction of replications reaching full coverage.
    pub success_rate: f64,
}

/// Collects per-configuration engine timings and writes the
/// machine-readable `BENCH_engine.json` perf-trajectory file.
#[derive(Debug)]
pub struct BenchRecorder {
    experiment: String,
    quick: bool,
    shards: usize,
    entries: Vec<BenchEntry>,
    started: Instant,
}

impl BenchRecorder {
    /// Starts recording for the named experiment.
    pub fn new(experiment: impl Into<String>, quick: bool) -> Self {
        BenchRecorder {
            experiment: experiment.into(),
            quick,
            shards: 1,
            entries: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Records the shard count the runs executed under, written alongside
    /// the thread count as run provenance (`"shards"` in the JSON).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Records one timed configuration.
    pub fn record(
        &mut self,
        label: impl Into<String>,
        n: usize,
        seeds: u64,
        wall_ms: f64,
        reports: &[RunReport],
    ) {
        self.entries.push(BenchEntry {
            label: label.into(),
            n,
            seeds,
            wall_ms,
            mean_rounds: mean_rounds_to_coverage(reports),
            mean_transmissions: mean_of(reports, |r| r.total_tx() as f64),
            success_rate: success_rate(reports),
        });
    }

    /// Records one timed configuration from pre-aggregated metrics, for
    /// experiments whose per-seed unit is not a single engine
    /// [`RunReport`] (e.g. the multi-rumour replicated-database runs of
    /// E14).
    #[allow(clippy::too_many_arguments)]
    pub fn record_raw(
        &mut self,
        label: impl Into<String>,
        n: usize,
        seeds: u64,
        wall_ms: f64,
        mean_rounds: f64,
        mean_transmissions: f64,
        success_rate: f64,
    ) {
        self.entries.push(BenchEntry {
            label: label.into(),
            n,
            seeds,
            wall_ms,
            mean_rounds,
            mean_transmissions,
            success_rate,
        });
    }

    /// Recorded entries so far.
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Serialises the record as JSON (schema `rrb-bench-engine-v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rrb-bench-engine-v1\",\n");
        out.push_str(&format!("  \"experiment\": {},\n", json_string(&self.experiment)));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!("  \"threads\": {},\n", rayon::current_num_threads()));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!(
            "  \"total_wall_ms\": {:.3},\n",
            self.started.elapsed().as_secs_f64() * 1e3
        ));
        out.push_str("  \"configs\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": {}, \"n\": {}, \"seeds\": {}, \"wall_ms\": {:.3}, \
                 \"mean_rounds\": {:.3}, \"mean_transmissions\": {:.3}, \
                 \"success_rate\": {:.4}}}{}\n",
                json_string(&e.label),
                e.n,
                e.seeds,
                e.wall_ms,
                e.mean_rounds,
                e.mean_transmissions,
                e.success_rate,
                if i + 1 < self.entries.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON record to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Escapes `s` as a JSON string literal (quotes included) — the one
/// escaper behind every JSON writer in this workspace's hand-rolled
/// dialect ([`BenchRecorder`], run artifacts, the `rrb` CLI's `--json`
/// registry listings).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_engine::protocols::FloodPushPull;
    use rrb_graph::gen;

    #[test]
    fn rngs_are_deterministic_and_distinct() {
        let a: u64 = rng_for(1, 2, 3).gen();
        let b: u64 = rng_for(1, 2, 3).gen();
        let c: u64 = rng_for(1, 2, 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn run_replicated_produces_reports() {
        let reports = run_replicated(
            |rng| gen::random_regular(128, 4, rng).unwrap(),
            &FloodPushPull::new(),
            SimConfig::default(),
            1,
            0,
            4,
        );
        assert_eq!(reports.len(), 4);
        assert!((success_rate(&reports) - 1.0).abs() < 1e-12);
        assert!(mean_rounds_to_coverage(&reports) > 1.0);
        assert!(mean_of(&reports, |r| r.tx_per_node()) > 0.0);
    }

    #[test]
    fn run_replicated_is_thread_count_invariant() {
        let run_with = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    run_replicated(
                        |rng| gen::random_regular(256, 8, rng).unwrap(),
                        &FloodPushPull::new(),
                        SimConfig::default().with_history(),
                        7,
                        3,
                        8,
                    )
                })
        };
        let sequential = run_with(1);
        let parallel = run_with(8);
        assert_eq!(sequential, parallel, "reports depend on the thread schedule");
    }

    #[test]
    fn run_replicated_generates_topology_once_per_configuration() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let reports = run_replicated(
            |rng| {
                calls.fetch_add(1, Ordering::SeqCst);
                gen::random_regular(64, 4, rng).unwrap()
            },
            &FloodPushPull::new(),
            SimConfig::default(),
            2,
            0,
            6,
        );
        assert_eq!(calls.load(Ordering::SeqCst), 1, "topology must be shared across seeds");
        assert_eq!(reports.len(), 6);
        assert!((success_rate(&reports) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replicate_preserves_seed_order() {
        let out = replicate(9, 0, 16, |seed, rng| (seed, rng.gen::<u64>()));
        for (i, (seed, _)) in out.iter().enumerate() {
            assert_eq!(*seed, i as u64);
        }
        let again = replicate(9, 0, 16, |seed, rng| (seed, rng.gen::<u64>()));
        assert_eq!(out, again);
    }

    #[test]
    fn faulted_runs_with_empty_plan_match_run_replicated() {
        // The fault stream is derived but never advanced for an empty
        // plan, so the faulted runner is byte-identical to the plain one.
        let base = run_replicated(
            |rng| gen::random_regular(128, 6, rng).unwrap(),
            &FloodPushPull::new(),
            SimConfig::default(),
            21,
            0,
            4,
        );
        let faulted = run_replicated_faulted(
            |rng| gen::random_regular(128, 6, rng).unwrap(),
            &FloodPushPull::new(),
            SimConfig::default(),
            &FaultPlan::default(),
            21,
            0,
            4,
        );
        assert_eq!(base, faulted);
    }

    #[test]
    fn async_runs_cover_and_report_continuous_time() {
        let reports = run_replicated_async(
            |rng| gen::random_regular(128, 6, rng).unwrap(),
            &FloodPushPull::new(),
            SimConfig::default().with_max_rounds(200),
            ClockSpec::Exponential { rate: 1.0 },
            LatencySpec::Uniform { min: 0.05, max: 0.3 },
            &FaultPlan::default(),
            41,
            0,
            4,
        );
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.report.all_informed());
            assert!(r.events > 0);
            let cov = r.coverage_time.expect("covered runs record a coverage time");
            assert!(cov <= r.time);
            // The report's round stamp is the ceil-window of the event time.
            assert_eq!(r.report.full_coverage_at, Some((cov.ceil().max(1.0)) as Round));
        }
    }

    #[test]
    fn async_runs_are_thread_count_invariant() {
        use rrb_engine::{FaultEvent, OutageSpec};
        let plan = FaultPlan {
            burst: None,
            schedule: vec![FaultEvent::Partition { from: 2, until: 6, parts: 2 }],
            adversary: None,
            outages: Some(OutageSpec::new(0.05, 1, 3)),
        };
        let run_with = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    run_replicated_async(
                        |rng| gen::random_regular(128, 6, rng).unwrap(),
                        &FloodPushPull::new(),
                        SimConfig::default().with_max_rounds(300),
                        ClockSpec::Stragglers { rate: 1.0, slow_fraction: 0.1, slow_factor: 4.0 },
                        LatencySpec::Exponential { mean: 0.2 },
                        &plan,
                        42,
                        1,
                        8,
                    )
                })
        };
        let sequential = run_with(1);
        let parallel = run_with(4);
        assert_eq!(sequential, parallel, "async reports depend on the thread schedule");
    }

    #[test]
    fn faulted_runs_are_thread_count_invariant() {
        use rrb_engine::{FaultEvent, GilbertElliott, OutageSpec};
        let plan = FaultPlan {
            burst: Some(GilbertElliott::new(0.1, 0.3, 0.02, 0.7)),
            schedule: vec![FaultEvent::Partition { from: 2, until: 8, parts: 2 }],
            adversary: None,
            outages: Some(OutageSpec::new(0.05, 1, 3)),
        };
        let run_with = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    run_replicated_faulted(
                        |rng| gen::random_regular(128, 6, rng).unwrap(),
                        &FloodPushPull::new(),
                        SimConfig::default().with_max_rounds(300),
                        &plan,
                        22,
                        1,
                        8,
                    )
                })
        };
        assert_eq!(run_with(1), run_with(4), "fault outcomes depend on the thread schedule");
    }

    #[test]
    fn degradation_helpers_report_recovery_after_heal() {
        use rrb_engine::FaultEvent;
        let plan = FaultPlan {
            schedule: vec![FaultEvent::Partition { from: 1, until: 12, parts: 2 }],
            ..FaultPlan::default()
        };
        let heal = plan.heal_round().unwrap();
        let reports = run_replicated_faulted(
            |rng| gen::random_regular(128, 6, rng).unwrap(),
            &FloodPushPull::new(),
            SimConfig::default().with_max_rounds(300),
            &plan,
            23,
            0,
            6,
        );
        // Flood push&pull cannot cover a partitioned overlay: every seed
        // completes only after the heal, then recovers within a few rounds.
        assert!((success_rate(&reports) - 1.0).abs() < 1e-12);
        assert!((mean_coverage(&reports) - 1.0).abs() < 1e-12);
        for r in &reports {
            assert!(r.full_coverage_at.unwrap() >= heal, "covered while partitioned");
        }
        let recovery = mean_recovery_rounds(&reports, heal);
        assert!(recovery > 0.0 && recovery < 50.0, "recovery {recovery}");
    }

    #[test]
    fn churned_runs_are_deterministic_and_apply_churn() {
        let run = || {
            run_replicated_churned(
                |rng| gen::random_regular(128, 6, rng).unwrap(),
                6,
                &FloodPushPull::new(),
                SimConfig::default().with_max_rounds(200),
                ChurnProcess::symmetric(2.0, 32),
                4,
                10,
                90,
                4,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must give identical churn trajectories");
        for r in &a {
            assert!(r.churn.joins > 0 && r.churn.leaves > 0, "churn never fired");
            // Joins create fresh slots, so the slot count grew past the
            // base size while survivors stay near it (symmetric rates).
            assert!(r.report.node_count > 128, "slots did not grow: {}", r.report.node_count);
            assert!(r.report.alive_count <= r.report.node_count);
            assert!(r.report.coverage() <= 1.0);
        }
        // At this mild churn rate flood push&pull reaches every survivor
        // at some instant (joiners arriving afterwards may still be
        // uninformed at the end — that is what survivor coverage < 1
        // means under sustained joins).
        assert!(
            a.iter().any(|r| r.report.full_coverage_at.is_some()),
            "no seed ever covered the survivors"
        );
    }

    #[test]
    fn churned_runs_are_thread_count_invariant() {
        let run_with = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    run_replicated_churned(
                        |rng| gen::random_regular(128, 6, rng).unwrap(),
                        6,
                        &FloodPushPull::new(),
                        SimConfig::default().with_history().with_max_rounds(200),
                        ChurnProcess::symmetric(4.0, 32),
                        8,
                        11,
                        91,
                        6,
                    )
                })
        };
        assert_eq!(run_with(1), run_with(8), "churn outcomes depend on the thread schedule");
    }

    #[test]
    fn multi_churned_runs_are_deterministic() {
        let run = || {
            run_replicated_multi_churned(
                |rng| gen::random_regular(96, 6, rng).unwrap(),
                6,
                &FloodPushPull::new(),
                SimConfig::default().with_max_rounds(200),
                ChurnProcess::symmetric(1.0, 24),
                2,
                4,
                3,
                12,
                92,
                3,
            )
        };
        let a = run();
        assert_eq!(a, run());
        for seed in &a {
            assert_eq!(seed.report.outcomes.len(), 4);
            assert!(seed.final_alive > 0);
            for o in &seed.report.outcomes {
                assert!(o.informed <= seed.final_alive, "informed exceeds survivors");
            }
        }
    }

    #[test]
    fn quick_config_shrinks_ladder() {
        let full = ExpConfig { quick: false, seeds: 10, threads: None, shards: 1 };
        let quick = ExpConfig { quick: true, seeds: 3, threads: None, shards: 1 };
        assert_eq!(full.size_exponents(10..=15), vec![10, 11, 12, 13, 14, 15]);
        assert_eq!(quick.size_exponents(10..=15), vec![10, 11, 12]);
    }

    #[test]
    fn recorder_emits_valid_shape() {
        let reports = run_replicated(
            |rng| gen::random_regular(64, 4, rng).unwrap(),
            &FloodPushPull::new(),
            SimConfig::default(),
            1,
            0,
            2,
        );
        let mut rec = BenchRecorder::new("unit_test", true);
        rec.record("d4_n64", 64, 2, 1.25, &reports);
        let json = rec.to_json();
        assert!(json.contains("\"schema\": \"rrb-bench-engine-v1\""));
        assert!(json.contains("\"label\": \"d4_n64\""));
        assert!(json.contains("\"success_rate\": 1.0000"));
        assert_eq!(rec.entries().len(), 1);
        // Balanced braces — cheap structural sanity for the hand-rolled JSON.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
