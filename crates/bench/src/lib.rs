//! Shared harness for the experiment binaries (`src/bin/exp_*.rs`).
//!
//! Every experiment reproduces one quantitative claim of the paper (see
//! `DESIGN.md` §4 for the index and `EXPERIMENTS.md` for recorded results).
//! The binaries accept `--quick` to shrink the size ladder and seed count
//! for smoke-testing; default parameters produce the tables recorded in
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rrb_engine::{Protocol, RunReport, SimConfig, Simulation, Topology};
use rrb_graph::NodeId;

/// Command-line configuration shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Reduced ladder/seeds for smoke tests (`--quick`).
    pub quick: bool,
    /// Number of independent seeds per configuration.
    pub seeds: u64,
}

impl ExpConfig {
    /// Parses `--quick` and `--seeds N` from `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let seeds = args
            .iter()
            .position(|a| a == "--seeds")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(if quick { 3 } else { 10 });
        ExpConfig { quick, seeds }
    }

    /// The exponent ladder for n = 2^e sweeps: shorter under `--quick`.
    pub fn size_exponents(&self, full: std::ops::RangeInclusive<u32>) -> Vec<u32> {
        if self.quick {
            let hi = (*full.start() + 2).min(*full.end());
            (*full.start()..=hi).collect()
        } else {
            full.collect()
        }
    }
}

/// Deterministic per-(experiment, configuration, seed) RNG.
pub fn rng_for(experiment: u64, config_ix: u64, seed: u64) -> SmallRng {
    // SplitMix-style mixing of the three coordinates.
    let mut z = experiment
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(config_ix.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(seed.wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 31;
    SmallRng::seed_from_u64(z)
}

/// Runs `protocol` once per seed from a random origin and returns the
/// reports.
pub fn run_seeds<T, P, F>(
    topo_for_seed: F,
    protocol: &P,
    config: SimConfig,
    experiment: u64,
    config_ix: u64,
    seeds: u64,
) -> Vec<RunReport>
where
    T: Topology,
    P: Protocol + Clone,
    F: Fn(&mut SmallRng) -> T,
{
    (0..seeds)
        .map(|s| {
            let mut rng = rng_for(experiment, config_ix, s);
            let topo = topo_for_seed(&mut rng);
            let origin = loop {
                let i = rng.gen_range(0..topo.node_count());
                if topo.is_alive(NodeId::new(i)) {
                    break NodeId::new(i);
                }
            };
            Simulation::new(&topo, protocol.clone(), config).run(origin, &mut rng)
        })
        .collect()
}

/// Mean of a per-report metric.
pub fn mean_of<F: Fn(&RunReport) -> f64>(reports: &[RunReport], f: F) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(f).sum::<f64>() / reports.len() as f64
}

/// Fraction of reports with full coverage.
pub fn success_rate(reports: &[RunReport]) -> f64 {
    mean_of(reports, |r| if r.all_informed() { 1.0 } else { 0.0 })
}

/// Mean rounds-to-coverage over successful runs (cap value for failures).
pub fn mean_rounds_to_coverage(reports: &[RunReport]) -> f64 {
    mean_of(reports, |r| r.full_coverage_at.unwrap_or(r.rounds) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_engine::protocols::FloodPushPull;
    use rrb_graph::gen;

    #[test]
    fn rngs_are_deterministic_and_distinct() {
        let a: u64 = rng_for(1, 2, 3).gen();
        let b: u64 = rng_for(1, 2, 3).gen();
        let c: u64 = rng_for(1, 2, 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn run_seeds_produces_reports() {
        let reports = run_seeds(
            |rng| gen::random_regular(128, 4, rng).unwrap(),
            &FloodPushPull::new(),
            SimConfig::default(),
            1,
            0,
            4,
        );
        assert_eq!(reports.len(), 4);
        assert!((success_rate(&reports) - 1.0).abs() < 1e-12);
        assert!(mean_rounds_to_coverage(&reports) > 1.0);
        assert!(mean_of(&reports, |r| r.tx_per_node()) > 0.0);
    }

    #[test]
    fn quick_config_shrinks_ladder() {
        let full = ExpConfig { quick: false, seeds: 10 };
        let quick = ExpConfig { quick: true, seeds: 3 };
        assert_eq!(full.size_exponents(10..=15), vec![10, 11, 12, 13, 14, 15]);
        assert_eq!(quick.size_exponents(10..=15), vec![10, 11, 12]);
    }
}
