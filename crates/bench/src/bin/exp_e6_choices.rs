//! E6 — k-distinct-choices ablation.
//!
//! Thin wrapper over the `e6` registry entry: `rrb run e6` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e6");
}
