//! E6 — Are four choices necessary? (§5, Conclusions)
//!
//! The paper proves the result for 4 distinct choices, conjectures 3
//! suffice, and leaves 2 open. We run the *same* phase schedule with
//! k ∈ {1, 2, 3, 4} distinct choices per round and record success rate,
//! coverage round, and transmissions. The interesting regime is whether the
//! pull phase + active phase still rescue the k = 2, 3 variants.

use rrb_bench::{mean_of, mean_rounds_to_coverage, run_replicated, success_rate, ExpConfig};
use rrb_core::FourChoice;
use rrb_engine::{ChoicePolicy, SimConfig};
use rrb_graph::gen;
use rrb_stats::Table;

const EXPERIMENT: u64 = 6;

fn main() {
    let cfg = ExpConfig::from_args();
    let n: usize = if cfg.quick { 1 << 11 } else { 1 << 14 };
    let d = 8usize;

    println!(
        "E6: k-distinct-choices ablation of the paper's schedule at n = {n}, d = {d} \
         ({} seeds)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "k", "success", "mean coverage round", "tx/node", "pull tx share",
    ]);
    for k in 1..=4usize {
        let alg = FourChoice::builder(n, d)
            .choice_policy(ChoicePolicy::Distinct(k))
            .build();
        let reports = run_replicated(
            |rng| gen::random_regular(n, d, rng).expect("generation"),
            &alg,
            SimConfig::until_quiescent(),
            EXPERIMENT,
            k as u64,
            cfg.seeds,
        );
        table.row(vec![
            k.to_string(),
            format!("{:.2}", success_rate(&reports)),
            format!("{:.1}", mean_rounds_to_coverage(&reports)),
            format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
            format!(
                "{:.2}",
                mean_of(&reports, |r| {
                    if r.total_tx() == 0 {
                        0.0
                    } else {
                        r.pull_tx as f64 / r.total_tx() as f64
                    }
                })
            ),
        ]);
    }
    println!("{table}");
    println!(
        "paper: k = 4 proven; k = 3 conjectured sufficient; k = 2 open; k = 1 falls\n\
         back to the standard model (slower phase 1, weaker pull phase).\n\
         tx/node scales ~linearly in k through phase 2, so smaller k is cheaper\n\
         per round — the question is whether coverage survives."
    );
}
