//! E12 — four-choice on G(n,p).
//!
//! Thin wrapper over the `e12` registry entry: `rrb run e12` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e12");
}
