//! E12 — The four-choice model on G(n,p) (§1.1, citing Elsässer–Sauerwald
//! \[13\]): with expected degree p·n ≥ polylog(n), the multiple-choice
//! modification also achieves O(n·log log n) transmissions on Erdős–Rényi
//! graphs. The paper's contribution extends this to sparse *regular*
//! graphs; here we confirm the G(n,p) side with the same implementation.

use rrb_bench::{mean_of, mean_rounds_to_coverage, run_replicated, success_rate, ExpConfig};
use rrb_core::FourChoice;
use rrb_engine::SimConfig;
use rrb_graph::gen;
use rrb_stats::{fit_loglog2, Table};

const EXPERIMENT: u64 = 12;

fn main() {
    let cfg = ExpConfig::from_args();
    let exponents = cfg.size_exponents(10..=14);
    // Expected degree c·log2 n (the [13] regime needs ≥ log^δ n, δ > 2;
    // at these sizes log2 n-scale degrees behave identically).
    let c = 2.0f64;

    println!(
        "E12: four-choice on G(n, p) with expected degree {c}·log2 n ({} seeds)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "n", "E[deg]", "coverage", "success", "rounds", "tx/node",
    ]);
    let mut ns = Vec::new();
    let mut txs = Vec::new();
    for &e in &exponents {
        let n = 1usize << e;
        let expected_degree = c * (n as f64).log2();
        let p = expected_degree / (n as f64 - 1.0);
        let alg = FourChoice::for_graph(n, expected_degree.round() as usize);
        let reports = run_replicated(
            |rng| gen::gnp(n, p, rng).expect("generation"),
            &alg,
            SimConfig::until_quiescent(),
            EXPERIMENT,
            e as u64,
            cfg.seeds,
        );
        let tx = mean_of(&reports, |r| r.tx_per_node());
        table.row(vec![
            n.to_string(),
            format!("{expected_degree:.0}"),
            format!("{:.4}", mean_of(&reports, |r| r.coverage())),
            format!("{:.2}", success_rate(&reports)),
            format!("{:.1}", mean_rounds_to_coverage(&reports)),
            format!("{tx:.1}"),
        ]);
        ns.push(n as f64);
        txs.push(tx);
    }
    println!("{table}");
    if ns.len() >= 2 {
        let fit = fit_loglog2(&ns, &txs);
        println!(
            "tx/node ≈ {:.2}·loglog2(n) + {:.1} (r² = {:.3}) — [13]'s O(n log log n)\n\
             carries over; isolated G(n,p) vertices are impossible at this density.",
            fit.slope, fit.intercept, fit.r_squared
        );
    }
}
