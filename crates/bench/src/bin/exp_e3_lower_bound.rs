//! E3 — Theorem 1: every strictly oblivious distributed algorithm in the
//! *standard* phone call model that broadcasts in O(log n) rounds needs
//! Ω(n·log n / log d) transmissions on random d-regular graphs.
//!
//! We instantiate the strongest practical members of the strictly oblivious
//! class (age-budgeted push, pull, push&pull — with budgets tuned to just
//! reach coverage) and report tx normalised by n·log2(n)/log2(d) across d.
//! The lower bound predicts the normalised value stays bounded away from 0
//! for every member; the four-choice algorithm (different model!) drops far
//! below, showing the separation is a *model* property.

use rrb_baselines::{Budgeted, GossipMode};
use rrb_bench::{mean_of, run_replicated, success_rate, ExpConfig};
use rrb_core::FourChoice;
use rrb_engine::SimConfig;
use rrb_graph::gen;
use rrb_stats::Table;

const EXPERIMENT: u64 = 3;

fn main() {
    let cfg = ExpConfig::from_args();
    let n: usize = if cfg.quick { 1 << 11 } else { 1 << 13 };
    let degrees: &[usize] = if cfg.quick { &[8, 16] } else { &[4, 8, 16, 32, 64] };

    println!(
        "E3: lower-bound audit at n = {n} (mean over {} seeds); \
         normalisation N = n·log2(n)/log2(d)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "d", "protocol", "coverage", "rounds", "tx/node", "tx / N",
    ]);

    for (di, &d) in degrees.iter().enumerate() {
        let norm_per_node = (n as f64).log2() / (d as f64).log2();
        // Budget c·log2 n chosen as the smallest round budget that reaches
        // coverage reliably for the slowest member (pure pull needs the
        // most).
        let protos: Vec<(&str, Budgeted)> = vec![
            ("push", Budgeted::for_size(GossipMode::Push, n, 3.0)),
            ("pull", Budgeted::for_size(GossipMode::Pull, n, 4.0)),
            ("push&pull", Budgeted::for_size(GossipMode::PushPull, n, 2.5)),
        ];
        for (pi, (name, proto)) in protos.into_iter().enumerate() {
            let reports = run_replicated(
                |rng| gen::random_regular(n, d, rng).expect("generation"),
                &proto,
                SimConfig::until_quiescent(),
                EXPERIMENT,
                (di * 10 + pi) as u64,
                cfg.seeds,
            );
            let tx = mean_of(&reports, |r| r.tx_per_node());
            table.row(vec![
                d.to_string(),
                name.into(),
                format!("{:.3}", success_rate(&reports)),
                format!("{:.1}", mean_of(&reports, |r| {
                    r.full_coverage_at.unwrap_or(r.rounds) as f64
                })),
                format!("{tx:.1}"),
                format!("{:.3}", tx / norm_per_node),
            ]);
        }
        // The paper's algorithm for contrast (different model: 4 choices).
        let alg = FourChoice::for_graph(n, d);
        let reports = run_replicated(
            |rng| gen::random_regular(n, d, rng).expect("generation"),
            &alg,
            SimConfig::until_quiescent(),
            EXPERIMENT,
            (di * 10 + 9) as u64,
            cfg.seeds,
        );
        let tx = mean_of(&reports, |r| r.tx_per_node());
        table.row(vec![
            d.to_string(),
            "four-choice*".into(),
            format!("{:.3}", success_rate(&reports)),
            format!("{:.1}", mean_of(&reports, |r| {
                r.full_coverage_at.unwrap_or(r.rounds) as f64
            })),
            format!("{tx:.1}"),
            format!("{:.3}", tx / norm_per_node),
        ]);
    }
    println!("{table}");
    println!(
        "Theorem 1 predicts tx/N ≥ const > 0 for every one-choice oblivious protocol\n\
         (watch the column stay roughly flat-or-growing in d), while the starred\n\
         four-choice row — outside the standard model — sinks towards 0 as d and n grow."
    );
}
