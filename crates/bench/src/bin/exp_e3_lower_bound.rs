//! E3 — Theorem 1 lower-bound audit.
//!
//! Thin wrapper over the `e3` registry entry: `rrb run e3` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e3");
}
