//! E1 — four-choice broadcast runtime vs n (Theorems 2/3).
//!
//! Thin wrapper over the `e1` registry entry: `rrb run e1` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e1");
}
