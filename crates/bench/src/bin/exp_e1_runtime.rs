//! E1 — Theorems 2/3: the four-choice algorithm broadcasts in O(log n)
//! rounds on random d-regular graphs.
//!
//! Sweeps n = 2^10..2^15 and d ∈ {8, 16, 32}, measures rounds to full
//! coverage, and fits rounds = a·log2(n) + b. A good linear fit (r² close
//! to 1) with a size-independent slope certifies the logarithmic runtime.
//!
//! Seed replications fan out over the rayon pool (`--threads N` to bound
//! it); per-configuration wall-clock, rounds and transmissions are written
//! to `BENCH_engine.json` as the engine's perf trajectory (override the
//! path with `RRB_BENCH_JSON`).

use rrb_bench::{
    mean_rounds_to_coverage, run_replicated_timed, success_rate, BenchRecorder, ExpConfig,
};
use rrb_core::FourChoice;
use rrb_engine::SimConfig;
use rrb_graph::gen;
use rrb_stats::{fit_log2, Table};

const EXPERIMENT: u64 = 1;

fn main() {
    let cfg = ExpConfig::from_args();
    let exponents = cfg.size_exponents(10..=15);
    let degrees = [8usize, 16, 32];
    let mut recorder = BenchRecorder::new("e1_runtime", cfg.quick);

    println!("E1: four-choice broadcast runtime vs n (mean over {} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec!["d", "n", "rounds", "success", "wall ms", "schedule end"]);
    for (di, &d) in degrees.iter().enumerate() {
        let mut ns = Vec::new();
        let mut rounds = Vec::new();
        for &e in &exponents {
            let n = 1usize << e;
            let alg = FourChoice::for_graph(n, d);
            let (reports, wall_ms) = run_replicated_timed(
                |rng| gen::random_regular(n, d, rng).expect("generation"),
                &alg,
                SimConfig::until_quiescent(),
                EXPERIMENT,
                (di * 100 + e as usize) as u64,
                cfg.seeds,
            );
            recorder.record(format!("d{d}_n{n}"), n, cfg.seeds, wall_ms, &reports);
            let mean_rounds = mean_rounds_to_coverage(&reports);
            table.row(vec![
                d.to_string(),
                n.to_string(),
                format!("{mean_rounds:.1}"),
                format!("{:.2}", success_rate(&reports)),
                format!("{wall_ms:.1}"),
                alg.total_rounds().to_string(),
            ]);
            ns.push(n as f64);
            rounds.push(mean_rounds);
        }
        if ns.len() >= 2 {
            let fit = fit_log2(&ns, &rounds);
            println!(
                "d = {d}: rounds ≈ {:.2}·log2(n) + {:.2}   (r² = {:.3})",
                fit.slope, fit.intercept, fit.r_squared
            );
        }
    }
    println!("\n{table}");
    let json_path =
        std::env::var("RRB_BENCH_JSON").unwrap_or_else(|_| "BENCH_engine.json".into());
    match recorder.write(&json_path) {
        Ok(()) => println!("perf trajectory written to {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }
    println!(
        "paper: O(log n) rounds (Thm 2 for small d, Thm 3 for large d); the fits\n\
         above should be linear in log2 n with stable slope across d."
    );
}
