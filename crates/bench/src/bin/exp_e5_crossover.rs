//! E5 — Push vs pull crossover on complete graphs (§1 / Karp et al.):
//! "the pull model is inferior to the push model until roughly n/2 nodes
//! are informed, and then the pull model becomes more effective."
//!
//! We trace informed counts per round for pure push and pure pull from the
//! same start and report (a) rounds to reach n/2 and (b) rounds from n/2 to
//! full coverage. Push wins (a); pull wins (b) by an exponential margin
//! (O(log log n) vs Θ(log n) tail).

use rrb_bench::{replicate, ExpConfig};
use rrb_engine::protocols::{FloodPull, FloodPush};
use rrb_engine::{Protocol, SimConfig, Simulation};
use rrb_graph::{gen, NodeId};
use rrb_stats::{Summary, Table};

const EXPERIMENT: u64 = 5;

fn trace<P: Protocol + Clone + Sync>(
    n: usize,
    proto: P,
    config_ix: u64,
    seeds: u64,
) -> (Vec<f64>, Vec<f64>) {
    let per_seed = replicate(EXPERIMENT, config_ix, seeds, |_, rng| {
        let g = gen::complete(n);
        let report = Simulation::new(&g, proto.clone(), SimConfig::default().with_history())
            .run(NodeId::new(0), rng);
        let half_round = report
            .history
            .iter()
            .find(|r| r.informed >= n / 2)
            .map(|r| r.round)
            .unwrap_or(report.rounds);
        let full_round = report.full_coverage_at.unwrap_or(report.rounds);
        (half_round as f64, (full_round - half_round) as f64)
    });
    per_seed.into_iter().unzip()
}

fn main() {
    let cfg = ExpConfig::from_args();
    // K_n is dense (n²/2 edges); 2^12 keeps the CSR comfortably in memory.
    let sizes: Vec<usize> =
        if cfg.quick { vec![1 << 10] } else { vec![1 << 10, 1 << 11, 1 << 12] };

    println!("E5: push/pull crossover on complete graphs ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec![
        "n",
        "push: 0→n/2",
        "push: n/2→n",
        "pull: 0→n/2",
        "pull: n/2→n",
        "loglog2 n",
    ]);
    for (i, &n) in sizes.iter().enumerate() {
        let (push_half, push_tail) = trace(n, FloodPush::new(), i as u64 * 2, cfg.seeds);
        let (pull_half, pull_tail) =
            trace(n, FloodPull::new(), i as u64 * 2 + 1, cfg.seeds);
        let m = |v: &[f64]| Summary::from_slice(v).mean;
        table.row(vec![
            n.to_string(),
            format!("{:.1}", m(&push_half)),
            format!("{:.1}", m(&push_tail)),
            format!("{:.1}", m(&pull_half)),
            format!("{:.1}", m(&pull_tail)),
            format!("{:.1}", (n as f64).log2().log2()),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: push's tail (n/2→n) is Θ(log n); pull's tail collapses in\n\
         O(log log n) rounds (doubly exponential shrink), while pull's head is no\n\
         faster than push's — exactly the crossover at ~n/2 described in §1."
    );
}
