//! E5 — push/pull crossover on complete graphs.
//!
//! Thin wrapper over the `e5` registry entry: `rrb run e5` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e5");
}
