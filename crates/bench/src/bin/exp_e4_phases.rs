//! E4 — phase anatomy: Corollary 1 and Lemmas 1-3 milestones.
//!
//! Thin wrapper over the `e4` registry entry: `rrb run e4` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e4");
}
