//! E4 — Phase anatomy: the milestones of the paper's analysis hold at
//! finite n.
//!
//! * Corollary 1: after Phase 1 (⌈α log n⌉ rounds) at least n/8 nodes are
//!   informed.
//! * Lemmas 1–2: the informed set grows by a constant factor per Phase-1
//!   round.
//! * Lemma 3 / Corollary 2: Phase 2 shrinks the uninformed set by a
//!   constant factor per round, ending with O(n/log⁵ n) uninformed.
//! * Phase 3 (single pull step) informs every node with < 4 uninformed
//!   neighbours; Phase 4 mops up the rest.

use rrb_bench::{replicate, ExpConfig};
use rrb_core::FourChoice;
use rrb_engine::{SimConfig, Simulation};
use rrb_graph::{gen, NodeId};
use rrb_stats::{Summary, Table};

const EXPERIMENT: u64 = 4;

fn main() {
    let cfg = ExpConfig::from_args();
    let n: usize = if cfg.quick { 1 << 12 } else { 1 << 15 };
    let d = 8usize;
    let alg = FourChoice::builder(n, d).force_small_degree().build();
    let s = *alg.schedule();

    let per_seed = replicate(EXPERIMENT, 0, cfg.seeds, |_, rng| {
        let g = gen::random_regular(n, d, rng).expect("generation");
        let report = Simulation::new(&g, alg, SimConfig::until_quiescent().with_history())
            .run(NodeId::new(0), rng);
        let hist = &report.history;
        let at = |round: u32| -> usize {
            hist.iter().find(|r| r.round == round).map(|r| r.informed).unwrap_or(0)
        };

        // Mean growth factor of |I| over the early exponential stretch
        // (while fewer than n/8 informed).
        let mut factors = Vec::new();
        for w in hist.windows(2) {
            if w[1].informed < n / 8 && w[0].informed > 0 {
                factors.push(w[1].informed as f64 / w[0].informed as f64);
            }
        }
        let growth = (!factors.is_empty())
            .then(|| factors.iter().sum::<f64>() / factors.len() as f64);
        // Mean per-round shrink factor of |H| during Phase 2.
        let mut decays = Vec::new();
        for w in hist.windows(2) {
            if w[0].round > s.phase1_end()
                && w[1].round <= s.phase2_end()
                && n > w[0].informed
            {
                decays.push((n - w[1].informed) as f64 / (n - w[0].informed) as f64);
            }
        }
        let decay =
            (!decays.is_empty()).then(|| decays.iter().sum::<f64>() / decays.len() as f64);
        (
            at(s.phase1_end()) as f64,
            (n - at(s.phase2_end())) as f64,
            report.full_coverage_at.unwrap_or(report.rounds) as f64,
            growth,
            decay,
        )
    });
    let informed_p1: Vec<f64> = per_seed.iter().map(|r| r.0).collect();
    let uninformed_p2: Vec<f64> = per_seed.iter().map(|r| r.1).collect();
    let coverage_round: Vec<f64> = per_seed.iter().map(|r| r.2).collect();
    let p1_growth: Vec<f64> = per_seed.iter().filter_map(|r| r.3).collect();
    let p2_decay: Vec<f64> = per_seed.iter().filter_map(|r| r.4).collect();

    println!("E4: phase milestones at n = {n}, d = {d} ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec!["milestone", "measured (mean ± ci95)", "paper's claim"]);
    let fmt = |s: &Summary| format!("{:.1} ± {:.1}", s.mean, s.ci95());
    let s1 = Summary::from_slice(&informed_p1);
    table.row(vec![
        "informed after phase 1".into(),
        fmt(&s1),
        format!(">= n/8 = {}", n / 8),
    ]);
    let s2 = Summary::from_slice(&uninformed_p2);
    table.row(vec![
        "uninformed after phase 2".into(),
        fmt(&s2),
        format!("O(n/log^5 n) ≈ {:.1}", n as f64 / (n as f64).log2().powi(5)),
    ]);
    let s3 = Summary::from_slice(&p1_growth);
    table.row(vec![
        "phase-1 growth factor / round".into(),
        format!("{:.2} ± {:.2}", s3.mean, s3.ci95()),
        "> 2 (Lemma 1: |I+| doubles)".into(),
    ]);
    let s4 = Summary::from_slice(&p2_decay);
    table.row(vec![
        "phase-2 decay factor / round".into(),
        format!("{:.3} ± {:.3}", s4.mean, s4.ci95()),
        "< 1/c (Lemma 3: constant shrink)".into(),
    ]);
    let s5 = Summary::from_slice(&coverage_round);
    table.row(vec![
        "full coverage round".into(),
        fmt(&s5),
        format!("<= schedule end = {}", s.end()),
    ]);
    println!("{table}");

    let ok1 = s1.mean >= (n / 8) as f64;
    let ok2 = s4.mean < 1.0;
    println!(
        "verdict: Corollary 1 {}; Phase-2 contraction {}.",
        if ok1 { "HOLDS" } else { "VIOLATED" },
        if ok2 { "HOLDS" } else { "VIOLATED" }
    );
}
