//! E16 (extension) — §1.1 \[8\] (Doerr, Fouz, Friedrich): on preferential-
//! attachment graphs, push that *avoids the neighbour contacted in the
//! previous step* spreads rumours in sub-logarithmic time, beating
//! memoryless push. The avoidance memory is exactly the mechanism of the
//! paper's sequentialised model (footnote 2), so this experiment shows the
//! same machinery paying off on a different topology family.
//!
//! We compare plain push (memoryless), memory-1 push (avoid the last
//! choice, \[8\]'s protocol) and memory-3 push on PA graphs across sizes.

use rrb_bench::{mean_rounds_to_coverage, run_replicated, success_rate, ExpConfig};
use rrb_engine::{protocols::FloodPush, ChoicePolicy, SimConfig};
use rrb_graph::gen;
use rrb_stats::Table;

const EXPERIMENT: u64 = 16;

fn main() {
    let cfg = ExpConfig::from_args();
    let exponents = cfg.size_exponents(10..=14);
    let m = 4usize;

    println!(
        "E16: push with choice memory on preferential-attachment graphs (m = {m}, \
         {} seeds)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "n",
        "plain push rounds",
        "memory-1 rounds",
        "memory-3 rounds",
        "log2 n",
    ]);
    for &e in &exponents {
        let n = 1usize << e;
        let mut row = vec![n.to_string()];
        for (pi, policy) in [
            ChoicePolicy::STANDARD,
            ChoicePolicy::SequentialMemory { window: 1 },
            ChoicePolicy::SequentialMemory { window: 3 },
        ]
        .into_iter()
        .enumerate()
        {
            let proto = FloodPush::with_policy(policy);
            let reports = run_replicated(
                |rng| gen::preferential_attachment(n, m, rng).expect("generation"),
                &proto,
                SimConfig::default().with_max_rounds(10_000),
                EXPERIMENT,
                (e as usize * 10 + pi) as u64,
                cfg.seeds,
            );
            let ok = success_rate(&reports);
            row.push(format!(
                "{:.1}{}",
                mean_rounds_to_coverage(&reports),
                if ok < 1.0 { " (!)" } else { "" }
            ));
        }
        row.push(format!("{:.1}", (n as f64).log2()));
        table.row(row);
    }
    println!("{table}");
    println!(
        "expected ([8]): the memory variants beat plain push, and their advantage\n\
         grows with n (sub-logarithmic vs Θ(log n) spreading on PA graphs, where\n\
         memoryless push wastes calls bouncing back to the hub it came from)."
    );
}
