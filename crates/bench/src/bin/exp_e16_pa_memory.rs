//! E16 — push with choice memory on PA graphs.
//!
//! Thin wrapper over the `e16` registry entry: `rrb run e16` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e16");
}
