//! E2 — per-node transmissions: four-choice vs the classics.
//!
//! Thin wrapper over the `e2` registry entry: `rrb run e2` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e2");
}
