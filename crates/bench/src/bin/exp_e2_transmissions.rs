//! E2 — Theorems 2/3 vs the classics: per-node transmissions of the
//! four-choice algorithm grow like O(log log n), while budgeted push (and
//! push&pull) in the standard model grow like Θ(log n).
//!
//! For each protocol we fit tx/node against both log2(n) and
//! log2(log2(n)); the winning model (higher r², sane slope) identifies the
//! growth law. The headline of the paper is the separation between the two
//! columns.

use rrb_baselines::{Budgeted, GossipMode, MedianCounter};
use rrb_bench::{mean_of, run_replicated, success_rate, ExpConfig};
use rrb_core::FourChoice;
use rrb_engine::{Protocol, RunReport, SimConfig};
use rrb_graph::gen;
use rrb_stats::{fit_log2, fit_loglog2, Table};

const EXPERIMENT: u64 = 2;
const D: usize = 8;

fn sweep<P: Protocol + Clone + Sync>(
    cfg: &ExpConfig,
    make: impl Fn(usize) -> P,
    config_base: u64,
    exponents: &[u32],
) -> (Vec<f64>, Vec<f64>, Vec<Vec<RunReport>>) {
    let mut ns = Vec::new();
    let mut tx = Vec::new();
    let mut all = Vec::new();
    for &e in exponents {
        let n = 1usize << e;
        let reports = run_replicated(
            |rng| gen::random_regular(n, D, rng).expect("generation"),
            &make(n),
            SimConfig::until_quiescent(),
            EXPERIMENT,
            config_base + e as u64,
            cfg.seeds,
        );
        ns.push(n as f64);
        tx.push(mean_of(&reports, |r| r.tx_per_node()));
        all.push(reports);
    }
    (ns, tx, all)
}

fn main() {
    let cfg = ExpConfig::from_args();
    let exponents = cfg.size_exponents(10..=15);

    println!(
        "E2: transmissions per node vs n on random {D}-regular graphs (mean over {} seeds)\n",
        cfg.seeds
    );

    let (ns, four_tx, four_reports) =
        sweep(&cfg, |n| FourChoice::for_graph(n, D), 100, &exponents);
    let (_, push_tx, push_reports) = sweep(
        &cfg,
        |n| Budgeted::for_size(GossipMode::Push, n, 3.0),
        200,
        &exponents,
    );
    let (_, pp_tx, _) = sweep(
        &cfg,
        |n| Budgeted::for_size(GossipMode::PushPull, n, 3.0),
        300,
        &exponents,
    );
    let (_, mc_tx, _) = sweep(&cfg, MedianCounter::for_size, 400, &exponents);

    let mut table =
        Table::new(vec!["n", "four-choice", "push", "push&pull", "median-counter"]);
    for i in 0..ns.len() {
        table.row(vec![
            format!("{}", ns[i] as u64),
            format!("{:.1}", four_tx[i]),
            format!("{:.1}", push_tx[i]),
            format!("{:.1}", pp_tx[i]),
            format!("{:.1}", mc_tx[i]),
        ]);
    }
    println!("{table}");

    for (name, ys) in [
        ("four-choice", &four_tx),
        ("push", &push_tx),
        ("push&pull", &pp_tx),
        ("median-counter", &mc_tx),
    ] {
        if ns.len() >= 2 {
            let log_fit = fit_log2(&ns, ys);
            let loglog_fit = fit_loglog2(&ns, ys);
            println!(
                "{name:>15}: tx/node ≈ {:.2}·log2 n + {:.1} (r²={:.3})  |  ≈ {:.2}·loglog2 n + {:.1} (r²={:.3})",
                log_fit.slope,
                log_fit.intercept,
                log_fit.r_squared,
                loglog_fit.slope,
                loglog_fit.intercept,
                loglog_fit.r_squared
            );
        }
    }

    let four_ok = four_reports.iter().flatten().cloned().collect::<Vec<_>>();
    let push_ok = push_reports.iter().flatten().cloned().collect::<Vec<_>>();
    println!(
        "\ncoverage: four-choice {:.3}, push {:.3}",
        success_rate(&four_ok),
        success_rate(&push_ok)
    );
    println!(
        "paper: four-choice is O(n log log n) total (flat-ish loglog slope, near-zero\n\
         log2 slope), push is Θ(n log n) (log2 slope ≈ its budget constant)."
    );
}
