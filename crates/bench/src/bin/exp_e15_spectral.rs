//! E15 — spectral audit of the generator.
//!
//! Thin wrapper over the `e15` registry entry: `rrb run e15` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e15");
}
