//! E15 — Structural premises of the lower-bound proof (§2): random
//! d-regular graphs have second eigenvalue λ ≤ 2√(d−1)·(1+o(1)) (Friedman
//! \[18\]) and therefore obey the Expander Mixing Lemma \[23\], which the proof
//! of Theorem 1 uses to bound |E(I(t), H(t))| and the inner edges of H(t).
//!
//! We measure λ on sampled graphs (pairing model, repaired simple) and
//! audit the mixing lemma on random cuts.

use rrb_bench::{replicate, ExpConfig};
use rrb_graph::{gen, spectral};
use rrb_stats::{Summary, Table};

const EXPERIMENT: u64 = 15;

fn main() {
    let cfg = ExpConfig::from_args();
    let n: usize = if cfg.quick { 1 << 9 } else { 1 << 11 };
    let degrees: &[usize] = if cfg.quick { &[8, 16] } else { &[4, 8, 16, 32] };

    println!("E15: spectral audit of the generator at n = {n} ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec![
        "d",
        "λ (measured)",
        "2·sqrt(d-1)",
        "ratio",
        "max mixing dev",
        "mixing ok",
    ]);
    for (di, &d) in degrees.iter().enumerate() {
        let per_seed = replicate(EXPERIMENT, di as u64, cfg.seeds, |_, rng| {
            let g = gen::random_regular(n, d, rng).expect("generation");
            let l2 = spectral::second_eigenvalue(&g, 600, rng).expect("power iteration");
            let samples = spectral::expander_mixing_deviation(&g, 24, rng).expect("mixing");
            let mut worst: f64 = 0.0;
            let mut ok = 0usize;
            let total = samples.len();
            for s in samples {
                worst = worst.max(s.normalized_deviation);
                if s.normalized_deviation <= l2.value * 1.02 + 1e-9 {
                    ok += 1;
                }
            }
            (l2.value, worst, ok, total)
        });
        let lambdas: Vec<f64> = per_seed.iter().map(|r| r.0).collect();
        let max_devs: Vec<f64> = per_seed.iter().map(|r| r.1).collect();
        let mixing_ok: usize = per_seed.iter().map(|r| r.2).sum();
        let mixing_total: usize = per_seed.iter().map(|r| r.3).sum();
        let ls = Summary::from_slice(&lambdas);
        let ramanujan = 2.0 * ((d - 1) as f64).sqrt();
        table.row(vec![
            d.to_string(),
            format!("{:.3} ± {:.3}", ls.mean, ls.ci95()),
            format!("{ramanujan:.3}"),
            format!("{:.3}", ls.mean / ramanujan),
            format!("{:.3}", Summary::from_slice(&max_devs).max),
            format!("{mixing_ok}/{mixing_total}"),
        ]);
    }
    println!("{table}");
    println!(
        "expected: ratio ≈ 1 (+o(1)) — near-Ramanujan, per Friedman [18]; every\n\
         sampled cut's normalised deviation |E(S,S̄)−d|S||S̄|/n| / √(|S||S̄|) stays\n\
         below the measured λ, as the Expander Mixing Lemma demands."
    );
}
