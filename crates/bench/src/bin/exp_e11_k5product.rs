//! E11 — The `G □ K5` counterexample (§5, Conclusions): "on graphs with
//! similar expansion and connectivity properties … the models presented
//! above may not lead to any notable improvement. An example for such a
//! graph is the Cartesian product of a d-regular random graph with a K5."
//!
//! Intuition: each node has 4 clique-mates (its K5 layer) that rapidly know
//! everything it knows, so a 4-choice call burns a large fraction of its
//! choices on already-informed clones; the *effective* choice diversity
//! collapses towards the 1-choice model.
//!
//! At the default schedule the effect hides behind slack, so we probe at
//! **threshold α** (the smallest schedules from ablation E17): where the
//! genuine random regular graph still completes, the K5 product should
//! fail or slow down. We also report the phase-1 growth factor — the
//! quantity Lemma 1 bounds — on both topologies.

use rrb_bench::{replicate, ExpConfig};
use rrb_core::FourChoice;
use rrb_engine::{SimConfig, Simulation};
use rrb_graph::{gen, Graph, NodeId};
use rrb_stats::{Summary, Table};

const EXPERIMENT: u64 = 11;

fn growth_factor(history: &[rrb_engine::RoundRecord], n: usize) -> f64 {
    let mut factors = Vec::new();
    for w in history.windows(2) {
        if w[1].informed < n / 8 && w[0].informed > 0 {
            factors.push(w[1].informed as f64 / w[0].informed as f64);
        }
    }
    if factors.is_empty() {
        f64::NAN
    } else {
        factors.iter().sum::<f64>() / factors.len() as f64
    }
}

fn main() {
    let cfg = ExpConfig::from_args();
    let base_n: usize = if cfg.quick { 1 << 9 } else { 1 << 11 };
    let d = 8usize;
    let product_n = base_n * 5;
    let product_d = d + 4;
    let alphas = [0.35, 0.5, 0.75, 1.0];

    println!(
        "E11: four-choice at threshold α — genuine G(n,{product_d}) vs G(n/5,{d}) □ K5 \
         (both n = {product_n}, {} seeds)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "α", "topology", "success", "coverage", "rounds", "phase-1 growth",
    ]);

    type GraphGen<'a> = &'a (dyn Fn(&mut rand::rngs::SmallRng) -> Graph + Sync);
    let regular: GraphGen = &|rng| {
        gen::random_regular(product_n, product_d, rng).expect("generation")
    };
    let product: GraphGen = &|rng| {
        let base = gen::random_regular(base_n, d, rng).expect("generation");
        gen::cartesian_product(&base, &gen::complete(5))
    };

    for (ai, &alpha) in alphas.iter().enumerate() {
        for (ti, (label, make)) in
            [("G(n, 12)", regular), ("G(n/5, 8) □ K5", product)].into_iter().enumerate()
        {
            let alg = FourChoice::builder(product_n, product_d).alpha(alpha).build();
            let per_seed = replicate(EXPERIMENT, (ai * 2 + ti) as u64, cfg.seeds, |_, rng| {
                let g = make(rng);
                let report = Simulation::new(
                    &g,
                    alg,
                    SimConfig::until_quiescent().with_history(),
                )
                .run(NodeId::new(0), rng);
                (
                    if report.all_informed() { 1.0 } else { 0.0 },
                    report.coverage(),
                    report.full_coverage_at.unwrap_or(report.rounds) as f64,
                    growth_factor(&report.history, product_n),
                )
            });
            let successes: Vec<f64> = per_seed.iter().map(|r| r.0).collect();
            let coverages: Vec<f64> = per_seed.iter().map(|r| r.1).collect();
            let rounds: Vec<f64> = per_seed.iter().map(|r| r.2).collect();
            let growths: Vec<f64> =
                per_seed.iter().map(|r| r.3).filter(|g| g.is_finite()).collect();
            table.row(vec![
                format!("{alpha:.2}"),
                label.into(),
                format!("{:.2}", Summary::from_slice(&successes).mean),
                format!("{:.4}", Summary::from_slice(&coverages).mean),
                format!("{:.1}", Summary::from_slice(&rounds).mean),
                format!("{:.2}", Summary::from_slice(&growths).mean),
            ]);
        }
    }
    println!("{table}");
    println!(
        "expected: on the genuine random regular graph the informed set grows\n\
         faster in phase 1 (choices rarely collide with clones) and tight schedules\n\
         still succeed; the K5 product needs a visibly larger α / more rounds —\n\
         §5's point that four choices exploit topological randomness, which the\n\
         clique layers destroy."
    );
}
