//! E11 — the G x K5 counterexample.
//!
//! Thin wrapper over the `e11` registry entry: `rrb run e11` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e11");
}
