//! E17 (ablation) — the schedule constant α. The theorems require α
//! "sufficiently large"; every phase length is α-proportional, so α trades
//! rounds and transmissions against success margin. This ablation locates
//! the practical threshold: below it Phase 1 cannot reach its Corollary-1
//! milestone and coverage collapses; above it cost grows linearly in α
//! (the Phase-2 term 4·α·log log n dominates).

use rrb_bench::{mean_of, mean_rounds_to_coverage, run_replicated, success_rate, ExpConfig};
use rrb_core::FourChoice;
use rrb_engine::SimConfig;
use rrb_graph::gen;
use rrb_stats::Table;

const EXPERIMENT: u64 = 17;

fn main() {
    let cfg = ExpConfig::from_args();
    let n: usize = if cfg.quick { 1 << 11 } else { 1 << 13 };
    let d = 8usize;
    let alphas = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];

    println!("E17: α ablation of the four-choice schedule at n = {n}, d = {d} ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec![
        "α", "schedule end", "success", "coverage", "rounds", "tx/node",
    ]);
    for (i, &alpha) in alphas.iter().enumerate() {
        let alg = FourChoice::builder(n, d).alpha(alpha).build();
        let reports = run_replicated(
            |rng| gen::random_regular(n, d, rng).expect("generation"),
            &alg,
            SimConfig::until_quiescent(),
            EXPERIMENT,
            i as u64,
            cfg.seeds,
        );
        table.row(vec![
            format!("{alpha:.2}"),
            alg.total_rounds().to_string(),
            format!("{:.2}", success_rate(&reports)),
            format!("{:.4}", mean_of(&reports, |r| r.coverage())),
            format!("{:.1}", mean_rounds_to_coverage(&reports)),
            format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
        ]);
    }
    println!("{table}");
    println!(
        "expected: a sharp success threshold in α (Phase 1 must inform Θ(n) nodes),\n\
         then a linear cost ramp — the constant the theory hides inside\n\
         'α sufficiently large' is small in practice (≈ 1 at these sizes)."
    );
}
