//! E17 — alpha ablation of the schedule.
//!
//! Thin wrapper over the `e17` registry entry: `rrb run e17` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e17");
}
