//! E7 — Footnote 2: the sequentialised model (one choice per step, avoiding
//! the last three choices) emulates the four-choice model: 4 sequential
//! steps = 1 parallel step, same transmission asymptotics.
//!
//! We run both variants on the same graphs and compare rounds (expect a 4×
//! stretch) and transmissions per node (expect parity within noise).

use rrb_bench::{mean_of, mean_rounds_to_coverage, run_replicated, success_rate, ExpConfig};
use rrb_core::{FourChoice, SequentialFourChoice};
use rrb_engine::SimConfig;
use rrb_graph::gen;
use rrb_stats::Table;

const EXPERIMENT: u64 = 7;

fn main() {
    let cfg = ExpConfig::from_args();
    let exponents = cfg.size_exponents(10..=13);
    let d = 8usize;

    println!("E7: parallel four-choice vs sequential memory-3 ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec![
        "n",
        "par rounds",
        "seq rounds",
        "ratio",
        "par tx/node",
        "seq tx/node",
        "par ok",
        "seq ok",
    ]);
    for &e in &exponents {
        let n = 1usize << e;
        let par = FourChoice::for_graph(n, d);
        let seq = SequentialFourChoice::from_parallel(&par);
        let par_reports = run_replicated(
            |rng| gen::random_regular(n, d, rng).expect("generation"),
            &par,
            SimConfig::until_quiescent(),
            EXPERIMENT,
            e as u64 * 2,
            cfg.seeds,
        );
        let seq_reports = run_replicated(
            |rng| gen::random_regular(n, d, rng).expect("generation"),
            &seq,
            SimConfig::until_quiescent(),
            EXPERIMENT,
            e as u64 * 2 + 1,
            cfg.seeds,
        );
        let pr = mean_rounds_to_coverage(&par_reports);
        let sr = mean_rounds_to_coverage(&seq_reports);
        table.row(vec![
            n.to_string(),
            format!("{pr:.1}"),
            format!("{sr:.1}"),
            format!("{:.2}", sr / pr),
            format!("{:.1}", mean_of(&par_reports, |r| r.tx_per_node())),
            format!("{:.1}", mean_of(&seq_reports, |r| r.tx_per_node())),
            format!("{:.2}", success_rate(&par_reports)),
            format!("{:.2}", success_rate(&seq_reports)),
        ]);
    }
    println!("{table}");
    println!(
        "expected: rounds ratio ≈ 4 (each parallel step = 4 sequential steps),\n\
         tx/node within a small constant of each other, both at full coverage."
    );
}
