//! E7 — parallel four-choice vs sequential memory-3.
//!
//! Thin wrapper over the `e7` registry entry: `rrb run e7` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e7");
}
