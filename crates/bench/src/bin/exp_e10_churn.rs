//! E10 — Robustness to membership churn (abstract: "robust against limited
//! changes in the size of the network").
//!
//! Peers join and leave *during* the broadcast at increasing rates; the
//! overlay preserves near-regularity and is re-mixed by flip rewiring.
//! Coverage is measured over the nodes alive at the end. Nodes that join
//! after the pull phase can miss a rumour, so coverage of survivors decays
//! gracefully with the churn rate rather than collapsing.

use rand::Rng;
use rrb_bench::{replicate, ExpConfig};
use rrb_core::FourChoice;
use rrb_engine::{SimConfig, SimState, Topology};
use rrb_graph::NodeId;
use rrb_p2p::{ChurnProcess, Overlay};
use rrb_stats::{Summary, Table};

const EXPERIMENT: u64 = 10;

fn main() {
    let cfg = ExpConfig::from_args();
    let n: usize = if cfg.quick { 1 << 11 } else { 1 << 13 };
    let d = 8usize;
    let rates = [0.0f64, 1.0, 4.0, 16.0, 64.0];

    println!("E10: four-choice broadcast under churn at n = {n}, d = {d} ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec![
        "joins+leaves/round",
        "survivor coverage",
        "full success",
        "rounds run",
        "tx/node",
    ]);
    for (i, &rate) in rates.iter().enumerate() {
        // Each seed runs its own churn trajectory on the rayon pool; the
        // per-seed RNG stream makes the outcome thread-count invariant.
        let per_seed = replicate(EXPERIMENT, i as u64, cfg.seeds, |_, rng| {
            let mut overlay = Overlay::random(n, d, rng).expect("overlay");
            let alg = FourChoice::for_graph(n, d);
            let mut churn = ChurnProcess::symmetric(rate, n / 2);
            let config = SimConfig::until_quiescent();
            let origin = {
                let i = rng.gen_range(0..Topology::node_count(&overlay));
                NodeId::new(i)
            };
            let mut sim = SimState::new(&alg, Topology::node_count(&overlay), origin);
            while !sim.finished(&overlay, &alg, config) {
                sim.step(&overlay, &alg, config, rng);
                churn.step(&mut overlay, rng).expect("churn");
                overlay.rewire(rate.ceil() as usize * 2, rng);
            }
            let report = sim.into_report(&overlay, config);
            (
                report.coverage(),
                if report.all_informed() { 1.0 } else { 0.0 },
                report.rounds as f64,
                report.tx_per_node(),
            )
        });
        let coverages: Vec<f64> = per_seed.iter().map(|r| r.0).collect();
        let successes: Vec<f64> = per_seed.iter().map(|r| r.1).collect();
        let rounds_v: Vec<f64> = per_seed.iter().map(|r| r.2).collect();
        let txs: Vec<f64> = per_seed.iter().map(|r| r.3).collect();
        table.row(vec![
            format!("{rate:.0}"),
            format!("{:.4}", Summary::from_slice(&coverages).mean),
            format!("{:.2}", Summary::from_slice(&successes).mean),
            format!("{:.1}", Summary::from_slice(&rounds_v).mean),
            format!("{:.1}", Summary::from_slice(&txs).mean),
        ]);
    }
    println!("{table}");
    println!(
        "expected: coverage ≈ 1 at limited churn; graceful decay as churn grows\n\
         (late joiners can miss the pull step); cost stays O(log log n)/node."
    );
}
