//! E10 — robustness to membership churn.
//!
//! Thin wrapper over the `e10` registry entry: `rrb run e10` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e10");
}
