//! E9 — rough size estimates suffice.
//!
//! Thin wrapper over the `e9` registry entry: `rrb run e9` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e9");
}
