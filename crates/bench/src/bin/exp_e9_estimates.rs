//! E9 — Rough size estimates suffice (§1.2: nodes know d and "an estimate
//! of n which is accurate to within a constant factor").
//!
//! The schedule is computed from n̂ = factor·n for factor ∈ {1/4 .. 4};
//! the algorithm should keep full coverage across the whole band (with cost
//! scaling in log n̂), because every phase length is Θ(log n) with
//! α absorbing the constant.

use rrb_bench::{mean_of, mean_rounds_to_coverage, run_replicated, success_rate, ExpConfig};
use rrb_core::FourChoice;
use rrb_engine::SimConfig;
use rrb_graph::gen;
use rrb_stats::Table;

const EXPERIMENT: u64 = 9;

fn main() {
    let cfg = ExpConfig::from_args();
    let n: usize = if cfg.quick { 1 << 11 } else { 1 << 13 };
    let d = 8usize;
    let factors: [(f64, &str); 5] =
        [(0.25, "n/4"), (0.5, "n/2"), (1.0, "n"), (2.0, "2n"), (4.0, "4n")];

    println!(
        "E9: four-choice with misestimated network size at true n = {n}, d = {d} \
         ({} seeds)\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "estimate", "schedule end", "coverage", "success", "rounds", "tx/node",
    ]);
    for (i, &(f, label)) in factors.iter().enumerate() {
        let n_est = ((n as f64) * f) as usize;
        let alg = FourChoice::for_graph(n_est, d);
        let reports = run_replicated(
            |rng| gen::random_regular(n, d, rng).expect("generation"),
            &alg,
            SimConfig::until_quiescent(),
            EXPERIMENT,
            i as u64,
            cfg.seeds,
        );
        table.row(vec![
            label.into(),
            alg.total_rounds().to_string(),
            format!("{:.4}", mean_of(&reports, |r| r.coverage())),
            format!("{:.2}", success_rate(&reports)),
            format!("{:.1}", mean_rounds_to_coverage(&reports)),
            format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
        ]);
    }
    println!("{table}");
    println!(
        "expected: overestimates only lengthen phases (more margin, slightly more\n\
         tx); constant-factor underestimates still cover thanks to the pull and\n\
         active phases — matching §1.2's 'estimate within a constant factor'."
    );
}
