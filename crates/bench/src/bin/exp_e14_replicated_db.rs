//! E14 — replicated-database maintenance over gossip.
//!
//! Thin wrapper over the `e14` registry entry: `rrb run e14` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e14");
}
