//! E14 — Replicated-database maintenance (§1, after Demers et al. \[7\]):
//! many concurrent updates propagate by gossip; the per-update per-node
//! transmission cost is the maintenance bill, and concurrent rumours
//! **combine** on shared channels, amortising connection cost — the very
//! motivation of the phone call model.
//!
//! Sweeps the update-stream rate and compares the four-choice engine
//! against budgeted push, reporting convergence, latency, tx/update/node
//! and combining savings.

use rrb_baselines::{Budgeted, GossipMode};
use rrb_bench::{replicate, ExpConfig};
use rrb_core::FourChoice;
use rrb_engine::{Protocol, SimConfig};
use rrb_graph::gen;
use rrb_p2p::ReplicatedDb;
use rrb_stats::{Summary, Table};

const EXPERIMENT: u64 = 14;

fn run_engine<P: Protocol + Clone + Sync>(
    name: &str,
    proto: P,
    updates: usize,
    n: usize,
    d: usize,
    cfg: &ExpConfig,
    cfg_ix: u64,
) -> Vec<String> {
    let per_seed = replicate(EXPERIMENT, cfg_ix, cfg.seeds, |_, rng| {
        let g = gen::random_regular(n, d, rng).expect("generation");
        let mut db = ReplicatedDb::new(proto.clone(), SimConfig::until_quiescent());
        db.push_random_updates(&g, updates, 8, 32, rng);
        let report = db.run(&g, rng);
        (
            if report.converged { 1.0 } else { 0.0 },
            report.mean_latency(),
            report.tx_per_update_per_node(n),
            report.combining_savings(),
        )
    });
    let conv: Vec<f64> = per_seed.iter().map(|r| r.0).collect();
    let lat: Vec<f64> = per_seed.iter().filter_map(|r| r.1).collect();
    let cost: Vec<f64> = per_seed.iter().map(|r| r.2).collect();
    let savings: Vec<f64> = per_seed.iter().map(|r| r.3).collect();
    vec![
        updates.to_string(),
        name.into(),
        format!("{:.2}", Summary::from_slice(&conv).mean),
        format!("{:.1}", Summary::from_slice(&lat).mean),
        format!("{:.2}", Summary::from_slice(&cost).mean),
        format!("{:.1}%", Summary::from_slice(&savings).mean * 100.0),
    ]
}

fn main() {
    let cfg = ExpConfig::from_args();
    let n: usize = if cfg.quick { 1 << 9 } else { 1 << 11 };
    let d = 8usize;
    let streams: &[usize] = if cfg.quick { &[4, 16] } else { &[1, 4, 16, 64] };

    println!(
        "E14: replicated DB over gossip at n = {n}, d = {d} ({} seeds); updates\n\
         issued over the first 8 rounds\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "updates",
        "engine",
        "converged",
        "mean latency",
        "tx/update/node",
        "combining savings",
    ]);
    for (i, &u) in streams.iter().enumerate() {
        table.row(run_engine(
            "four-choice",
            FourChoice::for_graph(n, d),
            u,
            n,
            d,
            &cfg,
            i as u64 * 2,
        ));
        table.row(run_engine(
            "push (budget)",
            Budgeted::for_size(GossipMode::Push, n, 3.0),
            u,
            n,
            d,
            &cfg,
            i as u64 * 2 + 1,
        ));
    }
    println!("{table}");
    println!(
        "expected: both engines converge; four-choice pays O(log log n) per update\n\
         per node vs push's Θ(log n); combining savings grow with the stream rate\n\
         (more rumours share each channel), vindicating the model's amortisation\n\
         argument (§1)."
    );
}
