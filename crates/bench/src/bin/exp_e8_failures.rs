//! E8 — Robustness to communication failures (abstract / §1: "our algorithm
//! efficiently handles limited communication failures").
//!
//! Sweeps channel-failure and transmission-failure probabilities and
//! records coverage, rounds and transmissions of the unmodified four-choice
//! algorithm. Limited failure rates should degrade cost gracefully without
//! destroying coverage; as a tuning companion we also show that raising α
//! restores coverage under heavier failures.

use rrb_bench::{mean_of, mean_rounds_to_coverage, run_replicated, success_rate, ExpConfig};
use rrb_core::FourChoice;
use rrb_engine::{FailureModel, SimConfig};
use rrb_graph::gen;
use rrb_stats::Table;

const EXPERIMENT: u64 = 8;

fn main() {
    let cfg = ExpConfig::from_args();
    let n: usize = if cfg.quick { 1 << 11 } else { 1 << 13 };
    let d = 8usize;
    let rates = [0.0, 0.05, 0.1, 0.2, 0.3];

    println!("E8: four-choice under failure injection at n = {n}, d = {d} ({} seeds)\n", cfg.seeds);

    for (label, mk, alpha) in [
        ("channel failures, α = 1.5", FailureModel::channels as fn(f64) -> FailureModel, 1.5),
        ("transmission failures, α = 1.5", FailureModel::transmissions, 1.5),
        ("channel failures, α = 2.5", FailureModel::channels, 2.5),
    ] {
        let mut table = Table::new(vec!["p", "coverage", "success", "rounds", "tx/node"]);
        for (i, &p) in rates.iter().enumerate() {
            let failures = if p == 0.0 { FailureModel::NONE } else { mk(p) };
            let alg = FourChoice::builder(n, d).alpha(alpha).build();
            let reports = run_replicated(
                |rng| gen::random_regular(n, d, rng).expect("generation"),
                &alg,
                SimConfig::until_quiescent().with_failures(failures),
                EXPERIMENT,
                (alpha * 100.0) as u64 + i as u64,
                cfg.seeds,
            );
            table.row(vec![
                format!("{p:.2}"),
                format!("{:.4}", mean_of(&reports, |r| r.coverage())),
                format!("{:.2}", success_rate(&reports)),
                format!("{:.1}", mean_rounds_to_coverage(&reports)),
                format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
            ]);
        }
        println!("{label}:\n{table}");
    }
    println!(
        "expected: coverage stays ≈ 1 for limited failure rates; cost rises mildly;\n\
         under heavier failures a larger α (longer phases) restores full coverage —\n\
         the paper's \"limited communication failures\" robustness."
    );
}
