//! E8 — robustness to communication failures.
//!
//! Thin wrapper over the `e8` registry entry: `rrb run e8` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e8");
}
