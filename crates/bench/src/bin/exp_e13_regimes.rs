//! E13 — The degree-regime split (§4.3): Algorithm 1 (phases 3–4: one pull
//! step + active push) targets δ ≤ d ≤ δ·log log n; Algorithm 2 (a long
//! pull phase) targets δ·log log n ≤ d ≤ δ·log n.
//!
//! We run *both* variants across a degree ladder spanning the boundary and
//! compare success, rounds and transmissions — showing each variant is
//! sound in its own regime and what the auto-selector picks.

use rrb_bench::{mean_of, mean_rounds_to_coverage, run_replicated, success_rate, ExpConfig};
use rrb_core::{AlgorithmVariant, DegreeRegime, FourChoice};
use rrb_engine::SimConfig;
use rrb_graph::gen;
use rrb_stats::Table;

const EXPERIMENT: u64 = 13;

fn main() {
    let cfg = ExpConfig::from_args();
    let n: usize = if cfg.quick { 1 << 11 } else { 1 << 14 };
    let degrees: &[usize] = if cfg.quick { &[4, 8, 16] } else { &[4, 6, 8, 12, 16, 24, 32] };

    let auto = DegreeRegime::default();
    println!(
        "E13: Algorithm 1 vs Algorithm 2 across the degree ladder at n = {n} \
         ({} seeds); auto-threshold δ·loglog2(n) with δ = 3\n",
        cfg.seeds
    );
    let mut table = Table::new(vec![
        "d", "auto picks", "variant", "success", "rounds", "tx/node",
    ]);
    for (di, &d) in degrees.iter().enumerate() {
        let auto_pick = match auto.resolve(n, d) {
            AlgorithmVariant::SmallDegree => "Alg 1",
            AlgorithmVariant::LargeDegree => "Alg 2",
        };
        for (vi, (variant, label)) in [
            (DegreeRegime::ForceSmall, "Alg 1 (4 phases)"),
            (DegreeRegime::ForceLarge, "Alg 2 (long pull)"),
        ]
        .into_iter()
        .enumerate()
        {
            let alg = FourChoice::builder(n, d).regime(variant).build();
            let reports = run_replicated(
                |rng| gen::random_regular(n, d, rng).expect("generation"),
                &alg,
                SimConfig::until_quiescent(),
                EXPERIMENT,
                (di * 2 + vi) as u64,
                cfg.seeds,
            );
            table.row(vec![
                d.to_string(),
                auto_pick.into(),
                label.into(),
                format!("{:.2}", success_rate(&reports)),
                format!("{:.1}", mean_rounds_to_coverage(&reports)),
                format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
            ]);
        }
    }
    println!("{table}");
    println!(
        "expected: both variants succeed across the ladder at these sizes (the\n\
         regimes matter for the *proofs*); Alg 2's long pull phase is cheaper at\n\
         large d (pull tx land mostly on the few uninformed), while Alg 1's single\n\
         pull step + active push is tailored to small degrees."
    );
}
