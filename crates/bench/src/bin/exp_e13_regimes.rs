//! E13 — Algorithm 1 vs Algorithm 2 degree regimes.
//!
//! Thin wrapper over the `e13` registry entry: `rrb run e13` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e13");
}
