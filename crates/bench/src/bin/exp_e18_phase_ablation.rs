//! E18 (ablation) — why the algorithm is built the way it is. Two design
//! choices carry the whole O(n log log n) bound:
//!
//! 1. **Phase 1 pushes only once per node** (in the step after first
//!    reception). Replacing it with "every informed node pushes every
//!    round" re-creates the classic push protocol's Θ(n·log n) bill while
//!    winning almost nothing in rounds.
//! 2. **The pull phase (+ phase 4) finishes the job.** Deleting phases 3–4
//!    and extending phase-2 pushing to the same total length burns ~4
//!    transmissions per node per extra round; the pull step informs the
//!    leftover O(n/log⁵ n) stragglers at a cost proportional to the number
//!    of *callers served*, not to n.
//!
//! The ablated variants are implemented against the public engine API,
//! which doubles as an extensibility demonstration.

use rrb_bench::{mean_of, mean_rounds_to_coverage, run_replicated, success_rate, ExpConfig};
use rrb_core::{FourChoice, Phase, PhaseSchedule};
use rrb_engine::{
    ChoicePolicy, NodeView, Observation, Plan, Protocol, Round, RumorMeta, SimConfig,
};
use rrb_graph::gen;
use rrb_stats::Table;

const EXPERIMENT: u64 = 18;

/// The paper's schedule with ablatable phase rules.
#[derive(Debug, Clone, Copy)]
struct Ablated {
    schedule: PhaseSchedule,
    /// Phase 1: push every round while informed (instead of once).
    phase1_always_push: bool,
    /// Phases 3–4 replaced by more phase-2-style pushing.
    no_pull: bool,
}

impl Protocol for Ablated {
    type State = ();

    fn init(&self, _creator: bool) -> Self::State {}

    fn choice_policy(&self) -> ChoicePolicy {
        ChoicePolicy::FOUR
    }

    fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan {
        let meta = RumorMeta { age: t, counter: 0 };
        match self.schedule.phase(t) {
            Phase::One => {
                if self.phase1_always_push || view.informed_at + 1 == t {
                    Plan::push_with(meta)
                } else {
                    Plan::SILENT
                }
            }
            Phase::Two => Plan::push_with(meta),
            Phase::Three | Phase::Four if self.no_pull => Plan::push_with(meta),
            Phase::Three => Plan::pull_with(meta),
            Phase::Four => {
                if view.informed_at > self.schedule.phase2_end() {
                    Plan::push_with(meta)
                } else {
                    Plan::SILENT
                }
            }
            Phase::Done => Plan::SILENT,
        }
    }

    fn update(&self, _s: &mut Self::State, _ia: Option<Round>, _t: Round, _o: &Observation) {}

    fn is_quiescent(&self, _s: &Self::State, _ia: Round, t: Round) -> bool {
        self.schedule.is_done(t)
    }

    fn deadline(&self) -> Option<Round> {
        Some(self.schedule.end())
    }
}

fn main() {
    let cfg = ExpConfig::from_args();
    let n: usize = if cfg.quick { 1 << 11 } else { 1 << 13 };
    let d = 8usize;
    let reference = FourChoice::builder(n, d).force_small_degree().build();
    let schedule = *reference.schedule();

    println!("E18: phase-design ablation at n = {n}, d = {d} ({} seeds)\n", cfg.seeds);
    let mut table = Table::new(vec!["variant", "success", "rounds", "tx/node"]);

    // Reference: the paper's Algorithm 1.
    let reports = run_replicated(
        |rng| gen::random_regular(n, d, rng).expect("generation"),
        &reference,
        SimConfig::until_quiescent(),
        EXPERIMENT,
        0,
        cfg.seeds,
    );
    table.row(vec![
        "paper (push-once + pull)".into(),
        format!("{:.2}", success_rate(&reports)),
        format!("{:.1}", mean_rounds_to_coverage(&reports)),
        format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
    ]);

    for (name, variant, ix) in [
        (
            "ablate 1: phase-1 pushes every round",
            Ablated { schedule, phase1_always_push: true, no_pull: false },
            1u64,
        ),
        (
            "ablate 2: no pull phase (push to end)",
            Ablated { schedule, phase1_always_push: false, no_pull: true },
            2,
        ),
        (
            "ablate both (≈ classic 4-choice push)",
            Ablated { schedule, phase1_always_push: true, no_pull: true },
            3,
        ),
    ] {
        let reports = run_replicated(
            |rng| gen::random_regular(n, d, rng).expect("generation"),
            &variant,
            SimConfig::until_quiescent(),
            EXPERIMENT,
            ix,
            cfg.seeds,
        );
        table.row(vec![
            name.into(),
            format!("{:.2}", success_rate(&reports)),
            format!("{:.1}", mean_rounds_to_coverage(&reports)),
            format!("{:.1}", mean_of(&reports, |r| r.tx_per_node())),
        ]);
    }
    println!("{table}");
    println!(
        "expected: always-push in phase 1 multiplies tx/node by ≈ log n/log log n;\n\
         dropping the pull phase costs extra pushes for the straggler tail; the\n\
         paper's combination is the cheapest full-coverage configuration."
    );
}
