//! E18 — phase-design ablation.
//!
//! Thin wrapper over the `e18` registry entry: `rrb run e18` is the same
//! code path (see `rrb_bench::registry`). Accepts the shared experiment
//! flags `--quick`, `--seeds N`, `--threads N`.

fn main() {
    rrb_bench::registry::cli_main("e18");
}
