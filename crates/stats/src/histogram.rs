use std::fmt;

/// Fixed-width histogram over a closed range, with ASCII rendering.
///
/// Used by the experiment harness for degree distributions (e.g. the heavy
/// tail of preferential-attachment graphs in E16) and latency profiles.
///
/// ```
/// use rrb_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for v in [1.0, 1.5, 2.0, 7.0, 9.9, 11.0] {
///     h.add(v);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.overflow(), 1);      // 11.0 is out of range
/// assert_eq!(h.bin_counts()[0], 2); // 1.0, 1.5
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let ix = ((value - self.lo) / width) as usize;
            let ix = ix.min(self.bins.len() - 1);
            self.bins[ix] += 1;
        }
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Total observations, including out-of-range ones.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `[lo, hi)` bounds of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (i, &count) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar = "#".repeat((count * 50 / max) as usize);
            writeln!(f, "[{lo:>9.2}, {hi:>9.2}) {count:>8} |{bar}")?;
        }
        if self.underflow > 0 {
            writeln!(f, "{:>22} {:>8}", "< range", self.underflow)?;
        }
        if self.overflow > 0 {
            writeln!(f, "{:>22} {:>8}", ">= range", self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_bounds() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.0, 0.5, 5.0, 9.99]);
        assert_eq!(h.bin_counts()[0], 2);
        assert_eq!(h.bin_counts()[5], 1);
        assert_eq!(h.bin_counts()[9], 1);
        assert_eq!(h.bin_range(0), (0.0, 1.0));
        assert_eq!(h.bin_range(9), (9.0, 10.0));
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn out_of_range_tracking() {
        let mut h = Histogram::new(1.0, 2.0, 4);
        h.extend([0.0, 1.5, 2.0, 3.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn display_renders_bars() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.extend([0.5, 0.6, 3.0]);
        let out = h.to_string();
        assert!(out.contains('#'));
        assert!(out.lines().count() >= 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "range must be non-empty")]
    fn rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
