/// Result of an ordinary-least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (1 = perfect linear fit).
    pub r_squared: f64,
}

impl Fit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares over paired samples.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two points.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> Fit {
    assert_eq!(xs.len(), ys.len(), "paired samples must have equal length");
    assert!(xs.len() >= 2, "regression needs at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 || sxx == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Fit { slope, intercept, r_squared }
}

/// Fits `y ≈ a·log2(n) + b` — the shape of the paper's `O(log n)` runtime
/// claim (Theorems 2–3). A high `r_squared` with stable slope across the
/// size ladder certifies logarithmic growth.
///
/// # Panics
///
/// Panics on length mismatch, fewer than two points, or non-positive sizes.
pub fn fit_log2(ns: &[f64], ys: &[f64]) -> Fit {
    let xs: Vec<f64> = ns
        .iter()
        .map(|&n| {
            assert!(n > 0.0, "sizes must be positive");
            n.log2()
        })
        .collect();
    linear_regression(&xs, ys)
}

/// Fits `y ≈ a·log2(log2(n)) + b` — the shape of the paper's
/// `O(n log log n)` transmission claim, applied to per-node counts.
///
/// # Panics
///
/// Panics on length mismatch, fewer than two points, or sizes `<= 2`.
pub fn fit_loglog2(ns: &[f64], ys: &[f64]) -> Fit {
    let xs: Vec<f64> = ns
        .iter()
        .map(|&n| {
            assert!(n > 2.0, "sizes must exceed 2 for log log");
            n.log2().log2()
        })
        .collect();
    linear_regression(&xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let fit = linear_regression(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_high_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0 + ((x * 7.7).sin())).collect();
        let fit = linear_regression(&xs, &ys);
        assert!((fit.slope - 3.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn constant_y_is_perfectly_fit() {
        let fit = linear_regression(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn log_fit_recovers_logarithmic_growth() {
        // y = 3·log2(n) + 2 exactly.
        let ns: Vec<f64> = (10..=20).map(|e| (1u64 << e) as f64).collect();
        let ys: Vec<f64> = ns.iter().map(|n| 3.0 * n.log2() + 2.0).collect();
        let fit = fit_log2(&ns, &ys);
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_fit_recovers_doubly_log_growth() {
        let ns: Vec<f64> = (10..=20).map(|e| (1u64 << e) as f64).collect();
        let ys: Vec<f64> = ns.iter().map(|n| 4.0 * n.log2().log2() + 1.0).collect();
        let fit = fit_loglog2(&ns, &ys);
        assert!((fit.slope - 4.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn loglog_distinguishes_log_growth() {
        // Per-node cost growing like log2(n) looks *superlinear* against
        // log2 log2(n): the slope blows up with n, unlike a true loglog law.
        let ns: Vec<f64> = (10..=20).map(|e| (1u64 << e) as f64).collect();
        let log_ys: Vec<f64> = ns.iter().map(|n| n.log2()).collect();
        let fit = fit_loglog2(&ns, &log_ys);
        // Slope far above what a genuine loglog curve (slope ~1 per unit)
        // would produce for these sizes.
        assert!(fit.slope > 10.0, "slope {}", fit.slope);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        let _ = linear_regression(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        let _ = linear_regression(&[1.0], &[1.0]);
    }
}
