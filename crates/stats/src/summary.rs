use std::fmt;

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub sd: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (mean of the middle two for even n).
    pub median: f64,
}

impl Summary {
    /// Summarises a slice. Empty slices yield the zero summary.
    pub fn from_slice(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Summary { n: 0, mean: 0.0, sd: 0.0, min: 0.0, max: 0.0, median: 0.0 };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Summary {
            n,
            mean,
            sd: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        }
    }

    /// Summarises any iterator of numbers convertible to `f64`.
    pub fn from_values<I, V>(iter: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<f64>,
    {
        let values: Vec<f64> = iter.into_iter().map(Into::into).collect();
        Summary::from_slice(&values)
    }

    /// Standard error of the mean (`sd / sqrt(n)`).
    pub fn sem(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sd / (self.n as f64).sqrt()
        }
    }

    /// Normal-approximation 95% confidence half-width around the mean.
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem()
    }

    /// `p`-quantile of the sample by linear interpolation, `p` in `\[0, 1\]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `\[0, 1\]`.
    pub fn quantile(values: &[f64], p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p must be in [0,1]");
        if values.is_empty() {
            return 0.0;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let pos = p * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ± {:.3} (n={}, min={:.3}, med={:.3}, max={:.3})",
            self.mean,
            self.ci95(),
            self.n,
            self.min,
            self.median,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Sample sd of 1,2,3,4 = sqrt(5/3).
        assert!((s.sd - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn odd_median() {
        let s = Summary::from_slice(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::from_slice(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.sem(), 0.0);
        let s = Summary::from_slice(&[7.0]);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn from_values_accepts_integers() {
        let s = Summary::from_values([1u32, 2, 3]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(Summary::quantile(&v, 0.0), 1.0);
        assert_eq!(Summary::quantile(&v, 1.0), 5.0);
        assert_eq!(Summary::quantile(&v, 0.5), 3.0);
        assert!((Summary::quantile(&v, 0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile p")]
    fn quantile_rejects_bad_p() {
        let _ = Summary::quantile(&[1.0], 1.5);
    }

    #[test]
    fn display_is_informative() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let out = s.to_string();
        assert!(out.contains("n=3"));
        assert!(out.contains('±'));
    }
}
