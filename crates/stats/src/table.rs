use std::fmt;

/// Minimal ASCII table renderer used by the experiment binaries to print
/// paper-style result tables.
///
/// ```
/// use rrb_stats::Table;
///
/// let mut t = Table::new(vec!["n", "rounds", "tx/node"]);
/// t.row(vec!["1024".into(), "21.3".into(), "18.2".into()]);
/// t.row(vec!["2048".into(), "23.1".into(), "19.0".into()]);
/// let out = t.to_string();
/// assert!(out.contains("rounds"));
/// assert!(out.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: append a row of displayable values.
    pub fn row_display<D: fmt::Display>(&mut self, cells: Vec<D>) -> &mut Self {
        self.row(cells.into_iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)
        };
        sep(f)?;
        line(f, &self.headers)?;
        sep(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        sep(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22222".into()]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        // +sep, header, +sep, 2 rows, +sep.
        assert_eq!(lines.len(), 6);
        // All lines share the same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{out}");
        assert!(out.contains("longer"));
    }

    #[test]
    fn row_display_formats_values() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row_display(vec![1.5, 2.25]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.to_string().contains("2.25"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn empty_table_still_renders_headers() {
        let t = Table::new(vec!["h1", "h2"]);
        assert!(t.is_empty());
        let out = t.to_string();
        assert!(out.contains("h1"));
        assert_eq!(out.lines().count(), 4);
    }
}
