//! Statistics for the experiment harness.
//!
//! The paper's claims are asymptotic (`O(log n)` time, `O(n log log n)`
//! transmissions, `Ω(n log n / log d)` lower bound); the experiments turn
//! Monte-Carlo runs at a ladder of sizes into those statements via
//! [`Summary`] aggregation, [`linear_regression`] against transformed axes
//! (`log2 n`, `log2 log2 n`), and [`Table`] rendering for the paper-style
//! output recorded in `EXPERIMENTS.md`.
//!
//! ```
//! use rrb_stats::{fit_log2, Summary};
//!
//! // Rounds measured at n = 2^10..2^14 — linear in log2 n?
//! let ns = [1024.0, 2048.0, 4096.0, 8192.0, 16384.0];
//! let rounds = [21.0, 23.2, 25.1, 26.9, 29.0];
//! let fit = fit_log2(&ns, &rounds);
//! assert!(fit.r_squared > 0.98);       // excellent linear fit in log2 n
//! assert!((fit.slope - 2.0).abs() < 0.3);
//!
//! let s = Summary::from_slice(&rounds);
//! assert!((s.mean - 25.04).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod regression;
mod summary;
mod table;

pub use histogram::Histogram;
pub use regression::{fit_log2, fit_loglog2, linear_regression, Fit};
pub use summary::Summary;
pub use table::Table;
