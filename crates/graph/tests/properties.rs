//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rrb_graph::{algo, gen, graph_from_edges, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The configuration model realises the requested regular degree exactly
    /// and conserves stubs (sum deg = 2m).
    #[test]
    fn configuration_model_invariants(
        n in 2usize..200,
        d in 1usize..12,
        seed in any::<u64>(),
    ) {
        prop_assume!(n * d % 2 == 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::configuration_model(n, d, &mut rng).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.regular_degree(), Some(d));
        prop_assert_eq!(g.stub_count(), n * d);
        prop_assert_eq!(g.degrees().sum::<usize>(), 2 * g.edge_count());
    }

    /// Simple random regular graphs are simple, regular and (for d >= 3)
    /// connected.
    #[test]
    fn random_regular_invariants(
        n in 8usize..150,
        d in 3usize..7,
        seed in any::<u64>(),
    ) {
        prop_assume!(n * d % 2 == 0 && d < n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::random_regular(n, d, &mut rng).unwrap();
        prop_assert!(g.is_simple());
        prop_assert_eq!(g.regular_degree(), Some(d));
        prop_assert!(algo::is_connected(&g));
    }

    /// CSR adjacency is symmetric: w appears in N(v) as often as v in N(w).
    #[test]
    fn adjacency_symmetry(
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..120),
    ) {
        let g = graph_from_edges(30, &edges).unwrap();
        for v in 0..30 {
            for w in 0..30 {
                let vw = g
                    .neighbors(NodeId::new(v))
                    .iter()
                    .filter(|&&x| x == NodeId::new(w))
                    .count();
                let wv = g
                    .neighbors(NodeId::new(w))
                    .iter()
                    .filter(|&&x| x == NodeId::new(v))
                    .count();
                prop_assert_eq!(vw, wv);
            }
        }
    }

    /// BFS distances obey the 1-Lipschitz property along any edge.
    #[test]
    fn bfs_lipschitz_along_edges(
        edges in prop::collection::vec((0usize..25, 0usize..25), 1..80),
        src in 0usize..25,
    ) {
        let g = graph_from_edges(25, &edges).unwrap();
        let dist = algo::bfs_distances(&g, NodeId::new(src));
        for (u, v) in g.edges() {
            match (dist[u.index()], dist[v.index()]) {
                (Some(a), Some(b)) => {
                    let diff = a.abs_diff(b);
                    prop_assert!(diff <= 1, "edge ({u},{v}) distance gap {diff}");
                }
                (None, None) => {}
                // One endpoint reachable, the other not, yet they share an
                // edge: impossible.
                _ => prop_assert!(false, "edge ({u},{v}) crosses reachability"),
            }
        }
    }

    /// Component labels are consistent with edges: endpoints always share a
    /// component.
    #[test]
    fn components_respect_edges(
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..60),
    ) {
        let g = graph_from_edges(25, &edges).unwrap();
        let cc = algo::connected_components(&g);
        for (u, v) in g.edges() {
            prop_assert_eq!(cc.label(u), cc.label(v));
        }
        let total: usize = cc.sizes().iter().sum();
        prop_assert_eq!(total, 25);
    }

    /// Degree-sequence generator returns exactly the requested sequence.
    #[test]
    fn degree_sequence_exact(
        mut degs in prop::collection::vec(0usize..8, 1..60),
        seed in any::<u64>(),
    ) {
        if degs.iter().sum::<usize>() % 2 == 1 {
            degs[0] += 1;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = gen::configuration_model_from_degrees(&degs, &mut rng).unwrap();
        let got: Vec<usize> = g.degrees().collect();
        prop_assert_eq!(got, degs);
    }

    /// Graphical sequences (per Erdős–Gallai) never contain a degree >= n
    /// and have even sum — internal consistency of the checker.
    #[test]
    fn graphical_implies_basic_facts(
        degs in prop::collection::vec(0usize..10, 1..40),
    ) {
        if gen::is_graphical(&degs) {
            let n = degs.len();
            prop_assert!(degs.iter().all(|&d| d < n));
            prop_assert_eq!(degs.iter().sum::<usize>() % 2, 0);
        }
    }

    /// Cartesian product has |V(G)|·|V(H)| nodes and
    /// |E(G)|·|V(H)| + |E(H)|·|V(G)| edges.
    #[test]
    fn product_counts(
        a in 1usize..8,
        b in 1usize..8,
    ) {
        let g = gen::cycle(a.max(3));
        let h = gen::complete(b);
        let p = gen::cartesian_product(&g, &h);
        prop_assert_eq!(p.node_count(), g.node_count() * h.node_count());
        prop_assert_eq!(
            p.edge_count(),
            g.edge_count() * h.node_count() + h.edge_count() * g.node_count()
        );
    }

    /// Matchings from the greedy routine are valid and maximal: no remaining
    /// edge has both endpoints unmatched.
    #[test]
    fn greedy_matching_is_maximal(
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..120),
        seed in any::<u64>(),
    ) {
        let g = graph_from_edges(30, &edges).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = algo::greedy_maximal_matching(&g, &mut rng);
        let mut used = [false; 30];
        for (u, v) in &m {
            prop_assert!(u != v);
            prop_assert!(!used[u.index()] && !used[v.index()]);
            used[u.index()] = true;
            used[v.index()] = true;
        }
        for (u, v) in g.edges() {
            if u != v {
                prop_assert!(
                    used[u.index()] || used[v.index()],
                    "edge ({u},{v}) could extend the matching"
                );
            }
        }
    }
}
