//! Structural summaries of generated graphs.
//!
//! These reports back the sanity tables in `EXPERIMENTS.md`: before trusting
//! broadcast measurements on a generated topology we record its degree
//! statistics, simplicity defects (expected under the raw pairing model) and
//! connectivity.

use crate::{algo, Graph};

/// Aggregate degree statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2m/n`).
    pub mean: f64,
    /// `Some(d)` when the graph is `d`-regular.
    pub regular: Option<usize>,
}

/// Full structural report; see [`analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphReport {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges (self-loops count once).
    pub edges: usize,
    /// Degree summary.
    pub degrees: DegreeStats,
    /// Number of self-loop edges.
    pub self_loops: usize,
    /// Surplus parallel edges.
    pub multi_edge_excess: usize,
    /// Whether the graph is simple.
    pub simple: bool,
    /// Whether the graph is connected.
    pub connected: bool,
    /// Number of connected components.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
}

impl GraphReport {
    /// Fraction of edges that are defects (self-loops or surplus parallels);
    /// the pairing model predicts `O(d/n + d²/n)` of these.
    pub fn defect_rate(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            (self.self_loops + self.multi_edge_excess) as f64 / self.edges as f64
        }
    }
}

/// Computes a [`GraphReport`] for `g` in `O(n + m log m)`.
///
/// ```
/// let g = rrb_graph::gen::complete(6);
/// let r = rrb_graph::analysis::analyze(&g);
/// assert!(r.simple && r.connected);
/// assert_eq!(r.degrees.regular, Some(5));
/// ```
pub fn analyze(g: &Graph) -> GraphReport {
    let cc = algo::connected_components(g);
    let degrees = DegreeStats {
        min: g.min_degree(),
        max: g.max_degree(),
        mean: if g.node_count() == 0 {
            0.0
        } else {
            2.0 * g.edge_count() as f64 / g.node_count() as f64
        },
        regular: g.regular_degree(),
    };
    GraphReport {
        nodes: g.node_count(),
        edges: g.edge_count(),
        degrees,
        self_loops: g.self_loop_count(),
        multi_edge_excess: g.multi_edge_excess(),
        simple: g.is_simple(),
        connected: cc.count() <= 1,
        components: cc.count(),
        largest_component: cc.largest(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::gen;

    #[test]
    fn report_on_complete_graph() {
        let r = analyze(&gen::complete(8));
        assert_eq!(r.nodes, 8);
        assert_eq!(r.edges, 28);
        assert_eq!(r.degrees.regular, Some(7));
        assert!((r.degrees.mean - 7.0).abs() < 1e-12);
        assert_eq!(r.defect_rate(), 0.0);
        assert!(r.connected);
    }

    #[test]
    fn report_flags_defects() {
        let g = graph_from_edges(3, &[(0, 0), (1, 2), (1, 2)]).unwrap();
        let r = analyze(&g);
        assert_eq!(r.self_loops, 1);
        assert_eq!(r.multi_edge_excess, 1);
        assert!(!r.simple);
        assert!((r.defect_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn report_on_empty_graph() {
        let r = analyze(&gen::complete(0));
        assert_eq!(r.nodes, 0);
        assert_eq!(r.degrees.mean, 0.0);
        assert_eq!(r.defect_rate(), 0.0);
        assert_eq!(r.components, 0);
    }

    #[test]
    fn configuration_model_defect_rate_is_small() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(12);
        let g = gen::configuration_model(2000, 8, &mut rng).unwrap();
        let r = analyze(&g);
        // Expected self-loops ≈ (d-1)/2 ≈ 3.5, multi-edges ≈ (d²-1)/4 ≈ 16,
        // out of 8000 edges: well under 2%.
        assert!(r.defect_rate() < 0.02, "defect rate {}", r.defect_rate());
    }
}
