//! Classic graph algorithms used by the experiments and by the proofs'
//! empirical counterparts: BFS distances, connectivity, components,
//! diameter, and greedy matchings (the lower-bound proof of Theorem 1
//! extracts a linear-size matching from the uninformed set).

mod bfs;
mod bipartite;
mod components;
mod matching;

pub use bfs::{bfs_distances, diameter, double_sweep_lower_bound, eccentricity};
pub use bipartite::{bipartition, is_bipartite};
pub use components::{connected_components, is_connected, ComponentLabels};
pub use matching::greedy_maximal_matching;
