use crate::{Graph, NodeId};

/// Result of a connected-components decomposition.
///
/// Labels are dense: component ids are `0..component_count` in order of
/// first discovery by node index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    labels: Vec<u32>,
    count: usize,
}

impl ComponentLabels {
    /// Component id of node `v`.
    pub fn label(&self, v: NodeId) -> usize {
        self.labels[v.index()] as usize
    }

    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Size of each component, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }
}

/// Decomposes `g` into connected components with an iterative DFS.
pub fn connected_components(g: &Graph) -> ComponentLabels {
    let n = g.node_count();
    const UNSEEN: u32 = u32::MAX;
    let mut labels = vec![UNSEEN; n];
    let mut count = 0usize;
    let mut stack: Vec<NodeId> = Vec::new();
    for start in 0..n {
        if labels[start] != UNSEEN {
            continue;
        }
        let id = count as u32;
        count += 1;
        labels[start] = id;
        stack.push(NodeId::new(start));
        while let Some(u) = stack.pop() {
            for &w in g.neighbors(u) {
                if labels[w.index()] == UNSEEN {
                    labels[w.index()] = id;
                    stack.push(w);
                }
            }
        }
    }
    ComponentLabels { labels, count }
}

/// `true` iff `g` is connected (the empty graph counts as connected).
///
/// Random `d`-regular graphs with `d >= 3` are connected w.h.p. (Bollobás),
/// which §1.2 of the paper relies on; the generators' tests assert it.
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).count() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::gen;

    #[test]
    fn single_component() {
        let g = gen::cycle(5);
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 1);
        assert_eq!(cc.largest(), 5);
        assert!(is_connected(&g));
    }

    #[test]
    fn two_components() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 2);
        let mut sizes = cc.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
        assert_eq!(cc.label(NodeId::new(0)), cc.label(NodeId::new(2)));
        assert_ne!(cc.label(NodeId::new(0)), cc.label(NodeId::new(4)));
        assert!(!is_connected(&g));
    }

    #[test]
    fn isolated_nodes_are_components() {
        let g = graph_from_edges(4, &[]).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 4);
        assert_eq!(cc.largest(), 1);
    }

    #[test]
    fn empty_graph_connected() {
        let g = gen::complete(0);
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).count(), 0);
    }

    #[test]
    fn self_loops_do_not_split() {
        let g = graph_from_edges(2, &[(0, 0), (0, 1)]).unwrap();
        assert!(is_connected(&g));
    }
}
