use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Tests bipartiteness by BFS 2-colouring; returns the colouring when the
/// graph is bipartite, `None` otherwise.
///
/// Relevant to the spectral toolkit: for a bipartite `d`-regular graph the
/// adjacency spectrum is symmetric and `−d` is an eigenvalue, so
/// [`second_eigenvalue`](crate::spectral::second_eigenvalue) — which
/// reports the mixing-lemma constant `max(|λ₂|, |λ_n|)` — returns `d`.
/// Random regular graphs with `d ≥ 3` contain odd cycles w.h.p., and this
/// check certifies it on samples.
///
/// A self-loop makes a graph non-bipartite (an odd cycle of length 1).
///
/// ```
/// use rrb_graph::{algo, gen};
/// assert!(algo::bipartition(&gen::cycle(8)).is_some());
/// assert!(algo::bipartition(&gen::cycle(7)).is_none());
/// assert!(algo::bipartition(&gen::hypercube(4)).is_some());
/// ```
pub fn bipartition(g: &Graph) -> Option<Vec<bool>> {
    let n = g.node_count();
    let mut color: Vec<Option<bool>> = vec![None; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if color[start].is_some() {
            continue;
        }
        color[start] = Some(false);
        queue.push_back(NodeId::new(start));
        while let Some(u) = queue.pop_front() {
            let cu = color[u.index()].expect("queued nodes are coloured");
            for &w in g.neighbors(u) {
                match color[w.index()] {
                    None => {
                        color[w.index()] = Some(!cu);
                        queue.push_back(w);
                    }
                    Some(cw) => {
                        if cw == cu {
                            return None; // odd cycle (self-loops included)
                        }
                    }
                }
            }
        }
    }
    Some(color.into_iter().map(|c| c.unwrap_or(false)).collect())
}

/// `true` iff the graph admits a proper 2-colouring.
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::gen;

    #[test]
    fn even_structures_are_bipartite() {
        for g in [gen::cycle(10), gen::hypercube(5), gen::path(7), gen::star(6)] {
            let coloring = bipartition(&g).expect("should be bipartite");
            for (u, v) in g.edges() {
                assert_ne!(coloring[u.index()], coloring[v.index()]);
            }
        }
    }

    #[test]
    fn odd_cycles_and_cliques_are_not() {
        assert!(!is_bipartite(&gen::cycle(9)));
        assert!(!is_bipartite(&gen::complete(4)));
    }

    #[test]
    fn self_loop_breaks_bipartiteness() {
        let g = graph_from_edges(2, &[(0, 1), (1, 1)]).unwrap();
        assert!(!is_bipartite(&g));
    }

    #[test]
    fn disconnected_components_colour_independently() {
        let g = graph_from_edges(5, &[(0, 1), (2, 3), (3, 4), (4, 2)]).unwrap();
        // Second component is a triangle.
        assert!(!is_bipartite(&g));
        let g2 = graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(is_bipartite(&g2));
    }

    #[test]
    fn random_regular_d3_is_rarely_bipartite() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut bipartite = 0;
        for seed in 0..8 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::random_regular(128, 3, &mut rng).unwrap();
            if is_bipartite(&g) {
                bipartite += 1;
            }
        }
        assert_eq!(bipartite, 0, "random regular graphs have odd cycles w.h.p.");
    }

    #[test]
    fn empty_graph_is_bipartite() {
        assert!(is_bipartite(&gen::complete(0)));
        assert_eq!(bipartition(&gen::complete(0)), Some(vec![]));
    }
}
