use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Breadth-first distances from `src`; `None` marks unreachable nodes.
///
/// Runs in `O(n + m)`.
///
/// ```
/// use rrb_graph::{algo, gen, NodeId};
/// let g = gen::path(4);
/// let d = algo::bfs_distances(&g, NodeId::new(0));
/// assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
/// ```
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<Option<u32>> {
    let n = g.node_count();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    if src.index() >= n {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[src.index()] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &w in g.neighbors(u) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(du + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Eccentricity of `src`: the largest BFS distance to any reachable node.
/// Returns `None` for an empty graph.
pub fn eccentricity(g: &Graph, src: NodeId) -> Option<u32> {
    bfs_distances(g, src).into_iter().flatten().max()
}

/// Exact diameter by all-pairs BFS — `O(n(n + m))`, fine for the graph sizes
/// the experiments inspect structurally. Returns `None` if the graph is
/// empty or disconnected.
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.is_empty() {
        return None;
    }
    let mut best = 0u32;
    for v in g.nodes() {
        let dist = bfs_distances(g, v);
        for d in &dist {
            match d {
                Some(x) => best = best.max(*x),
                None => return None, // disconnected
            }
        }
    }
    Some(best)
}

/// Fast diameter lower bound via the double-sweep heuristic: BFS from an
/// arbitrary node, then BFS again from the farthest node found. Exact on
/// trees; a lower bound in general. Returns `None` for empty graphs.
pub fn double_sweep_lower_bound(g: &Graph, start: NodeId) -> Option<u32> {
    if g.is_empty() {
        return None;
    }
    let d1 = bfs_distances(g, start);
    let far = d1
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|x| (i, x)))
        .max_by_key(|&(_, x)| x)?
        .0;
    eccentricity(g, NodeId::new(far))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn distances_on_cycle() {
        let g = gen::cycle(6);
        let d = bfs_distances(&g, NodeId::new(0));
        let got: Vec<u32> = d.into_iter().map(|x| x.unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn unreachable_is_none() {
        let g = crate::builder::graph_from_edges(4, &[(0, 1)]).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn diameter_known_values() {
        assert_eq!(diameter(&gen::cycle(8)), Some(4));
        assert_eq!(diameter(&gen::path(5)), Some(4));
        assert_eq!(diameter(&gen::complete(7)), Some(1));
        assert_eq!(diameter(&gen::hypercube(5)), Some(5));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let g = crate::builder::graph_from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(diameter(&gen::complete(0)), None);
    }

    #[test]
    fn double_sweep_exact_on_paths() {
        let g = gen::path(9);
        assert_eq!(double_sweep_lower_bound(&g, NodeId::new(4)), Some(8));
    }

    #[test]
    fn double_sweep_is_lower_bound() {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4);
        let g = gen::random_regular(64, 3, &mut rng).unwrap();
        let exact = diameter(&g).unwrap();
        let lb = double_sweep_lower_bound(&g, NodeId::new(0)).unwrap();
        assert!(lb <= exact);
        // Double sweep is usually exact or near-exact on expanders.
        assert!(lb + 2 >= exact);
    }

    #[test]
    fn eccentricity_center_vs_leaf() {
        let g = gen::path(7);
        assert_eq!(eccentricity(&g, NodeId::new(3)), Some(3));
        assert_eq!(eccentricity(&g, NodeId::new(0)), Some(6));
    }
}
