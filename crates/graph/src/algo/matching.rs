use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, NodeId};

/// Computes a maximal matching greedily over a random edge order.
///
/// This mirrors the construction inside the proof of Theorem 1: "we compute
/// a matching by repeatedly removing arbitrary edges (and adding them to our
/// matching) as well as all edges incident to either endpoint". On subsets
/// of random regular graphs this yields a matching of linear size, which the
/// lower-bound argument needs; experiment E3's diagnostics use this routine
/// to confirm the structural premise at finite `n`.
///
/// Returns the matched pairs; every node appears in at most one pair.
///
/// ```
/// use rand::{SeedableRng, rngs::SmallRng};
/// use rrb_graph::{algo, gen};
/// let g = gen::cycle(8);
/// let m = algo::greedy_maximal_matching(&g, &mut SmallRng::seed_from_u64(0));
/// assert!(m.len() >= 3); // maximal matching in C8 has >= 3 edges
/// ```
pub fn greedy_maximal_matching<R: Rng + ?Sized>(
    g: &Graph,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    let mut order: Vec<usize> = (0..g.edge_count()).collect();
    order.shuffle(rng);
    let edges = g.edge_slice();
    let mut used = vec![false; g.node_count()];
    let mut matching = Vec::new();
    for idx in order {
        let (u, v) = edges[idx];
        if u == v || used[u.index()] || used[v.index()] {
            continue;
        }
        used[u.index()] = true;
        used[v.index()] = true;
        matching.push((u, v));
    }
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn is_valid_matching(n: usize, m: &[(NodeId, NodeId)]) -> bool {
        let mut seen = vec![false; n];
        for &(u, v) in m {
            if u == v || seen[u.index()] || seen[v.index()] {
                return false;
            }
            seen[u.index()] = true;
            seen[v.index()] = true;
        }
        true
    }

    #[test]
    fn matching_is_valid_and_maximal_on_cycle() {
        let g = gen::cycle(9);
        let mut rng = SmallRng::seed_from_u64(3);
        let m = greedy_maximal_matching(&g, &mut rng);
        assert!(is_valid_matching(9, &m));
        // Maximal matching on C9 has at least 3 edges (ceil(9/2/... ) >= 3).
        assert!(m.len() >= 3 && m.len() <= 4);
    }

    #[test]
    fn perfect_on_complete_even() {
        let g = gen::complete(10);
        let mut rng = SmallRng::seed_from_u64(1);
        let m = greedy_maximal_matching(&g, &mut rng);
        // Greedy on K10 is always perfect.
        assert_eq!(m.len(), 5);
        assert!(is_valid_matching(10, &m));
    }

    #[test]
    fn linear_size_on_random_regular() {
        // Theorem 1's proof needs a matching of size Ω(n) inside the
        // uninformed set; sanity-check the whole graph admits one.
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::random_regular(200, 4, &mut rng).unwrap();
        let m = greedy_maximal_matching(&g, &mut rng);
        assert!(is_valid_matching(200, &m));
        assert!(m.len() >= 200 * 2 / 9, "matching too small: {}", m.len());
    }

    #[test]
    fn self_loops_never_matched() {
        let g = crate::builder::graph_from_edges(3, &[(0, 0), (1, 2)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let m = greedy_maximal_matching(&g, &mut rng);
        assert_eq!(m, vec![(NodeId::new(1), NodeId::new(2))]);
    }

    #[test]
    fn empty_graph_empty_matching() {
        let g = gen::complete(0);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(greedy_maximal_matching(&g, &mut rng).is_empty());
    }
}
