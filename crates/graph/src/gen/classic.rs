use crate::{Graph, GraphBuilder, NodeId};

/// Complete graph `K_n`: every pair of distinct nodes is adjacent.
///
/// This is the topology of the classic rumour-spreading results the paper
/// builds on (Frieze–Grimmett, Pittel, Karp et al.), used by the push/pull
/// crossover experiment (E5).
///
/// ```
/// let g = rrb_graph::gen::complete(6);
/// assert_eq!(g.regular_degree(), Some(5));
/// assert_eq!(g.edge_count(), 15);
/// ```
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1) * n / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(NodeId::new(u), NodeId::new(v)).expect("in range");
        }
    }
    b.build()
}

/// Cycle `C_n` (`n >= 3` gives the usual simple cycle; `n == 2` degenerates
/// to a double edge, `n == 1` to a self-loop, matching the multigraph
/// convention).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n);
    if n == 1 {
        b.add_edge(NodeId::new(0), NodeId::new(0)).expect("in range");
    } else {
        for u in 0..n {
            b.add_edge(NodeId::new(u), NodeId::new((u + 1) % n)).expect("in range");
        }
    }
    b.build()
}

/// Path `P_n` on `n` nodes (`n - 1` edges).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for u in 1..n {
        b.add_edge(NodeId::new(u - 1), NodeId::new(u)).expect("in range");
    }
    b.build()
}

/// Star `K_{1,n-1}`: node 0 is adjacent to all others.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for u in 1..n {
        b.add_edge(NodeId::new(0), NodeId::new(u)).expect("in range");
    }
    b.build()
}

/// Hypercube `Q_dim` on `2^dim` nodes; nodes are adjacent iff their indices
/// differ in exactly one bit. `dim`-regular; one of the bounded-degree
/// benchmark classes from Feige et al. \[17\] cited in §1.1.
///
/// ```
/// let q3 = rrb_graph::gen::hypercube(3);
/// assert_eq!(q3.node_count(), 8);
/// assert_eq!(q3.regular_degree(), Some(3));
/// ```
pub fn hypercube(dim: u32) -> Graph {
    let n = 1usize << dim;
    let mut b = GraphBuilder::with_capacity(n, n * dim as usize / 2);
    for u in 0..n {
        for bit in 0..dim {
            let v = u ^ (1 << bit);
            if u < v {
                b.add_edge(NodeId::new(u), NodeId::new(v)).expect("in range");
            }
        }
    }
    b.build()
}

/// 2-dimensional torus (wrap-around grid) with `rows × cols` nodes;
/// 4-regular when both sides exceed 2.
pub fn torus(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| NodeId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if cols > 1 {
                b.add_edge(id(r, c), id(r, (c + 1) % cols)).expect("in range");
            }
            if rows > 1 {
                b.add_edge(id(r, c), id((r + 1) % rows, c)).expect("in range");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn complete_graph_shape() {
        let g = complete(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.regular_degree(), Some(4));
        assert!(g.is_simple());
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn complete_degenerate() {
        assert_eq!(complete(0).node_count(), 0);
        assert_eq!(complete(1).edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(7);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.regular_degree(), Some(2));
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn cycle_degenerate() {
        let g1 = cycle(1);
        assert_eq!(g1.self_loop_count(), 1);
        let g2 = cycle(2);
        assert_eq!(g2.edge_count(), 2);
        assert_eq!(g2.multi_edge_excess(), 1);
    }

    #[test]
    fn path_and_star() {
        let p = path(5);
        assert_eq!(p.edge_count(), 4);
        assert_eq!(p.degree(NodeId::new(0)), 1);
        assert_eq!(p.degree(NodeId::new(2)), 2);
        let s = star(6);
        assert_eq!(s.degree(NodeId::new(0)), 5);
        assert!(s.degrees().skip(1).all(|d| d == 1));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.regular_degree(), Some(4));
        assert!(g.is_simple());
        assert!(algo::is_connected(&g));
        // Antipodal distance equals the dimension.
        let dist = algo::bfs_distances(&g, NodeId::new(0));
        assert_eq!(dist[15], Some(4));
    }

    #[test]
    fn torus_shape() {
        let g = torus(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.regular_degree(), Some(4));
        assert!(g.is_simple());
        assert!(algo::is_connected(&g));
    }
}
