use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, NodeId, Result};

/// Barabási–Albert preferential-attachment graph on `n` nodes, each new
/// node attaching `m` edges to existing nodes with probability
/// proportional to their current degree.
///
/// The paper's related work (§1.1, Doerr, Fouz, Friedrich \[8\]) shows that
/// on preferential-attachment graphs, push with the *avoid-the-previous-
/// neighbour* memory spreads rumours in sub-logarithmic time — the same
/// memory mechanism behind the paper's sequentialised model (footnote 2).
/// Experiment E16 reproduces that comparison on this generator.
///
/// Implementation: the classic stub-repetition trick — maintain a list
/// containing each node once per incident stub and sample attachment
/// targets from it (duplicate targets are resampled, so the result is
/// simple whenever `m < ` current node count).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m == 0` or `n <= m`.
///
/// ```
/// use rand::{SeedableRng, rngs::SmallRng};
/// let mut rng = SmallRng::seed_from_u64(3);
/// let g = rrb_graph::gen::preferential_attachment(500, 3, &mut rng)?;
/// assert_eq!(g.node_count(), 500);
/// assert!(g.is_simple());
/// assert!(g.max_degree() > 3 * 4, "hubs should emerge");
/// # Ok::<(), rrb_graph::GraphError>(())
/// ```
pub fn preferential_attachment<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph> {
    if m == 0 {
        return Err(GraphError::InvalidParameter { what: "attachment count m must be positive" });
    }
    if n <= m {
        return Err(GraphError::InvalidParameter { what: "n must exceed m" });
    }
    let mut b = GraphBuilder::with_capacity(n, m * n);
    // Seed: a clique-ish core of m+1 nodes so every early node has degree
    // >= m and the stub list is non-degenerate.
    let mut stub_list: Vec<u32> = Vec::with_capacity(2 * m * n);
    for u in 0..=m {
        for v in (u + 1)..=m {
            b.add_edge(NodeId::new(u), NodeId::new(v))?;
            stub_list.push(u as u32);
            stub_list.push(v as u32);
        }
    }
    let mut targets: Vec<u32> = Vec::with_capacity(m);
    for u in (m + 1)..n {
        targets.clear();
        // Sample m distinct targets proportional to degree.
        let mut guard = 0usize;
        while targets.len() < m {
            let t = stub_list[rng.gen_range(0..stub_list.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            if guard > 64 * m + 256 {
                // Degenerate corner (tiny graphs): fall back to any distinct
                // earlier node.
                for cand in 0..u as u32 {
                    if targets.len() == m {
                        break;
                    }
                    if !targets.contains(&cand) {
                        targets.push(cand);
                    }
                }
            }
        }
        for &t in &targets {
            b.add_edge(NodeId::new(u), NodeId::from_u32(t))?;
            stub_list.push(u as u32);
            stub_list.push(t);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn basic_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = preferential_attachment(300, 3, &mut rng).unwrap();
        assert_eq!(g.node_count(), 300);
        // m+1 seed clique edges + m per later node.
        assert_eq!(g.edge_count(), 3 * 4 / 2 + (300 - 4) * 3);
        assert!(g.is_simple());
        assert!(algo::is_connected(&g));
        assert!(g.min_degree() >= 3);
    }

    #[test]
    fn heavy_tail_emerges() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = preferential_attachment(2000, 2, &mut rng).unwrap();
        let max = g.max_degree();
        let mean = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            max as f64 > 6.0 * mean,
            "expected a hub: max degree {max}, mean {mean:.1}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(preferential_attachment(10, 0, &mut rng).is_err());
        assert!(preferential_attachment(3, 3, &mut rng).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = preferential_attachment(100, 2, &mut SmallRng::seed_from_u64(9)).unwrap();
        let b = preferential_attachment(100, 2, &mut SmallRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
