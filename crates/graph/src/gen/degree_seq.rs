use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, NodeId, Result};

/// Realises an arbitrary degree sequence as a random multigraph via the
/// configuration model: node `i` contributes `degrees[i]` stubs and a
/// uniformly random perfect matching on all stubs defines the edges.
///
/// This is the general form of the paper's §1.2 pairing process and also
/// powers [`random_near_regular`](super::random_near_regular), covering the
/// non-regular extension (degrees in `[d, c·d]`) the paper mentions.
///
/// # Errors
///
/// Returns [`GraphError::OddStubCount`] if the degree sum is odd.
///
/// # Examples
///
/// ```
/// use rand::{SeedableRng, rngs::SmallRng};
/// let mut rng = SmallRng::seed_from_u64(2);
/// let g = rrb_graph::gen::configuration_model_from_degrees(&[3, 3, 2, 2], &mut rng)?;
/// let mut degs: Vec<usize> = g.degrees().collect();
/// assert_eq!(degs, vec![3, 3, 2, 2]);
/// # Ok::<(), rrb_graph::GraphError>(())
/// ```
pub fn configuration_model_from_degrees<R: Rng + ?Sized>(
    degrees: &[usize],
    rng: &mut R,
) -> Result<Graph> {
    let stub_sum: usize = degrees.iter().sum();
    if stub_sum % 2 == 1 {
        return Err(GraphError::OddStubCount { stub_sum });
    }
    // Lay out stubs node-by-node, then draw a uniform perfect matching by
    // shuffling and pairing consecutive entries (equivalent to the paper's
    // sequential i.u.r. pairing).
    let mut stubs: Vec<u32> = Vec::with_capacity(stub_sum);
    for (node, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(node as u32, d));
    }
    shuffle(&mut stubs, rng);
    let mut b = GraphBuilder::with_capacity(degrees.len(), stub_sum / 2);
    for pair in stubs.chunks_exact(2) {
        b.add_edge(NodeId::from_u32(pair[0]), NodeId::from_u32(pair[1]))
            .expect("stub labels derived from degree sequence are in range");
    }
    Ok(b.build())
}

/// Fisher–Yates shuffle. `rand::seq::SliceRandom::shuffle` exists, but an
/// explicit implementation keeps the stub-pairing process easy to audit
/// against the paper's description.
fn shuffle<R: Rng + ?Sized, T>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Tests whether a degree sequence is *graphical*, i.e. realisable by a
/// simple graph, via the Erdős–Gallai characterisation.
///
/// Sorting is done internally; the input order does not matter.
///
/// ```
/// assert!(rrb_graph::gen::is_graphical(&[3, 3, 3, 3]));      // K4
/// assert!(!rrb_graph::gen::is_graphical(&[3, 1, 1, 1, 1]));  // odd sum
/// assert!(!rrb_graph::gen::is_graphical(&[4, 4, 4, 1, 1]));  // fails Erdős–Gallai
/// ```
pub fn is_graphical(degrees: &[usize]) -> bool {
    let n = degrees.len();
    if n == 0 {
        return true;
    }
    let mut d: Vec<usize> = degrees.to_vec();
    d.sort_unstable_by(|a, b| b.cmp(a));
    if d[0] >= n {
        return false;
    }
    let total: usize = d.iter().sum();
    if total % 2 == 1 {
        return false;
    }
    // Erdős–Gallai: for each k, sum of k largest <= k(k-1) + sum_{i>k} min(d_i, k).
    let mut prefix = 0usize;
    for k in 1..=n {
        prefix += d[k - 1];
        let mut rhs = k * (k - 1);
        for &di in &d[k..] {
            rhs += di.min(k);
        }
        if prefix > rhs {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn realises_exact_degrees() {
        let mut rng = SmallRng::seed_from_u64(1);
        let want = vec![5, 4, 3, 2, 1, 1, 2, 2];
        let g = configuration_model_from_degrees(&want, &mut rng).unwrap();
        let got: Vec<usize> = g.degrees().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn rejects_odd_sum() {
        let mut rng = SmallRng::seed_from_u64(1);
        let err = configuration_model_from_degrees(&[1, 1, 1], &mut rng).unwrap_err();
        assert_eq!(err, GraphError::OddStubCount { stub_sum: 3 });
    }

    #[test]
    fn zero_length_sequence() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = configuration_model_from_degrees(&[], &mut rng).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn erdos_gallai_known_cases() {
        assert!(is_graphical(&[]));
        assert!(is_graphical(&[0, 0, 0]));
        assert!(is_graphical(&[1, 1]));
        assert!(is_graphical(&[2, 2, 2]));            // triangle
        assert!(is_graphical(&[3, 3, 3, 3]));         // K4
        assert!(is_graphical(&[3, 2, 2, 2, 1]));
        assert!(!is_graphical(&[1]));                 // odd sum
        assert!(!is_graphical(&[4, 4, 4, 1, 1]));     // fails Erdős–Gallai at k=3
        assert!(!is_graphical(&[6, 1, 1, 1, 1, 1]));  // degree >= n
    }

    #[test]
    fn star_is_graphical() {
        assert!(is_graphical(&[5, 1, 1, 1, 1, 1]));
    }

    #[test]
    fn random_graphical_sequences_realise() {
        // Any even-sum sequence realises as a multigraph.
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..20 {
            let n = rng.gen_range(2..40);
            let mut degs: Vec<usize> = (0..n).map(|_| rng.gen_range(0..6)).collect();
            if degs.iter().sum::<usize>() % 2 == 1 {
                degs[0] += 1;
            }
            let g = configuration_model_from_degrees(&degs, &mut rng).unwrap();
            let got: Vec<usize> = g.degrees().collect();
            assert_eq!(got, degs);
        }
    }
}
