//! Random and deterministic graph generators.
//!
//! The centrepiece is the **configuration model** ([`configuration_model`]),
//! the exact process §1.2 of the paper uses to define random `d`-regular
//! graphs: give every node `d` stubs and repeatedly pair uniformly random
//! unmatched stubs. The raw output is a multigraph; [`random_regular`]
//! additionally repairs self-loops and parallel edges with degree-preserving
//! edge switchings, yielding a simple random regular graph.
//!
//! Deterministic topologies ([`complete`], [`hypercube`], [`cycle`], …) and
//! `G(n,p)` ([`gnp`]) cover the graph classes the related work in §1.1
//! evaluates, and [`cartesian_product`] supports the `G □ K5` counterexample
//! discussed in the paper's conclusions.

mod classic;
mod degree_seq;
mod preferential;
mod product;
mod random;

pub use classic::{complete, cycle, hypercube, path, star, torus};
pub use degree_seq::{configuration_model_from_degrees, is_graphical};
pub use preferential::preferential_attachment;
pub use product::cartesian_product;
pub use random::{configuration_model, gnp, random_regular, random_near_regular};
