use crate::{Graph, GraphBuilder, NodeId};

/// Cartesian product `G □ H`.
///
/// Nodes are pairs `(u, i)` with `u ∈ V(G)`, `i ∈ V(H)`, laid out as
/// `u * |V(H)| + i`. Two nodes `(u, i)`, `(v, j)` are adjacent iff
/// `u == v` and `{i, j} ∈ E(H)`, or `i == j` and `{u, v} ∈ E(G)`.
///
/// The conclusions of the paper (§5) name `G(n,d) □ K5` as a graph with
/// expansion and connectivity similar to a random regular graph on which the
/// multiple-choice model yields **no** notable improvement — experiment E11
/// reproduces that claim with this constructor.
///
/// Degrees add: if `G` is `d_G`-regular and `H` is `d_H`-regular, the
/// product is `(d_G + d_H)`-regular.
///
/// ```
/// use rrb_graph::gen::{cartesian_product, complete, cycle};
/// let g = cartesian_product(&cycle(4), &complete(5));
/// assert_eq!(g.node_count(), 20);
/// assert_eq!(g.regular_degree(), Some(2 + 4));
/// ```
pub fn cartesian_product(g: &Graph, h: &Graph) -> Graph {
    let ng = g.node_count();
    let nh = h.node_count();
    let n = ng * nh;
    let id = |u: usize, i: usize| NodeId::new(u * nh + i);
    let mut b =
        GraphBuilder::with_capacity(n, g.edge_count() * nh + h.edge_count() * ng);
    // G-edges replicated per H-node.
    for (u, v) in g.edges() {
        for i in 0..nh {
            b.add_edge(id(u.index(), i), id(v.index(), i)).expect("in range");
        }
    }
    // H-edges replicated per G-node.
    for (i, j) in h.edges() {
        for u in 0..ng {
            b.add_edge(id(u, i.index()), id(u, j.index())).expect("in range");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use crate::gen::{complete, cycle, path};

    #[test]
    fn product_of_paths_is_grid() {
        let g = cartesian_product(&path(3), &path(2));
        assert_eq!(g.node_count(), 6);
        // Grid 3x2 has 3*1 + 2*2 = 7 edges.
        assert_eq!(g.edge_count(), 7);
        assert!(g.is_simple());
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn regular_factors_give_regular_product() {
        let g = cartesian_product(&cycle(6), &complete(5));
        assert_eq!(g.regular_degree(), Some(6));
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn k5_layers_are_cliques() {
        let g = cartesian_product(&cycle(4), &complete(5));
        // Within layer u=0, nodes 0..5 form a K5.
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert!(g.has_edge(NodeId::new(i), NodeId::new(j)));
            }
        }
    }

    #[test]
    fn empty_factor_gives_empty_product() {
        let g = cartesian_product(&complete(0), &complete(5));
        assert!(g.is_empty());
    }

    #[test]
    fn product_distances_add_on_known_case() {
        // Distance in a product is the sum of coordinate distances.
        let g = cartesian_product(&path(4), &path(4));
        let d = algo::bfs_distances(&g, NodeId::new(0));
        // Node (3,3) has index 3*4+3 = 15, distance 3+3.
        assert_eq!(d[15], Some(6));
    }
}
