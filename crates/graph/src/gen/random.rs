use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, NodeId, Result};

use super::degree_seq::configuration_model_from_degrees;

/// Generates a random `d`-regular **multigraph** on `n` nodes with the
/// configuration (pairing) model, exactly as defined in §1.2 of the paper.
///
/// Every node receives `d` stubs; a uniformly random perfect matching on the
/// `n·d` stubs defines the edges. Self-loops and parallel edges are kept:
/// the paper notes the pairing process generates non-simple graphs with
/// probability `1 − e^{−O(d²)}` and analyses the algorithm on that output
/// directly.
///
/// # Errors
///
/// * [`GraphError::OddStubCount`] if `n·d` is odd.
/// * [`GraphError::InvalidParameter`] if `d == 0` with `n > 0` would make
///   broadcasting trivially impossible — degree zero is allowed only for the
///   empty graph.
///
/// # Examples
///
/// ```
/// use rand::{SeedableRng, rngs::SmallRng};
/// let mut rng = SmallRng::seed_from_u64(1);
/// let g = rrb_graph::gen::configuration_model(500, 6, &mut rng)?;
/// assert!(g.degrees().all(|d| d == 6));
/// # Ok::<(), rrb_graph::GraphError>(())
/// ```
pub fn configuration_model<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Result<Graph> {
    if n > 0 && d == 0 {
        return Err(GraphError::InvalidParameter { what: "degree must be positive" });
    }
    configuration_model_from_degrees(&vec![d; n], rng)
}

/// Generates a **simple** random `d`-regular graph on `n` nodes.
///
/// Runs the pairing model and then removes self-loops and parallel edges via
/// uniformly random degree-preserving 2-switches (pick a defective edge
/// `{a,b}` and a random edge `{c,e}`, rewire to `{a,c},{b,e}` when that
/// strictly reduces the defect count). For `d = o(√n)` the switching
/// converges after `O(d²)` expected repairs; a rejection-and-restart outer
/// loop guards pathological cases.
///
/// The distribution is asymptotically uniform over simple `d`-regular graphs
/// (McKay–Wormald \[30\]); the small switching bias is irrelevant for the
/// simulation claims measured here.
///
/// # Errors
///
/// * [`GraphError::OddStubCount`] if `n·d` is odd.
/// * [`GraphError::DegreeTooLarge`] if `d >= n`.
/// * [`GraphError::GenerationFailed`] if repair fails repeatedly (practically
///   unreachable for `d ≤ O(log n)`, the paper's regime).
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Result<Graph> {
    if d >= n && !(n == 0 && d == 0) {
        return Err(GraphError::DegreeTooLarge { degree: d, node_count: n });
    }
    const MAX_RESTARTS: usize = 32;
    for _ in 0..MAX_RESTARTS {
        let g = configuration_model(n, d, rng)?;
        if let Some(simple) = repair_to_simple(&g, rng) {
            return Ok(simple);
        }
    }
    Err(GraphError::GenerationFailed { attempts: MAX_RESTARTS })
}

/// Generates a near-regular random graph whose degrees all lie in
/// `[d, ceil(c·d)]`, the relaxed setting §1.2 says the results generalise to.
///
/// Each node draws a degree uniformly from the allowed band (the total is
/// patched to be even by bumping one node within the band when needed), then
/// the configuration model realises the sequence.
///
/// # Errors
///
/// * [`GraphError::InvalidParameter`] if `c < 1.0` or `d == 0`.
pub fn random_near_regular<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    c: f64,
    rng: &mut R,
) -> Result<Graph> {
    if c.is_nan() || c < 1.0 {
        return Err(GraphError::InvalidParameter { what: "degree band factor c must be >= 1" });
    }
    if d == 0 {
        return Err(GraphError::InvalidParameter { what: "degree must be positive" });
    }
    let hi = ((d as f64) * c).ceil() as usize;
    let mut degrees: Vec<usize> = (0..n).map(|_| rng.gen_range(d..=hi)).collect();
    if degrees.iter().sum::<usize>() % 2 == 1 {
        // Patch parity inside the band: find any node that can move by one.
        let idx = (0..n)
            .find(|&i| degrees[i] < hi || degrees[i] > d)
            .expect("band of width >= 0 always has a movable node when n > 0");
        if degrees[idx] < hi {
            degrees[idx] += 1;
        } else {
            degrees[idx] -= 1;
        }
    }
    configuration_model_from_degrees(&degrees, rng)
}

/// Erdős–Rényi `G(n, p)`: every unordered pair becomes an edge independently
/// with probability `p`.
///
/// Uses the geometric skipping method, so generation runs in `O(n + m)`
/// expected time rather than `O(n²)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `\[0, 1\]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter { what: "p must lie in [0, 1]" });
    }
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return Ok(b.build());
    }
    if p == 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(NodeId::new(u), NodeId::new(v))?;
            }
        }
        return Ok(b.build());
    }
    // Iterate pairs in row-major order, skipping geometrically.
    let log_q = (1.0 - p).ln();
    let mut u: usize = 0;
    let mut v: i64 = 0; // candidate column within row u (v > u required)
    while u < n - 1 {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (r.ln() / log_q).floor() as i64 + 1;
        v += skip;
        while u < n - 1 && v as usize > n - 1 - (u + 1) {
            v -= (n - 1 - u) as i64;
            u += 1;
        }
        if u < n - 1 {
            let col = u + 1 + v as usize;
            b.add_edge(NodeId::new(u), NodeId::new(col))?;
        }
    }
    Ok(b.build())
}

/// Attempts to repair `g` into a simple graph with degree-preserving
/// 2-switches. Returns `None` if the defect count stops improving.
fn repair_to_simple<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Option<Graph> {
    let n = g.node_count();
    let mut edges: Vec<(u32, u32)> =
        g.edges().map(|(u, v)| (u.as_u32(), v.as_u32())).collect();
    if edges.is_empty() {
        return Some(g.clone());
    }

    // Multiplicity map for fast defect checks. BTreeMap, not HashMap:
    // generation must be deterministic per seed (rrb-lint
    // no-ambient-randomness), and the map is only probed point-wise.
    use std::collections::BTreeMap;
    let key = |a: u32, b: u32| -> u64 {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        ((a as u64) << 32) | b as u64
    };
    let mut mult: BTreeMap<u64, u32> = BTreeMap::new();
    for &(u, v) in &edges {
        *mult.entry(key(u, v)).or_insert(0) += 1;
    }
    let is_defective = |mult: &BTreeMap<u64, u32>, u: u32, v: u32| -> bool {
        u == v || mult.get(&key(u, v)).copied().unwrap_or(0) > 1
    };

    // Candidate defect list, maintained lazily: switches never *create*
    // defects (such switches are rejected), so candidates only need
    // re-validation against the multiplicity map before use — removing one
    // copy of a parallel pair silently repairs its sibling, for example.
    let mut candidates: Vec<usize> = edges
        .iter()
        .enumerate()
        .filter(|(_, &(u, v))| is_defective(&mult, u, v))
        .map(|(i, _)| i)
        .collect();
    let budget = 400 * (candidates.len() + 16);
    let mut attempts = 0usize;
    while !candidates.is_empty() {
        attempts += 1;
        if attempts > budget {
            return None;
        }
        let ci = rng.gen_range(0..candidates.len());
        let di = candidates[ci];
        let (a, b) = edges[di];
        if !is_defective(&mult, a, b) {
            candidates.swap_remove(ci);
            continue;
        }
        let oi = rng.gen_range(0..edges.len());
        if oi == di {
            continue;
        }
        let (c, e) = edges[oi];
        // Candidate rewiring: {a,b},{c,e} -> {a,c},{b,e}.
        // Reject if it would introduce a new defect.
        if a == c || b == e {
            continue; // would create self-loop
        }
        if mult.get(&key(a, c)).copied().unwrap_or(0) > 0
            || mult.get(&key(b, e)).copied().unwrap_or(0) > 0
        {
            continue; // would create parallel edge
        }
        // Apply the switch.
        for (u, v) in [(a, b), (c, e)] {
            let k = key(u, v);
            let cnt = mult.get_mut(&k).expect("edge present");
            *cnt -= 1;
            if *cnt == 0 {
                mult.remove(&k);
            }
        }
        *mult.entry(key(a, c)).or_insert(0) += 1;
        *mult.entry(key(b, e)).or_insert(0) += 1;
        edges[di] = if a <= c { (a, c) } else { (c, a) };
        edges[oi] = if b <= e { (b, e) } else { (e, b) };
        // Both rewritten edges are now clean; drop the handled candidate.
        candidates.swap_remove(ci);
    }
    // Final audit (the lazy list may have dropped a candidate whose edge
    // was rewritten into a *different* still-defective pair — impossible by
    // construction, but cheap to verify).
    if edges.iter().any(|&(u, v)| is_defective(&mult, u, v)) {
        return None;
    }

    let mut builder = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        builder
            .add_edge(NodeId::from_u32(u), NodeId::from_u32(v))
            .expect("repair preserves node range");
    }
    Some(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn configuration_model_is_regular() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = configuration_model(200, 6, &mut rng).unwrap();
        assert_eq!(g.node_count(), 200);
        assert_eq!(g.regular_degree(), Some(6));
        assert_eq!(g.edge_count(), 600);
    }

    #[test]
    fn configuration_model_rejects_odd_stubs() {
        let mut rng = SmallRng::seed_from_u64(0);
        let err = configuration_model(5, 3, &mut rng).unwrap_err();
        assert_eq!(err, GraphError::OddStubCount { stub_sum: 15 });
    }

    #[test]
    fn configuration_model_rejects_zero_degree() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(configuration_model(5, 0, &mut rng).is_err());
    }

    #[test]
    fn configuration_model_empty() {
        let mut rng = SmallRng::seed_from_u64(0);
        let g = configuration_model(0, 0, &mut rng).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn random_regular_is_simple_and_regular() {
        let mut rng = SmallRng::seed_from_u64(5);
        for d in [3, 4, 8, 16] {
            let g = random_regular(300, d, &mut rng).unwrap();
            assert!(g.is_simple(), "d={d} not simple");
            assert_eq!(g.regular_degree(), Some(d), "d={d} not regular");
        }
    }

    #[test]
    fn random_regular_connected_whp() {
        // d >= 3 random regular graphs are connected w.h.p.; a few hundred
        // nodes with several seeds should never disconnect.
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = random_regular(256, 4, &mut rng).unwrap();
            assert!(algo::is_connected(&g), "seed {seed} disconnected");
        }
    }

    #[test]
    fn random_regular_rejects_large_degree() {
        let mut rng = SmallRng::seed_from_u64(0);
        let err = random_regular(4, 4, &mut rng).unwrap_err();
        assert_eq!(err, GraphError::DegreeTooLarge { degree: 4, node_count: 4 });
    }

    #[test]
    fn near_regular_band_is_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = random_near_regular(400, 6, 1.5, &mut rng).unwrap();
        let hi = (6.0f64 * 1.5).ceil() as usize;
        for deg in g.degrees() {
            // Parity patch can push one node by one step but stays in band
            // because it only moves toward the interior.
            assert!(deg >= 6 && deg <= hi, "degree {deg} outside [6, {hi}]");
        }
    }

    #[test]
    fn near_regular_rejects_bad_band() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(random_near_regular(10, 4, 0.5, &mut rng).is_err());
        assert!(random_near_regular(10, 0, 2.0, &mut rng).is_err());
    }

    #[test]
    fn gnp_edge_count_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 400;
        let p = 0.02;
        let g = gnp(n, p, &mut rng).unwrap();
        let expected = (n * (n - 1) / 2) as f64 * p;
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < 6.0 * expected.sqrt() + 10.0,
            "edge count {m} too far from expectation {expected}"
        );
        assert!(g.is_simple());
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(gnp(50, 0.0, &mut rng).unwrap().edge_count(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).unwrap().edge_count(), 45);
        assert!(gnp(10, 1.5, &mut rng).is_err());
        assert!(gnp(10, -0.1, &mut rng).is_err());
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g1 = random_regular(128, 6, &mut SmallRng::seed_from_u64(42)).unwrap();
        let g2 = random_regular(128, 6, &mut SmallRng::seed_from_u64(42)).unwrap();
        assert_eq!(g1, g2);
        let g3 = random_regular(128, 6, &mut SmallRng::seed_from_u64(43)).unwrap();
        assert_ne!(g1, g3);
    }
}
