use std::fmt;

/// Identifier of a node (vertex) in a [`Graph`](crate::Graph).
///
/// `NodeId` is a thin newtype over a `u32` index. Graphs in this workspace
/// are dense and index their vertices `0..n`, so a 32-bit index is always
/// sufficient (the paper's experiments top out well below `2^32` nodes) and
/// keeps adjacency arrays compact.
///
/// ```
/// use rrb_graph::NodeId;
/// let v = NodeId::new(42);
/// assert_eq!(v.index(), 42);
/// assert_eq!(format!("{v}"), "v42");
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "node index overflows u32");
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` representation.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Creates a node id from a raw `u32`.
    #[inline]
    pub fn from_u32(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.index()
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = NodeId::new(17);
        assert_eq!(v.index(), 17);
        assert_eq!(v.as_u32(), 17);
        assert_eq!(NodeId::from_u32(17), v);
        assert_eq!(NodeId::from(17u32), v);
        assert_eq!(u32::from(v), 17);
        assert_eq!(usize::from(v), 17);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        assert_eq!(format!("{:?}", NodeId::new(3)), "NodeId(3)");
        assert_eq!(format!("{}", NodeId::new(3)), "v3");
    }
}
