use crate::NodeId;

/// An immutable undirected (multi)graph in compressed sparse row form.
///
/// `Graph` is the workhorse topology type of the workspace. It supports
/// parallel edges and self-loops because the paper's input distribution —
/// the configuration model of §1.2 — produces both with probability
/// `1 - e^{-O(d^2)}`, and the paper analyses the broadcasting algorithm
/// directly on that raw output.
///
/// Degree convention: a self-loop at `v` contributes **2** to `deg(v)`,
/// mirroring the two stubs it consumes in the pairing process. With this
/// convention `sum(deg) == 2 * edge_count()` always holds, which the engine
/// relies on for stub accounting.
///
/// ```
/// use rrb_graph::{Graph, GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
/// b.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
/// b.add_edge(NodeId::new(2), NodeId::new(2)).unwrap(); // self-loop
/// let g: Graph = b.build();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.degree(NodeId::new(2)), 3); // one edge + one self-loop
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR row offsets; `offsets[v]..offsets[v+1]` indexes `targets`.
    offsets: Vec<u32>,
    /// Flattened adjacency; undirected edges appear from both endpoints,
    /// self-loops appear twice in their endpoint's row.
    targets: Vec<NodeId>,
    /// Canonicalised edge list (`u <= v`), one entry per undirected edge,
    /// preserving multiplicity.
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    pub(crate) fn from_parts(
        offsets: Vec<u32>,
        targets: Vec<NodeId>,
        edges: Vec<(NodeId, NodeId)>,
    ) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, targets.len());
        debug_assert_eq!(targets.len(), edges.len() * 2);
        Graph { offsets, targets, edges }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges (a self-loop counts as one edge).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Degree of `v` (self-loops count twice).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Neighbour multiset of `v` as a slice (self-loops appear twice).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> NeighborIter {
        NeighborIter { next: 0, end: self.node_count() as u32 }
    }

    /// Canonicalised edge list (`u <= v`), one entry per undirected edge.
    #[inline]
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter { inner: self.edges.iter() }
    }

    /// Slice view of the canonicalised edge list.
    #[inline]
    pub fn edge_slice(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Iterator over node degrees in index order.
    pub fn degrees(&self) -> impl Iterator<Item = usize> + '_ {
        self.offsets.windows(2).map(|w| (w[1] - w[0]) as usize)
    }

    /// Maximum degree, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.degrees().max().unwrap_or(0)
    }

    /// Minimum degree, or 0 for an empty graph.
    pub fn min_degree(&self) -> usize {
        self.degrees().min().unwrap_or(0)
    }

    /// Returns `Some(d)` if every node has the same degree `d`.
    pub fn regular_degree(&self) -> Option<usize> {
        let mut it = self.degrees();
        let first = it.next()?;
        it.all(|d| d == first).then_some(first)
    }

    /// Number of self-loop edges.
    pub fn self_loop_count(&self) -> usize {
        self.edges.iter().filter(|(u, v)| u == v).count()
    }

    /// Number of surplus parallel edges (an edge with multiplicity `k`
    /// contributes `k - 1`).
    pub fn multi_edge_excess(&self) -> usize {
        if self.edges.is_empty() {
            return 0;
        }
        let mut sorted = self.edges.clone();
        sorted.sort_unstable();
        sorted.windows(2).filter(|w| w[0] == w[1]).count()
    }

    /// `true` iff the graph has no self-loops and no parallel edges.
    pub fn is_simple(&self) -> bool {
        self.self_loop_count() == 0 && self.multi_edge_excess() == 0
    }

    /// Total number of stubs (half-edges); equals `sum(deg) == 2 * m`.
    #[inline]
    pub fn stub_count(&self) -> usize {
        self.targets.len()
    }

    /// `true` iff `u` and `v` are joined by at least one edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Scan the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).contains(&b)
    }

    /// Multiplicity of the edge `{u, v}` (2-per-loop convention folded back:
    /// a single self-loop at `v` yields `edge_multiplicity(v, v) == 1`).
    pub fn edge_multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        let occurrences = self.neighbors(u).iter().filter(|&&w| w == v).count();
        if u == v {
            occurrences / 2
        } else {
            occurrences
        }
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .field("min_degree", &self.min_degree())
            .field("max_degree", &self.max_degree())
            .field("simple", &self.is_simple())
            .finish()
    }
}

/// Iterator over node ids, returned by [`Graph::nodes`].
#[derive(Debug, Clone)]
pub struct NeighborIter {
    next: u32,
    end: u32,
}

impl Iterator for NeighborIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.end {
            let id = NodeId::from_u32(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.end - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NeighborIter {}

/// Iterator over canonicalised undirected edges, returned by [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    inner: std::slice::Iter<'a, (NodeId, NodeId)>,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for EdgeIter<'_> {}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, NodeId};

    fn triangle_with_loop() -> crate::Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(0)).unwrap();
        b.add_edge(NodeId::new(0), NodeId::new(0)).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_with_loop();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.stub_count(), 8);
        assert_eq!(g.degree(NodeId::new(0)), 4); // two triangle edges + loop(2)
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(g.degrees().sum::<usize>(), 2 * g.edge_count());
    }

    #[test]
    fn self_loop_appears_twice_in_adjacency() {
        let g = triangle_with_loop();
        let zero = NodeId::new(0);
        let self_refs = g.neighbors(zero).iter().filter(|&&w| w == zero).count();
        assert_eq!(self_refs, 2);
        assert_eq!(g.edge_multiplicity(zero, zero), 1);
    }

    #[test]
    fn simplicity_detection() {
        let g = triangle_with_loop();
        assert!(!g.is_simple());
        assert_eq!(g.self_loop_count(), 1);
        assert_eq!(g.multi_edge_excess(), 0);

        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(0)).unwrap();
        let g2 = b.build();
        assert_eq!(g2.multi_edge_excess(), 1);
        assert!(!g2.is_simple());
    }

    #[test]
    fn has_edge_and_multiplicity() {
        let g = triangle_with_loop();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(!g.has_edge(NodeId::new(1), NodeId::new(1)));
        assert_eq!(g.edge_multiplicity(NodeId::new(0), NodeId::new(1)), 1);
    }

    #[test]
    fn edge_iter_is_canonical() {
        let g = triangle_with_loop();
        for (u, v) in g.edges() {
            assert!(u <= v);
        }
        assert_eq!(g.edges().len(), 4);
    }

    #[test]
    fn regular_detection() {
        let mut b = GraphBuilder::new(4);
        // 4-cycle: 2-regular.
        for i in 0..4u32 {
            b.add_edge(NodeId::from_u32(i), NodeId::from_u32((i + 1) % 4)).unwrap();
        }
        let g = b.build();
        assert_eq!(g.regular_degree(), Some(2));
        assert!(g.is_simple());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.regular_degree(), None);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = triangle_with_loop();
        let s = format!("{g:?}");
        assert!(s.contains("Graph"));
        assert!(s.contains("nodes"));
    }
}
