use crate::{Graph, GraphError, NodeId, Result};

/// Incremental constructor for [`Graph`].
///
/// The builder accumulates an undirected edge list and compiles it into a
/// compressed sparse row [`Graph`] in `O(n + m)` with a counting sort.
/// Parallel edges and self-loops are accepted (they are meaningful under the
/// configuration model).
///
/// ```
/// use rrb_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(4);
/// for i in 0..4 {
///     b.add_edge(NodeId::new(i), NodeId::new((i + 1) % 4))?;
/// }
/// let cycle = b.build();
/// assert_eq!(cycle.regular_degree(), Some(2));
/// # Ok::<(), rrb_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `node_count` nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        GraphBuilder { node_count, edges: Vec::new() }
    }

    /// Creates a builder with pre-allocated capacity for `edge_capacity`
    /// edges, useful when the final edge count is known (e.g. `nd/2` for a
    /// `d`-regular graph).
    pub fn with_capacity(node_count: usize, edge_capacity: usize) -> Self {
        GraphBuilder { node_count, edges: Vec::with_capacity(edge_capacity) }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`. Self-loops (`u == v`) and repeated
    /// edges are allowed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if either endpoint is not in
    /// `0..node_count`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self> {
        for id in [u, v] {
            if id.index() >= self.node_count {
                return Err(GraphError::NodeOutOfRange {
                    index: id.index(),
                    node_count: self.node_count,
                });
            }
        }
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        Ok(self)
    }

    /// Adds every edge from an iterator of index pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] on the first out-of-range
    /// endpoint; edges before the failure remain recorded.
    pub fn extend_edges<I>(&mut self, iter: I) -> Result<&mut Self>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        for (u, v) in iter {
            self.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(self)
    }

    /// Compiles the accumulated edges into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.node_count;
        let mut degree = vec![0u32; n];
        for &(u, v) in &self.edges {
            degree[u.index()] += 1;
            degree[v.index()] += 1; // self-loop counted twice, as intended
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![NodeId::default(); offsets[n] as usize];
        for &(u, v) in &self.edges {
            targets[cursor[u.index()] as usize] = v;
            cursor[u.index()] += 1;
            targets[cursor[v.index()] as usize] = u;
            cursor[v.index()] += 1;
        }
        Graph::from_parts(offsets, targets, self.edges)
    }
}

/// Builds a graph directly from a node count and an edge list of index pairs.
///
/// Convenience wrapper over [`GraphBuilder`] used pervasively in tests.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfRange`] if any endpoint is out of range.
pub fn graph_from_edges(node_count: usize, edges: &[(usize, usize)]) -> Result<Graph> {
    let mut b = GraphBuilder::with_capacity(node_count, edges.len());
    b.extend_edges(edges.iter().copied())?;
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_path_graph() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(g.neighbors(NodeId::new(1)), &[NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(NodeId::new(0), NodeId::new(5)).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { index: 5, node_count: 2 });
    }

    #[test]
    fn canonicalises_edge_order() {
        let g = graph_from_edges(3, &[(2, 0)]).unwrap();
        assert_eq!(g.edge_slice(), &[(NodeId::new(0), NodeId::new(2))]);
    }

    #[test]
    fn with_capacity_matches_new() {
        let a = GraphBuilder::new(5);
        let b = GraphBuilder::with_capacity(5, 100);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(b.edge_count(), 0);
    }

    #[test]
    fn builder_is_chainable() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1))
            .unwrap()
            .add_edge(NodeId::new(1), NodeId::new(2))
            .unwrap();
        assert_eq!(b.edge_count(), 2);
    }
}
