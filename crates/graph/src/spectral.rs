//! Spectral and expansion diagnostics.
//!
//! The lower-bound proof (Theorem 1) leans on two facts about random
//! `d`-regular graphs: the second adjacency eigenvalue satisfies
//! `λ₂ ≤ 2√(d−1)·(1+o(1))` w.h.p. (Friedman \[18\]), and the Expander Mixing
//! Lemma \[23\] then pins the number of edges across every cut to within
//! `λ₂·√(|S||S̄|)` of its expectation. This module measures both quantities
//! on concrete samples (experiment E15), closing the loop between the
//! generator and the structural assumptions of the analysis.

use rand::Rng;

use crate::{Graph, GraphError, NodeId, Result};

/// Outcome of the power iteration for the second-largest adjacency
/// eigenvalue (in absolute value) of a regular graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondEigenvalue {
    /// Estimated `|λ₂|`.
    pub value: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final Rayleigh-quotient residual `‖Ax − λx‖ / ‖x‖` (smaller = more
    /// converged).
    pub residual: f64,
}

impl SecondEigenvalue {
    /// Ratio of the estimate against the Ramanujan bound `2√(d−1)`; values
    /// near (or below) 1 certify near-optimal expansion.
    pub fn ramanujan_ratio(&self, d: usize) -> f64 {
        if d <= 1 {
            return f64::INFINITY;
        }
        self.value / (2.0 * ((d - 1) as f64).sqrt())
    }
}

/// Estimates the largest **absolute** non-principal adjacency eigenvalue of
/// a **regular** graph — `max(|λ₂|, |λ_n|)`, exactly the constant the
/// Expander Mixing Lemma uses — by power iteration with deflation of the
/// Perron vector (the all-ones vector in the regular case).
///
/// For bipartite graphs this returns `d` (the `−d` eigenvalue); random
/// regular graphs with `d ≥ 3` are non-bipartite w.h.p. and the estimate
/// matches Friedman's `2√(d−1)(1+o(1))` bound.
///
/// # Errors
///
/// * [`GraphError::EmptyGraph`] for graphs without nodes.
/// * [`GraphError::InvalidParameter`] if the graph is not regular (the
///   deflation step would be wrong) or `max_iters == 0`.
///
/// # Examples
///
/// ```
/// use rand::{SeedableRng, rngs::SmallRng};
/// use rrb_graph::{gen, spectral};
/// let mut rng = SmallRng::seed_from_u64(1);
/// let g = gen::random_regular(256, 6, &mut rng)?;
/// let l2 = spectral::second_eigenvalue(&g, 300, &mut rng)?;
/// // Friedman: λ₂ ≈ 2√(d−1) for random regular graphs.
/// assert!(l2.ramanujan_ratio(6) < 1.3);
/// # Ok::<(), rrb_graph::GraphError>(())
/// ```
pub fn second_eigenvalue<R: Rng + ?Sized>(
    g: &Graph,
    max_iters: usize,
    rng: &mut R,
) -> Result<SecondEigenvalue> {
    let n = g.node_count();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if max_iters == 0 {
        return Err(GraphError::InvalidParameter { what: "max_iters must be positive" });
    }
    if g.regular_degree().is_none() {
        return Err(GraphError::InvalidParameter {
            what: "second_eigenvalue requires a regular graph",
        });
    }

    let mut x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    deflate_mean(&mut x);
    normalize(&mut x);

    let mut y = vec![0.0f64; n];
    let mut lambda = 0.0f64;
    let mut iterations = 0usize;
    for it in 0..max_iters {
        iterations = it + 1;
        multiply_adjacency(g, &x, &mut y);
        deflate_mean(&mut y);
        let norm = l2_norm(&y);
        if norm < 1e-300 {
            // x was (numerically) in the kernel; λ₂ ≈ 0.
            return Ok(SecondEigenvalue { value: 0.0, iterations, residual: 0.0 });
        }
        let new_lambda = norm; // ‖Ax‖ for unit x bounds |λ|; converges to it
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
        if (new_lambda - lambda).abs() <= 1e-10 * new_lambda.max(1.0) && it > 8 {
            lambda = new_lambda;
            break;
        }
        lambda = new_lambda;
    }

    // Residual ‖Ax − λx‖ with λ the Rayleigh quotient.
    multiply_adjacency(g, &x, &mut y);
    deflate_mean(&mut y);
    let rq: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
    let mut res = 0.0;
    for (xi, yi) in x.iter().zip(&y) {
        let diff = yi - rq * xi;
        res += diff * diff;
    }
    let _ = lambda; // norm-based estimate superseded by the Rayleigh quotient
    Ok(SecondEigenvalue { value: rq.abs(), iterations, residual: res.sqrt() })
}

/// One summary row of an Expander-Mixing-Lemma audit (see
/// [`expander_mixing_deviation`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixingSample {
    /// Size of the sampled set `S`.
    pub set_size: usize,
    /// Observed `|E(S, S̄)|`.
    pub cut_edges: usize,
    /// Expected `d·|S|·|S̄| / n`.
    pub expected: f64,
    /// `|observed − expected| / √(|S||S̄|)` — the mixing lemma bounds this by
    /// `λ₂`.
    pub normalized_deviation: f64,
}

/// Samples `samples` random vertex subsets and reports, for each, how far
/// the cut size deviates from the Expander Mixing Lemma's prediction.
///
/// For a `d`-regular graph with second eigenvalue `λ`, the lemma states
/// `| |E(S,S̄)| − d|S||S̄|/n | ≤ λ·√(|S||S̄|)`; the returned
/// `normalized_deviation`s should therefore all be ≤ the measured `λ₂`.
///
/// # Errors
///
/// * [`GraphError::EmptyGraph`] for graphs without nodes.
/// * [`GraphError::InvalidParameter`] if the graph is not regular.
pub fn expander_mixing_deviation<R: Rng + ?Sized>(
    g: &Graph,
    samples: usize,
    rng: &mut R,
) -> Result<Vec<MixingSample>> {
    let n = g.node_count();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let d = g.regular_degree().ok_or(GraphError::InvalidParameter {
        what: "expander_mixing_deviation requires a regular graph",
    })? as f64;
    let mut out = Vec::with_capacity(samples);
    let mut in_set = vec![false; n];
    for _ in 0..samples {
        let size = rng.gen_range(1..n.max(2));
        in_set.iter_mut().for_each(|b| *b = false);
        // Random subset of the requested size via partial Fisher-Yates.
        let mut ids: Vec<usize> = (0..n).collect();
        for i in 0..size {
            let j = rng.gen_range(i..n);
            ids.swap(i, j);
            in_set[ids[i]] = true;
        }
        let cut = edge_boundary(g, &in_set);
        let s = size as f64;
        let sbar = (n - size) as f64;
        let expected = d * s * sbar / n as f64;
        let denom = (s * sbar).sqrt();
        out.push(MixingSample {
            set_size: size,
            cut_edges: cut,
            expected,
            normalized_deviation: (cut as f64 - expected).abs() / denom,
        });
    }
    Ok(out)
}

/// Number of edges with exactly one endpoint in the indicator set
/// (self-loops never cross a cut).
pub fn edge_boundary(g: &Graph, in_set: &[bool]) -> usize {
    g.edges()
        .filter(|&(u, v)| in_set[u.index()] != in_set[v.index()])
        .count()
}

/// Conductance-style expansion of the set: `|E(S,S̄)| / (d·min(|S|,|S̄|))`
/// for a `d`-regular graph. Returns `None` for empty or full sets, or if the
/// graph is not regular.
pub fn set_expansion(g: &Graph, in_set: &[bool]) -> Option<f64> {
    let d = g.regular_degree()?;
    let size = in_set.iter().filter(|&&b| b).count();
    let n = g.node_count();
    if size == 0 || size == n {
        return None;
    }
    let vol = d * size.min(n - size);
    Some(edge_boundary(g, in_set) as f64 / vol as f64)
}

fn multiply_adjacency(g: &Graph, x: &[f64], y: &mut [f64]) {
    for (v, yv) in y.iter_mut().enumerate().take(g.node_count()) {
        let mut acc = 0.0;
        for &w in g.neighbors(NodeId::new(v)) {
            acc += x[w.index()];
        }
        *yv = acc;
    }
}

fn deflate_mean(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    x.iter_mut().for_each(|v| *v -= mean);
}

fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

fn normalize(x: &mut [f64]) {
    let norm = l2_norm(x);
    if norm > 0.0 {
        x.iter_mut().for_each(|v| *v /= norm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_second_eigenvalue_is_one() {
        // K_n has spectrum {n-1, -1, ..., -1}: |λ₂| = 1.
        let g = gen::complete(30);
        let mut rng = SmallRng::seed_from_u64(2);
        let l2 = second_eigenvalue(&g, 200, &mut rng).unwrap();
        assert!((l2.value - 1.0).abs() < 1e-6, "got {}", l2.value);
    }

    #[test]
    fn even_cycle_is_bipartite_so_lambda_is_two() {
        // C_n (even n) is bipartite: the -2 eigenvalue dominates in absolute
        // value, and that is precisely the mixing-lemma constant.
        let g = gen::cycle(24);
        let mut rng = SmallRng::seed_from_u64(3);
        let l2 = second_eigenvalue(&g, 4000, &mut rng).unwrap();
        assert!((l2.value - 2.0).abs() < 1e-3, "got {}", l2.value);
    }

    #[test]
    fn odd_cycle_second_eigenvalue_is_2cos() {
        // C_n (odd) has non-principal eigenvalues 2cos(2πk/n); the largest in
        // absolute value is |2cos(π(n−1)/n)| = 2cos(π/n).
        let n = 25usize;
        let g = gen::cycle(n);
        let mut rng = SmallRng::seed_from_u64(3);
        let l2 = second_eigenvalue(&g, 8000, &mut rng).unwrap();
        let expect = 2.0 * (std::f64::consts::PI / n as f64).cos();
        assert!((l2.value - expect).abs() < 1e-3, "got {} want {expect}", l2.value);
    }

    #[test]
    fn hypercube_is_bipartite_so_lambda_is_dim() {
        // Q_dim has eigenvalues dim - 2k including -dim (bipartite).
        let g = gen::hypercube(4);
        let mut rng = SmallRng::seed_from_u64(4);
        let l2 = second_eigenvalue(&g, 2000, &mut rng).unwrap();
        assert!((l2.value - 4.0).abs() < 1e-4, "got {}", l2.value);
    }

    #[test]
    fn random_regular_is_near_ramanujan() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::random_regular(512, 6, &mut rng).unwrap();
        let l2 = second_eigenvalue(&g, 500, &mut rng).unwrap();
        let ratio = l2.ramanujan_ratio(6);
        assert!(ratio < 1.35, "λ₂ ratio too large: {ratio}");
        assert!(ratio > 0.5, "λ₂ ratio implausibly small: {ratio}");
    }

    #[test]
    fn rejects_irregular_and_empty() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(second_eigenvalue(&gen::complete(0), 10, &mut rng).is_err());
        assert!(second_eigenvalue(&gen::star(5), 10, &mut rng).is_err());
        assert!(second_eigenvalue(&gen::complete(4), 0, &mut rng).is_err());
    }

    #[test]
    fn edge_boundary_counts() {
        let g = gen::cycle(6);
        let mut in_set = vec![false; 6];
        in_set[0] = true;
        in_set[1] = true;
        in_set[2] = true;
        assert_eq!(edge_boundary(&g, &in_set), 2);
        let exp = set_expansion(&g, &in_set).unwrap();
        assert!((exp - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn mixing_deviation_bounded_by_lambda2() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = gen::random_regular(256, 8, &mut rng).unwrap();
        let l2 = second_eigenvalue(&g, 400, &mut rng).unwrap();
        let samples = expander_mixing_deviation(&g, 40, &mut rng).unwrap();
        for s in samples {
            assert!(
                s.normalized_deviation <= l2.value * 1.05 + 0.2,
                "mixing deviation {} exceeds λ₂ {}",
                s.normalized_deviation,
                l2.value
            );
        }
    }

    #[test]
    fn set_expansion_edge_cases() {
        let g = gen::cycle(4);
        assert!(set_expansion(&g, &[false; 4]).is_none());
        assert!(set_expansion(&g, &[true; 4]).is_none());
        assert!(set_expansion(&gen::star(4), &[true, false, false, false]).is_none());
    }
}
