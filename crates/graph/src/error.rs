use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The requested degree sequence has an odd sum, so no graph (even a
    /// multigraph) can realise it: every edge consumes exactly two stubs.
    OddStubCount {
        /// Sum of the requested degrees.
        stub_sum: usize,
    },
    /// A regular graph with `degree >= node_count` was requested; a simple
    /// graph can have degree at most `n - 1`.
    DegreeTooLarge {
        /// Requested degree.
        degree: usize,
        /// Number of nodes.
        node_count: usize,
    },
    /// The degree sequence fails the Erdős–Gallai condition and therefore is
    /// not realisable as a *simple* graph.
    NotGraphical,
    /// Randomised generation (e.g. repair of the pairing model into a simple
    /// graph) did not converge within the attempt budget.
    GenerationFailed {
        /// Number of attempts made before giving up.
        attempts: usize,
    },
    /// An edge endpoint referenced a node outside `0..node_count`.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of nodes in the graph under construction.
        node_count: usize,
    },
    /// An operation required a non-empty graph.
    EmptyGraph,
    /// A parameter was outside its meaningful domain (e.g. a probability
    /// not in `\[0, 1\]`).
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        what: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::OddStubCount { stub_sum } => {
                write!(f, "degree sum {stub_sum} is odd; stubs cannot be paired")
            }
            GraphError::DegreeTooLarge { degree, node_count } => write!(
                f,
                "degree {degree} is not realisable on {node_count} nodes as a simple graph"
            ),
            GraphError::NotGraphical => {
                write!(f, "degree sequence violates the Erdős–Gallai condition")
            }
            GraphError::GenerationFailed { attempts } => {
                write!(f, "random generation failed to converge after {attempts} attempts")
            }
            GraphError::NodeOutOfRange { index, node_count } => {
                write!(f, "node index {index} out of range for graph with {node_count} nodes")
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (GraphError::OddStubCount { stub_sum: 9 }, "9"),
            (
                GraphError::DegreeTooLarge { degree: 10, node_count: 5 },
                "10",
            ),
            (GraphError::NotGraphical, "Erd"),
            (GraphError::GenerationFailed { attempts: 3 }, "3"),
            (
                GraphError::NodeOutOfRange { index: 7, node_count: 4 },
                "7",
            ),
            (GraphError::EmptyGraph, "non-empty"),
            (
                GraphError::InvalidParameter { what: "p must lie in [0,1]" },
                "[0,1]",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "message {msg:?} missing {needle:?}");
        }
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn Error> = Box::new(GraphError::EmptyGraph);
        assert!(err.to_string().contains("non-empty"));
    }
}
