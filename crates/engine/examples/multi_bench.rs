//! Sparse-informed multi-rumour reference workload tracking the
//! multi-rumour round-loop cost: 32 staggered rumours on a 2^16-node
//! 5-regular graph. Most rounds carry only a few unsettled rumours whose
//! informed sets are far smaller than `n`, so any per-round work scaling
//! O(n * rumours) dominates — the regime the informed-index arena port
//! fixed (old per-node `Vec<Observation>` loop: 5.81 s / 40.6 ms/round;
//! arena + retirement port: 1.70 s / 11.9 ms/round on the same 1-core
//! host, identical per-rumour trajectories).
//!
//! Run with `cargo run --release -p rrb-engine --example multi_bench`.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rrb_engine::{protocols::FloodPushPull, MultiRumorSimulation, RumorInjection, SimConfig};
use rrb_graph::{gen, NodeId};

fn main() {
    let n = 1usize << 16;
    let d = 5usize;
    let rumors = 32u32;
    let mut rng = SmallRng::seed_from_u64(42);
    let g = gen::random_regular(n, d, &mut rng).expect("graph generation");

    let mut sim = MultiRumorSimulation::new(
        FloodPushPull::new(),
        SimConfig::default().with_max_rounds(400),
    );
    for i in 0..rumors {
        sim.inject(RumorInjection { birth: i * 4, origin: NodeId::new((i as usize * 977) % n) });
    }

    let start = Instant::now();
    let report = sim.run(&g, &mut rng);
    let wall = start.elapsed().as_secs_f64();
    println!(
        "n = {n}, d = {d}, rumors = {rumors}: {} rounds, all_delivered = {}, \
         combining_ratio = {:.3}, wall = {:.2}s ({:.1} ms/round)",
        report.rounds,
        report.all_delivered(),
        report.combining_ratio(),
        wall,
        wall * 1e3 / report.rounds.max(1) as f64,
    );
}
