use crate::{ChoicePolicy, Observation, RumorMeta};

/// Round counter. The rumour is created at time 0 and the first
/// communication round is round 1, so a rumour's *age* during round `t`
/// equals `t` (paper §3).
pub type Round = u32;

/// What a node decides to do in a round, produced by [`Protocol::plan`].
///
/// Only *informed* nodes are asked for a plan — an uninformed node has
/// nothing to transmit. Note that `pull_serve` answers channels *opened by
/// others towards this node*; in the phone call model every node keeps
/// opening channels regardless of its informed status, so an uninformed
/// caller can still receive via pull.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Plan {
    /// Transmit the rumour over every outgoing channel (push).
    pub push: bool,
    /// Transmit the rumour over every incoming channel (pull).
    pub pull_serve: bool,
    /// Header attached to every copy sent this round.
    pub meta: RumorMeta,
}

impl Plan {
    /// A plan that transmits nothing.
    pub const SILENT: Plan =
        Plan { push: false, pull_serve: false, meta: RumorMeta { age: 0, counter: 0 } };

    /// Push-only plan with the given header.
    pub fn push_with(meta: RumorMeta) -> Plan {
        Plan { push: true, pull_serve: false, meta }
    }

    /// Pull-serve-only plan with the given header.
    pub fn pull_with(meta: RumorMeta) -> Plan {
        Plan { push: false, pull_serve: true, meta }
    }

    /// Push-and-pull plan with the given header.
    pub fn push_pull_with(meta: RumorMeta) -> Plan {
        Plan { push: true, pull_serve: true, meta }
    }

    /// `true` if this plan transmits at all.
    pub fn transmits(&self) -> bool {
        self.push || self.pull_serve
    }
}

/// Static description of the transmission directions a protocol can ever
/// use, reported by [`Protocol::capabilities`].
///
/// The engine uses this to pick fast paths. The key one: if a protocol
/// never serves pulls (`uses_pull == false`), channels opened by
/// *uninformed* nodes can never carry a rumour (a push travels
/// caller→callee, and an uninformed caller has nothing to push; a pull
/// travels callee→caller only when the callee pull-serves), so the engine
/// skips sampling their targets entirely. Skipped channels are still
/// *counted* — channel opening is part of the model — but cost no RNG
/// draws and no buffer traffic.
///
/// Capabilities must be **conservative**: report a direction as used if the
/// protocol could ever transmit in it. The default is [`Capabilities::ALL`],
/// which disables every capability-gated shortcut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// The protocol may push (caller → callee) in some round.
    pub uses_push: bool,
    /// The protocol may pull-serve (callee → caller) in some round.
    pub uses_pull: bool,
}

impl Capabilities {
    /// Both directions possible (the conservative default).
    pub const ALL: Capabilities = Capabilities { uses_push: true, uses_pull: true };
    /// Push-only protocols (flood push, budgeted push, quasirandom push).
    pub const PUSH_ONLY: Capabilities = Capabilities { uses_push: true, uses_pull: false };
    /// Pull-only protocols (flood pull, budgeted pull).
    pub const PULL_ONLY: Capabilities = Capabilities { uses_push: false, uses_pull: true };
    /// Never transmits at all.
    pub const SILENT: Capabilities = Capabilities { uses_push: false, uses_pull: false };
}

impl Default for Capabilities {
    fn default() -> Self {
        Capabilities::ALL
    }
}

/// Read-only view of a node handed to [`Protocol::plan`].
#[derive(Debug, Clone, Copy)]
pub struct NodeView<'a, S> {
    /// Round in which this node first received the rumour (0 for the
    /// creator). `plan` is only invoked on informed nodes, so this is the
    /// actual reception round.
    pub informed_at: Round,
    /// Whether this node created the rumour.
    pub is_creator: bool,
    /// Protocol-specific state.
    pub state: &'a S,
}

/// A gossip protocol in the (extended) random phone call model.
///
/// Implementations are **address-oblivious state machines**: the engine
/// opens channels according to [`choice_policy`](Protocol::choice_policy),
/// asks every informed node for a [`Plan`], performs the exchanges, and
/// feeds each node the resulting [`Observation`]. All decisions may depend
/// only on local state, the global round and rumour headers — never on
/// partner identities, which is exactly the restriction of the paper's
/// model (§1.2).
///
/// The paper's Algorithms 1 and 2 live in `rrb-core`; the classic baselines
/// (push, pull, push&pull, median-counter, quasirandom) in `rrb-baselines`;
/// trivially simple reference protocols in [`crate::protocols`].
///
/// Protocols (and their states) must be `Send + Sync`: the sharded step
/// path fans the RNG-free plan/exchange/update phases out over worker
/// threads, each holding a shared `&Protocol` and disjoint `&mut` state
/// chunks. Protocols are plain data (address-oblivious state machines),
/// so the bounds are vacuous in practice.
pub trait Protocol: Send + Sync {
    /// Protocol-specific per-node state.
    type State: Clone + std::fmt::Debug + Send + Sync;

    /// Initial state; `creator` is true for the rumour's origin.
    fn init(&self, creator: bool) -> Self::State;

    /// Channel-opening policy used by **all** nodes, informed or not.
    fn choice_policy(&self) -> ChoicePolicy;

    /// Decide this round's transmissions for an informed node.
    fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan;

    /// Digest this round's observation. Called for every node that received
    /// at least one copy this round, *and* for every informed node (so
    /// counter-based protocols can advance even in silent rounds); `informed_at`
    /// is `Some` iff the node is informed after this round's exchanges.
    fn update(
        &self,
        state: &mut Self::State,
        informed_at: Option<Round>,
        t: Round,
        obs: &Observation,
    );

    /// `true` once the node will never transmit again in any round `>= t`.
    /// Must be monotone in `t`; the engine uses it to terminate runs early
    /// once every informed node is permanently silent.
    fn is_quiescent(&self, state: &Self::State, view_informed_at: Round, t: Round) -> bool;

    /// Upper bound on rounds the protocol is designed to run (its Monte
    /// Carlo deadline), used as the default round cap; `None` means
    /// "until the engine's configured cap".
    fn deadline(&self) -> Option<Round> {
        None
    }

    /// Transmission directions this protocol can ever use; must be
    /// conservative (see [`Capabilities`]). Defaults to
    /// [`Capabilities::ALL`], which keeps every engine shortcut disabled.
    fn capabilities(&self) -> Capabilities {
        Capabilities::ALL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capabilities_constants_and_default() {
        assert_eq!(Capabilities::default(), Capabilities::ALL);
        let cases = [
            (Capabilities::ALL, true, true),
            (Capabilities::PUSH_ONLY, true, false),
            (Capabilities::PULL_ONLY, false, true),
            (Capabilities::SILENT, false, false),
        ];
        for (caps, uses_push, uses_pull) in cases {
            assert_eq!(caps, Capabilities { uses_push, uses_pull });
        }
    }

    #[test]
    fn plan_constructors() {
        let meta = RumorMeta { age: 7, counter: 1 };
        assert!(Plan::push_with(meta).push);
        assert!(!Plan::push_with(meta).pull_serve);
        assert!(Plan::pull_with(meta).pull_serve);
        let both = Plan::push_pull_with(meta);
        assert!(both.push && both.pull_serve && both.transmits());
        assert!(!Plan::SILENT.transmits());
    }
}
