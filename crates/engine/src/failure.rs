use rand::Rng;

/// Stochastic failure injection for the communication layer.
///
/// The paper claims (abstract, §1) that the algorithm "efficiently handles
/// limited communication failures". This model covers the two natural
/// failure surfaces of the phone call model:
///
/// * **channel failures** — the whole bidirectional channel of a call is
///   dead for the round (models a failed connection establishment);
/// * **transmission failures** — an individual rumour copy is lost in
///   transit while the channel itself stays usable in the other direction.
///
/// Failures are sampled independently per channel / per transmission with
/// the given probabilities. [`FailureModel::NONE`] (the default) disables
/// injection entirely and skips all sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Probability that an opened channel is unusable this round.
    pub channel_failure: f64,
    /// Probability that an individual transmission over a live channel is
    /// dropped.
    pub transmission_failure: f64,
    /// Per-round probability that a node **crash-stops**: it permanently
    /// stops opening channels, transmitting and receiving. Crashed nodes
    /// are excluded from coverage accounting (they model fail-stop peers,
    /// as opposed to the graceful departures handled by the churn overlay).
    pub node_crash: f64,
}

impl FailureModel {
    /// No failures at all.
    pub const NONE: FailureModel =
        FailureModel { channel_failure: 0.0, transmission_failure: 0.0, node_crash: 0.0 };

    /// Channels fail independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)` — a failure probability of 1 would
    /// make every experiment trivially degenerate.
    pub fn channels(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "channel failure probability must be in [0,1)");
        FailureModel { channel_failure: p, ..FailureModel::NONE }
    }

    /// Transmissions are dropped independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn transmissions(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "transmission failure probability must be in [0,1)");
        FailureModel { transmission_failure: p, ..FailureModel::NONE }
    }

    /// Nodes crash-stop independently with per-round probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn crashes(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "node crash probability must be in [0,1)");
        FailureModel { node_crash: p, ..FailureModel::NONE }
    }

    /// Builder-style: add per-round node crashes to an existing model.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn with_crashes(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "node crash probability must be in [0,1)");
        self.node_crash = p;
        self
    }

    /// `true` when no failure sampling is needed.
    #[inline]
    pub fn is_none(&self) -> bool {
        self.channel_failure == 0.0 && self.transmission_failure == 0.0 && self.node_crash == 0.0
    }

    /// Samples whether a node crash-stops this round.
    #[inline]
    pub fn crashes_now<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.node_crash > 0.0 && rng.gen_bool(self.node_crash)
    }

    /// Samples whether a freshly opened channel survives.
    #[inline]
    pub fn channel_ok<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.channel_failure == 0.0 || !rng.gen_bool(self.channel_failure)
    }

    /// Samples whether a single transmission over a live channel arrives.
    #[inline]
    pub fn transmission_ok<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.transmission_failure == 0.0 || !rng.gen_bool(self.transmission_failure)
    }
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_fails() {
        let mut rng = SmallRng::seed_from_u64(0);
        let f = FailureModel::NONE;
        assert!(f.is_none());
        for _ in 0..100 {
            assert!(f.channel_ok(&mut rng));
            assert!(f.transmission_ok(&mut rng));
            assert!(!f.crashes_now(&mut rng));
        }
    }

    #[test]
    fn crash_rate_is_respected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let f = FailureModel::crashes(0.05);
        assert!(!f.is_none());
        let crashes = (0..20_000).filter(|_| f.crashes_now(&mut rng)).count();
        let rate = crashes as f64 / 20_000.0;
        assert!((rate - 0.05).abs() < 0.01, "observed crash rate {rate}");
    }

    #[test]
    fn with_crashes_composes() {
        let f = FailureModel::channels(0.1).with_crashes(0.01);
        assert_eq!(f.channel_failure, 0.1);
        assert_eq!(f.node_crash, 0.01);
        assert_eq!(f.transmission_failure, 0.0);
    }

    #[test]
    #[should_panic(expected = "node crash probability")]
    fn rejects_certain_crash() {
        let _ = FailureModel::crashes(1.0);
    }

    #[test]
    fn failure_rates_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let f = FailureModel::channels(0.3);
        let fails = (0..20_000).filter(|_| !f.channel_ok(&mut rng)).count();
        let rate = fails as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed failure rate {rate}");
    }

    #[test]
    fn transmission_rate() {
        let mut rng = SmallRng::seed_from_u64(2);
        let f = FailureModel::transmissions(0.1);
        let fails = (0..20_000).filter(|_| !f.transmission_ok(&mut rng)).count();
        let rate = fails as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    #[should_panic(expected = "channel failure probability")]
    fn rejects_certain_failure() {
        let _ = FailureModel::channels(1.0);
    }

    #[test]
    fn default_is_none() {
        assert_eq!(FailureModel::default(), FailureModel::NONE);
    }
}
