use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Round;

/// Stochastic failure injection for the communication layer.
///
/// The paper claims (abstract, §1) that the algorithm "efficiently handles
/// limited communication failures". This model covers the two natural
/// failure surfaces of the phone call model:
///
/// * **channel failures** — the whole bidirectional channel of a call is
///   dead for the round (models a failed connection establishment);
/// * **transmission failures** — an individual rumour copy is lost in
///   transit while the channel itself stays usable in the other direction.
///
/// Failures are sampled independently per channel / per transmission with
/// the given probabilities. [`FailureModel::NONE`] (the default) disables
/// injection entirely and skips all sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Probability that an opened channel is unusable this round.
    pub channel_failure: f64,
    /// Probability that an individual transmission over a live channel is
    /// dropped.
    pub transmission_failure: f64,
    /// Per-round probability that a node **crash-stops**: it permanently
    /// stops opening channels, transmitting and receiving. Crashed nodes
    /// are excluded from coverage accounting (they model fail-stop peers,
    /// as opposed to the graceful departures handled by the churn overlay).
    pub node_crash: f64,
}

impl FailureModel {
    /// No failures at all.
    pub const NONE: FailureModel =
        FailureModel { channel_failure: 0.0, transmission_failure: 0.0, node_crash: 0.0 };

    /// Channels fail independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)` — a failure probability of 1 would
    /// make every experiment trivially degenerate.
    pub fn channels(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "channel failure probability must be in [0,1)");
        FailureModel { channel_failure: p, ..FailureModel::NONE }
    }

    /// Builder-style: set the channel failure rate on an existing model.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn with_channels(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "channel failure probability must be in [0,1)");
        self.channel_failure = p;
        self
    }

    /// Builder-style: set the transmission drop rate on an existing model.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn with_transmissions(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "transmission failure probability must be in [0,1)");
        self.transmission_failure = p;
        self
    }

    /// Transmissions are dropped independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn transmissions(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "transmission failure probability must be in [0,1)");
        FailureModel { transmission_failure: p, ..FailureModel::NONE }
    }

    /// Nodes crash-stop independently with per-round probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn crashes(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "node crash probability must be in [0,1)");
        FailureModel { node_crash: p, ..FailureModel::NONE }
    }

    /// Builder-style: add per-round node crashes to an existing model.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn with_crashes(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "node crash probability must be in [0,1)");
        self.node_crash = p;
        self
    }

    /// `true` when no failure sampling is needed.
    #[inline]
    pub fn is_none(&self) -> bool {
        self.channel_failure == 0.0 && self.transmission_failure == 0.0 && self.node_crash == 0.0
    }

    /// Samples whether a node crash-stops this round.
    #[inline]
    pub fn crashes_now<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.node_crash > 0.0 && rng.gen_bool(self.node_crash)
    }

    /// Samples whether a freshly opened channel survives.
    #[inline]
    pub fn channel_ok<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.channel_failure == 0.0 || !rng.gen_bool(self.channel_failure)
    }

    /// Samples whether a single transmission over a live channel arrives.
    #[inline]
    pub fn transmission_ok<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.transmission_failure == 0.0 || !rng.gen_bool(self.transmission_failure)
    }
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel::NONE
    }
}

/// Parameters of a **Gilbert–Elliott** two-state (good/bad) burst-loss
/// chain. Each node carries two independent chains — one for its outgoing
/// channel ends, one for its incoming ends — so loss is *correlated in
/// time* (bad states persist across rounds) and *correlated across the
/// channels of a node* (every channel touching a bad end suffers), unlike
/// the i.i.d. [`FailureModel::channel_failure`] draws.
///
/// A channel `i → w` is lost with probability
/// `1 − (1 − loss(state_out(i))) · (1 − loss(state_in(w)))`, combined with
/// any baseline i.i.d. channel failure rate. Chains start in the good
/// state and advance once per round on the fault layer's **reserved RNG
/// stream** (exactly `2n` draws per round), so the main simulation stream
/// is untouched and runs stay seed-for-seed reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-round probability of a good→bad transition.
    pub p_gb: f64,
    /// Per-round probability of a bad→good transition (recovery).
    pub p_bg: f64,
    /// Channel-end loss probability while in the good state.
    pub loss_good: f64,
    /// Channel-end loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics unless `p_gb`/`p_bg` are in `[0, 1]` and the loss rates are
    /// in `[0, 1]` (a bad state may be a total outage).
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (name, p) in
            [("p_gb", p_gb), ("p_bg", p_bg), ("loss_good", loss_good), ("loss_bad", loss_bad)]
        {
            assert!((0.0..=1.0).contains(&p), "Gilbert–Elliott {name} must be in [0,1]");
        }
        GilbertElliott { p_gb, p_bg, loss_good, loss_bad }
    }

    /// Loss probability of one channel end in the given state.
    #[inline]
    fn loss(&self, bad: bool) -> f64 {
        if bad {
            self.loss_bad
        } else {
            self.loss_good
        }
    }
}

/// One deterministic, round-keyed event of a scripted fault schedule.
/// All windows are half-open `[from, until)` in global rounds (the first
/// simulated round is 1).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Split the overlay into `parts` components for rounds
    /// `[from, until)`, then heal. Node `i` belongs to component
    /// `i mod parts`; channels across components fail to establish (no
    /// cost, no RNG draw — like calling a crashed peer).
    Partition {
        /// First round the partition is active.
        from: Round,
        /// First round after the heal.
        until: Round,
        /// Number of components.
        parts: u32,
    },
    /// Crash-stop the listed nodes at round `at` (already-crashed or dead
    /// entries are ignored).
    CrashNodes {
        /// Round at which the crash fires.
        at: Round,
        /// Node indices to crash.
        nodes: Vec<u32>,
    },
    /// Override the i.i.d. loss rates during `[from, until)`; `None`
    /// leaves the base model's rate in force. Models a lossy spell
    /// ("raise transmission loss to q during a window").
    LossWindow {
        /// First round of the lossy window.
        from: Round,
        /// First round after the window.
        until: Round,
        /// Channel failure rate during the window, if overridden.
        channel: Option<f64>,
        /// Transmission drop rate during the window, if overridden.
        transmission: Option<f64>,
    },
}

/// Targeting rule of the budget-limited adversary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryTarget {
    /// Crash the highest-degree alive nodes (hub removal); ties break
    /// towards the lower node index.
    HighestDegree,
    /// Crash the earliest-informed alive nodes (the rumour's oldest
    /// carriers, origin first); ties break towards the lower index.
    EarliestInformed,
}

/// A budget-limited adversary that **crash-stops** targeted nodes each
/// round. Selection is deterministic (no RNG): among eligible nodes it
/// takes the top `per_round` by the targeting rule until `budget` total
/// crashes have been spent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversarySpec {
    /// What the adversary aims at.
    pub target: AdversaryTarget,
    /// Crashes per round (subject to the remaining budget).
    pub per_round: usize,
    /// Total crash budget over the whole run.
    pub budget: usize,
    /// First round the adversary acts (default 1 — immediately).
    pub from_round: Round,
}

impl AdversarySpec {
    /// Adversary with the given rule, per-round strength and total budget,
    /// acting from round 1.
    pub fn new(target: AdversaryTarget, per_round: usize, budget: usize) -> Self {
        AdversarySpec { target, per_round, budget, from_round: 1 }
    }
}

/// Transient-outage model: each round every *up* node goes silent with
/// probability `rate` for a duration drawn uniformly from
/// `[min_down, max_down]` rounds, then recovers **with state intact** —
/// the census's `suspended` mode, distinct from crash-stop. Suspended
/// nodes open no channels, transmit nothing, receive nothing, and their
/// protocol state is frozen, but they stay in the coverage denominator:
/// coverage stalls while they are down and resumes on recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageSpec {
    /// Per-node per-round suspension probability.
    pub rate: f64,
    /// Minimum outage length in rounds (inclusive, clamped to ≥ 1).
    pub min_down: Round,
    /// Maximum outage length in rounds (inclusive).
    pub max_down: Round,
}

impl OutageSpec {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1)` and `min_down <= max_down`.
    pub fn new(rate: f64, min_down: Round, max_down: Round) -> Self {
        assert!((0.0..1.0).contains(&rate), "outage rate must be in [0,1)");
        assert!(min_down <= max_down, "outage min_down must not exceed max_down");
        OutageSpec { rate, min_down: min_down.max(1), max_down: max_down.max(1) }
    }
}

/// A full adversarial fault plan: correlated burst loss, a scripted event
/// schedule, targeted crashes, and transient outages, layered on top of a
/// (possibly zero) baseline [`FailureModel`]. The plan itself is pure
/// configuration; per-run state lives in [`FaultState`].
///
/// An empty plan ([`FaultPlan::default`]) injects nothing and leaves every
/// engine code path and RNG stream byte-identical to a run without a
/// plan installed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Correlated/bursty channel loss (Gilbert–Elliott chains).
    pub burst: Option<GilbertElliott>,
    /// Deterministic round-keyed events.
    pub schedule: Vec<FaultEvent>,
    /// Budget-limited targeted crashes.
    pub adversary: Option<AdversarySpec>,
    /// Transient node outages.
    pub outages: Option<OutageSpec>,
}

impl FaultPlan {
    /// `true` when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.burst.is_none()
            && self.schedule.is_empty()
            && self.adversary.is_none()
            && self.outages.is_none()
    }

    /// The round after the **last scripted partition heals**, if the
    /// schedule contains one — the reference point for the
    /// graceful-degradation `recovery_rounds` metric (rounds from heal to
    /// full coverage).
    pub fn heal_round(&self) -> Option<Round> {
        self.schedule
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Partition { until, .. } => Some(*until),
                _ => None,
            })
            .max()
    }
}

/// Per-channel fault view handed to the channel fabric for one round:
/// partition connectivity plus burst-loss state. Borrowed from
/// [`FaultState`] after [`FaultState::begin_round`].
pub(crate) struct FaultChannelView<'a> {
    /// Active partition component count, if any.
    parts: Option<u32>,
    /// Burst chain parameters and per-node out/in bad-state flags.
    burst: Option<(GilbertElliott, &'a [bool], &'a [bool])>,
}

impl FaultChannelView<'_> {
    /// Whether caller `i` and callee `w` are in the same partition
    /// component (always true with no active partition).
    #[inline]
    pub(crate) fn connects(&self, i: usize, w: usize) -> bool {
        match self.parts {
            Some(k) => (i as u32) % k == (w as u32) % k,
            None => true,
        }
    }

    /// Whether per-channel loss draws are needed (burst chains present).
    #[inline]
    pub(crate) fn lossy(&self) -> bool {
        self.burst.is_some()
    }

    /// Extra loss probability of channel `i → w` from the burst states of
    /// `i`'s outgoing end and `w`'s incoming end.
    #[inline]
    pub(crate) fn burst_loss(&self, i: usize, w: usize) -> f64 {
        match &self.burst {
            Some((ge, out_bad, in_bad)) => {
                let a = ge.loss(out_bad[i]);
                let b = ge.loss(in_bad[w]);
                1.0 - (1.0 - a) * (1.0 - b)
            }
            None => 0.0,
        }
    }
}

/// Runtime state of a [`FaultPlan`] for one run: burst chain states, the
/// active partition/loss window, outage timers, the adversary's remaining
/// budget, and the per-round node-event buffers the engine applies.
///
/// All stochastic decisions (burst transitions, outage onsets and
/// durations) are drawn from an **internal reserved-stream RNG** seeded at
/// construction — never from the simulation's main stream — so installing
/// a plan whose stochastic parts are disabled leaves the main stream
/// byte-identical, and fault randomness is invariant under seed-
/// replication threading.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    /// Reserved-stream RNG (see type docs).
    rng: SmallRng,
    /// Per-node bad-state flags of the outgoing-end burst chains.
    out_bad: Vec<bool>,
    /// Per-node bad-state flags of the incoming-end burst chains.
    in_bad: Vec<bool>,
    /// Outage recovery round per node (0 = up).
    resume_at: Vec<Round>,
    /// Component count of the currently active partition, if any.
    active_parts: Option<u32>,
    /// Active loss-window overrides.
    channel_override: Option<f64>,
    transmission_override: Option<f64>,
    /// Remaining adversary crash budget.
    budget_left: usize,
    // Per-round outputs (engine applies them after `begin_round`).
    crash_now: Vec<u32>,
    suspend_now: Vec<u32>,
    resume_now: Vec<u32>,
    /// Adversary candidate scratch: (sort key, node index).
    cand: Vec<(u64, u32)>,
}

impl FaultState {
    /// Instantiates runtime state for `plan` over `node_count` slots,
    /// seeding the reserved fault stream from `seed` (derive it from the
    /// run's seed coordinates, *not* from the main RNG, to keep streams
    /// independent).
    pub fn new(plan: &FaultPlan, node_count: usize, seed: u64) -> Self {
        let chains = if plan.burst.is_some() { node_count } else { 0 };
        let timers = if plan.outages.is_some() { node_count } else { 0 };
        FaultState {
            budget_left: plan.adversary.map_or(0, |a| a.budget),
            plan: plan.clone(),
            rng: SmallRng::seed_from_u64(seed),
            out_bad: vec![false; chains],
            in_bad: vec![false; chains],
            resume_at: vec![0; timers],
            active_parts: None,
            channel_override: None,
            transmission_override: None,
            crash_now: Vec::new(),
            suspend_now: Vec::new(),
            resume_now: Vec::new(),
            cand: Vec::new(),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether burst chains are active (forces the fabric's slow path).
    #[inline]
    pub(crate) fn bursty(&self) -> bool {
        self.plan.burst.is_some()
    }

    /// Advances the plan to round `t`: steps the burst chains (exactly
    /// `2·node_count` reserved-stream draws when enabled), samples outage
    /// onsets/recoveries, activates scripted events, and selects the
    /// adversary's victims. The engine must then apply
    /// [`resume_now`](Self::resume_now), [`suspend_now`](Self::suspend_now)
    /// and [`crash_now`](Self::crash_now) to its census (in that order)
    /// before sampling the round's channels.
    ///
    /// `degree_of` reports a node's overlay degree, `informed_at` its
    /// earliest rumour-reception round (engine clock), and `eligible`
    /// whether it is alive and uncrashed — the adversary's target pool.
    pub fn begin_round<D, A, E>(
        &mut self,
        t: Round,
        node_count: usize,
        degree_of: D,
        informed_at: A,
        eligible: E,
    ) where
        D: Fn(usize) -> usize,
        A: Fn(usize) -> Option<Round>,
        E: Fn(usize) -> bool,
    {
        self.crash_now.clear();
        self.suspend_now.clear();
        self.resume_now.clear();

        // Burst chains: a fixed 2n draw schedule per round, independent of
        // state, so the reserved stream is position-stable.
        if let Some(ge) = self.plan.burst {
            self.out_bad.resize(node_count, false);
            self.in_bad.resize(node_count, false);
            for i in 0..node_count {
                let p = if self.out_bad[i] { ge.p_bg } else { ge.p_gb };
                if p > 0.0 && self.rng.gen_bool(p) {
                    self.out_bad[i] = !self.out_bad[i];
                }
                let p = if self.in_bad[i] { ge.p_bg } else { ge.p_gb };
                if p > 0.0 && self.rng.gen_bool(p) {
                    self.in_bad[i] = !self.in_bad[i];
                }
            }
        }

        // Transient outages: recoveries first (a node whose timer expires
        // this round is up again and immediately re-drawable), then onsets.
        if let Some(out) = self.plan.outages {
            self.resume_at.resize(node_count, 0);
            for i in 0..node_count {
                if self.resume_at[i] != 0 && self.resume_at[i] <= t {
                    self.resume_at[i] = 0;
                    self.resume_now.push(i as u32);
                }
                if self.resume_at[i] == 0 && out.rate > 0.0 && self.rng.gen_bool(out.rate) {
                    let down = self.rng.gen_range(out.min_down..=out.max_down).max(1);
                    self.resume_at[i] = t + down;
                    self.suspend_now.push(i as u32);
                }
            }
        }

        // Scripted schedule: recompute the active windows from scratch
        // (schedules are short) and fire round-keyed crash sets.
        self.active_parts = None;
        self.channel_override = None;
        self.transmission_override = None;
        for ev in &self.plan.schedule {
            match ev {
                FaultEvent::Partition { from, until, parts } => {
                    if (*from..*until).contains(&t) {
                        self.active_parts = Some((*parts).max(1));
                    }
                }
                FaultEvent::CrashNodes { at, nodes } => {
                    if *at == t {
                        self.crash_now.extend_from_slice(nodes);
                    }
                }
                FaultEvent::LossWindow { from, until, channel, transmission } => {
                    if (*from..*until).contains(&t) {
                        if channel.is_some() {
                            self.channel_override = *channel;
                        }
                        if transmission.is_some() {
                            self.transmission_override = *transmission;
                        }
                    }
                }
            }
        }

        // Adversary: deterministic top-k selection, no RNG.
        if let Some(adv) = self.plan.adversary {
            if t >= adv.from_round && self.budget_left > 0 && adv.per_round > 0 {
                self.cand.clear();
                for i in 0..node_count {
                    if !eligible(i) || self.crash_now.contains(&(i as u32)) {
                        continue;
                    }
                    let key = match adv.target {
                        AdversaryTarget::HighestDegree => u64::MAX - degree_of(i) as u64,
                        AdversaryTarget::EarliestInformed => match informed_at(i) {
                            Some(at) => at as u64,
                            None => continue,
                        },
                    };
                    self.cand.push((key, i as u32));
                }
                let k = adv.per_round.min(self.budget_left).min(self.cand.len());
                if k > 0 {
                    self.cand.sort_unstable();
                    self.cand.truncate(k);
                    for &(_, i) in self.cand.iter() {
                        self.crash_now.push(i);
                    }
                    self.budget_left -= k;
                }
            }
        }
    }

    /// Effective i.i.d. failure rates for this round: the base model with
    /// any active loss-window overrides applied.
    pub fn effective(&self, base: FailureModel) -> FailureModel {
        FailureModel {
            channel_failure: self.channel_override.unwrap_or(base.channel_failure),
            transmission_failure: self
                .transmission_override
                .unwrap_or(base.transmission_failure),
            node_crash: base.node_crash,
        }
    }

    /// Nodes to crash-stop this round (scripted sets, then the adversary's
    /// picks), in application order.
    pub fn crash_now(&self) -> &[u32] {
        &self.crash_now
    }

    /// Nodes whose transient outage starts this round.
    pub fn suspend_now(&self) -> &[u32] {
        &self.suspend_now
    }

    /// Nodes whose transient outage ends this round.
    pub fn resume_now(&self) -> &[u32] {
        &self.resume_now
    }

    /// Remaining adversary crash budget.
    pub fn adversary_budget_left(&self) -> usize {
        self.budget_left
    }

    /// The per-channel view for the fabric, if any channel-level fault
    /// dimension is active this round.
    pub(crate) fn channel_view(&self) -> Option<FaultChannelView<'_>> {
        if self.active_parts.is_none() && self.plan.burst.is_none() {
            return None;
        }
        Some(FaultChannelView {
            parts: self.active_parts,
            burst: self.plan.burst.map(|ge| (ge, &self.out_bad[..], &self.in_bad[..])),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_fails() {
        let mut rng = SmallRng::seed_from_u64(0);
        let f = FailureModel::NONE;
        assert!(f.is_none());
        for _ in 0..100 {
            assert!(f.channel_ok(&mut rng));
            assert!(f.transmission_ok(&mut rng));
            assert!(!f.crashes_now(&mut rng));
        }
    }

    #[test]
    fn crash_rate_is_respected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let f = FailureModel::crashes(0.05);
        assert!(!f.is_none());
        let crashes = (0..20_000).filter(|_| f.crashes_now(&mut rng)).count();
        let rate = crashes as f64 / 20_000.0;
        assert!((rate - 0.05).abs() < 0.01, "observed crash rate {rate}");
    }

    #[test]
    fn with_crashes_composes() {
        let f = FailureModel::channels(0.1).with_crashes(0.01);
        assert_eq!(f.channel_failure, 0.1);
        assert_eq!(f.node_crash, 0.01);
        assert_eq!(f.transmission_failure, 0.0);
    }

    #[test]
    #[should_panic(expected = "node crash probability")]
    fn rejects_certain_crash() {
        let _ = FailureModel::crashes(1.0);
    }

    #[test]
    fn failure_rates_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let f = FailureModel::channels(0.3);
        let fails = (0..20_000).filter(|_| !f.channel_ok(&mut rng)).count();
        let rate = fails as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed failure rate {rate}");
    }

    #[test]
    fn transmission_rate() {
        let mut rng = SmallRng::seed_from_u64(2);
        let f = FailureModel::transmissions(0.1);
        let fails = (0..20_000).filter(|_| !f.transmission_ok(&mut rng)).count();
        let rate = fails as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    #[should_panic(expected = "channel failure probability")]
    fn rejects_certain_failure() {
        let _ = FailureModel::channels(1.0);
    }

    #[test]
    fn default_is_none() {
        assert_eq!(FailureModel::default(), FailureModel::NONE);
    }

    #[test]
    fn builders_validate_and_compose() {
        let f = FailureModel::NONE.with_channels(0.2).with_transmissions(0.1).with_crashes(0.05);
        assert_eq!(f.channel_failure, 0.2);
        assert_eq!(f.transmission_failure, 0.1);
        assert_eq!(f.node_crash, 0.05);
    }

    #[test]
    #[should_panic(expected = "transmission failure probability")]
    fn with_transmissions_rejects_certain_loss() {
        let _ = FailureModel::NONE.with_transmissions(1.0);
    }

    #[test]
    fn empty_plan_is_empty_and_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.heal_round(), None);
        let mut fs = FaultState::new(&plan, 16, 7);
        fs.begin_round(1, 16, |_| 4, |_| None, |_| true);
        assert!(fs.crash_now().is_empty());
        assert!(fs.suspend_now().is_empty());
        assert!(fs.resume_now().is_empty());
        assert!(fs.channel_view().is_none());
        assert_eq!(fs.effective(FailureModel::channels(0.1)), FailureModel::channels(0.1));
    }

    #[test]
    fn burst_chains_visit_both_states_and_raise_loss() {
        let ge = GilbertElliott::new(0.2, 0.3, 0.0, 0.9);
        let plan = FaultPlan { burst: Some(ge), ..FaultPlan::default() };
        let mut fs = FaultState::new(&plan, 8, 11);
        let mut saw_bad = false;
        let mut saw_loss = false;
        for t in 1..=200 {
            fs.begin_round(t, 8, |_| 4, |_| None, |_| true);
            let view = fs.channel_view().expect("burst plans always have a view");
            assert!(view.lossy());
            for i in 0..8 {
                for w in 0..8 {
                    let p = view.burst_loss(i, w);
                    assert!((0.0..=1.0).contains(&p));
                    saw_loss |= p > 0.0;
                    // good/good pairs are lossless with loss_good = 0.
                    saw_bad |= p > 0.0;
                }
                assert!(view.connects(i, (i + 1) % 8), "no partition in this plan");
            }
        }
        assert!(saw_bad && saw_loss, "chains never left the good state in 200 rounds");
    }

    #[test]
    fn burst_draws_come_from_the_reserved_stream_only() {
        // Two states with the same fault seed advance identically no
        // matter what the main simulation stream does in between.
        let ge = GilbertElliott::new(0.3, 0.3, 0.1, 0.8);
        let plan = FaultPlan { burst: Some(ge), ..FaultPlan::default() };
        let mut a = FaultState::new(&plan, 32, 99);
        let mut b = FaultState::new(&plan, 32, 99);
        for t in 1..=50 {
            a.begin_round(t, 32, |_| 4, |_| None, |_| true);
            b.begin_round(t, 32, |_| 4, |_| None, |_| true);
            let va = a.channel_view().unwrap();
            let vb = b.channel_view().unwrap();
            for i in 0..32 {
                assert_eq!(va.burst_loss(i, (i + 5) % 32), vb.burst_loss(i, (i + 5) % 32));
            }
        }
    }

    #[test]
    fn partition_window_blocks_cross_component_pairs_then_heals() {
        let plan = FaultPlan {
            schedule: vec![FaultEvent::Partition { from: 2, until: 5, parts: 2 }],
            ..FaultPlan::default()
        };
        assert_eq!(plan.heal_round(), Some(5));
        let mut fs = FaultState::new(&plan, 8, 0);
        for t in 1..=6 {
            fs.begin_round(t, 8, |_| 4, |_| None, |_| true);
            let partitioned = (2..5).contains(&t);
            match fs.channel_view() {
                Some(view) => {
                    assert!(partitioned);
                    assert!(view.connects(0, 2), "same component");
                    assert!(!view.connects(0, 1), "cross component");
                    assert!(!view.lossy());
                    assert_eq!(view.burst_loss(0, 1), 0.0);
                }
                None => assert!(!partitioned, "round {t} should be partitioned"),
            }
        }
    }

    #[test]
    fn scripted_crashes_and_loss_windows_fire_on_schedule() {
        let plan = FaultPlan {
            schedule: vec![
                FaultEvent::CrashNodes { at: 3, nodes: vec![5, 1] },
                FaultEvent::LossWindow {
                    from: 2,
                    until: 4,
                    channel: None,
                    transmission: Some(0.75),
                },
            ],
            ..FaultPlan::default()
        };
        let base = FailureModel::channels(0.1);
        let mut fs = FaultState::new(&plan, 8, 0);
        for t in 1..=5 {
            fs.begin_round(t, 8, |_| 4, |_| None, |_| true);
            if t == 3 {
                assert_eq!(fs.crash_now(), &[5, 1]);
            } else {
                assert!(fs.crash_now().is_empty());
            }
            let eff = fs.effective(base);
            assert_eq!(eff.channel_failure, 0.1, "channel rate not overridden");
            if (2..4).contains(&t) {
                assert_eq!(eff.transmission_failure, 0.75);
            } else {
                assert_eq!(eff.transmission_failure, 0.0);
            }
        }
    }

    #[test]
    fn adversary_targets_highest_degree_within_budget() {
        let plan = FaultPlan {
            adversary: Some(AdversarySpec::new(AdversaryTarget::HighestDegree, 2, 3)),
            ..FaultPlan::default()
        };
        let mut fs = FaultState::new(&plan, 6, 0);
        let degrees = [3usize, 9, 9, 1, 7, 2];
        let mut crashed = [false; 6];
        // Round 1: the two degree-9 hubs (tie → lower index first).
        fs.begin_round(1, 6, |i| degrees[i], |_| None, |i| !crashed[i]);
        assert_eq!(fs.crash_now(), &[1, 2]);
        for &i in fs.crash_now() {
            crashed[i as usize] = true;
        }
        // Round 2: budget allows one more — the degree-7 node.
        fs.begin_round(2, 6, |i| degrees[i], |_| None, |i| !crashed[i]);
        assert_eq!(fs.crash_now(), &[4]);
        assert_eq!(fs.adversary_budget_left(), 0);
        for &i in fs.crash_now() {
            crashed[i as usize] = true;
        }
        // Round 3: budget exhausted.
        fs.begin_round(3, 6, |i| degrees[i], |_| None, |i| !crashed[i]);
        assert!(fs.crash_now().is_empty());
    }

    #[test]
    fn adversary_targets_earliest_informed_only() {
        let plan = FaultPlan {
            adversary: Some(AdversarySpec::new(AdversaryTarget::EarliestInformed, 1, 10)),
            ..FaultPlan::default()
        };
        let mut fs = FaultState::new(&plan, 5, 0);
        // informed_at: node 3 at round 0 (origin), node 1 at round 2; rest
        // uninformed — never eligible.
        let at = [None, Some(2), None, Some(0), None];
        fs.begin_round(1, 5, |_| 4, |i| at[i], |_| true);
        assert_eq!(fs.crash_now(), &[3], "origin is the earliest-informed");
        fs.begin_round(2, 5, |_| 4, |i| at[i], |i| i != 3);
        assert_eq!(fs.crash_now(), &[1]);
        fs.begin_round(3, 5, |_| 4, |i| at[i], |i| i != 3 && i != 1);
        assert!(fs.crash_now().is_empty(), "no informed nodes left to target");
        assert_eq!(fs.adversary_budget_left(), 8, "budget only spent on actual crashes");
    }

    #[test]
    fn outages_suspend_and_resume_within_bounds() {
        let plan = FaultPlan {
            outages: Some(OutageSpec::new(0.2, 2, 4)),
            ..FaultPlan::default()
        };
        let mut fs = FaultState::new(&plan, 32, 5);
        let mut down_since: Vec<Option<Round>> = vec![None; 32];
        let mut suspensions = 0usize;
        for t in 1..=100 {
            fs.begin_round(t, 32, |_| 4, |_| None, |_| true);
            for &i in fs.resume_now() {
                let since = down_since[i as usize].take().expect("resume of an up node");
                let lasted = t - since;
                assert!((2..=4).contains(&lasted), "outage lasted {lasted} rounds");
            }
            for &i in fs.suspend_now() {
                assert!(down_since[i as usize].is_none(), "double suspension");
                down_since[i as usize] = Some(t);
                suspensions += 1;
            }
        }
        assert!(suspensions > 50, "rate 0.2 over 32 nodes × 100 rounds, saw {suspensions}");
    }

    #[test]
    #[should_panic(expected = "outage rate")]
    fn outage_spec_rejects_certain_rate() {
        let _ = OutageSpec::new(1.0, 1, 2);
    }

    #[test]
    #[should_panic(expected = "Gilbert–Elliott p_gb")]
    fn gilbert_elliott_rejects_bad_probability() {
        let _ = GilbertElliott::new(1.5, 0.1, 0.0, 0.5);
    }
}
