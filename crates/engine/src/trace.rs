//! Analysis helpers over per-round traces ([`RoundRecord`] histories).
//!
//! The paper's analysis (§4) reasons about three per-round quantities: the
//! growth factor of the informed set in Phase 1 (Lemmas 1–2), the decay
//! factor of the uninformed set in Phase 2 (Lemma 3), and the round at
//! which a given informed fraction is reached (Corollary 1, the push/pull
//! crossover of §1). This module computes exactly those statistics from a
//! recorded history, so experiments and tests measure the lemmas' subjects
//! directly.

use crate::{Round, RoundRecord};

/// Mean multiplicative growth factor `|I(t+1)| / |I(t)|` over the rounds
/// where the informed set is still below `cap` nodes (the exponential
/// stretch Lemmas 1–2 analyse). Returns `None` when no qualifying round
/// pair exists.
pub fn informed_growth_factor(history: &[RoundRecord], cap: usize) -> Option<f64> {
    let mut factors = Vec::new();
    for w in history.windows(2) {
        if w[1].informed < cap && w[0].informed > 0 {
            factors.push(w[1].informed as f64 / w[0].informed as f64);
        }
    }
    mean(&factors)
}

/// Mean multiplicative decay factor `|H(t+1)| / |H(t)|` of the uninformed
/// set over rounds in `(from, to]` (Lemma 3's Phase-2 contraction), where
/// `n` is the population size. Returns `None` when no qualifying round pair
/// exists.
pub fn uninformed_decay_factor(
    history: &[RoundRecord],
    n: usize,
    from: Round,
    to: Round,
) -> Option<f64> {
    let mut factors = Vec::new();
    for w in history.windows(2) {
        if w[0].round > from && w[1].round <= to && n > w[0].informed {
            factors.push((n - w[1].informed) as f64 / (n - w[0].informed) as f64);
        }
    }
    mean(&factors)
}

/// First round whose record shows at least `fraction` of `n` informed
/// (e.g. 0.5 for the push/pull crossover point). Returns `None` if the
/// fraction is never reached in the recorded history.
pub fn round_reaching_fraction(
    history: &[RoundRecord],
    n: usize,
    fraction: f64,
) -> Option<Round> {
    let threshold = (n as f64 * fraction).ceil() as usize;
    history.iter().find(|r| r.informed >= threshold).map(|r| r.round)
}

/// Informed count recorded at exactly round `t`, if present.
pub fn informed_at_round(history: &[RoundRecord], t: Round) -> Option<usize> {
    history.iter().find(|r| r.round == t).map(|r| r.informed)
}

/// Sums transmissions over the round interval `[from, to]` (inclusive).
pub fn transmissions_in(history: &[RoundRecord], from: Round, to: Round) -> u64 {
    history
        .iter()
        .filter(|r| r.round >= from && r.round <= to)
        .map(|r| r.transmissions())
        .sum()
}

fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: Round, informed: usize, push: u64, pull: u64) -> RoundRecord {
        RoundRecord {
            round,
            informed,
            newly_informed: 0,
            push_tx: push,
            pull_tx: pull,
            channels: 0,
        }
    }

    fn doubling_history() -> Vec<RoundRecord> {
        // 1 -> 2 -> 4 -> 8 -> 16 -> 28 -> 31 -> 32 on n = 32.
        [1, 2, 4, 8, 16, 28, 31, 32]
            .into_iter()
            .enumerate()
            .map(|(i, informed)| rec(i as Round + 1, informed, 3, 1))
            .collect()
    }

    #[test]
    fn growth_factor_on_doubling_prefix() {
        let h = doubling_history();
        // Below cap 16: pairs (1,2),(2,4),(4,8) all double.
        let g = informed_growth_factor(&h, 16).unwrap();
        assert!((g - 2.0).abs() < 1e-12, "got {g}");
        // No rounds below cap 2: nothing to average.
        assert_eq!(informed_growth_factor(&h, 2), None);
    }

    #[test]
    fn decay_factor_on_tail() {
        let h = doubling_history();
        // Rounds (6,7]: H goes 4 -> 1; (7,8]: 1 -> 0.
        let d = uninformed_decay_factor(&h, 32, 5, 8).unwrap();
        assert!((d - (0.25 + 0.0) / 2.0).abs() < 1e-12, "got {d}");
        assert_eq!(uninformed_decay_factor(&h, 32, 100, 200), None);
    }

    #[test]
    fn fraction_round_lookup() {
        let h = doubling_history();
        assert_eq!(round_reaching_fraction(&h, 32, 0.5), Some(5)); // 16 at round 5
        assert_eq!(round_reaching_fraction(&h, 32, 1.0), Some(8));
        assert_eq!(round_reaching_fraction(&h, 64, 1.0), None);
    }

    #[test]
    fn point_lookups_and_sums() {
        let h = doubling_history();
        assert_eq!(informed_at_round(&h, 3), Some(4));
        assert_eq!(informed_at_round(&h, 99), None);
        assert_eq!(transmissions_in(&h, 1, 2), 8); // 2 rounds × (3+1)
        assert_eq!(transmissions_in(&h, 9, 20), 0);
    }

    #[test]
    fn empty_history_yields_no_statistics() {
        let h: Vec<RoundRecord> = Vec::new();
        assert_eq!(informed_growth_factor(&h, 16), None);
        assert_eq!(uninformed_decay_factor(&h, 32, 0, 10), None);
        assert_eq!(round_reaching_fraction(&h, 32, 0.5), None);
        assert_eq!(informed_at_round(&h, 1), None);
        assert_eq!(transmissions_in(&h, 0, 100), 0);
    }

    #[test]
    fn single_record_has_no_pairs() {
        let h = vec![rec(1, 4, 7, 2)];
        // Factor statistics need a round pair; one record gives none.
        assert_eq!(informed_growth_factor(&h, 16), None);
        assert_eq!(uninformed_decay_factor(&h, 32, 0, 10), None);
        // Point lookups still work on the lone record.
        assert_eq!(round_reaching_fraction(&h, 32, 0.125), Some(1));
        assert_eq!(informed_at_round(&h, 1), Some(4));
        assert_eq!(transmissions_in(&h, 1, 1), 9);
    }

    #[test]
    fn unreached_fraction_is_none_not_last_round() {
        let h = vec![rec(1, 4, 0, 0), rec(2, 9, 0, 0)];
        // 9 of 32 informed: 0.5 is never reached, even though the history
        // ends — callers must handle the stalled-run case explicitly.
        assert_eq!(round_reaching_fraction(&h, 32, 0.5), None);
        // ceil rounding: 0.25 of 32 = 8 needs the second record.
        assert_eq!(round_reaching_fraction(&h, 32, 0.25), Some(2));
    }

    #[test]
    fn consistent_with_live_engine_history() {
        use crate::protocols::FloodPushPull;
        use crate::{SimConfig, Simulation};
        use rand::{rngs::SmallRng, SeedableRng};
        use rrb_graph::{gen, NodeId};

        let n = 128;
        let g = gen::complete(n);
        let mut rng = SmallRng::seed_from_u64(5);
        let report = Simulation::new(&g, FloodPushPull::new(), SimConfig::default().with_history())
            .run(NodeId::new(0), &mut rng);
        // Early exponential growth beats factor 1.5 on a complete graph.
        let growth = informed_growth_factor(&report.history, n / 8).unwrap();
        assert!(growth > 1.5, "growth {growth}");
        // The crossover round is before full coverage.
        let half = round_reaching_fraction(&report.history, n, 0.5).unwrap();
        let full = round_reaching_fraction(&report.history, n, 1.0).unwrap();
        assert!(half < full);
        // Transmission sum over the whole run matches the report totals.
        assert_eq!(
            transmissions_in(&report.history, 0, report.rounds),
            report.total_tx()
        );
    }
}
