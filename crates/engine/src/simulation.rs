use std::time::Duration;

use rand::Rng;
use rayon::prelude::*;

use rrb_graph::NodeId;

use crate::census::AliveCensus;
use crate::choice::ChoiceState;
use crate::fabric::{ChannelFabric, InformedIndex};
use crate::failure::FaultState;
use crate::observation::{ObservationArena, RumorMeta};
use crate::report::StopReason;
use crate::shard::{ShardLayout, ShardRuntime};
use crate::telemetry::{BoxedProbe, PhaseClock, RoundCounters, ShardClock, StepPhase};
use crate::{
    FailureModel, NodeView, Observation, Plan, Protocol, Round, RoundRecord, RunReport, Topology,
};

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Hard cap on rounds (a protocol [`deadline`](Protocol::deadline)
    /// tightens it further).
    pub max_rounds: Round,
    /// Failure injection for channels and transmissions.
    pub failures: FailureModel,
    /// Record a per-round [`RoundRecord`] trace in the report.
    pub record_history: bool,
    /// Stop as soon as every alive node is informed. Disable to measure the
    /// *total* cost a protocol incurs until its own termination rule fires —
    /// the distinction at the heart of the paper's message-complexity
    /// comparison.
    pub stop_at_coverage: bool,
    /// Number of node-slot shards the round loop fans out over (see
    /// `crate::shard`). `1` — the default — runs the exact serial path;
    /// any value is **seed-for-seed identical** at any shard and thread
    /// count, because every model RNG draw stays on the main sequential
    /// stream and cross-shard effects merge in fixed shard order.
    /// Sharding pays off for large `n` on multi-core hosts.
    pub shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_rounds: 10_000,
            failures: FailureModel::NONE,
            record_history: false,
            stop_at_coverage: true,
            shards: 1,
        }
    }
}

impl SimConfig {
    /// Config that runs the protocol to quiescence (or the round cap) even
    /// after everyone is informed, counting the full message bill.
    pub fn until_quiescent() -> Self {
        SimConfig { stop_at_coverage: false, ..SimConfig::default() }
    }

    /// Builder-style: set the round cap.
    pub fn with_max_rounds(mut self, cap: Round) -> Self {
        self.max_rounds = cap;
        self
    }

    /// Builder-style: set the failure model.
    pub fn with_failures(mut self, failures: FailureModel) -> Self {
        self.failures = failures;
        self
    }

    /// Builder-style: enable per-round history recording.
    pub fn with_history(mut self) -> Self {
        self.record_history = true;
        self
    }

    /// Builder-style: fan the round loop out over `shards` node-slot
    /// shards (results are identical for every value; see
    /// [`shards`](Self::shards)).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// Convenience runner that owns a protocol and a reference to a static
/// topology. For dynamic topologies (churn) drive [`SimState`] directly.
#[derive(Debug)]
pub struct Simulation<'a, T, P> {
    topology: &'a T,
    protocol: P,
    config: SimConfig,
}

impl<'a, T: Topology, P: Protocol> Simulation<'a, T, P> {
    /// Creates a runner for `protocol` over `topology`.
    pub fn new(topology: &'a T, protocol: P, config: SimConfig) -> Self {
        Simulation { topology, protocol, config }
    }

    /// Access to the configured protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Runs a single broadcast started by `origin` and returns the report.
    pub fn run<R: Rng + ?Sized>(&self, origin: NodeId, rng: &mut R) -> RunReport {
        let mut state = SimState::new(&self.protocol, self.topology.node_count(), origin);
        state.run_to_completion(self.topology, &self.protocol, self.config, rng);
        state.into_report(self.topology, self.config)
    }
}

/// Mutable state of an in-flight broadcast; step it manually to interleave
/// topology mutations (churn) between rounds.
///
/// # Dynamic membership
///
/// Aliveness is tracked by an incrementally-maintained [`AliveCensus`]
/// (snapshotted from the topology on the first round). Slot *growth* is
/// adopted automatically each round, but aliveness flips on existing slots
/// must be reported as deltas: call [`apply_leaves`](Self::apply_leaves)
/// for departed peers and [`apply_joins`](Self::apply_joins) for joiners
/// after mutating the overlay between rounds. Coverage then updates from
/// `O(1)` counters instead of per-round rescans.
///
/// ```
/// use rand::{SeedableRng, rngs::SmallRng};
/// use rrb_engine::{protocols::FloodPush, SimConfig, SimState};
/// use rrb_graph::{gen, NodeId};
///
/// let mut rng = SmallRng::seed_from_u64(9);
/// let g = gen::complete(64);
/// let proto = FloodPush::new();
/// let mut sim = SimState::new(&proto, 64, NodeId::new(0));
/// let cfg = SimConfig::default();
/// while !sim.finished(&g, &proto, cfg) {
///     sim.step(&g, &proto, cfg, &mut rng);
///     // ... mutate a dynamic topology here, then report the deltas:
///     // sim.apply_joins(&proto, &events.joined);
///     // sim.apply_leaves(&events.left);
/// }
/// let report = sim.into_report(&g, cfg);
/// assert!(report.all_informed());
/// ```
#[derive(Debug)]
pub struct SimState<P: Protocol> {
    states: Vec<P::State>,
    /// Reception round per node plus the informed index list — the plan,
    /// quiescence and coverage phases iterate `O(informed)` instead of
    /// `O(n)` (shared with the multi-rumour engine via `fabric.rs`).
    informed: InformedIndex,
    /// Alive/crashed membership view (see [`AliveCensus`]): synced from
    /// the topology on the first round, then updated by crash sampling and
    /// the join/leave delta hooks.
    census: AliveCensus,
    /// Informed nodes that are alive and uncrashed — the coverage
    /// numerator, maintained incrementally from census deltas.
    alive_informed: usize,
    creator: NodeId,
    choice: ChoiceState,
    round: Round,
    push_tx: u64,
    pull_tx: u64,
    channels: u64,
    full_coverage_at: Option<Round>,
    tx_at_coverage: Option<u64>,
    stop: Option<StopReason>,
    history: Vec<RoundRecord>,
    /// Installed adversarial fault plan's runtime state, if any (see
    /// [`FaultState`]); applied at the top of every round.
    faults: Option<FaultState>,
    /// Installed telemetry probe, if any (see [`crate::telemetry`]); with
    /// `None` — the default — rounds take no clock reads and no extra
    /// work of any kind.
    probe: Option<BoxedProbe>,
    // Scratch buffers reused across rounds (allocation-free once warm).
    fabric: ChannelFabric,
    plans: Vec<Plan>,
    arena: ObservationArena,
    scratch_obs: Observation,
    empty_obs: Observation,
    /// Sharded-path scratch (per-shard arenas, outboxes, informed lists);
    /// built lazily on the first round with `config.shards > 1` and
    /// untouched — `None` — on the serial path.
    shard_rt: Option<ShardRuntime>,
}

impl<P: Protocol> SimState<P> {
    /// Initialises a broadcast of a rumour created by `origin` at time 0 on
    /// a topology with `node_count` slots.
    pub fn new(protocol: &P, node_count: usize, origin: NodeId) -> Self {
        assert!(origin.index() < node_count, "origin out of range");
        let mut states: Vec<P::State> =
            (0..node_count).map(|_| protocol.init(false)).collect();
        states[origin.index()] = protocol.init(true);
        let mut informed = InformedIndex::new(node_count);
        informed.mark(origin.index(), 0);
        SimState {
            states,
            informed,
            census: AliveCensus::new(),
            alive_informed: 0,
            creator: origin,
            choice: ChoiceState::new(node_count, protocol.choice_policy()),
            round: 0,
            push_tx: 0,
            pull_tx: 0,
            channels: 0,
            full_coverage_at: None,
            tx_at_coverage: None,
            stop: None,
            history: Vec::new(),
            faults: None,
            probe: None,
            fabric: ChannelFabric::new(node_count),
            plans: vec![Plan::SILENT; node_count],
            arena: ObservationArena::new(node_count),
            scratch_obs: Observation::default(),
            empty_obs: Observation::default(),
            shard_rt: None,
        }
    }

    /// Current round (0 before the first step).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Installs (or clears) an adversarial fault plan's runtime state.
    /// With `None` — the default — every code path and RNG draw is
    /// byte-identical to the pre-fault engine. Seed the [`FaultState`]
    /// from a reserved stream, not the main RNG (see its docs).
    pub fn set_faults(&mut self, faults: Option<FaultState>) {
        self.faults = faults;
    }

    /// The installed fault state, if any.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// Installs (or clears) a telemetry probe (see [`crate::telemetry`]).
    /// Probes observe per-phase wall-clock and per-round counters; they
    /// never touch the RNG, so an instrumented run's random streams — and
    /// therefore its [`RunReport`] — are byte-identical to a bare run.
    pub fn set_probe(&mut self, probe: Option<BoxedProbe>) {
        self.probe = probe;
    }

    /// Removes and returns the installed probe, if any (the usual way to
    /// read accumulated telemetry back after a run).
    pub fn take_probe(&mut self) -> Option<BoxedProbe> {
        self.probe.take()
    }

    /// Number of informed alive-or-dead slots.
    pub fn informed_count(&self) -> usize {
        self.informed.len()
    }

    /// Round in which node `v` became informed, if it has.
    pub fn informed_at(&self, v: NodeId) -> Option<Round> {
        self.informed.at(v.index())
    }

    /// Accommodates topology growth (new node slots join uninformed).
    pub fn ensure_len(&mut self, protocol: &P, node_count: usize) {
        while self.states.len() < node_count {
            self.states.push(protocol.init(false));
            self.plans.push(Plan::SILENT);
        }
        self.informed.ensure_len(node_count);
        self.arena.ensure_len(node_count);
        self.choice.ensure_len(node_count);
    }

    /// Takes the initial `O(n)` census snapshot if it has not happened yet
    /// (first `finished`/`step` call), seeding the incremental
    /// alive-informed counter; afterwards only adopts new slots.
    fn sync_census<T: Topology + ?Sized>(&mut self, topo: &T) {
        if self.census.is_synced() {
            self.census.adopt_new_slots(topo);
            return;
        }
        self.census.sync_from(topo);
        self.alive_informed = self
            .informed
            .list()
            .iter()
            .filter(|&&i| self.census.is_effective(i as usize))
            .count();
    }

    /// Applies membership **join** deltas: each listed node slot now hosts
    /// a live peer (growing per-node state as needed; joiners start
    /// uninformed). Call between rounds after overlay mutation — see the
    /// type-level docs.
    pub fn apply_joins(&mut self, protocol: &P, joined: &[NodeId]) {
        for &v in joined {
            self.ensure_len(protocol, v.index() + 1);
            // Slots are normally never recycled, but a custom topology may
            // revive one: count it only if informed *and* effective (a
            // revived slot can still be crash-stopped).
            if self.census.apply_join(v.index())
                && self.census.is_effective(v.index())
                && self.informed.is_informed(v.index())
            {
                self.alive_informed += 1;
            }
        }
    }

    /// Applies membership **leave** deltas: each listed node slot no
    /// longer hosts a live peer. Informed leavers drop out of the coverage
    /// numerator, and the denominator shrinks with them — both `O(1)` per
    /// event.
    pub fn apply_leaves(&mut self, left: &[NodeId]) {
        for &v in left {
            if self.census.apply_leave(v.index()) && self.informed.is_informed(v.index()) {
                self.alive_informed -= 1;
            }
        }
    }

    /// Applies membership **rejoin** deltas: each listed slot is recycled
    /// for a *fresh* peer (an overlay with slot reuse enabled hands
    /// departed slots to newcomers). The slot's engine-side state —
    /// informedness, protocol state, standing plan, choice bookkeeping,
    /// crash/suspension flags — belonged to the departed peer and is
    /// reset; the census bumps the slot's generation tag.
    pub fn apply_rejoins(&mut self, protocol: &P, rejoined: &[NodeId]) {
        for &v in rejoined {
            let i = v.index();
            self.ensure_len(protocol, i + 1);
            if self.informed.unmark(i).is_some() {
                if self.census.is_effective(i) {
                    self.alive_informed -= 1;
                }
                if let Some(rt) = self.shard_rt.as_mut() {
                    rt.forget(i);
                }
            }
            self.states[i] = protocol.init(false);
            self.plans[i] = Plan::SILENT;
            self.choice.reset_slot(i);
            self.census.apply_rejoin(i);
        }
    }

    /// Effective round cap: protocol deadline if set, else the config cap.
    fn round_cap(&self, protocol: &P, config: SimConfig) -> Round {
        protocol.deadline().unwrap_or(config.max_rounds).min(config.max_rounds)
    }

    /// Whether the run has reached a stopping condition.
    pub fn finished<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        protocol: &P,
        config: SimConfig,
    ) -> bool {
        if self.stop.is_some() {
            return true;
        }
        self.sync_census(topo);
        // Covered once every alive, uncrashed node is informed — either
        // right now, or at some instant during a past round
        // (`full_coverage_at`; under churn a joiner arriving *after* that
        // instant must not retroactively un-finish the broadcast). The
        // disjunction mirrors the multi-rumour engine's settlement rule.
        if config.stop_at_coverage
            && (self.full_coverage_at.is_some()
                || self.alive_informed == self.census.effective_alive())
        {
            self.stop = Some(StopReason::FullCoverage);
            return true;
        }
        // Quiescence: every informed node permanently silent means no rumour
        // can ever move again. Checked before the cap so a protocol that went
        // silent exactly at its deadline reports Quiescent, not RoundCap.
        // Uninformed nodes are vacuously quiescent, so only the informed
        // index list needs scanning.
        let t = self.round + 1;
        let quiescent = self.informed.list().iter().all(|&i| {
            let i = i as usize;
            self.census.is_crashed(i)
                || match self.informed.at(i) {
                    Some(at) => protocol.is_quiescent(&self.states[i], at, t),
                    None => true,
                }
        });
        if quiescent {
            self.stop = Some(StopReason::Quiescent);
            return true;
        }
        if self.round >= self.round_cap(protocol, config) {
            self.stop = Some(StopReason::RoundCap);
            return true;
        }
        false
    }

    /// Alive, uncrashed nodes — the coverage denominator, `O(1)` from the
    /// census counters.
    pub fn effective_alive(&self) -> usize {
        self.census.effective_alive()
    }

    /// Number of crash-stop events so far.
    pub fn crashed_count(&self) -> usize {
        self.census.crashed_count()
    }

    /// Heap capacities of every per-round scratch buffer. Once the engine is
    /// warm these must stay constant round over round — the arena refactor's
    /// "steady-state rounds allocate nothing" guarantee, asserted by tests.
    #[doc(hidden)]
    pub fn scratch_capacities(&self) -> Vec<usize> {
        let mut caps = self.fabric.capacities().to_vec();
        caps.extend([
            self.plans.capacity(),
            self.informed.capacity(),
            self.scratch_obs.pushes.capacity(),
            self.scratch_obs.pulls.capacity(),
        ]);
        caps.extend(self.arena.capacities());
        caps
    }

    /// Executes one synchronous round of the phone call model and returns
    /// its record.
    ///
    /// Every alive node opens channels per the protocol's
    /// [`ChoicePolicy`](crate::ChoicePolicy); informed nodes transmit per
    /// their [`Plan`]; observations are digested at the end of the round.
    /// Failed channels carry no transmissions (establishment failed — no
    /// cost); failed transmissions are *counted but not delivered* (the copy
    /// was sent and lost).
    // rrb-lint: hot
    pub fn step<T: Topology + ?Sized, R: Rng + ?Sized>(
        &mut self,
        topo: &T,
        protocol: &P,
        config: SimConfig,
        rng: &mut R,
    ) -> RoundRecord {
        let n = topo.node_count();
        self.ensure_len(protocol, n);
        self.sync_census(topo);
        self.round += 1;
        let t = self.round;
        let policy = protocol.choice_policy();
        // Phase attribution clock: armed only when a probe is installed,
        // so the bare engine reads no clocks (see `telemetry.rs`).
        let mut clock = PhaseClock::armed(self.probe.is_some());

        // Fault-plan phase (before stochastic crash sampling): advance the
        // plan on its reserved stream, then apply its node events —
        // outage recoveries, new suspensions, scripted/adversarial
        // crashes — to the census. The state is taken out of `self` so the
        // adversary's closures can borrow the informed index and census.
        let mut fault_state = self.faults.take();
        let failures = match fault_state.as_mut() {
            Some(fs) => {
                let informed = &self.informed;
                let census = &self.census;
                fs.begin_round(
                    t,
                    n,
                    |i| topo.stubs(NodeId::new(i)).len(),
                    |i| informed.at(i),
                    |i| census.is_effective(i),
                );
                for &i in fs.resume_now() {
                    self.census.set_suspended(i as usize, false);
                }
                for &i in fs.suspend_now() {
                    self.census.set_suspended(i as usize, true);
                }
                for &i in fs.crash_now() {
                    let i = i as usize;
                    if self.census.is_alive(i) && !self.census.is_crashed(i) {
                        self.census.mark_crashed(i);
                        if self.informed.is_informed(i) {
                            self.alive_informed -= 1;
                        }
                    }
                }
                fs.effective(config.failures)
            }
            None => config.failures,
        };
        // Channel/transmission failures (and burst-loss chains) are the
        // only per-call Bernoulli draws; crash-stop sampling is a separate
        // per-node phase, so a crash-only model still takes the draw-free
        // exchange fast path.
        let fast_path = failures.channel_failure == 0.0
            && failures.transmission_failure == 0.0
            && fault_state.as_ref().is_none_or(|fs| !fs.bursty());
        // Capability-gated sampling skip: if the protocol never pull-serves,
        // a channel opened by an *uninformed* caller can carry nothing (its
        // push direction has nothing to send, its pull direction is never
        // served), so sampling its targets is pure waste. Only policies
        // whose sampling touches no per-node state qualify
        // (`ChoicePolicy::is_memoryless` — SequentialMemory rings and
        // Cyclic cursors advance as a side effect of sampling, which
        // skipping would alter). For a memoryless policy the number of
        // channels such a node would open is the deterministic
        // `min(fanout, deg)`, so the `channels` metric still counts them
        // without touching the RNG.
        let skip_fanout = (!protocol.capabilities().uses_pull && policy.is_memoryless())
            .then(|| policy.fanout());

        // Phase 0: crash-stop sampling (fail-stop nodes never recover).
        // Gated on its own probability, independent of `fast_path`: a
        // crash-only model draws here but still skips the per-call draws.
        if failures.node_crash > 0.0 {
            for i in 0..n {
                if !self.census.is_crashed(i)
                    && self.census.is_alive(i)
                    && failures.crashes_now(rng)
                {
                    self.census.mark_crashed(i);
                    if self.informed.is_informed(i) {
                        self.alive_informed -= 1;
                    }
                }
            }
        }
        clock.lap(&mut self.probe, StepPhase::Faults);

        // Phase a: every alive node opens channels (shared fabric code in
        // `fabric.rs`). On the fast path a channel is usable iff the callee
        // slot is alive and uncrashed, so unusable channels are counted but
        // never materialised and the per-channel Bernoulli draw is skipped
        // (`FailureModel::NONE` draws nothing from the RNG either way — the
        // streams stay identical).
        let informed = &self.informed;
        let fault_view = fault_state.as_ref().and_then(FaultState::channel_view);
        let channels_this_round = self.fabric.sample(
            topo,
            policy,
            &mut self.choice,
            failures,
            self.census.blocked_slice(),
            fault_view.as_ref(),
            skip_fanout,
            |i| informed.at(i).is_none(),
            rng,
        );
        self.channels += channels_this_round;
        clock.lap(&mut self.probe, StepPhase::Fabric);

        // Phases b–d (plan / exchange / update-digest). With
        // `config.shards > 1` these fan out over the rayon pool: every
        // model RNG draw has already happened (crash sampling, fabric) or
        // happens in a serial pre-draw (per-call transmission outcomes),
        // so the fanned-out work is RNG-free and the results are
        // byte-identical to the serial path at any shard and thread count
        // (`tests/sharding.rs`).
        let (push_tx, pull_tx, newly_informed) = if config.shards > 1 && n > 1 {
            self.phases_sharded(n, t, protocol, config.shards, failures, fast_path, &mut clock, rng)
        } else {
            self.phases_serial(n, t, protocol, failures, fast_path, &mut clock, rng)
        };
        self.push_tx += push_tx;
        self.pull_tx += pull_tx;

        // Hand the fault state back for the next round.
        self.faults = fault_state;

        // Phase e: coverage bookkeeping — O(1) from the census counters.
        if self.full_coverage_at.is_none()
            && self.alive_informed == self.census.effective_alive()
        {
            self.full_coverage_at = Some(t);
            self.tx_at_coverage = Some(self.push_tx + self.pull_tx);
        }
        clock.lap(&mut self.probe, StepPhase::Coverage);
        if let Some(p) = self.probe.as_deref_mut() {
            p.on_round(&RoundCounters {
                round: t,
                informed: self.alive_informed,
                newly_informed,
                push_tx,
                pull_tx,
                tx: push_tx + pull_tx,
                channels: channels_this_round,
                skipped_draws: self.fabric.skipped_last(),
                alive: self.census.effective_alive(),
                suspended: self.census.suspended_count(),
            });
        }

        let record = RoundRecord {
            round: t,
            informed: self.alive_informed,
            newly_informed,
            push_tx,
            pull_tx,
            channels: channels_this_round,
        };
        if config.record_history {
            self.history.push(record);
        }
        record
    }

    /// Phases b–d of the serial round path (exactly the pre-sharding
    /// engine): plan over the informed list, exchanges into the flat
    /// arena, digest. Returns `(push_tx, pull_tx, newly_informed)`.
    // rrb-lint: hot
    #[allow(clippy::too_many_arguments)]
    fn phases_serial<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        t: Round,
        protocol: &P,
        failures: FailureModel,
        fast_path: bool,
        clock: &mut PhaseClock,
        rng: &mut R,
    ) -> (u64, u64, usize) {
        // Phase b: informed nodes decide their plans. Only the informed
        // index list is visited; everyone else keeps a standing SILENT plan,
        // so this phase is O(informed), not O(n).
        for &i in self.informed.list() {
            let i = i as usize;
            let v = NodeId::new(i);
            self.plans[i] = match self.informed.at(i) {
                Some(at) if self.census.is_participating(i) => {
                    let view = NodeView {
                        informed_at: at,
                        is_creator: v == self.creator,
                        state: &self.states[i],
                    };
                    protocol.plan(view, t)
                }
                _ => Plan::SILENT,
            };
        }
        clock.lap(&mut self.probe, StepPhase::Plan);

        // Phase c: exchanges, recorded into the flat observation arena.
        let mut push_tx = 0u64;
        let mut pull_tx = 0u64;
        self.arena.begin_round();
        if fast_path {
            // Zero-failure fast path: every materialised channel is usable
            // and every transmission arrives — no failure sampling at all.
            for i in 0..n {
                let range = self.fabric.out_range(i);
                if range.is_empty() {
                    continue;
                }
                let caller_plan = self.plans[i];
                for c in range {
                    let w = self.fabric.target(c).index();
                    // push: caller -> callee.
                    if caller_plan.push {
                        push_tx += 1;
                        self.arena.record_push(w, caller_plan.meta);
                    }
                    // pull: callee -> caller.
                    let callee_plan = self.plans[w];
                    if callee_plan.pull_serve {
                        pull_tx += 1;
                        self.arena.record_pull(i, callee_plan.meta);
                    }
                }
            }
        } else {
            for i in 0..n {
                let range = self.fabric.out_range(i);
                if range.is_empty() {
                    continue;
                }
                let caller_plan = self.plans[i];
                for c in range {
                    if !self.fabric.usable(c) {
                        continue;
                    }
                    let w = self.fabric.target(c).index();
                    // push: caller -> callee.
                    if caller_plan.push {
                        push_tx += 1;
                        if failures.transmission_ok(rng) {
                            self.arena.record_push(w, caller_plan.meta);
                        }
                    }
                    // pull: callee -> caller. Failed transmissions are
                    // counted but not delivered (the copy was sent and lost).
                    let callee_plan = self.plans[w];
                    if callee_plan.pull_serve {
                        pull_tx += 1;
                        if failures.transmission_ok(rng) {
                            self.arena.record_pull(i, callee_plan.meta);
                        }
                    }
                }
            }
        }
        clock.lap(&mut self.probe, StepPhase::Exchange);

        // Phase d: digest observations, update informedness. Receivers are
        // visited via the arena's touched list, then informed-but-silent
        // nodes via the informed index list — O(receipts + informed) total.
        self.arena.build();
        let mut newly_informed = 0usize;
        let informed_before = self.informed.len();
        for dense in 0..self.arena.touched().len() {
            let i = self.arena.touched()[dense] as usize;
            let (pushes, pulls) = self.arena.segment(dense);
            self.scratch_obs.pushes.clear();
            self.scratch_obs.pulls.clear();
            self.scratch_obs.pushes.extend_from_slice(pushes);
            self.scratch_obs.pulls.extend_from_slice(pulls);
            if self.informed.mark(i, t) {
                newly_informed += 1;
                // Receivers are alive and uncrashed by construction (the
                // fabric filters callees, crash sampling precedes channel
                // opening), so this always increments — checked anyway so
                // an exotic topology cannot skew the census.
                if self.census.is_effective(i) {
                    self.alive_informed += 1;
                }
            }
            protocol.update(&mut self.states[i], self.informed.at(i), t, &self.scratch_obs);
        }
        // Informed nodes that heard nothing still observe the (empty) round,
        // so counter-based protocols advance through silent rounds.
        for ix in 0..informed_before {
            let i = self.informed.list()[ix] as usize;
            if self.arena.heard(i) {
                continue; // already digested above
            }
            if self.census.is_suspended(i) {
                continue; // offline: protocol state is frozen until recovery
            }
            protocol.update(&mut self.states[i], self.informed.at(i), t, &self.empty_obs);
        }
        clock.lap(&mut self.probe, StepPhase::Update);
        (push_tx, pull_tx, newly_informed)
    }

    /// Phases b–d of the sharded round path: one task per contiguous
    /// node-slot shard for plan, exchange and merge-digest, with the
    /// per-call transmission outcomes pre-drawn serially (in the exact
    /// order the serial exchange draws them) so the fan-out touches no
    /// RNG. Cross-shard push receipts travel through per-(source →
    /// target) outboxes merged in ascending source-shard order, which
    /// reproduces the serial engine's global caller order — see
    /// `crate::shard` for the determinism argument.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn phases_sharded<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        t: Round,
        protocol: &P,
        shards: usize,
        failures: FailureModel,
        fast_path: bool,
        clock: &mut PhaseClock,
        rng: &mut R,
    ) -> (u64, u64, usize) {
        if self.shard_rt.is_none() {
            self.shard_rt = Some(ShardRuntime::new(n, shards, self.informed.list()));
        }
        let probing = self.probe.is_some();
        let layout = {
            let rt = self.shard_rt.as_mut().expect("shard runtime");
            rt.ensure_len(n);
            rt.layout
        };
        let count = layout.count();

        // Phase b (fanned out): informed nodes decide their plans, one
        // task per shard over its own informed list; writes land in
        // disjoint per-shard chunks of the plan buffer.
        {
            let rt = self.shard_rt.as_ref().expect("shard runtime");
            let states = &self.states;
            let informed = &self.informed;
            let census = &self.census;
            let creator = self.creator;
            let mut rest: &mut [Plan] = &mut self.plans[..n];
            let mut items: Vec<(usize, &mut [Plan], &[u32])> = Vec::with_capacity(count);
            for s in 0..count {
                let (chunk, tail) = rest.split_at_mut(layout.range(s, n).len());
                rest = tail;
                items.push((s, chunk, rt.informed_lists[s].as_slice()));
            }
            let durs: Vec<Duration> = items
                .into_par_iter()
                .map(|(s, chunk, list)| {
                    let sc = ShardClock::armed(probing);
                    let base = layout.range(s, n).start;
                    shard_plan(protocol, states, informed, census, creator, t, base, chunk, list);
                    sc.elapsed()
                })
                .collect();
            if let Some(p) = self.probe.as_deref_mut() {
                for (s, d) in durs.into_iter().enumerate() {
                    p.on_shard_phase(s, StepPhase::Plan, d);
                }
            }
        }
        clock.lap(&mut self.probe, StepPhase::Plan);

        // Serial pre-draw of per-call transmission outcomes, replicating
        // the serial exchange's interleaved draw order exactly (push draw
        // then pull draw per usable channel, callers ascending). Skipped
        // entirely when the transmission rate is zero — the serial
        // engine's draws short-circuit without touching the RNG then.
        let tx_draws = !fast_path && failures.transmission_failure > 0.0;
        if tx_draws {
            let rt = self.shard_rt.as_mut().expect("shard runtime");
            rt.push_ok.clear();
            rt.push_ok.resize(self.fabric.len(), false);
            rt.pull_ok.clear();
            rt.pull_ok.resize(self.fabric.len(), false);
            for i in 0..n {
                let range = self.fabric.out_range(i);
                if range.is_empty() {
                    continue;
                }
                let caller_push = self.plans[i].push;
                for c in range {
                    if !self.fabric.usable(c) {
                        continue;
                    }
                    if caller_push {
                        rt.push_ok[c] = failures.transmission_ok(rng);
                    }
                    if self.plans[self.fabric.target(c).index()].pull_serve {
                        rt.pull_ok[c] = failures.transmission_ok(rng);
                    }
                }
            }
        }

        // Phase c (fanned out): each shard walks its own callers'
        // channels. Pull receipts land directly in the shard's local
        // arena (the receiver is the caller); push receipts — same-shard
        // ones included — go through the outboxes so the merge phase can
        // reproduce the global caller order.
        let (push_tx, pull_tx) = {
            let rt = self.shard_rt.as_mut().expect("shard runtime");
            let fabric = &self.fabric;
            let plans = &self.plans;
            let ShardRuntime { arenas, outboxes, push_ok, pull_ok, .. } = rt;
            let push_ok = &*push_ok;
            let pull_ok = &*pull_ok;
            let taken_arenas = std::mem::take(arenas);
            let taken_outboxes = std::mem::take(outboxes);
            let items: Vec<(usize, ObservationArena, Vec<Vec<(u32, RumorMeta)>>)> = taken_arenas
                .into_iter()
                .zip(taken_outboxes)
                .enumerate()
                .map(|(s, (a, o))| (s, a, o))
                .collect();
            let results: Vec<_> = items
                .into_par_iter()
                .map(|(s, mut arena, mut outbox)| {
                    let sc = ShardClock::armed(probing);
                    arena.begin_round();
                    for row in outbox.iter_mut() {
                        row.clear();
                    }
                    let (ptx, pltx) = shard_exchange(
                        fabric,
                        plans,
                        push_ok,
                        pull_ok,
                        layout,
                        layout.range(s, n),
                        fast_path,
                        tx_draws,
                        &mut arena,
                        &mut outbox,
                    );
                    (arena, outbox, ptx, pltx, sc.elapsed())
                })
                .collect();
            let mut push_tx = 0u64;
            let mut pull_tx = 0u64;
            for (s, (arena, outbox, ptx, pltx, d)) in results.into_iter().enumerate() {
                arenas.push(arena);
                outboxes.push(outbox);
                push_tx += ptx;
                pull_tx += pltx;
                if let Some(p) = self.probe.as_deref_mut() {
                    p.on_shard_phase(s, StepPhase::Exchange, d);
                }
            }
            (push_tx, pull_tx)
        };
        clock.lap(&mut self.probe, StepPhase::Exchange);

        // Phase d (fanned out): each shard merges its incoming push
        // receipts (ascending source-shard order) into its arena, builds
        // it, and digests its own receivers and informed-but-silent
        // nodes against disjoint chunks of the protocol-state vector.
        // Marks are deferred: tasks only *read* the pre-round informed
        // index and report newly-informed slots for the serial finalize.
        {
            let rt = self.shard_rt.as_mut().expect("shard runtime");
            let informed = &self.informed;
            let census = &self.census;
            let empty_obs = &self.empty_obs;
            let ShardRuntime { arenas, outboxes, informed_lists, newly, scratch, .. } = rt;
            let outboxes = &*outboxes;
            let taken_arenas = std::mem::take(arenas);
            let taken_newly = std::mem::take(newly);
            let taken_scratch = std::mem::take(scratch);
            let mut rest: &mut [P::State] = &mut self.states[..n];
            let mut items: Vec<(
                usize,
                ObservationArena,
                &mut [P::State],
                Vec<u32>,
                Observation,
                &[u32],
            )> = Vec::with_capacity(count);
            for (s, ((arena, nl), sc)) in
                taken_arenas.into_iter().zip(taken_newly).zip(taken_scratch).enumerate()
            {
                let (chunk, tail) = rest.split_at_mut(layout.range(s, n).len());
                rest = tail;
                items.push((s, arena, chunk, nl, sc, informed_lists[s].as_slice()));
            }
            let results: Vec<_> = items
                .into_par_iter()
                .map(|(s, mut arena, chunk, mut nl, mut sc_obs, list)| {
                    let scl = ShardClock::armed(probing);
                    let base = layout.range(s, n).start;
                    shard_merge_digest(
                        protocol,
                        outboxes,
                        informed,
                        census,
                        empty_obs,
                        t,
                        s,
                        base,
                        &mut arena,
                        chunk,
                        &mut nl,
                        &mut sc_obs,
                        list,
                    );
                    (arena, nl, sc_obs, scl.elapsed())
                })
                .collect();
            for (s, (arena, nl, sc_obs, d)) in results.into_iter().enumerate() {
                arenas.push(arena);
                newly.push(nl);
                scratch.push(sc_obs);
                if let Some(p) = self.probe.as_deref_mut() {
                    p.on_shard_phase(s, StepPhase::Update, d);
                }
            }
        }

        // Serial finalize, fixed shard order: apply the deferred marks,
        // maintain the census numerator and the per-shard informed lists.
        let mut newly_informed = 0usize;
        {
            let rt = self.shard_rt.as_mut().expect("shard runtime");
            for s in 0..count {
                for ix in 0..rt.newly[s].len() {
                    let gi = rt.newly[s][ix];
                    let i = gi as usize;
                    if self.informed.mark(i, t) {
                        newly_informed += 1;
                        if self.census.is_effective(i) {
                            self.alive_informed += 1;
                        }
                        rt.informed_lists[s].push(gi);
                    }
                }
            }
        }
        clock.lap(&mut self.probe, StepPhase::Update);
        (push_tx, pull_tx, newly_informed)
    }

    /// Runs rounds until a stopping condition fires.
    pub fn run_to_completion<T: Topology + ?Sized, R: Rng + ?Sized>(
        &mut self,
        topo: &T,
        protocol: &P,
        config: SimConfig,
        rng: &mut R,
    ) {
        while !self.finished(topo, protocol, config) {
            self.step(topo, protocol, config, rng);
        }
    }

    /// Finalises the run into a [`RunReport`].
    pub fn into_report<T: Topology + ?Sized>(mut self, topo: &T, _config: SimConfig) -> RunReport {
        self.sync_census(topo);
        RunReport {
            node_count: topo.node_count(),
            alive_count: self.census.effective_alive(),
            informed_count: self.alive_informed,
            rounds: self.round,
            full_coverage_at: self.full_coverage_at,
            tx_at_coverage: self.tx_at_coverage,
            push_tx: self.push_tx,
            pull_tx: self.pull_tx,
            channels: self.channels,
            stop: self.stop.unwrap_or(StopReason::RoundCap),
            history: self.history,
        }
    }
}

/// One shard's plan fan-out: fill this shard's chunk of the plan buffer
/// (`chunk[i - base]`) from its informed list. RNG-free and read-only on
/// all shared state — thread scheduling cannot affect it.
#[allow(clippy::too_many_arguments)]
// rrb-lint: hot
fn shard_plan<P: Protocol>(
    protocol: &P,
    states: &[P::State],
    informed: &InformedIndex,
    census: &AliveCensus,
    creator: NodeId,
    t: Round,
    base: usize,
    chunk: &mut [Plan],
    list: &[u32],
) {
    for &gi in list {
        let i = gi as usize;
        let v = NodeId::new(i);
        chunk[i - base] = match informed.at(i) {
            Some(at) if census.is_participating(i) => {
                let view =
                    NodeView { informed_at: at, is_creator: v == creator, state: &states[i] };
                protocol.plan(view, t)
            }
            _ => Plan::SILENT,
        };
    }
}

/// One shard's exchange fan-out over its own callers' channels. Delivery
/// outcomes come from the serial pre-draw tables (`push_ok`/`pull_ok`,
/// unused when `tx_draws` is false) — no RNG here. Pull receipts are
/// recorded straight into the shard-local arena (the receiver is the
/// caller); every push receipt goes through the per-target-shard outbox.
#[allow(clippy::too_many_arguments)]
// rrb-lint: hot
fn shard_exchange(
    fabric: &ChannelFabric,
    plans: &[Plan],
    push_ok: &[bool],
    pull_ok: &[bool],
    layout: ShardLayout,
    range: std::ops::Range<usize>,
    fast_path: bool,
    tx_draws: bool,
    arena: &mut ObservationArena,
    outbox: &mut [Vec<(u32, RumorMeta)>],
) -> (u64, u64) {
    let base = range.start;
    let mut push_tx = 0u64;
    let mut pull_tx = 0u64;
    for i in range {
        let out = fabric.out_range(i);
        if out.is_empty() {
            continue;
        }
        let caller_plan = plans[i];
        for c in out {
            if !fast_path && !fabric.usable(c) {
                continue;
            }
            let w = fabric.target(c).index();
            // push: caller -> callee (failed transmissions are counted
            // but not delivered, exactly as in the serial exchange).
            if caller_plan.push {
                push_tx += 1;
                if !tx_draws || push_ok[c] {
                    outbox[layout.shard_of(w)].push((w as u32, caller_plan.meta));
                }
            }
            // pull: callee -> caller.
            let callee_plan = plans[w];
            if callee_plan.pull_serve {
                pull_tx += 1;
                if !tx_draws || pull_ok[c] {
                    arena.record_pull(i - base, callee_plan.meta);
                }
            }
        }
    }
    (push_tx, pull_tx)
}

/// One shard's merge + digest fan-out: merge incoming push receipts in
/// ascending source-shard order (sources are contiguous ascending slot
/// ranges, so this reproduces the serial engine's global caller order),
/// build the shard arena, digest touched receivers and informed-but-
/// silent nodes into this shard's state chunk. Newly informed slots are
/// only *reported* (`newly`); the serial finalize applies the marks.
#[allow(clippy::too_many_arguments)]
// rrb-lint: hot
fn shard_merge_digest<P: Protocol>(
    protocol: &P,
    outboxes: &[Vec<Vec<(u32, RumorMeta)>>],
    informed: &InformedIndex,
    census: &AliveCensus,
    empty_obs: &Observation,
    t: Round,
    s: usize,
    base: usize,
    arena: &mut ObservationArena,
    chunk: &mut [P::State],
    newly: &mut Vec<u32>,
    scratch: &mut Observation,
    list: &[u32],
) {
    for row in outboxes {
        for &(w, meta) in &row[s] {
            arena.record_push(w as usize - base, meta);
        }
    }
    arena.build();
    newly.clear();
    for dense in 0..arena.touched().len() {
        let li = arena.touched()[dense] as usize;
        let gi = base + li;
        let (pushes, pulls) = arena.segment(dense);
        scratch.pushes.clear();
        scratch.pulls.clear();
        scratch.pushes.extend_from_slice(pushes);
        scratch.pulls.extend_from_slice(pulls);
        // The serial digest marks before updating, so a receiver's
        // `informed_at` is its original round — or `t` when new. Marks
        // are deferred here, so reproduce that view explicitly.
        let at = match informed.at(gi) {
            Some(at) => at,
            None => {
                newly.push(gi as u32);
                t
            }
        };
        protocol.update(&mut chunk[li], Some(at), t, scratch);
    }
    // Informed nodes that heard nothing still observe the (empty) round,
    // so counter-based protocols advance through silent rounds. `list` is
    // the shard's pre-round informed list — newly informed receivers are
    // not in it yet, exactly like the serial engine's snapshot bound.
    for &gi in list {
        let i = gi as usize;
        let li = i - base;
        if arena.heard(li) {
            continue; // already digested above
        }
        if census.is_suspended(i) {
            continue; // offline: protocol state is frozen until recovery
        }
        protocol.update(&mut chunk[li], informed.at(i), t, empty_obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{FloodPush, FloodPushPull, SilentProtocol};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rrb_graph::gen;

    #[test]
    fn flood_push_covers_complete_graph() {
        let g = gen::complete(64);
        let mut rng = SmallRng::seed_from_u64(1);
        let sim = Simulation::new(&g, FloodPush::new(), SimConfig::default());
        let report = sim.run(NodeId::new(0), &mut rng);
        assert!(report.all_informed());
        assert_eq!(report.stop, StopReason::FullCoverage);
        // Coverage of K64 by push takes ~log2(64)+ln(64) ≈ 10 rounds.
        assert!(report.rounds < 40, "took {} rounds", report.rounds);
        assert!(report.total_tx() > 0);
    }

    #[test]
    fn silent_protocol_quiesces_immediately() {
        let g = gen::complete(8);
        let mut rng = SmallRng::seed_from_u64(2);
        let sim = Simulation::new(&g, SilentProtocol, SimConfig::default());
        let report = sim.run(NodeId::new(3), &mut rng);
        assert_eq!(report.informed_count, 1);
        assert_eq!(report.stop, StopReason::Quiescent);
        assert_eq!(report.total_tx(), 0);
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn round_cap_stops_run() {
        let g = gen::cycle(1000); // slow topology
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = SimConfig::default().with_max_rounds(5);
        let sim = Simulation::new(&g, FloodPush::new(), cfg);
        let report = sim.run(NodeId::new(0), &mut rng);
        assert_eq!(report.stop, StopReason::RoundCap);
        assert_eq!(report.rounds, 5);
        assert!(!report.all_informed());
        // Push along a cycle moves at most 1 hop per side per round, plus the
        // origin: at most 11 informed after 5 rounds.
        assert!(report.informed_count <= 11);
    }

    #[test]
    fn history_recording() {
        let g = gen::complete(32);
        let mut rng = SmallRng::seed_from_u64(4);
        let cfg = SimConfig::default().with_history();
        let sim = Simulation::new(&g, FloodPushPull::new(), cfg);
        let report = sim.run(NodeId::new(0), &mut rng);
        assert_eq!(report.history.len(), report.rounds as usize);
        // Informed counts must be non-decreasing.
        let mut last = 0;
        for rec in &report.history {
            assert!(rec.informed >= last);
            last = rec.informed;
        }
        assert_eq!(last, 32);
        // Totals match the sum of the per-round records.
        let push_sum: u64 = report.history.iter().map(|r| r.push_tx).sum();
        let pull_sum: u64 = report.history.iter().map(|r| r.pull_tx).sum();
        assert_eq!(push_sum, report.push_tx);
        assert_eq!(pull_sum, report.pull_tx);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gen::complete(32);
        let cfg = SimConfig::default().with_history();
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Simulation::new(&g, FloodPushPull::new(), cfg).run(NodeId::new(0), &mut rng)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
        let c = run(8);
        assert!(a != c || a.rounds == c.rounds); // different seed almost surely differs
    }

    #[test]
    fn deterministic_with_failures() {
        // The slow path (failure sampling) must be as reproducible as the
        // fast path: identical seeds give byte-identical reports.
        let g = gen::complete(48);
        let cfg = SimConfig::default()
            .with_failures(FailureModel::channels(0.2).with_crashes(0.01))
            .with_history()
            .with_max_rounds(500);
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Simulation::new(&g, FloodPushPull::new(), cfg).run(NodeId::new(0), &mut rng)
        };
        assert_eq!(run(21), run(21));
    }

    #[test]
    fn steady_state_rounds_do_not_allocate() {
        // Arena-reuse guarantee: after a warm-up, every per-round scratch
        // buffer keeps its capacity — steady-state rounds touch the heap
        // zero times. Run past full coverage (stop_at_coverage = false) so
        // late rounds carry the maximum receipt load.
        let g = gen::complete(64);
        let proto = FloodPushPull::new();
        let cfg = SimConfig::until_quiescent().with_max_rounds(60);
        let mut rng = SmallRng::seed_from_u64(33);
        let mut sim = SimState::new(&proto, 64, NodeId::new(0));
        for _ in 0..20 {
            sim.step(&g, &proto, cfg, &mut rng);
        }
        let warm = sim.scratch_capacities();
        for _ in 0..40 {
            sim.step(&g, &proto, cfg, &mut rng);
        }
        assert_eq!(
            sim.scratch_capacities(),
            warm,
            "per-round scratch buffers reallocated after warm-up"
        );
    }

    #[test]
    fn transmission_failures_are_counted_but_not_delivered() {
        let g = gen::complete(16);
        let mut rng = SmallRng::seed_from_u64(5);
        // With 99% transmission loss coverage takes many transmissions.
        let cfg = SimConfig::default()
            .with_failures(FailureModel::transmissions(0.9))
            .with_max_rounds(2000);
        let sim = Simulation::new(&g, FloodPush::new(), cfg);
        let report = sim.run(NodeId::new(0), &mut rng);
        assert!(report.all_informed());
        // Far more transmissions than the failure-free case needs.
        assert!(report.total_tx() > 16 * 4);
    }

    #[test]
    fn channel_failures_slow_coverage() {
        let g = gen::complete(32);
        let run = |p: f64, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let cfg = SimConfig::default()
                .with_failures(if p > 0.0 {
                    FailureModel::channels(p)
                } else {
                    FailureModel::NONE
                })
                .with_max_rounds(5000);
            Simulation::new(&g, FloodPush::new(), cfg).run(NodeId::new(0), &mut rng)
        };
        let mut slow = 0u32;
        let mut fast = 0u32;
        for seed in 0..10 {
            fast += run(0.0, seed).rounds;
            slow += run(0.5, seed).rounds;
        }
        assert!(slow > fast, "failures should slow coverage: {slow} vs {fast}");
    }

    #[test]
    fn crashed_nodes_are_excluded_from_coverage() {
        // A crash can kill the creator before it spreads (a legitimate
        // Monte-Carlo failure), so aggregate over seeds: accounting must be
        // exact in every run, and most runs must both crash someone and
        // still inform all survivors.
        let g = gen::complete(64);
        let cfg = SimConfig::default()
            .with_failures(FailureModel::crashes(0.02))
            .with_max_rounds(500);
        let proto = FloodPushPull::new();
        let mut crashed_and_covered = 0;
        for seed in 0..8 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sim = SimState::new(&proto, 64, NodeId::new(0));
            sim.run_to_completion(&g, &proto, cfg, &mut rng);
            let crashed = sim.crashed_count();
            let report = sim.into_report(&g, cfg);
            assert_eq!(report.alive_count, 64 - crashed, "accounting broke (seed {seed})");
            // Either the rumour died with the crashed creator (coverage 0)
            // or every survivor learned it.
            assert!(
                report.all_informed() || report.informed_count == 0,
                "partial coverage {} impossible on K64 without caps (seed {seed})",
                report.coverage()
            );
            if crashed > 0 && report.all_informed() {
                crashed_and_covered += 1;
            }
        }
        assert!(
            crashed_and_covered >= 4,
            "only {crashed_and_covered}/8 seeds crashed someone and still covered"
        );
    }

    #[test]
    fn crashes_can_kill_the_broadcast_origin_gracefully() {
        // Extreme crash rate: the run must still terminate cleanly.
        let g = gen::complete(16);
        let mut rng = SmallRng::seed_from_u64(10);
        let cfg = SimConfig::default()
            .with_failures(FailureModel::crashes(0.4))
            .with_max_rounds(200);
        let report =
            Simulation::new(&g, FloodPushPull::new(), cfg).run(NodeId::new(0), &mut rng);
        assert!(report.rounds <= 200);
        assert!(report.coverage() <= 1.0);
    }

    #[test]
    fn creator_view_is_flagged() {
        // The creator is informed at round 0 and FloodPush starts pushing in
        // round 1.
        let g = gen::complete(4);
        let proto = FloodPush::new();
        let mut sim = SimState::new(&proto, 4, NodeId::new(2));
        assert_eq!(sim.informed_at(NodeId::new(2)), Some(0));
        assert_eq!(sim.informed_at(NodeId::new(0)), None);
        let mut rng = SmallRng::seed_from_u64(0);
        let rec = sim.step(&g, &proto, SimConfig::default(), &mut rng);
        assert!(rec.push_tx >= 1);
    }

    #[test]
    #[should_panic(expected = "origin out of range")]
    fn origin_must_be_in_range() {
        let proto = FloodPush::new();
        let _ = SimState::<FloodPush>::new(&proto, 4, NodeId::new(9));
    }

    /// Wrapper forcing the conservative default capabilities, i.e. the
    /// engine behaviour before the capability-gated sampling skip existed.
    #[derive(Debug, Clone)]
    struct ForceAll<P>(P);

    impl<P: Protocol> Protocol for ForceAll<P> {
        type State = P::State;

        fn init(&self, creator: bool) -> Self::State {
            self.0.init(creator)
        }

        fn choice_policy(&self) -> crate::ChoicePolicy {
            self.0.choice_policy()
        }

        fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan {
            self.0.plan(view, t)
        }

        fn update(
            &self,
            state: &mut Self::State,
            informed_at: Option<Round>,
            t: Round,
            obs: &Observation,
        ) {
            self.0.update(state, informed_at, t, obs)
        }

        fn is_quiescent(&self, state: &Self::State, informed_at: Round, t: Round) -> bool {
            self.0.is_quiescent(state, informed_at, t)
        }

        fn deadline(&self) -> Option<Round> {
            self.0.deadline()
        }
        // capabilities(): default ALL — the skip never engages.
    }

    #[test]
    fn push_only_skip_is_deterministic_and_covers() {
        let g = gen::complete(128);
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Simulation::new(&g, FloodPush::new(), SimConfig::default().with_history())
                .run(NodeId::new(0), &mut rng)
        };
        let a = run(11);
        assert_eq!(a, run(11));
        assert!(a.all_informed());
    }

    #[test]
    fn push_only_skip_still_counts_unopened_channels() {
        // The skip must not change the channels metric: skipped callers'
        // would-be channels are counted deterministically (min(k, deg)).
        let g = gen::complete(48);
        let step_channels = |skip: bool| {
            let mut rng = SmallRng::seed_from_u64(7);
            if skip {
                let proto = FloodPush::new();
                let mut sim = SimState::new(&proto, 48, NodeId::new(0));
                sim.step(&g, &proto, SimConfig::default(), &mut rng).channels
            } else {
                let proto = ForceAll(FloodPush::new());
                let mut sim = SimState::new(&proto, 48, NodeId::new(0));
                sim.step(&g, &proto, SimConfig::default(), &mut rng).channels
            }
        };
        let skipped = step_channels(true);
        let sampled = step_channels(false);
        assert_eq!(skipped, sampled);
        assert_eq!(skipped, 48); // STANDARD policy: one channel per node.
    }

    #[test]
    fn skip_never_engages_for_pull_using_protocols() {
        // A pull-serving protocol (capabilities ALL) must take the exact
        // pre-skip code path: byte-identical to the ForceAll wrapper.
        let g = gen::complete(64);
        let cfg = SimConfig::default().with_history();
        let native = {
            let mut rng = SmallRng::seed_from_u64(5);
            Simulation::new(&g, FloodPushPull::new(), cfg).run(NodeId::new(2), &mut rng)
        };
        let forced = {
            let mut rng = SmallRng::seed_from_u64(5);
            Simulation::new(&g, ForceAll(FloodPushPull::new()), cfg).run(NodeId::new(2), &mut rng)
        };
        assert_eq!(native, forced);
    }

    #[test]
    fn skip_never_engages_for_stateful_policies() {
        // The memoryless-policy query must keep the skip off for
        // SequentialMemory and Cyclic policies even under a push-only
        // protocol: sampling them mutates per-node state (rings, cursors),
        // so the run must be byte-identical to the ForceAll wrapper that
        // disables every capability shortcut.
        let g = gen::complete(48);
        let cfg = SimConfig::default().with_history().with_max_rounds(500);
        for policy in [
            crate::ChoicePolicy::SequentialMemory { window: 3 },
            crate::ChoicePolicy::Cyclic,
        ] {
            let native = {
                let mut rng = SmallRng::seed_from_u64(15);
                Simulation::new(&g, FloodPush::with_policy(policy), cfg)
                    .run(NodeId::new(2), &mut rng)
            };
            let forced = {
                let mut rng = SmallRng::seed_from_u64(15);
                Simulation::new(&g, ForceAll(FloodPush::with_policy(policy)), cfg)
                    .run(NodeId::new(2), &mut rng)
            };
            assert_eq!(native, forced, "stateful policy {policy:?} diverged");
            assert!(native.all_informed());
        }
    }

    /// Static graph with mutable per-slot aliveness, for exercising the
    /// membership delta hooks without a full overlay.
    struct DynAlive {
        g: rrb_graph::Graph,
        alive: Vec<bool>,
    }

    impl Topology for DynAlive {
        fn node_count(&self) -> usize {
            rrb_graph::Graph::node_count(&self.g)
        }
        fn is_alive(&self, v: NodeId) -> bool {
            self.alive[v.index()]
        }
        fn stubs(&self, v: NodeId) -> &[NodeId] {
            self.g.neighbors(v)
        }
    }

    #[test]
    fn leave_deltas_shrink_the_coverage_denominator() {
        let proto = FloodPushPull::new();
        let cfg = SimConfig::default().with_max_rounds(100);
        let mut topo = DynAlive { g: gen::complete(24), alive: vec![true; 24] };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sim = SimState::new(&proto, 24, NodeId::new(0));
        sim.step(&topo, &proto, cfg, &mut rng);
        // Peer 5 departs between rounds; the census shrinks by one whether
        // or not it was already informed.
        topo.alive[5] = false;
        sim.apply_leaves(&[NodeId::new(5)]);
        assert_eq!(sim.effective_alive(), 23);
        sim.run_to_completion(&topo, &proto, cfg, &mut rng);
        let report = sim.into_report(&topo, cfg);
        assert_eq!(report.alive_count, 23);
        assert!(report.all_informed(), "survivors must all be informed");
        assert_eq!(report.informed_count, 23);
    }

    #[test]
    fn coverage_stop_accounts_for_informed_leavers() {
        // Depart the *origin* right after round 1: its copy leaves the
        // numerator with it, so coverage only fires once every survivor is
        // informed — the run must still terminate with exact accounting.
        let proto = FloodPushPull::new();
        let cfg = SimConfig::default().with_max_rounds(100);
        let mut topo = DynAlive { g: gen::complete(16), alive: vec![true; 16] };
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sim = SimState::new(&proto, 16, NodeId::new(3));
        sim.step(&topo, &proto, cfg, &mut rng);
        topo.alive[3] = false;
        sim.apply_leaves(&[NodeId::new(3)]);
        sim.run_to_completion(&topo, &proto, cfg, &mut rng);
        let report = sim.into_report(&topo, cfg);
        assert_eq!(report.alive_count, 15);
        assert_eq!(report.informed_count, 15);
        assert_eq!(report.stop, StopReason::FullCoverage);
    }

    #[test]
    fn push_only_skip_counts_channels_with_crashes() {
        // The skip must count skipped callers' channels identically to the
        // sampled path while part of the network has crash-stopped. Only
        // the first step is comparable — the two paths consume different
        // numbers of RNG draws, so the streams diverge afterwards — but
        // crash sampling runs before any target sampling, so within that
        // step both paths crash the exact same nodes.
        let g = gen::complete(64);
        let cfg = SimConfig::default().with_failures(FailureModel::crashes(0.3));
        let skipped = {
            let proto = FloodPush::new();
            let mut sim = SimState::new(&proto, 64, NodeId::new(0));
            let mut rng = SmallRng::seed_from_u64(9);
            sim.step(&g, &proto, cfg, &mut rng).channels
        };
        let sampled = {
            let proto = ForceAll(FloodPush::new());
            let mut sim = SimState::new(&proto, 64, NodeId::new(0));
            let mut rng = SmallRng::seed_from_u64(9);
            sim.step(&g, &proto, cfg, &mut rng).channels
        };
        assert_eq!(skipped, sampled);
        // With p = 0.3 the fixed seed crashes a nonzero, non-total subset,
        // so the counts above genuinely exercise the crashed-caller branch.
        assert!(skipped > 0 && skipped < 64, "channels = {skipped}");
    }

    #[test]
    fn probe_is_byte_identical_and_counters_match_the_report() {
        // Telemetry guarantee: a probe makes no RNG draws, so an
        // instrumented run's report is byte-identical to a bare run, and
        // the probe's counter totals agree with the report exactly.
        use crate::telemetry::PhaseTimings;
        let g = gen::complete(48);
        let proto = FloodPushPull::new();
        let cfg = SimConfig::default()
            .with_failures(FailureModel::channels(0.1).with_crashes(0.005))
            .with_history()
            .with_max_rounds(300);
        let bare = {
            let mut rng = SmallRng::seed_from_u64(19);
            let mut sim = SimState::new(&proto, 48, NodeId::new(0));
            sim.run_to_completion(&g, &proto, cfg, &mut rng);
            sim.into_report(&g, cfg)
        };
        let mut sim = SimState::new(&proto, 48, NodeId::new(0));
        sim.set_probe(Some(Box::new(PhaseTimings::new())));
        let mut rng = SmallRng::seed_from_u64(19);
        sim.run_to_completion(&g, &proto, cfg, &mut rng);
        let probe = sim.take_probe().expect("probe still installed");
        let timings =
            probe.as_any().downcast_ref::<PhaseTimings>().expect("concrete probe");
        let probed = sim.into_report(&g, cfg);
        assert_eq!(bare, probed, "probe must not perturb the run");
        assert_eq!(timings.rounds(), probed.rounds);
        assert_eq!(timings.push_tx(), probed.push_tx);
        assert_eq!(timings.pull_tx(), probed.pull_tx);
        assert_eq!(timings.tx(), probed.total_tx());
        assert_eq!(timings.channels(), probed.channels);
        assert_eq!(timings.last_round().informed, probed.informed_count);
        assert_eq!(timings.last_round().alive, probed.alive_count);
        // Every executed round was attributed to the six phases.
        let total_ms: f64 = timings.phase_ms().iter().sum();
        assert!(total_ms >= 0.0);
        assert!(timings.peak_rss_kib().unwrap_or(1) > 0);
    }

    #[test]
    fn probe_counts_skipped_draws_under_push_only_skip() {
        use crate::telemetry::PhaseTimings;
        let g = gen::complete(64);
        let proto = FloodPush::new(); // push-only: the sampling skip engages
        let mut sim = SimState::new(&proto, 64, NodeId::new(0));
        sim.set_probe(Some(Box::new(PhaseTimings::new())));
        let mut rng = SmallRng::seed_from_u64(23);
        sim.run_to_completion(&g, &proto, SimConfig::default(), &mut rng);
        let probe = sim.take_probe().unwrap();
        let timings = probe.as_any().downcast_ref::<PhaseTimings>().unwrap();
        assert!(
            timings.skipped_draws() > 0,
            "uninformed callers' draws must be counted as skipped"
        );
        assert!(timings.skipped_draws() <= timings.channels());
    }

    #[test]
    fn probed_steady_state_rounds_do_not_allocate() {
        // The no-allocation guarantee must hold with a probe installed:
        // PhaseTimings accumulates into fixed-size storage.
        use crate::telemetry::PhaseTimings;
        let g = gen::complete(64);
        let proto = FloodPushPull::new();
        let cfg = SimConfig::until_quiescent().with_max_rounds(60);
        let mut rng = SmallRng::seed_from_u64(33);
        let mut sim = SimState::new(&proto, 64, NodeId::new(0));
        sim.set_probe(Some(Box::new(PhaseTimings::new())));
        for _ in 0..20 {
            sim.step(&g, &proto, cfg, &mut rng);
        }
        let warm = sim.scratch_capacities();
        for _ in 0..40 {
            sim.step(&g, &proto, cfg, &mut rng);
        }
        assert_eq!(
            sim.scratch_capacities(),
            warm,
            "per-round scratch buffers reallocated after warm-up (probe on)"
        );
    }

    use crate::failure::{
        AdversarySpec, AdversaryTarget, FaultEvent, FaultPlan, FaultState, GilbertElliott,
        OutageSpec,
    };

    fn run_with_plan(
        plan: &FaultPlan,
        origin: usize,
        seed: u64,
        fault_seed: u64,
        cfg: SimConfig,
    ) -> RunReport {
        let g = gen::complete(32);
        let proto = FloodPushPull::new();
        let mut sim = SimState::new(&proto, 32, NodeId::new(origin));
        sim.set_faults(Some(FaultState::new(plan, 32, fault_seed)));
        let mut rng = SmallRng::seed_from_u64(seed);
        sim.run_to_completion(&g, &proto, cfg, &mut rng);
        sim.into_report(&g, cfg)
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        // Back-compat guarantee: an installed-but-empty plan takes the
        // exact pre-fault code paths and RNG stream.
        let cfg = SimConfig::default().with_history();
        let g = gen::complete(32);
        let proto = FloodPushPull::new();
        let bare = {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut sim = SimState::new(&proto, 32, NodeId::new(0));
            sim.run_to_completion(&g, &proto, cfg, &mut rng);
            sim.into_report(&g, cfg)
        };
        let planned = run_with_plan(&FaultPlan::default(), 0, 3, 99, cfg);
        assert_eq!(bare, planned);
    }

    #[test]
    fn scripted_partition_stalls_coverage_until_heal() {
        // Acceptance scenario: partition K32 into two components for rounds
        // [1, 12); coverage plateaus at the origin's component, then the
        // heal lets the rumour jump across and finish.
        let plan = FaultPlan {
            schedule: vec![FaultEvent::Partition { from: 1, until: 12, parts: 2 }],
            ..FaultPlan::default()
        };
        let cfg = SimConfig::default().with_history().with_max_rounds(200);
        let report = run_with_plan(&plan, 0, 17, 18, cfg);
        assert!(report.all_informed());
        let heal = plan.heal_round().unwrap();
        assert_eq!(heal, 12);
        // While partitioned only the origin's residue class (16 nodes) is
        // reachable; on K32 flooding saturates it well inside the window.
        for rec in report.history.iter().filter(|r| r.round < heal) {
            assert!(rec.informed <= 16, "round {}: {} informed", rec.round, rec.informed);
        }
        let stalled = report.history.iter().find(|r| r.informed == 16).unwrap();
        assert!(stalled.round < heal, "component never saturated pre-heal");
        // Full coverage only after the heal.
        assert!(report.full_coverage_at.unwrap() >= heal);
    }

    #[test]
    fn fault_plans_are_deterministic_given_seeds() {
        // The whole menagerie at once (burst chains, outages, a scripted
        // loss window, an adversary): same (run seed, fault seed) pair must
        // reproduce the report byte for byte.
        let plan = FaultPlan {
            burst: Some(GilbertElliott::new(0.2, 0.4, 0.02, 0.7)),
            schedule: vec![FaultEvent::LossWindow {
                from: 3,
                until: 8,
                channel: Some(0.3),
                transmission: None,
            }],
            adversary: Some(AdversarySpec::new(AdversaryTarget::HighestDegree, 1, 3)),
            outages: Some(OutageSpec::new(0.05, 2, 4)),
        };
        let cfg = SimConfig::default().with_history().with_max_rounds(500);
        let a = run_with_plan(&plan, 31, 21, 77, cfg);
        let b = run_with_plan(&plan, 31, 21, 77, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn transient_outages_delay_but_do_not_shrink_coverage() {
        // Suspended nodes stay in the denominator and recover with state
        // intact, so the broadcast still reaches everyone and nobody is
        // counted as crashed.
        let plan = FaultPlan {
            outages: Some(OutageSpec::new(0.2, 2, 5)),
            ..FaultPlan::default()
        };
        let cfg = SimConfig::default().with_max_rounds(1000);
        let g = gen::complete(32);
        let proto = FloodPushPull::new();
        let mut sim = SimState::new(&proto, 32, NodeId::new(0));
        sim.set_faults(Some(FaultState::new(&plan, 32, 5)));
        let mut rng = SmallRng::seed_from_u64(6);
        sim.run_to_completion(&g, &proto, cfg, &mut rng);
        assert_eq!(sim.crashed_count(), 0);
        let report = sim.into_report(&g, cfg);
        assert_eq!(report.alive_count, 32);
        assert!(report.all_informed());
    }

    #[test]
    fn adversary_exhausts_its_budget_and_survivors_still_cover() {
        let plan = FaultPlan {
            adversary: Some(AdversarySpec::new(AdversaryTarget::HighestDegree, 2, 6)),
            ..FaultPlan::default()
        };
        let cfg = SimConfig::default().with_max_rounds(200);
        let g = gen::complete(32);
        let proto = FloodPushPull::new();
        // Degrees are all equal on K32, so the deterministic tie-break
        // crashes the lowest indices first — keep the origin out of reach.
        let mut sim = SimState::new(&proto, 32, NodeId::new(31));
        sim.set_faults(Some(FaultState::new(&plan, 32, 1)));
        let mut rng = SmallRng::seed_from_u64(2);
        sim.run_to_completion(&g, &proto, cfg, &mut rng);
        assert_eq!(sim.crashed_count(), 6);
        assert_eq!(sim.fault_state().unwrap().adversary_budget_left(), 0);
        let report = sim.into_report(&g, cfg);
        assert_eq!(report.alive_count, 26);
        assert!(report.all_informed());
    }

    #[test]
    fn earliest_informed_adversary_decapitates_the_broadcast() {
        // With budget 1 aimed at the earliest-informed node, round 1 kills
        // the origin before it ever opens a channel: the rumour dies.
        let plan = FaultPlan {
            adversary: Some(AdversarySpec::new(AdversaryTarget::EarliestInformed, 1, 1)),
            ..FaultPlan::default()
        };
        let cfg = SimConfig::default().with_max_rounds(50);
        let report = run_with_plan(&plan, 5, 9, 9, cfg);
        assert_eq!(report.informed_count, 0);
        assert_eq!(report.alive_count, 31);
    }
}
