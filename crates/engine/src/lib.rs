//! Synchronous simulator for the **random phone call model** of Karp,
//! Schindelhauer, Shenker and Vöcking, extended with the multiple-choice
//! `open` of Berenbrink, Elsässer and Friedetzky (PODC 2008).
//!
//! # The model (paper §1.2 and §3)
//!
//! Time proceeds in synchronous rounds driven by a global clock. In every
//! round **each node opens communication channels** to neighbours chosen
//! uniformly at random — one neighbour in the standard model, four distinct
//! neighbours in the paper's modification, or one neighbour avoiding the
//! last three choices in the sequentialised variant (footnote 2). Channels
//! are bidirectional for the duration of the round:
//!
//! * a **push** transmission travels from the caller to the callee over an
//!   *outgoing* channel;
//! * a **pull** transmission travels from the callee back to the caller over
//!   an *incoming* channel.
//!
//! Nodes decide whether to transmit using only local knowledge (the age of
//! the rumour, their own state) — the *address-oblivious* restriction. The
//! cost measure is the **number of rumour transmissions**; channel opening
//! is free (it amortises over many concurrent rumours, which
//! [`MultiRumorSimulation`] demonstrates).
//!
//! # Engine architecture: the flat-arena round engine
//!
//! The per-round data flow is allocation-free in steady state. Each
//! [`SimState::step`] runs five phases over reusable flat buffers:
//!
//! 1. **Crash sampling** (skipped unless the model injects crashes).
//! 2. **Channel opening** — every alive node's call targets are appended to
//!    one flat `call_targets` buffer indexed CSR-style by `call_offsets`.
//! 3. **Plan decisions** — an explicit *informed-node index list* means only
//!    informed nodes are visited (`O(informed)`, not `O(n)`); everyone else
//!    keeps a standing `SILENT` plan.
//! 4. **Exchanges** — receipts go into a single CSR-style *observation
//!    arena* (flat metadata buffer + offsets over the receivers actually
//!    touched this round) instead of per-node `Vec<RumorMeta>` pairs. A
//!    **zero-failure fast path** skips every per-call Bernoulli draw when
//!    the model injects no channel/transmission failures, so failure-free
//!    experiments never touch the failure RNG (the stream is identical
//!    either way — zero-probability draws short-circuit).
//! 5. **Digest** — receivers are visited via the arena's touched list and
//!    silent informed nodes via the index list: `O(receipts + informed)`.
//!
//! All buffers (arena, call lists, plans, scratch observation) are reused
//! across rounds; once warm, a round performs **no heap allocation** —
//! asserted by the `steady_state_rounds_do_not_allocate` test via
//! capacity-stability fingerprints.
//!
//! The **multi-rumour engine** ([`MultiSimState`]) runs on the same
//! machinery (shared via the internal `fabric` module): one channel fabric
//! sampled per round and shared by all rumours, per-rumour informed index
//! lists (plan/update/quiescence/coverage passes are `O(informed·rumours)`,
//! not `O(n·rumours)`), a single reused observation arena, retirement of
//! settled rumours, and once-per-channel-direction transmission-failure
//! draws so combined messages fail atomically (§1.2). Its one-rumour case
//! is seed-for-seed identical to [`SimState`] across all failure models
//! (`tests/parity.rs`).
//!
//! **Dynamic membership** is first-class: both engines track aliveness in
//! an incrementally-maintained [`AliveCensus`] and accept join/leave
//! deltas between rounds (`apply_joins` / `apply_leaves`), so coverage,
//! quiescence and retirement update from `O(1)` counters while peers churn
//! — the regime §1 of the paper attributes to P2P networks.
//!
//! **Adversarial faults** go beyond the i.i.d. [`FailureModel`]: a
//! [`FaultPlan`] installed via `set_faults` adds correlated (bursty)
//! channel loss driven by per-node Gilbert–Elliott chains, scripted
//! round-keyed events (partitions that heal, targeted crash sets, loss
//! windows), a budget-limited targeting adversary, and transient outages
//! (nodes suspend with state intact — a census mode distinct from
//! crash-stop). The plan's randomness lives on its own reserved stream,
//! so installing `None` (the default) leaves every run byte-identical to
//! the pre-fault engine.
//!
//! **Asynchronous time** is a third engine, [`AsyncSimState`]: a
//! deterministic pending-event heap keyed by `(time_bits, node, tie_seq)`
//! where each node fires exchanges on its own [`ClockSpec`] clock and
//! rumour copies spend a [`LatencySpec`]-drawn time in flight. It shares
//! the census/fault/telemetry machinery (fault plans are consumed
//! time-windowed via `round(T) = ceil(T)`), and its uniform fixed-rate
//! zero-latency limit reproduces the round model's push trajectory
//! (`tests/calibration.rs`) — opening heterogeneous node speeds, latency
//! distributions and stragglers as dimensions rounds cannot express.
//!
//! Seed replication parallelism lives one layer up in `rrb-bench`
//! (`run_replicated` fans independent seeds over a rayon pool with
//! deterministic per-seed RNG streams); regenerate the engine's perf
//! trajectory with `cargo run --release --bin exp_e1_runtime -- --quick`
//! (writes `BENCH_engine.json`).
//!
//! # Quick start
//!
//! ```
//! use rand::{SeedableRng, rngs::SmallRng};
//! use rrb_engine::{protocols::FloodPush, SimConfig, Simulation};
//! use rrb_graph::{gen, NodeId};
//!
//! let mut rng = SmallRng::seed_from_u64(3);
//! let g = gen::random_regular(256, 8, &mut rng)?;
//! let sim = Simulation::new(&g, FloodPush::new(), SimConfig::default());
//! let report = sim.run(NodeId::new(0), &mut rng);
//! assert!(report.all_informed());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod async_engine;
mod census;
mod choice;
mod clock;
mod fabric;
mod failure;
mod multi;
mod observation;
mod protocol;
mod report;
mod shard;
mod simulation;
mod topology;

pub mod protocols;
pub mod telemetry;
pub mod trace;

pub use async_engine::AsyncSimState;
pub use census::AliveCensus;
pub use choice::{ChoicePolicy, ChoiceState};
pub use clock::{ClockSpec, LatencySpec};
pub use failure::{
    AdversarySpec, AdversaryTarget, FailureModel, FaultEvent, FaultPlan, FaultState,
    GilbertElliott, OutageSpec,
};
pub use multi::{
    MultiRumorReport, MultiRumorSimulation, MultiSimState, RumorInjection, RumorOutcome,
};
pub use observation::{Observation, RumorMeta};
pub use protocol::{Capabilities, NodeView, Plan, Protocol, Round};
pub use report::{RoundRecord, RunReport, StopReason};
pub use shard::{ShardLayout, SHARD_STREAM};
pub use simulation::{SimConfig, SimState, Simulation};
pub use telemetry::{BoxedProbe, PhaseTimings, RoundCounters, RoundProbe, StepPhase};
pub use topology::Topology;
