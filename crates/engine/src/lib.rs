//! Synchronous simulator for the **random phone call model** of Karp,
//! Schindelhauer, Shenker and Vöcking, extended with the multiple-choice
//! `open` of Berenbrink, Elsässer and Friedetzky (PODC 2008).
//!
//! # The model (paper §1.2 and §3)
//!
//! Time proceeds in synchronous rounds driven by a global clock. In every
//! round **each node opens communication channels** to neighbours chosen
//! uniformly at random — one neighbour in the standard model, four distinct
//! neighbours in the paper's modification, or one neighbour avoiding the
//! last three choices in the sequentialised variant (footnote 2). Channels
//! are bidirectional for the duration of the round:
//!
//! * a **push** transmission travels from the caller to the callee over an
//!   *outgoing* channel;
//! * a **pull** transmission travels from the callee back to the caller over
//!   an *incoming* channel.
//!
//! Nodes decide whether to transmit using only local knowledge (the age of
//! the rumour, their own state) — the *address-oblivious* restriction. The
//! cost measure is the **number of rumour transmissions**; channel opening
//! is free (it amortises over many concurrent rumours, which
//! [`MultiRumorSimulation`] demonstrates).
//!
//! # Quick start
//!
//! ```
//! use rand::{SeedableRng, rngs::SmallRng};
//! use rrb_engine::{protocols::FloodPush, SimConfig, Simulation};
//! use rrb_graph::{gen, NodeId};
//!
//! let mut rng = SmallRng::seed_from_u64(3);
//! let g = gen::random_regular(256, 8, &mut rng)?;
//! let sim = Simulation::new(&g, FloodPush::new(), SimConfig::default());
//! let report = sim.run(NodeId::new(0), &mut rng);
//! assert!(report.all_informed());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod choice;
mod failure;
mod multi;
mod observation;
mod protocol;
mod report;
mod simulation;
mod topology;

pub mod protocols;
pub mod trace;

pub use choice::{ChoicePolicy, ChoiceState};
pub use failure::FailureModel;
pub use multi::{MultiRumorReport, MultiRumorSimulation, RumorInjection, RumorOutcome};
pub use observation::{Observation, RumorMeta};
pub use protocol::{NodeView, Plan, Protocol, Round};
pub use report::{RoundRecord, RunReport, StopReason};
pub use simulation::{SimConfig, SimState, Simulation};
pub use topology::Topology;
