use rand::Rng;

use rrb_graph::NodeId;

use crate::Topology;

/// How a node selects the neighbours it calls each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoicePolicy {
    /// Open channels to `k` distinct stubs chosen i.u.r. without
    /// replacement each round. `Distinct(1)` is the standard random phone
    /// call model of Karp et al.; `Distinct(4)` is the paper's modification.
    Distinct(usize),
    /// Sequentialised variant (paper footnote 2): open **one** channel per
    /// round to a neighbour chosen i.u.r. among those *not* contacted in the
    /// most recent `window` rounds. Four consecutive steps with `window = 3`
    /// simulate one step of `Distinct(4)`.
    SequentialMemory {
        /// How many recent choices to avoid (the paper uses 3).
        window: usize,
    },
    /// Quasirandom model of Doerr, Friedrich and Sauerwald \[9\]: each node
    /// owns a cyclic list of its neighbours (its stub order), starts at a
    /// uniformly random position, and contacts successive list entries in
    /// consecutive rounds. The only randomness is the starting offset.
    Cyclic,
}

impl ChoicePolicy {
    /// The paper's four-distinct-choices policy.
    pub const FOUR: ChoicePolicy = ChoicePolicy::Distinct(4);
    /// The standard (single-choice) random phone call model.
    pub const STANDARD: ChoicePolicy = ChoicePolicy::Distinct(1);
    /// The sequentialised memory-3 variant from footnote 2.
    pub const SEQUENTIAL: ChoicePolicy = ChoicePolicy::SequentialMemory { window: 3 };

    /// Number of channels a node opens per round under this policy (upper
    /// bound; a node of smaller degree opens fewer).
    pub fn fanout(&self) -> usize {
        match self {
            ChoicePolicy::Distinct(k) => *k,
            ChoicePolicy::SequentialMemory { .. } | ChoicePolicy::Cyclic => 1,
        }
    }
}

impl Default for ChoicePolicy {
    /// Defaults to the paper's four-choice policy.
    fn default() -> Self {
        ChoicePolicy::FOUR
    }
}

/// Per-node bookkeeping required by [`ChoicePolicy::SequentialMemory`]:
/// a sliding window of the most recently called neighbours.
#[derive(Debug, Clone, Default)]
pub struct ChoiceState {
    /// Ring buffers of recent callee ids, one per node (empty for the
    /// `Distinct` policies, which are memoryless by definition of the
    /// random phone call model).
    recent: Vec<Vec<NodeId>>,
    window: usize,
    /// Cyclic cursor per node for [`ChoicePolicy::Cyclic`];
    /// `u32::MAX` marks "not yet initialised" (the random start offset is
    /// drawn on first use).
    cursor: Vec<u32>,
}

impl ChoiceState {
    /// Creates choice bookkeeping for `n` nodes under `policy`.
    pub fn new(n: usize, policy: ChoicePolicy) -> Self {
        match policy {
            ChoicePolicy::Distinct(_) => {
                ChoiceState { recent: Vec::new(), window: 0, cursor: Vec::new() }
            }
            ChoicePolicy::SequentialMemory { window } => ChoiceState {
                recent: vec![Vec::with_capacity(window); n],
                window,
                cursor: Vec::new(),
            },
            ChoicePolicy::Cyclic => {
                ChoiceState { recent: Vec::new(), window: 0, cursor: vec![u32::MAX; n] }
            }
        }
    }

    /// Grows the bookkeeping when the topology gains node slots (churn).
    pub fn ensure_len(&mut self, n: usize) {
        if self.window > 0 && self.recent.len() < n {
            self.recent.resize_with(n, || Vec::with_capacity(self.window));
        }
        if !self.cursor.is_empty() && self.cursor.len() < n {
            self.cursor.resize(n, u32::MAX);
        }
    }

    fn remember(&mut self, v: NodeId, callee: NodeId) {
        if self.window == 0 {
            return;
        }
        let ring = &mut self.recent[v.index()];
        if ring.len() == self.window {
            ring.remove(0);
        }
        ring.push(callee);
    }
}

/// Samples the channel targets for node `v` this round under `policy`,
/// appending chosen callees to `out` (cleared first).
///
/// Targets are **stubs**: in a multigraph a self-loop stub calls `v` itself
/// and a parallel edge can be selected like any other stub, exactly mirroring
/// the stub-level process the paper analyses. `Distinct(k)` picks `k`
/// distinct stubs (all of them if the degree is `<= k`) via Floyd's
/// sampling; `SequentialMemory` picks one stub i.u.r. among stubs whose
/// endpoints were not called in the last `window` rounds (falling back to
/// any stub if none qualify, e.g. when the degree is smaller than the
/// window).
pub fn sample_targets<T: Topology + ?Sized, R: Rng + ?Sized>(
    topo: &T,
    v: NodeId,
    policy: ChoicePolicy,
    state: &mut ChoiceState,
    rng: &mut R,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    let stubs = topo.stubs(v);
    if stubs.is_empty() {
        return;
    }
    match policy {
        ChoicePolicy::Distinct(k) => {
            let deg = stubs.len();
            if deg <= k {
                out.extend_from_slice(stubs);
                return;
            }
            // Floyd's algorithm: k distinct indices from 0..deg.
            let mut picked: [usize; 16] = [usize::MAX; 16];
            debug_assert!(k <= 16, "fanout larger than 16 is unsupported");
            let mut count = 0usize;
            for j in (deg - k)..deg {
                let t = rng.gen_range(0..=j);
                let idx = if picked[..count].contains(&t) { j } else { t };
                picked[count] = idx;
                count += 1;
            }
            for &idx in &picked[..count] {
                out.push(stubs[idx]);
            }
        }
        ChoicePolicy::Cyclic => {
            let cur = &mut state.cursor[v.index()];
            if *cur == u32::MAX {
                *cur = rng.gen_range(0..stubs.len() as u32);
            }
            out.push(stubs[*cur as usize % stubs.len()]);
            *cur = (*cur + 1) % stubs.len().max(1) as u32;
        }
        ChoicePolicy::SequentialMemory { .. } => {
            let ring = &state.recent[v.index()];
            // Count eligible stubs (endpoint not recently called).
            let eligible = stubs.iter().filter(|s| !ring.contains(s)).count();
            let chosen = if eligible == 0 {
                stubs[rng.gen_range(0..stubs.len())]
            } else {
                let mut pick = rng.gen_range(0..eligible);
                let mut found = stubs[0];
                for &s in stubs {
                    if ring.contains(&s) {
                        continue;
                    }
                    if pick == 0 {
                        found = s;
                        break;
                    }
                    pick -= 1;
                }
                found
            };
            out.push(chosen);
            state.remember(v, chosen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rrb_graph::gen;

    #[test]
    fn distinct_four_yields_four_distinct_stubs() {
        let g = gen::complete(10);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut state = ChoiceState::new(10, ChoicePolicy::FOUR);
        let mut out = Vec::new();
        for _ in 0..50 {
            sample_targets(&g, NodeId::new(0), ChoicePolicy::FOUR, &mut state, &mut rng, &mut out);
            assert_eq!(out.len(), 4);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "targets not distinct: {out:?}");
            assert!(!out.contains(&NodeId::new(0)));
        }
    }

    #[test]
    fn degree_smaller_than_fanout_takes_all() {
        let g = gen::cycle(5); // degree 2
        let mut rng = SmallRng::seed_from_u64(2);
        let mut state = ChoiceState::new(5, ChoicePolicy::FOUR);
        let mut out = Vec::new();
        sample_targets(&g, NodeId::new(0), ChoicePolicy::FOUR, &mut state, &mut rng, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![NodeId::new(1), NodeId::new(4)]);
    }

    #[test]
    fn distinct_targets_cover_all_neighbors_over_time() {
        let g = gen::complete(8);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut state = ChoiceState::new(8, ChoicePolicy::STANDARD);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            sample_targets(
                &g,
                NodeId::new(0),
                ChoicePolicy::STANDARD,
                &mut state,
                &mut rng,
                &mut out,
            );
            assert_eq!(out.len(), 1);
            seen.insert(out[0]);
        }
        assert_eq!(seen.len(), 7, "uniform sampling should hit every neighbour");
    }

    #[test]
    fn sequential_memory_avoids_recent() {
        let g = gen::complete(6);
        let mut rng = SmallRng::seed_from_u64(4);
        let policy = ChoicePolicy::SEQUENTIAL;
        let mut state = ChoiceState::new(6, policy);
        let mut out = Vec::new();
        let mut history: Vec<NodeId> = Vec::new();
        for _ in 0..100 {
            sample_targets(&g, NodeId::new(0), policy, &mut state, &mut rng, &mut out);
            assert_eq!(out.len(), 1);
            let pick = out[0];
            let recent: Vec<NodeId> =
                history.iter().rev().take(3).copied().collect();
            assert!(
                !recent.contains(&pick),
                "picked {pick} from recent window {recent:?}"
            );
            history.push(pick);
        }
    }

    #[test]
    fn sequential_memory_falls_back_when_degree_small() {
        // Degree 2 with window 3: after two rounds every neighbour is
        // "recent"; the sampler must still return something.
        let g = gen::cycle(4);
        let policy = ChoicePolicy::SEQUENTIAL;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut state = ChoiceState::new(4, policy);
        let mut out = Vec::new();
        for _ in 0..10 {
            sample_targets(&g, NodeId::new(0), policy, &mut state, &mut rng, &mut out);
            assert_eq!(out.len(), 1);
        }
    }

    #[test]
    fn cyclic_walks_the_neighbour_list_in_order() {
        let g = gen::complete(7);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut state = ChoiceState::new(7, ChoicePolicy::Cyclic);
        let mut out = Vec::new();
        let mut picks = Vec::new();
        for _ in 0..12 {
            sample_targets(&g, NodeId::new(0), ChoicePolicy::Cyclic, &mut state, &mut rng, &mut out);
            assert_eq!(out.len(), 1);
            picks.push(out[0]);
        }
        // Six consecutive picks cover all six neighbours (cyclic, no repeat
        // within a window of deg).
        let mut window: Vec<NodeId> = picks[..6].to_vec();
        window.sort_unstable();
        window.dedup();
        assert_eq!(window.len(), 6, "first 6 picks not distinct: {picks:?}");
        // And the cycle repeats with the same order.
        assert_eq!(&picks[..6], &picks[6..12]);
    }

    #[test]
    fn cyclic_start_offsets_are_random() {
        let g = gen::complete(16);
        let mut firsts = std::collections::HashSet::new();
        for seed in 0..30 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut state = ChoiceState::new(16, ChoicePolicy::Cyclic);
            let mut out = Vec::new();
            sample_targets(&g, NodeId::new(0), ChoicePolicy::Cyclic, &mut state, &mut rng, &mut out);
            firsts.insert(out[0]);
        }
        assert!(firsts.len() > 5, "start offsets look deterministic: {firsts:?}");
    }

    #[test]
    fn fanout_accessor() {
        assert_eq!(ChoicePolicy::FOUR.fanout(), 4);
        assert_eq!(ChoicePolicy::STANDARD.fanout(), 1);
        assert_eq!(ChoicePolicy::SEQUENTIAL.fanout(), 1);
        assert_eq!(ChoicePolicy::default(), ChoicePolicy::FOUR);
    }

    #[test]
    fn ensure_len_grows_memory() {
        let mut st = ChoiceState::new(2, ChoicePolicy::SEQUENTIAL);
        st.ensure_len(5);
        let g = gen::complete(5);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut out = Vec::new();
        sample_targets(&g, NodeId::new(4), ChoicePolicy::SEQUENTIAL, &mut st, &mut rng, &mut out);
        assert_eq!(out.len(), 1);
    }
}
