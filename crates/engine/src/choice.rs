use rand::Rng;

use rrb_graph::NodeId;

use crate::Topology;

/// How a node selects the neighbours it calls each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoicePolicy {
    /// Open channels to `k` distinct stubs chosen i.u.r. without
    /// replacement each round. `Distinct(1)` is the standard random phone
    /// call model of Karp et al.; `Distinct(4)` is the paper's modification.
    Distinct(usize),
    /// Sequentialised variant (paper footnote 2): open **one** channel per
    /// round to a neighbour chosen i.u.r. among those *not* contacted in the
    /// most recent `window` rounds. Four consecutive steps with `window = 3`
    /// simulate one step of `Distinct(4)`.
    SequentialMemory {
        /// How many recent choices to avoid (the paper uses 3).
        window: usize,
    },
    /// Quasirandom model of Doerr, Friedrich and Sauerwald \[9\]: each node
    /// owns a cyclic list of its neighbours (its stub order), starts at a
    /// uniformly random position, and contacts successive list entries in
    /// consecutive rounds. The only randomness is the starting offset.
    Cyclic,
}

impl ChoicePolicy {
    /// The paper's four-distinct-choices policy.
    pub const FOUR: ChoicePolicy = ChoicePolicy::Distinct(4);
    /// The standard (single-choice) random phone call model.
    pub const STANDARD: ChoicePolicy = ChoicePolicy::Distinct(1);
    /// The sequentialised memory-3 variant from footnote 2.
    pub const SEQUENTIAL: ChoicePolicy = ChoicePolicy::SequentialMemory { window: 3 };

    /// Number of channels a node opens per round under this policy (upper
    /// bound; a node of smaller degree opens fewer).
    pub fn fanout(&self) -> usize {
        match self {
            ChoicePolicy::Distinct(k) => *k,
            ChoicePolicy::SequentialMemory { .. } | ChoicePolicy::Cyclic => 1,
        }
    }

    /// `true` iff sampling this policy reads and writes **no per-node
    /// state**, so a round's targets for one node may be skipped without
    /// changing any later round's draws for it.
    ///
    /// This is the query behind the engines' capability-gated sampling
    /// skip: for a memoryless policy the skipped node's channel count is
    /// the deterministic `min(fanout, deg)` and nothing else observes the
    /// omission. `SequentialMemory` rings and `Cyclic` cursors advance as a
    /// side effect of sampling — skipping them would alter every
    /// subsequent choice — so they report `false` and the skip never
    /// engages (asserted byte-for-byte by the engine tests).
    pub fn is_memoryless(&self) -> bool {
        matches!(self, ChoicePolicy::Distinct(_))
    }
}

impl Default for ChoicePolicy {
    /// Defaults to the paper's four-choice policy.
    fn default() -> Self {
        ChoicePolicy::FOUR
    }
}

/// Per-node bookkeeping required by [`ChoicePolicy::SequentialMemory`]:
/// a sliding window of the most recently called neighbours.
#[derive(Debug, Clone, Default)]
pub struct ChoiceState {
    /// Ring buffers of recent callee ids, one per node (empty for the
    /// `Distinct` policies, which are memoryless by definition of the
    /// random phone call model).
    recent: Vec<Vec<NodeId>>,
    window: usize,
    /// Cyclic cursor per node for [`ChoicePolicy::Cyclic`];
    /// `u32::MAX` marks "not yet initialised" (the random start offset is
    /// drawn on first use).
    cursor: Vec<u32>,
    /// Reusable scratch for Floyd sampling with fanout above the stack
    /// threshold (empty — and allocation-free — for the common small
    /// fanouts).
    floyd_scratch: Vec<usize>,
}

impl ChoiceState {
    /// Creates choice bookkeeping for `n` nodes under `policy`.
    pub fn new(n: usize, policy: ChoicePolicy) -> Self {
        let base = ChoiceState {
            recent: Vec::new(),
            window: 0,
            cursor: Vec::new(),
            floyd_scratch: Vec::new(),
        };
        match policy {
            ChoicePolicy::Distinct(_) => base,
            ChoicePolicy::SequentialMemory { window } => ChoiceState {
                recent: vec![Vec::with_capacity(window); n],
                window,
                ..base
            },
            ChoicePolicy::Cyclic => ChoiceState { cursor: vec![u32::MAX; n], ..base },
        }
    }

    /// Grows the bookkeeping when the topology gains node slots (churn).
    pub fn ensure_len(&mut self, n: usize) {
        if self.window > 0 && self.recent.len() < n {
            self.recent.resize_with(n, || Vec::with_capacity(self.window));
        }
        if !self.cursor.is_empty() && self.cursor.len() < n {
            self.cursor.resize(n, u32::MAX);
        }
    }

    /// Clears slot `i`'s bookkeeping when the slot is recycled for a fresh
    /// peer (rejoin): the newcomer must not inherit the departed peer's
    /// recent-call window or cyclic cursor.
    pub fn reset_slot(&mut self, i: usize) {
        if let Some(ring) = self.recent.get_mut(i) {
            ring.clear();
        }
        if let Some(cur) = self.cursor.get_mut(i) {
            *cur = u32::MAX;
        }
    }

    fn remember(&mut self, v: NodeId, callee: NodeId) {
        if self.window == 0 {
            return;
        }
        let ring = &mut self.recent[v.index()];
        if ring.len() == self.window {
            ring.remove(0);
        }
        ring.push(callee);
    }
}

/// Samples the channel targets for node `v` this round under `policy`,
/// appending chosen callees to `out` (cleared first).
///
/// Targets are **stubs**: in a multigraph a self-loop stub calls `v` itself
/// and a parallel edge can be selected like any other stub, exactly mirroring
/// the stub-level process the paper analyses. `Distinct(k)` picks `k`
/// distinct stubs (all of them if the degree is `<= k`) via Floyd's
/// sampling; `SequentialMemory` picks one stub i.u.r. among stubs whose
/// endpoints were not called in the last `window` rounds (falling back to
/// any stub if none qualify, e.g. when the degree is smaller than the
/// window).
pub fn sample_targets<T: Topology + ?Sized, R: Rng + ?Sized>(
    topo: &T,
    v: NodeId,
    policy: ChoicePolicy,
    state: &mut ChoiceState,
    rng: &mut R,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    let stubs = topo.stubs(v);
    if stubs.is_empty() {
        return;
    }
    match policy {
        ChoicePolicy::Distinct(k) => {
            let deg = stubs.len();
            if deg <= k {
                out.extend_from_slice(stubs);
                return;
            }
            // Floyd's algorithm: k distinct indices from 0..deg. Fanouts up
            // to 16 (every policy the paper studies) run on a stack array;
            // larger fanouts use a reusable heap scratch — same algorithm,
            // same RNG draws, no silent corruption past the threshold.
            if k <= 16 {
                let mut picked: [usize; 16] = [usize::MAX; 16];
                let mut count = 0usize;
                for j in (deg - k)..deg {
                    let t = rng.gen_range(0..=j);
                    let idx = if picked[..count].contains(&t) { j } else { t };
                    picked[count] = idx;
                    count += 1;
                }
                for &idx in &picked[..count] {
                    out.push(stubs[idx]);
                }
            } else {
                let picked = &mut state.floyd_scratch;
                picked.clear();
                for j in (deg - k)..deg {
                    let t = rng.gen_range(0..=j);
                    let idx = if picked.contains(&t) { j } else { t };
                    picked.push(idx);
                }
                for &idx in picked.iter() {
                    out.push(stubs[idx]);
                }
            }
        }
        ChoicePolicy::Cyclic => {
            let cur = &mut state.cursor[v.index()];
            if *cur == u32::MAX {
                *cur = rng.gen_range(0..stubs.len() as u32);
            }
            out.push(stubs[*cur as usize % stubs.len()]);
            *cur = (*cur + 1) % stubs.len().max(1) as u32;
        }
        ChoicePolicy::SequentialMemory { .. } => {
            let ring = &state.recent[v.index()];
            // Count eligible stubs (endpoint not recently called).
            let eligible = stubs.iter().filter(|s| !ring.contains(s)).count();
            let chosen = if eligible == 0 {
                stubs[rng.gen_range(0..stubs.len())]
            } else {
                let mut pick = rng.gen_range(0..eligible);
                let mut found = stubs[0];
                for &s in stubs {
                    if ring.contains(&s) {
                        continue;
                    }
                    if pick == 0 {
                        found = s;
                        break;
                    }
                    pick -= 1;
                }
                found
            };
            out.push(chosen);
            state.remember(v, chosen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rrb_graph::gen;

    #[test]
    fn distinct_four_yields_four_distinct_stubs() {
        let g = gen::complete(10);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut state = ChoiceState::new(10, ChoicePolicy::FOUR);
        let mut out = Vec::new();
        for _ in 0..50 {
            sample_targets(&g, NodeId::new(0), ChoicePolicy::FOUR, &mut state, &mut rng, &mut out);
            assert_eq!(out.len(), 4);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "targets not distinct: {out:?}");
            assert!(!out.contains(&NodeId::new(0)));
        }
    }

    #[test]
    fn degree_smaller_than_fanout_takes_all() {
        let g = gen::cycle(5); // degree 2
        let mut rng = SmallRng::seed_from_u64(2);
        let mut state = ChoiceState::new(5, ChoicePolicy::FOUR);
        let mut out = Vec::new();
        sample_targets(&g, NodeId::new(0), ChoicePolicy::FOUR, &mut state, &mut rng, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![NodeId::new(1), NodeId::new(4)]);
    }

    #[test]
    fn distinct_targets_cover_all_neighbors_over_time() {
        let g = gen::complete(8);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut state = ChoiceState::new(8, ChoicePolicy::STANDARD);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            sample_targets(
                &g,
                NodeId::new(0),
                ChoicePolicy::STANDARD,
                &mut state,
                &mut rng,
                &mut out,
            );
            assert_eq!(out.len(), 1);
            seen.insert(out[0]);
        }
        assert_eq!(seen.len(), 7, "uniform sampling should hit every neighbour");
    }

    #[test]
    fn sequential_memory_avoids_recent() {
        let g = gen::complete(6);
        let mut rng = SmallRng::seed_from_u64(4);
        let policy = ChoicePolicy::SEQUENTIAL;
        let mut state = ChoiceState::new(6, policy);
        let mut out = Vec::new();
        let mut history: Vec<NodeId> = Vec::new();
        for _ in 0..100 {
            sample_targets(&g, NodeId::new(0), policy, &mut state, &mut rng, &mut out);
            assert_eq!(out.len(), 1);
            let pick = out[0];
            let recent: Vec<NodeId> =
                history.iter().rev().take(3).copied().collect();
            assert!(
                !recent.contains(&pick),
                "picked {pick} from recent window {recent:?}"
            );
            history.push(pick);
        }
    }

    #[test]
    fn sequential_memory_four_steps_match_one_distinct4_step() {
        // Footnote 2: four consecutive SequentialMemory { window: 3 } steps
        // simulate one Distinct(4) step. Two checks on a random regular
        // graph: (a) every 4-step block picks 4 *distinct* neighbours (the
        // window forbids repeats), and (b) the per-neighbour marginal hit
        // rate over many blocks matches Distinct(4)'s uniform 4/d.
        let mut gen_rng = SmallRng::seed_from_u64(100);
        let d = 12usize;
        let g = gen::random_regular(64, d, &mut gen_rng).unwrap();
        let v = NodeId::new(0);
        let blocks = 4000usize;

        let policy = ChoicePolicy::SEQUENTIAL;
        let mut rng = SmallRng::seed_from_u64(101);
        let mut state = ChoiceState::new(64, policy);
        let mut out = Vec::new();
        let mut seq_hits = std::collections::HashMap::new();
        for _ in 0..blocks {
            let mut block = Vec::with_capacity(4);
            for _ in 0..4 {
                sample_targets(&g, v, policy, &mut state, &mut rng, &mut out);
                assert_eq!(out.len(), 1);
                block.push(out[0]);
            }
            let mut sorted = block.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "window-3 block repeated a neighbour: {block:?}");
            for w in block {
                *seq_hits.entry(w).or_insert(0usize) += 1;
            }
        }

        let policy4 = ChoicePolicy::FOUR;
        let mut rng4 = SmallRng::seed_from_u64(102);
        let mut state4 = ChoiceState::new(64, policy4);
        let mut four_hits = std::collections::HashMap::new();
        for _ in 0..blocks {
            sample_targets(&g, v, policy4, &mut state4, &mut rng4, &mut out);
            assert_eq!(out.len(), 4);
            for &w in &out {
                *four_hits.entry(w).or_insert(0usize) += 1;
            }
        }

        // Both policies select each neighbour with marginal probability
        // 4/d = 1/3 per block; allow 4-sigma Monte-Carlo slack.
        let expected = blocks as f64 * 4.0 / d as f64;
        let sigma = (blocks as f64 * (4.0 / d as f64) * (1.0 - 4.0 / d as f64)).sqrt();
        for &w in g.neighbors(v) {
            let s = *seq_hits.get(&w).unwrap_or(&0) as f64;
            let f = *four_hits.get(&w).unwrap_or(&0) as f64;
            assert!(
                (s - expected).abs() < 4.0 * sigma,
                "sequential marginal off for {w}: {s} vs {expected}"
            );
            assert!(
                (f - expected).abs() < 4.0 * sigma,
                "distinct4 marginal off for {w}: {f} vs {expected}"
            );
        }
    }

    #[test]
    fn sequential_memory_respects_window_on_regular_graph() {
        // No neighbour may repeat within `window` consecutive rounds, for
        // windows other than the paper's default too.
        let mut gen_rng = SmallRng::seed_from_u64(103);
        let g = gen::random_regular(32, 8, &mut gen_rng).unwrap();
        for window in [1usize, 2, 5] {
            let policy = ChoicePolicy::SequentialMemory { window };
            let mut rng = SmallRng::seed_from_u64(104 + window as u64);
            let mut state = ChoiceState::new(32, policy);
            let mut out = Vec::new();
            let mut history: Vec<NodeId> = Vec::new();
            for _ in 0..200 {
                sample_targets(&g, NodeId::new(3), policy, &mut state, &mut rng, &mut out);
                let recent: Vec<NodeId> =
                    history.iter().rev().take(window).copied().collect();
                assert!(
                    !recent.contains(&out[0]),
                    "window {window} violated: picked {} from {recent:?}",
                    out[0]
                );
                history.push(out[0]);
            }
        }
    }

    #[test]
    fn sequential_memory_falls_back_when_degree_small() {
        // Degree 2 with window 3: after two rounds every neighbour is
        // "recent"; the sampler must still return something.
        let g = gen::cycle(4);
        let policy = ChoicePolicy::SEQUENTIAL;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut state = ChoiceState::new(4, policy);
        let mut out = Vec::new();
        for _ in 0..10 {
            sample_targets(&g, NodeId::new(0), policy, &mut state, &mut rng, &mut out);
            assert_eq!(out.len(), 1);
        }
    }

    #[test]
    fn cyclic_walks_the_neighbour_list_in_order() {
        let g = gen::complete(7);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut state = ChoiceState::new(7, ChoicePolicy::Cyclic);
        let mut out = Vec::new();
        let mut picks = Vec::new();
        for _ in 0..12 {
            sample_targets(&g, NodeId::new(0), ChoicePolicy::Cyclic, &mut state, &mut rng, &mut out);
            assert_eq!(out.len(), 1);
            picks.push(out[0]);
        }
        // Six consecutive picks cover all six neighbours (cyclic, no repeat
        // within a window of deg).
        let mut window: Vec<NodeId> = picks[..6].to_vec();
        window.sort_unstable();
        window.dedup();
        assert_eq!(window.len(), 6, "first 6 picks not distinct: {picks:?}");
        // And the cycle repeats with the same order.
        assert_eq!(&picks[..6], &picks[6..12]);
    }

    #[test]
    fn cyclic_start_offsets_are_random() {
        let g = gen::complete(16);
        let mut firsts = std::collections::HashSet::new();
        for seed in 0..30 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut state = ChoiceState::new(16, ChoicePolicy::Cyclic);
            let mut out = Vec::new();
            sample_targets(&g, NodeId::new(0), ChoicePolicy::Cyclic, &mut state, &mut rng, &mut out);
            firsts.insert(out[0]);
        }
        assert!(firsts.len() > 5, "start offsets look deterministic: {firsts:?}");
    }

    #[test]
    fn distinct_fanout_above_stack_threshold_is_sound() {
        // Regression: Distinct(k) with k > 16 used to overflow a fixed
        // 16-slot stack array (guarded only by a debug_assert). The heap
        // fallback must return k distinct in-range stubs.
        let g = gen::complete(64);
        let mut rng = SmallRng::seed_from_u64(17);
        for k in [17usize, 24, 32, 48] {
            let policy = ChoicePolicy::Distinct(k);
            let mut state = ChoiceState::new(64, policy);
            let mut out = Vec::new();
            for _ in 0..25 {
                sample_targets(&g, NodeId::new(5), policy, &mut state, &mut rng, &mut out);
                assert_eq!(out.len(), k, "wrong sample size for k = {k}");
                let mut sorted = out.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), k, "duplicates for k = {k}: {out:?}");
                assert!(out.iter().all(|s| s.index() < 64 && *s != NodeId::new(5)));
            }
        }
    }

    #[test]
    fn large_fanout_saturates_small_degree() {
        // deg <= k keeps returning the whole stub list, k > 16 included.
        let g = gen::complete(10);
        let mut rng = SmallRng::seed_from_u64(18);
        let policy = ChoicePolicy::Distinct(20);
        let mut state = ChoiceState::new(10, policy);
        let mut out = Vec::new();
        sample_targets(&g, NodeId::new(0), policy, &mut state, &mut rng, &mut out);
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn fanout_accessor() {
        assert_eq!(ChoicePolicy::FOUR.fanout(), 4);
        assert_eq!(ChoicePolicy::STANDARD.fanout(), 1);
        assert_eq!(ChoicePolicy::SEQUENTIAL.fanout(), 1);
        assert_eq!(ChoicePolicy::default(), ChoicePolicy::FOUR);
    }

    #[test]
    fn memoryless_query_matches_statefulness() {
        assert!(ChoicePolicy::FOUR.is_memoryless());
        assert!(ChoicePolicy::STANDARD.is_memoryless());
        assert!(ChoicePolicy::Distinct(7).is_memoryless());
        assert!(!ChoicePolicy::SEQUENTIAL.is_memoryless());
        assert!(!ChoicePolicy::SequentialMemory { window: 1 }.is_memoryless());
        assert!(!ChoicePolicy::Cyclic.is_memoryless());
    }

    #[test]
    fn ensure_len_grows_memory() {
        let mut st = ChoiceState::new(2, ChoicePolicy::SEQUENTIAL);
        st.ensure_len(5);
        let g = gen::complete(5);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut out = Vec::new();
        sample_targets(&g, NodeId::new(4), ChoicePolicy::SEQUENTIAL, &mut st, &mut rng, &mut out);
        assert_eq!(out.len(), 1);
    }
}
