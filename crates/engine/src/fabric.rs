//! Shared per-round machinery of the flat-arena engines: the channel
//! fabric (CSR call lists + optional reverse index) and the informed-node
//! index. Both the single-rumour [`SimState`](crate::SimState) and the
//! multi-rumour [`MultiSimState`](crate::MultiSimState) round loops are
//! built from these pieces, so the two engines stay behaviour-identical
//! where their models coincide (asserted by the seed-for-seed parity
//! suite in `tests/parity.rs`).

use rand::Rng;

use rrb_graph::NodeId;

use crate::choice::{sample_targets, ChoiceState};
use crate::failure::FaultChannelView;
use crate::{ChoicePolicy, FailureModel, Round, Topology};

/// One round's channel openings in CSR form, with all scratch buffers
/// reused across rounds (allocation-free once warm).
///
/// Channels are sampled once per round by [`sample`](Self::sample) —
/// every alive, uncrashed node opens channels per the protocol's choice
/// policy — and then shared by however many rumours ride the fabric. On
/// the zero-failure fast path only *usable* channels (alive, uncrashed
/// callee) are materialised and no per-channel flags are stored; on the
/// slow path every sampled channel is stored together with its
/// channel-failure outcome.
#[derive(Debug, Default)]
pub(crate) struct ChannelFabric {
    /// CSR offsets: node `i`'s channels are `offsets[i]..offsets[i+1]`.
    offsets: Vec<u32>,
    /// Callee per channel.
    targets: Vec<NodeId>,
    /// Usability per channel (empty on the fast path: all usable).
    ok: Vec<bool>,
    /// `true` when `ok` is not materialised (no channel/transmission
    /// failures this round).
    fast_path: bool,
    /// Reverse CSR offsets: channels *towards* node `w` are
    /// `in_entries[in_offsets[w]..in_offsets[w+1]]`.
    in_offsets: Vec<u32>,
    /// Reverse entries: `(channel id, caller id)`.
    in_entries: Vec<(u32, u32)>,
    /// Scatter cursors for the reverse build.
    in_cursor: Vec<u32>,
    /// Reusable target scratch for `sample_targets`.
    target_buf: Vec<NodeId>,
    /// Channel-target draws avoided by the capability-gated skip in the
    /// last [`sample`](Self::sample) call (telemetry counter).
    skipped_last: u64,
}

impl ChannelFabric {
    pub(crate) fn new(node_count: usize) -> Self {
        ChannelFabric {
            offsets: Vec::with_capacity(node_count + 1),
            ..ChannelFabric::default()
        }
    }

    /// Samples every alive, unblocked (uncrashed, unsuspended) node's
    /// channel targets for this round and returns the number of channels
    /// opened (skipped callers' would-be channels included).
    ///
    /// `skip_fanout` is the capability-gated push-only sampling skip: when
    /// `Some(k)`, a caller for which `is_uninformed` holds can carry no
    /// rumour in either direction, so its targets are never sampled — its
    /// deterministic `min(k, deg)` channel count is still added to the
    /// returned total (channel opening is part of the model), but it costs
    /// no RNG draws and no buffer traffic.
    ///
    /// `faults` is the optional per-channel fault view of an installed
    /// [`FaultPlan`](crate::FaultPlan): partitioned pairs fail to
    /// establish like calls to a crashed peer (no cost, no draw), and
    /// burst-loss state raises the per-channel failure probability (drawn
    /// on the **main** stream at exactly the baseline draw's position, so
    /// both engines stay in lockstep). With `faults == None` the code path
    /// and draw sequence are byte-identical to the pre-fault engine.
    #[allow(clippy::too_many_arguments)]
    // rrb-lint: hot
    pub(crate) fn sample<T, F, R>(
        &mut self,
        topo: &T,
        policy: ChoicePolicy,
        choice: &mut ChoiceState,
        failures: FailureModel,
        blocked: &[bool],
        faults: Option<&FaultChannelView<'_>>,
        skip_fanout: Option<usize>,
        is_uninformed: F,
        rng: &mut R,
    ) -> u64
    where
        T: Topology + ?Sized,
        F: Fn(usize) -> bool,
        R: Rng + ?Sized,
    {
        let n = topo.node_count();
        self.fast_path = failures.channel_failure == 0.0
            && failures.transmission_failure == 0.0
            && faults.is_none_or(|f| !f.lossy());
        self.offsets.clear();
        self.targets.clear();
        self.ok.clear();
        self.offsets.push(0);
        self.skipped_last = 0;
        let mut channels = 0u64;
        for i in 0..n {
            let v = NodeId::new(i);
            if topo.is_alive(v) && !blocked[i] {
                if let (Some(k), true) = (skip_fanout, is_uninformed(i)) {
                    // Uninformed caller under a push-only protocol: count
                    // the channels it would open, materialise none.
                    let skipped = topo.stubs(v).len().min(k) as u64;
                    self.skipped_last += skipped;
                    channels += skipped;
                    self.offsets.push(self.targets.len() as u32);
                    continue;
                }
                sample_targets(topo, v, policy, choice, rng, &mut self.target_buf);
                channels += self.target_buf.len() as u64;
                for &w in &self.target_buf {
                    // A channel to a dead (departed), crashed, suspended or
                    // partitioned-away neighbour fails to establish; it
                    // costs nothing, carries nothing.
                    let callee_ok = topo.is_alive(w)
                        && !blocked[w.index()]
                        && faults.is_none_or(|f| f.connects(i, w.index()));
                    if self.fast_path {
                        if callee_ok {
                            self.targets.push(w);
                        }
                    } else {
                        // Combined per-channel loss: baseline i.i.d. rate
                        // plus the burst chains' contribution. The single
                        // Bernoulli draw sits exactly where the baseline
                        // draw always was, and is skipped (like the
                        // baseline) when the probability is zero or the
                        // channel failed to establish anyway.
                        let p = match faults {
                            Some(f) => {
                                1.0 - (1.0 - failures.channel_failure)
                                    * (1.0 - f.burst_loss(i, w.index()))
                            }
                            None => failures.channel_failure,
                        };
                        let ok = callee_ok && (p == 0.0 || !rng.gen_bool(p));
                        self.targets.push(w);
                        self.ok.push(ok);
                    }
                }
            }
            self.offsets.push(self.targets.len() as u32);
        }
        channels
    }

    /// Number of materialised channels this round.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.targets.len()
    }

    /// Channel-target draws the capability-gated skip avoided in the last
    /// [`sample`](Self::sample) call (0 when the skip never engaged).
    #[inline]
    pub(crate) fn skipped_last(&self) -> u64 {
        self.skipped_last
    }

    /// Channel-id range opened by caller `i`.
    #[inline]
    pub(crate) fn out_range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// Callee of channel `c`.
    #[inline]
    pub(crate) fn target(&self, c: usize) -> NodeId {
        self.targets[c]
    }

    /// Whether channel `c` is usable (established and not failed).
    #[inline]
    pub(crate) fn usable(&self, c: usize) -> bool {
        self.fast_path || self.ok[c]
    }

    /// Whether this round's fabric was sampled on the zero-failure fast
    /// path (all materialised channels usable, `ok` not stored).
    #[cfg(test)]
    pub(crate) fn is_fast_path(&self) -> bool {
        self.fast_path
    }

    /// Builds the reverse (incoming-channel) index: a counting sort of
    /// the channel list by callee, `O(n + channels)`. Needed only by
    /// pull-capable protocols — pushes walk the forward lists.
    // rrb-lint: hot
    pub(crate) fn build_incoming(&mut self, n: usize) {
        self.in_offsets.clear();
        self.in_offsets.resize(n + 1, 0);
        for w in &self.targets {
            self.in_offsets[w.index() + 1] += 1;
        }
        for i in 1..=n {
            self.in_offsets[i] += self.in_offsets[i - 1];
        }
        self.in_cursor.clear();
        self.in_cursor.extend_from_slice(&self.in_offsets[..n]);
        self.in_entries.clear();
        self.in_entries.resize(self.targets.len(), (0, 0));
        for i in 0..n {
            for c in self.offsets[i] as usize..self.offsets[i + 1] as usize {
                let w = self.targets[c].index();
                self.in_entries[self.in_cursor[w] as usize] = (c as u32, i as u32);
                self.in_cursor[w] += 1;
            }
        }
    }

    /// Incoming channels of callee `w` as `(channel id, caller id)` pairs
    /// (valid after [`build_incoming`](Self::build_incoming)).
    #[inline]
    pub(crate) fn incoming(&self, w: usize) -> &[(u32, u32)] {
        &self.in_entries[self.in_offsets[w] as usize..self.in_offsets[w + 1] as usize]
    }

    /// Heap capacities of every reusable buffer, for the steady-state
    /// no-allocation tests.
    pub(crate) fn capacities(&self) -> [usize; 5] {
        [
            self.offsets.capacity(),
            self.targets.capacity(),
            self.ok.capacity(),
            self.in_offsets.capacity() + self.in_cursor.capacity(),
            self.in_entries.capacity() + self.target_buf.capacity(),
        ]
    }
}

/// Sentinel in [`InformedIndex::pos`] for "not informed".
const NOT_INFORMED: u32 = u32::MAX;

/// Informed-node bookkeeping shared by both engines: a position map from
/// node slot into an explicit index list of informed nodes in discovery
/// order, with reception rounds stored *per informed node* (parallel to
/// the list) rather than per slot. The plan, quiescence and coverage
/// passes iterate `O(informed)` instead of `O(n)`, and the per-slot
/// footprint is 4 bytes instead of a dense `Option<Round>` vector —
/// which is what lets the multi-rumour engine keep per-rumour state
/// sparse (informed-only).
#[derive(Debug)]
pub(crate) struct InformedIndex {
    /// For each node slot: position in `list`, or [`NOT_INFORMED`].
    pos: Vec<u32>,
    /// Indices of informed nodes in discovery order.
    list: Vec<u32>,
    /// Reception round per informed node, parallel to `list`
    /// (engine-defined clock: global rounds for the single-rumour engine,
    /// rumour-local rounds for the multi-rumour engine).
    at: Vec<Round>,
}

impl InformedIndex {
    pub(crate) fn new(node_count: usize) -> Self {
        InformedIndex {
            pos: vec![NOT_INFORMED; node_count],
            list: Vec::with_capacity(node_count),
            at: Vec::with_capacity(node_count),
        }
    }

    /// Marks `i` informed at round `at`; returns `true` iff it was newly
    /// informed (already-informed nodes keep their original round).
    #[inline]
    // rrb-lint: hot
    pub(crate) fn mark(&mut self, i: usize, at: Round) -> bool {
        if self.pos[i] != NOT_INFORMED {
            return false;
        }
        self.pos[i] = self.list.len() as u32;
        self.list.push(i as u32);
        self.at.push(at);
        true
    }

    /// Reception round of node `i`, if informed.
    #[inline]
    pub(crate) fn at(&self, i: usize) -> Option<Round> {
        let p = self.pos[i];
        if p == NOT_INFORMED {
            None
        } else {
            Some(self.at[p as usize])
        }
    }

    /// Position of node `i` in the informed list, if informed. Stable
    /// until the next `unmark` — the sparse per-rumour state vectors in
    /// the multi-rumour engine are indexed by it.
    #[inline]
    pub(crate) fn pos(&self, i: usize) -> Option<usize> {
        let p = self.pos[i];
        if p == NOT_INFORMED {
            None
        } else {
            Some(p as usize)
        }
    }

    /// Reception round of the informed node at list position `idx`.
    #[inline]
    pub(crate) fn at_pos(&self, idx: usize) -> Round {
        self.at[idx]
    }

    /// Whether node `i` is informed.
    #[inline]
    pub(crate) fn is_informed(&self, i: usize) -> bool {
        self.pos[i] != NOT_INFORMED
    }

    /// Informed nodes in discovery order.
    #[inline]
    pub(crate) fn list(&self) -> &[u32] {
        &self.list
    }

    /// Number of informed nodes (alive or dead slots alike).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.list.len()
    }

    /// Forgets node `i` (slot reuse after a rejoin): removes it from the
    /// list via `swap_remove` and returns its former list position so
    /// callers can mirror the removal in any list-parallel state vector.
    /// Returns `None` if `i` was not informed.
    pub(crate) fn unmark(&mut self, i: usize) -> Option<usize> {
        let p = self.pos[i];
        if p == NOT_INFORMED {
            return None;
        }
        let p = p as usize;
        self.list.swap_remove(p);
        self.at.swap_remove(p);
        self.pos[i] = NOT_INFORMED;
        if p < self.list.len() {
            self.pos[self.list[p] as usize] = p as u32;
        }
        Some(p)
    }

    /// Accommodates topology growth (new slots join uninformed).
    pub(crate) fn ensure_len(&mut self, node_count: usize) {
        if self.pos.len() < node_count {
            self.pos.resize(node_count, NOT_INFORMED);
        }
    }

    /// Consumes the index into the per-node reception-round vector.
    pub(crate) fn into_informed_at(self) -> Vec<Option<Round>> {
        let mut dense = vec![None; self.pos.len()];
        for (idx, &i) in self.list.iter().enumerate() {
            dense[i as usize] = Some(self.at[idx]);
        }
        dense
    }

    /// Index-list heap capacity, for the no-allocation tests.
    pub(crate) fn capacity(&self) -> usize {
        self.list.capacity() + self.at.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rrb_graph::gen;

    #[test]
    fn fabric_reverse_index_inverts_forward_lists() {
        let g = gen::complete(12);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut choice = ChoiceState::new(12, ChoicePolicy::FOUR);
        let mut fabric = ChannelFabric::new(12);
        let crashed = vec![false; 12];
        let channels = fabric.sample(
            &g,
            ChoicePolicy::FOUR,
            &mut choice,
            FailureModel::NONE,
            &crashed,
            None,
            None,
            |_| false,
            &mut rng,
        );
        assert_eq!(channels, 12 * 4);
        assert_eq!(fabric.len(), 12 * 4);
        assert!(fabric.is_fast_path());
        fabric.build_incoming(12);
        let mut seen = 0usize;
        for w in 0..12 {
            for &(c, caller) in fabric.incoming(w) {
                assert_eq!(fabric.target(c as usize).index(), w);
                let range = fabric.out_range(caller as usize);
                assert!(range.contains(&(c as usize)), "channel not in caller's range");
                seen += 1;
            }
        }
        assert_eq!(seen, fabric.len(), "reverse index must cover every channel");
    }

    #[test]
    fn fabric_skip_counts_channels_without_sampling() {
        let g = gen::complete(8);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut choice = ChoiceState::new(8, ChoicePolicy::STANDARD);
        let mut fabric = ChannelFabric::new(8);
        let crashed = vec![false; 8];
        // Every caller skipped: full channel count, nothing materialised.
        let channels = fabric.sample(
            &g,
            ChoicePolicy::STANDARD,
            &mut choice,
            FailureModel::NONE,
            &crashed,
            None,
            Some(1),
            |_| true,
            &mut rng,
        );
        assert_eq!(channels, 8);
        assert_eq!(fabric.len(), 0);
    }

    #[test]
    fn fabric_slow_path_materialises_all_sampled_channels() {
        let g = gen::complete(16);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut choice = ChoiceState::new(16, ChoicePolicy::STANDARD);
        let mut fabric = ChannelFabric::new(16);
        let crashed = vec![false; 16];
        let channels = fabric.sample(
            &g,
            ChoicePolicy::STANDARD,
            &mut choice,
            FailureModel::channels(0.5),
            &crashed,
            None,
            None,
            |_| false,
            &mut rng,
        );
        assert_eq!(channels, 16);
        assert_eq!(fabric.len(), 16);
        assert!(!fabric.is_fast_path());
        let usable = (0..fabric.len()).filter(|&c| fabric.usable(c)).count();
        assert!(usable < 16, "with p = 0.5 some channel fails for this seed");
    }

    #[test]
    fn partition_view_blocks_cross_component_channels_on_the_fast_path() {
        use crate::failure::{FaultEvent, FaultPlan, FaultState};
        let g = gen::complete(12);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut choice = ChoiceState::new(12, ChoicePolicy::FOUR);
        let mut fabric = ChannelFabric::new(12);
        let blocked = vec![false; 12];
        let plan = FaultPlan {
            schedule: vec![FaultEvent::Partition { from: 1, until: 9, parts: 3 }],
            ..FaultPlan::default()
        };
        let mut fs = FaultState::new(&plan, 12, 0);
        fs.begin_round(1, 12, |_| 11, |_| None, |_| true);
        let view = fs.channel_view().expect("partition active");
        let channels = fabric.sample(
            &g,
            ChoicePolicy::FOUR,
            &mut choice,
            FailureModel::NONE,
            &blocked,
            Some(&view),
            None,
            |_| false,
            &mut rng,
        );
        // Opened channels are still counted; only same-component ones
        // materialise, and a pure partition keeps the draw-free fast path.
        assert_eq!(channels, 12 * 4);
        assert!(fabric.is_fast_path());
        assert!(fabric.len() < 12 * 4, "cross-component channels must be dropped");
        for i in 0..12 {
            for c in fabric.out_range(i) {
                assert_eq!(fabric.target(c).index() % 3, i % 3, "caller {i} crossed the cut");
            }
        }
    }

    #[test]
    fn burst_view_forces_the_slow_path_and_fails_bad_channels() {
        use crate::failure::{FaultPlan, FaultState, GilbertElliott};
        let g = gen::complete(16);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut choice = ChoiceState::new(16, ChoicePolicy::STANDARD);
        let mut fabric = ChannelFabric::new(16);
        let blocked = vec![false; 16];
        // Chains that are certainly bad from round 1, with certain loss.
        let plan = FaultPlan {
            burst: Some(GilbertElliott::new(1.0, 0.0, 0.0, 1.0)),
            ..FaultPlan::default()
        };
        let mut fs = FaultState::new(&plan, 16, 3);
        fs.begin_round(1, 16, |_| 15, |_| None, |_| true);
        let view = fs.channel_view().expect("burst active");
        let channels = fabric.sample(
            &g,
            ChoicePolicy::STANDARD,
            &mut choice,
            FailureModel::NONE,
            &blocked,
            Some(&view),
            None,
            |_| false,
            &mut rng,
        );
        assert_eq!(channels, 16);
        assert!(!fabric.is_fast_path(), "burst loss requires per-channel draws");
        assert_eq!(fabric.len(), 16, "slow path materialises every sampled channel");
        let usable = (0..fabric.len()).filter(|&c| fabric.usable(c)).count();
        assert_eq!(usable, 0, "all-bad chains with loss 1 kill every channel");
    }

    #[test]
    fn informed_index_marks_once_and_keeps_order() {
        let mut ix = InformedIndex::new(6);
        assert!(ix.mark(4, 0));
        assert!(ix.mark(1, 2));
        assert!(!ix.mark(4, 3), "re-marking must be a no-op");
        assert_eq!(ix.at(4), Some(0));
        assert_eq!(ix.at(1), Some(2));
        assert_eq!(ix.at(0), None);
        assert!(ix.is_informed(1) && !ix.is_informed(5));
        assert_eq!(ix.list(), &[4, 1]);
        assert_eq!(ix.len(), 2);
        let at = ix.into_informed_at();
        assert_eq!(at[4], Some(0));
        assert_eq!(at[2], None);
    }

    #[test]
    fn informed_index_unmark_swaps_and_repairs_positions() {
        let mut ix = InformedIndex::new(8);
        for (i, at) in [(3usize, 0u32), (7, 1), (2, 1), (5, 2)] {
            assert!(ix.mark(i, at));
        }
        assert_eq!(ix.pos(7), Some(1));
        assert_eq!(ix.at_pos(1), 1);
        // Unmarking an interior entry swap-removes the tail into its slot
        // and repairs the moved node's position.
        assert_eq!(ix.unmark(7), Some(1));
        assert_eq!(ix.list(), &[3, 5, 2]);
        assert_eq!(ix.pos(5), Some(1));
        assert_eq!(ix.at(5), Some(2));
        assert!(!ix.is_informed(7));
        assert_eq!(ix.unmark(7), None, "double unmark must be a no-op");
        // The slot can be re-informed afresh.
        assert!(ix.mark(7, 9));
        assert_eq!(ix.at(7), Some(9));
        assert_eq!(ix.len(), 4);
        let at = ix.into_informed_at();
        assert_eq!(at[7], Some(9));
        assert_eq!(at[3], Some(0));
        assert_eq!(at[0], None);
    }
}
