//! Per-node clock and per-channel latency models for the asynchronous
//! event-queue engine ([`AsyncSimState`](crate::AsyncSimState)).
//!
//! The round engines advance every node in lockstep; real deployments
//! (the related ad-hoc-networks schedules, gossip-interval timers) fire
//! each node on its **own** clock. A [`ClockSpec`] describes when a node
//! wakes to perform its push/pull exchange — fixed-interval ticks, a
//! Poisson process, or a heterogeneous mix with stragglers — and a
//! [`LatencySpec`] describes how long an individual rumour copy spends in
//! flight. Both are pure configuration; all sampling happens on the
//! run's main RNG stream in deterministic event order, so async runs are
//! seed-for-seed reproducible like their synchronous counterparts.

use rand::Rng;

/// When a node's next exchange fires, relative to its previous one.
///
/// The **uniform fixed-rate limit** (`Fixed { interval: 1.0 }` for every
/// node, zero latency) reproduces the synchronous round model: all nodes
/// fire at integer times, ties resolve `(node, tie_seq)`, and every
/// node's fire precedes its same-instant deliveries — the calibration
/// contract asserted by `tests/calibration.rs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockSpec {
    /// Deterministic ticks every `interval` time units (first fire at
    /// `interval`). `interval: 1.0` is the round-model limit.
    Fixed {
        /// Gap between consecutive fires (time units; must be positive
        /// and finite).
        interval: f64,
    },
    /// Poisson clock: inter-fire gaps are i.i.d. exponential with the
    /// given rate (mean gap `1 / rate`) — the classical asynchronous
    /// gossip timing model.
    Exponential {
        /// Expected fires per time unit (must be positive and finite).
        rate: f64,
    },
    /// Heterogeneous Poisson clocks with stragglers: each node is
    /// independently slow with probability `slow_fraction` (drawn once at
    /// start-up), and slow nodes fire at `rate / slow_factor` — the
    /// node-speed skew the round model cannot express.
    Stragglers {
        /// Base rate of the fast majority (must be positive and finite).
        rate: f64,
        /// Probability a node is a straggler (in `[0, 1]`).
        slow_fraction: f64,
        /// How many times slower stragglers fire (must be ≥ 1).
        slow_factor: f64,
    },
}

impl ClockSpec {
    /// The round-model limit: every node ticks once per time unit.
    pub const UNIT: ClockSpec = ClockSpec::Fixed { interval: 1.0 };

    /// Panics with a named field when the spec is out of range (the
    /// scenario layer validates with `Result` at JSON parse time; this is
    /// the engine-level backstop for hand-constructed specs).
    pub fn assert_valid(&self) {
        match *self {
            ClockSpec::Fixed { interval } => {
                assert!(
                    interval.is_finite() && interval > 0.0,
                    "clock interval must be positive and finite"
                );
            }
            ClockSpec::Exponential { rate } => {
                assert!(rate.is_finite() && rate > 0.0, "clock rate must be positive and finite");
            }
            ClockSpec::Stragglers { rate, slow_fraction, slow_factor } => {
                assert!(rate.is_finite() && rate > 0.0, "clock rate must be positive and finite");
                assert!(
                    (0.0..=1.0).contains(&slow_fraction),
                    "clock slow_fraction must be in [0,1]"
                );
                assert!(
                    slow_factor.is_finite() && slow_factor >= 1.0,
                    "clock slow_factor must be >= 1"
                );
            }
        }
    }

    /// Mean inter-fire gap of a (fast) node — the time scale one
    /// synchronous round corresponds to.
    pub fn mean_interval(&self) -> f64 {
        match *self {
            ClockSpec::Fixed { interval } => interval,
            ClockSpec::Exponential { rate } | ClockSpec::Stragglers { rate, .. } => 1.0 / rate,
        }
    }
}

/// How long an individual rumour copy spends in flight between the
/// exchange that sent it and the delivery that digests it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencySpec {
    /// Instant delivery (no RNG draw — the calibration limit).
    Zero,
    /// Every copy takes exactly `delay` time units.
    Fixed {
        /// In-flight time (must be ≥ 0 and finite).
        delay: f64,
    },
    /// Per-copy delay drawn uniformly from `[min, max]`.
    Uniform {
        /// Lower bound (must be ≥ 0).
        min: f64,
        /// Upper bound (must be ≥ `min` and finite).
        max: f64,
    },
    /// Per-copy delay drawn exponentially with the given mean.
    Exponential {
        /// Mean in-flight time (must be positive and finite).
        mean: f64,
    },
}

impl LatencySpec {
    /// Panics with a named field when the spec is out of range.
    pub fn assert_valid(&self) {
        match *self {
            LatencySpec::Zero => {}
            LatencySpec::Fixed { delay } => {
                assert!(delay.is_finite() && delay >= 0.0, "latency delay must be >= 0 and finite");
            }
            LatencySpec::Uniform { min, max } => {
                assert!(min.is_finite() && min >= 0.0, "latency min must be >= 0 and finite");
                assert!(max.is_finite() && max >= min, "latency max must be >= min and finite");
            }
            LatencySpec::Exponential { mean } => {
                assert!(
                    mean.is_finite() && mean > 0.0,
                    "latency mean must be positive and finite"
                );
            }
        }
    }

    /// Samples one copy's in-flight time. [`Zero`](LatencySpec::Zero)
    /// draws nothing from the RNG, so zero-latency runs take exactly the
    /// draw sequence of an engine without a latency dimension.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            LatencySpec::Zero => 0.0,
            LatencySpec::Fixed { delay } => delay,
            LatencySpec::Uniform { min, max } => {
                if max > min {
                    min + (max - min) * rng.gen::<f64>()
                } else {
                    min
                }
            }
            LatencySpec::Exponential { mean } => sample_exp(rng) * mean,
        }
    }
}

/// One unit-mean exponential draw: `-ln(1 - u)` with `u ∈ [0, 1)`, so the
/// argument stays in `(0, 1]` and the result is finite and ≥ 0.
#[inline]
fn sample_exp<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    -(1.0 - rng.gen::<f64>()).ln()
}

/// Runtime per-node clock state: the spec plus each node's speed class
/// (only the straggler model carries per-node state). Built once at the
/// start of an async run.
#[derive(Debug, Clone)]
pub(crate) struct NodeClocks {
    spec: ClockSpec,
    /// Straggler flags (empty unless the spec is
    /// [`ClockSpec::Stragglers`]).
    slow: Vec<bool>,
}

impl NodeClocks {
    /// Instantiates clocks for `node_count` nodes, drawing straggler
    /// membership (one Bernoulli per node, in node order) when the spec
    /// has one.
    pub(crate) fn new<R: Rng + ?Sized>(spec: ClockSpec, node_count: usize, rng: &mut R) -> Self {
        spec.assert_valid();
        let slow = match spec {
            ClockSpec::Stragglers { slow_fraction, .. } => (0..node_count)
                .map(|_| slow_fraction > 0.0 && rng.gen_bool(slow_fraction.min(1.0)))
                .collect(),
            _ => Vec::new(),
        };
        NodeClocks { spec, slow }
    }

    /// Effective rate of node `i` (fires per time unit).
    #[inline]
    fn rate_of(&self, i: usize) -> f64 {
        match self.spec {
            ClockSpec::Fixed { interval } => 1.0 / interval,
            ClockSpec::Exponential { rate } => rate,
            ClockSpec::Stragglers { rate, slow_factor, .. } => {
                if self.slow.get(i).copied().unwrap_or(false) {
                    rate / slow_factor
                } else {
                    rate
                }
            }
        }
    }

    /// Time of node `i`'s next fire after `now`. Fixed clocks tick
    /// deterministically (no draw); stochastic clocks take exactly one
    /// `f64` draw per call.
    #[inline]
    pub(crate) fn next_after<R: Rng + ?Sized>(&self, i: usize, now: f64, rng: &mut R) -> f64 {
        match self.spec {
            ClockSpec::Fixed { interval } => now + interval,
            _ => now + sample_exp(rng) / self.rate_of(i),
        }
    }

    /// Whether node `i` is a straggler (always `false` outside the
    /// straggler model).
    #[cfg(test)]
    pub(crate) fn is_slow(&self, i: usize) -> bool {
        self.slow.get(i).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_clock_ticks_exactly() {
        let mut rng = SmallRng::seed_from_u64(0);
        let clocks = NodeClocks::new(ClockSpec::UNIT, 4, &mut rng);
        let mut t = 0.0;
        for k in 1..=10 {
            t = clocks.next_after(2, t, &mut rng);
            assert_eq!(t, k as f64, "unit ticks must land on exact integers");
        }
    }

    #[test]
    fn exponential_gaps_have_the_right_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let clocks = NodeClocks::new(ClockSpec::Exponential { rate: 2.0 }, 1, &mut rng);
        let mut sum = 0.0;
        let mut t = 0.0;
        for _ in 0..20_000 {
            let next = clocks.next_after(0, t, &mut rng);
            assert!(next >= t);
            sum += next - t;
            t = next;
        }
        let mean = sum / 20_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean gap {mean} for rate 2");
    }

    #[test]
    fn stragglers_fire_slower() {
        let mut rng = SmallRng::seed_from_u64(7);
        let spec = ClockSpec::Stragglers { rate: 1.0, slow_fraction: 0.5, slow_factor: 10.0 };
        let clocks = NodeClocks::new(spec, 256, &mut rng);
        let slow_count = (0..256).filter(|&i| clocks.is_slow(i)).count();
        assert!(
            (64..=192).contains(&slow_count),
            "fraction 0.5 over 256 nodes, saw {slow_count}"
        );
        let fast = (0..256).position(|i| !clocks.is_slow(i)).unwrap();
        let slow = (0..256).position(|i| clocks.is_slow(i)).unwrap();
        let mean_gap = |node: usize, rng: &mut SmallRng| {
            let mut sum = 0.0;
            let mut t = 0.0;
            for _ in 0..4000 {
                let next = clocks.next_after(node, t, rng);
                sum += next - t;
                t = next;
            }
            sum / 4000.0
        };
        let fast_gap = mean_gap(fast, &mut rng);
        let slow_gap = mean_gap(slow, &mut rng);
        assert!(
            slow_gap > 5.0 * fast_gap,
            "slow gap {slow_gap} vs fast gap {fast_gap} (factor 10 expected)"
        );
    }

    #[test]
    fn zero_latency_draws_nothing() {
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(LatencySpec::Zero.sample(&mut a), 0.0);
        }
        // The stream is untouched: both generators still agree.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn latency_samples_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let uni = LatencySpec::Uniform { min: 0.2, max: 0.7 };
        for _ in 0..1000 {
            let d = uni.sample(&mut rng);
            assert!((0.2..=0.7).contains(&d));
        }
        let exp = LatencySpec::Exponential { mean: 0.3 };
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let d = exp.sample(&mut rng);
            assert!(d >= 0.0 && d.is_finite());
            sum += d;
        }
        let mean = sum / 20_000.0;
        assert!((mean - 0.3).abs() < 0.02, "exponential latency mean {mean}");
        assert_eq!(LatencySpec::Fixed { delay: 0.25 }.sample(&mut rng), 0.25);
    }

    #[test]
    fn mean_interval_reflects_the_rate() {
        assert_eq!(ClockSpec::UNIT.mean_interval(), 1.0);
        assert_eq!(ClockSpec::Exponential { rate: 4.0 }.mean_interval(), 0.25);
    }

    #[test]
    #[should_panic(expected = "clock interval")]
    fn rejects_zero_interval() {
        ClockSpec::Fixed { interval: 0.0 }.assert_valid();
    }

    #[test]
    #[should_panic(expected = "slow_factor")]
    fn rejects_speedup_stragglers() {
        ClockSpec::Stragglers { rate: 1.0, slow_fraction: 0.1, slow_factor: 0.5 }.assert_valid();
    }

    #[test]
    #[should_panic(expected = "latency max")]
    fn rejects_inverted_latency_window() {
        LatencySpec::Uniform { min: 0.5, max: 0.1 }.assert_valid();
    }
}
