//! Zero-cost-when-off run telemetry: per-phase wall-clock attribution and
//! per-round counters for both engines.
//!
//! The paper's analysis (§4, Lemmas 1–3) reasons about *per-round*
//! quantities, and the perf work on the round loop needs to know *where*
//! a round spends its time. A [`RoundProbe`] installed via
//! [`SimState::set_probe`](crate::SimState::set_probe) or
//! [`MultiSimState::set_probe`](crate::MultiSimState::set_probe) receives:
//!
//! * one [`RoundProbe::on_phase`] call per instrumented phase per round,
//!   with that phase's wall-clock duration ([`StepPhase`] names the
//!   phases: fault application, fabric sampling, plan, exchange, update,
//!   coverage/bookkeeping);
//! * one [`RoundProbe::on_round`] call at the end of each round with the
//!   round's [`RoundCounters`] (informed census, transmissions, channels
//!   sampled, draws skipped by the capability gate, alive/suspended
//!   membership).
//!
//! # The off path is free
//!
//! With no probe installed — the default — the engines take **no**
//! `Instant::now()` calls, make **no** extra RNG draws and allocate
//! nothing: every code path and random stream is byte-identical to an
//! uninstrumented engine (asserted by tests, mirroring the
//! `set_faults(None)` guarantee). Probes are therefore safe to leave
//! compiled into release binaries and enabled only for instrumented runs.
//!
//! [`PhaseTimings`] is the built-in accumulator: per-phase totals, counter
//! totals, and a peak-RSS high-water mark sampled from `/proc` (the E10
//! memory-smoke probe, exposed here as [`peak_rss_kib`]).

use std::time::{Duration, Instant};

use crate::Round;

/// Phases of an engine round distinguished by per-phase attribution.
///
/// Both engines map their internal phases onto this shared vocabulary:
///
/// | variant | single-rumour engine | multi-rumour engine |
/// |---|---|---|
/// | `Faults` | fault-plan events + crash sampling | same |
/// | `Fabric` | channel-target sampling | shared fabric + reverse index |
/// | `Plan` | informed nodes' plan decisions | CSR plan store fill |
/// | `Exchange` | push/pull transmissions | direction census + per-rumour sends |
/// | `Update` | observation digest / state updates | per-rumour digest |
/// | `Coverage` | coverage bookkeeping | activation + coverage bookkeeping |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepPhase {
    /// Fault-plan advancement and crash-stop sampling.
    Faults,
    /// Channel-fabric sampling (including the reverse index, when built).
    Fabric,
    /// Plan decisions over the informed index list(s).
    Plan,
    /// Transmissions over open channels (and the multi-rumour direction
    /// census that draws shared transmission failures).
    Exchange,
    /// Observation digest and protocol state updates.
    Update,
    /// Activation, quiescence and coverage bookkeeping.
    Coverage,
}

impl StepPhase {
    /// Number of distinct phases.
    pub const COUNT: usize = 6;

    /// Every phase, in round execution order.
    pub const ALL: [StepPhase; StepPhase::COUNT] = [
        StepPhase::Faults,
        StepPhase::Fabric,
        StepPhase::Plan,
        StepPhase::Exchange,
        StepPhase::Update,
        StepPhase::Coverage,
    ];

    /// Dense index in `0..COUNT` (the order of [`ALL`](Self::ALL)).
    pub fn index(self) -> usize {
        match self {
            StepPhase::Faults => 0,
            StepPhase::Fabric => 1,
            StepPhase::Plan => 2,
            StepPhase::Exchange => 3,
            StepPhase::Update => 4,
            StepPhase::Coverage => 5,
        }
    }

    /// Stable lower-case label (used as the artifact JSON key).
    pub fn label(self) -> &'static str {
        match self {
            StepPhase::Faults => "faults",
            StepPhase::Fabric => "fabric",
            StepPhase::Plan => "plan",
            StepPhase::Exchange => "exchange",
            StepPhase::Update => "update",
            StepPhase::Coverage => "coverage",
        }
    }
}

/// Per-round counter snapshot handed to [`RoundProbe::on_round`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundCounters {
    /// Round number (1-based; the round that just executed).
    pub round: Round,
    /// Alive, uncrashed informed nodes after the round (summed over all
    /// rumours in the multi-rumour engine).
    pub informed: usize,
    /// Nodes newly informed this round (summed over rumours).
    pub newly_informed: usize,
    /// Push transmissions this round (single-rumour engine; 0 in multi,
    /// which accounts per rumour without a direction split).
    pub push_tx: u64,
    /// Pull transmissions this round (single-rumour engine; 0 in multi).
    pub pull_tx: u64,
    /// Total rumour transmissions this round (both engines).
    pub tx: u64,
    /// Channels opened this round (skipped callers' channels included).
    pub channels: u64,
    /// Channel-target draws avoided this round by the capability-gated
    /// push-only sampling skip (channels counted but never sampled).
    pub skipped_draws: u64,
    /// Alive, uncrashed nodes after the round (coverage denominator).
    pub alive: usize,
    /// Nodes currently suspended by a transient outage.
    pub suspended: usize,
}

/// Observer of engine rounds; install with `set_probe`. All methods
/// default to no-ops so implementations opt into what they need.
///
/// Implementations must not allocate per call if the steady-state
/// allocation guarantee matters to the run (the built-in
/// [`PhaseTimings`] uses fixed-size accumulators).
pub trait RoundProbe: std::fmt::Debug {
    /// One instrumented phase of one round took `elapsed` wall-clock time.
    fn on_phase(&mut self, phase: StepPhase, elapsed: Duration) {
        let _ = (phase, elapsed);
    }

    /// A round finished with these counters.
    fn on_round(&mut self, counters: &RoundCounters) {
        let _ = counters;
    }

    /// One shard's slice of a fanned-out phase took `elapsed` wall-clock
    /// time (sharded step path only; serial rounds never call this).
    /// Shard durations overlap in real time — they attribute *work*, not
    /// critical-path latency; the aggregate [`on_phase`](Self::on_phase)
    /// lap still reports the barrier-to-barrier phase time.
    fn on_shard_phase(&mut self, shard: usize, phase: StepPhase, elapsed: Duration) {
        let _ = (shard, phase, elapsed);
    }

    /// Concrete-type access, so accumulated telemetry can be read back out
    /// of a boxed probe after `take_probe` (implement as `self`).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// The boxed probe type the engines store (Send so instrumented states
/// can cross rayon workers).
pub type BoxedProbe = Box<dyn RoundProbe + Send>;

/// Stopwatch the engines use for phase attribution. Armed only when a
/// probe is installed; unarmed laps are no-ops that never read the clock.
#[derive(Debug)]
pub(crate) struct PhaseClock(Option<Instant>);

impl PhaseClock {
    /// Starts the clock iff `probing`.
    pub(crate) fn armed(probing: bool) -> Self {
        PhaseClock(if probing { Some(Instant::now()) } else { None })
    }

    /// Attributes the time since the last lap (or arming) to `phase` and
    /// restarts. No-op when unarmed or when no probe is installed.
    pub(crate) fn lap(&mut self, probe: &mut Option<BoxedProbe>, phase: StepPhase) {
        if let (Some(start), Some(p)) = (self.0.as_mut(), probe.as_deref_mut()) {
            let now = Instant::now();
            p.on_phase(phase, now.duration_since(*start));
            *start = now;
        }
    }
}

/// Per-shard stopwatch for the sharded step path's fanned-out phases.
/// Created *inside* each shard task, so it measures that shard's own
/// work; armed only when a probe is installed (the unarmed path never
/// reads the clock). Lives here so the engine's simulation modules never
/// name `Instant` — the no-wall-clock lint allowlists only telemetry.
#[derive(Debug)]
pub(crate) struct ShardClock(Option<Instant>);

impl ShardClock {
    /// Starts the clock iff `probing`.
    pub(crate) fn armed(probing: bool) -> Self {
        ShardClock(if probing { Some(Instant::now()) } else { None })
    }

    /// Time since arming ([`Duration::ZERO`] when unarmed).
    pub(crate) fn elapsed(&self) -> Duration {
        self.0.map_or(Duration::ZERO, |start| start.elapsed())
    }
}

/// Built-in accumulator probe: per-phase wall-clock totals, per-round
/// counter totals, per-shard phase totals (sharded runs only), and a
/// peak-RSS high-water mark sampled once per round from
/// `/proc/self/status` (the E10 memory-smoke probe).
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    totals: [Duration; StepPhase::COUNT],
    /// Per-shard phase totals; empty until the first `on_shard_phase`
    /// (serial runs never grow it), then grown to the shard count once.
    shard_totals: Vec<[Duration; StepPhase::COUNT]>,
    rounds: u32,
    newly_informed: u64,
    tx: u64,
    push_tx: u64,
    pull_tx: u64,
    channels: u64,
    skipped_draws: u64,
    last: RoundCounters,
    peak_rss_kib: Option<u64>,
}

impl PhaseTimings {
    /// Fresh accumulator.
    pub fn new() -> Self {
        PhaseTimings::default()
    }

    /// Rounds observed.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Total wall-clock attributed to `phase`.
    pub fn total(&self, phase: StepPhase) -> Duration {
        self.totals[phase.index()]
    }

    /// Per-phase totals in milliseconds, ordered as [`StepPhase::ALL`].
    pub fn phase_ms(&self) -> [f64; StepPhase::COUNT] {
        let mut ms = [0.0; StepPhase::COUNT];
        for (slot, d) in ms.iter_mut().zip(&self.totals) {
            *slot = d.as_secs_f64() * 1e3;
        }
        ms
    }

    /// Per-shard per-phase totals in milliseconds (one row per shard,
    /// each ordered as [`StepPhase::ALL`]). Empty for serial runs; only
    /// the fanned-out phases accumulate nonzero entries.
    pub fn shard_phase_ms(&self) -> Vec<[f64; StepPhase::COUNT]> {
        self.shard_totals
            .iter()
            .map(|row| {
                let mut ms = [0.0; StepPhase::COUNT];
                for (slot, d) in ms.iter_mut().zip(row) {
                    *slot = d.as_secs_f64() * 1e3;
                }
                ms
            })
            .collect()
    }

    /// Total transmissions observed across all rounds.
    pub fn tx(&self) -> u64 {
        self.tx
    }

    /// Total push transmissions observed (single-rumour engine runs).
    pub fn push_tx(&self) -> u64 {
        self.push_tx
    }

    /// Total pull transmissions observed (single-rumour engine runs).
    pub fn pull_tx(&self) -> u64 {
        self.pull_tx
    }

    /// Total channels opened across all rounds.
    pub fn channels(&self) -> u64 {
        self.channels
    }

    /// Total channel-target draws skipped by the capability gate.
    pub fn skipped_draws(&self) -> u64 {
        self.skipped_draws
    }

    /// Total nodes newly informed across all rounds.
    pub fn newly_informed(&self) -> u64 {
        self.newly_informed
    }

    /// The last round's counter snapshot (end-of-run census).
    pub fn last_round(&self) -> &RoundCounters {
        &self.last
    }

    /// Peak RSS high-water mark observed (kibibytes), if `/proc` is
    /// readable on this platform.
    pub fn peak_rss_kib(&self) -> Option<u64> {
        self.peak_rss_kib
    }
}

impl RoundProbe for PhaseTimings {
    fn on_phase(&mut self, phase: StepPhase, elapsed: Duration) {
        self.totals[phase.index()] += elapsed;
    }

    fn on_shard_phase(&mut self, shard: usize, phase: StepPhase, elapsed: Duration) {
        if self.shard_totals.len() <= shard {
            self.shard_totals.resize(shard + 1, [Duration::ZERO; StepPhase::COUNT]);
        }
        self.shard_totals[shard][phase.index()] += elapsed;
    }

    fn on_round(&mut self, counters: &RoundCounters) {
        self.rounds += 1;
        self.newly_informed += counters.newly_informed as u64;
        self.tx += counters.tx;
        self.push_tx += counters.push_tx;
        self.pull_tx += counters.pull_tx;
        self.channels += counters.channels;
        self.skipped_draws += counters.skipped_draws;
        self.last = *counters;
        // VmHWM is monotone, so the latest sample is the running maximum.
        if let Some(kib) = peak_rss_kib() {
            self.peak_rss_kib = Some(kib);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Peak resident-set size (`VmHWM`) of this process in kibibytes, read
/// from `/proc/self/status`. `None` where `/proc` is unavailable.
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_ordered() {
        for (ix, phase) in StepPhase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), ix);
        }
        let labels: Vec<&str> = StepPhase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["faults", "fabric", "plan", "exchange", "update", "coverage"]);
    }

    #[test]
    fn phase_timings_accumulate() {
        let mut t = PhaseTimings::new();
        t.on_phase(StepPhase::Fabric, Duration::from_millis(2));
        t.on_phase(StepPhase::Fabric, Duration::from_millis(3));
        t.on_phase(StepPhase::Update, Duration::from_millis(1));
        assert_eq!(t.total(StepPhase::Fabric), Duration::from_millis(5));
        assert_eq!(t.total(StepPhase::Update), Duration::from_millis(1));
        assert_eq!(t.total(StepPhase::Plan), Duration::ZERO);
        let ms = t.phase_ms();
        assert!((ms[StepPhase::Fabric.index()] - 5.0).abs() < 1e-9);
        t.on_round(&RoundCounters {
            round: 1,
            informed: 7,
            newly_informed: 6,
            tx: 10,
            push_tx: 8,
            pull_tx: 2,
            channels: 12,
            skipped_draws: 4,
            alive: 32,
            suspended: 1,
        });
        assert_eq!(t.rounds(), 1);
        assert_eq!(t.tx(), 10);
        assert_eq!(t.channels(), 12);
        assert_eq!(t.skipped_draws(), 4);
        assert_eq!(t.last_round().informed, 7);
    }

    #[test]
    fn unarmed_clock_is_inert() {
        let mut clock = PhaseClock::armed(false);
        let mut probe: Option<BoxedProbe> = Some(Box::new(PhaseTimings::new()));
        clock.lap(&mut probe, StepPhase::Fabric);
        assert!(clock.0.is_none(), "unarmed clock must never start");
        let timings = probe.unwrap();
        let timings =
            timings.as_any().downcast_ref::<PhaseTimings>().expect("concrete access");
        assert_eq!(timings.total(StepPhase::Fabric), Duration::ZERO);
    }

    #[test]
    fn rss_probe_reads_proc_on_linux() {
        if cfg!(target_os = "linux") {
            let kib = peak_rss_kib().expect("VmHWM readable on linux");
            assert!(kib > 0);
        }
    }
}
