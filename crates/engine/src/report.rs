use crate::Round;

/// Per-round measurements recorded by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundRecord {
    /// Round number (1-based).
    pub round: Round,
    /// Informed nodes after this round's exchanges.
    pub informed: usize,
    /// Nodes that became informed during this round.
    pub newly_informed: usize,
    /// Rumour copies sent via push this round.
    pub push_tx: u64,
    /// Rumour copies sent via pull this round.
    pub pull_tx: u64,
    /// Channels opened this round (all nodes open, informed or not).
    pub channels: u64,
}

impl RoundRecord {
    /// Total rumour transmissions this round.
    pub fn transmissions(&self) -> u64 {
        self.push_tx + self.pull_tx
    }
}

/// Summary of one complete simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Node slots in the topology when the run ended.
    pub node_count: usize,
    /// Alive nodes when the run ended.
    pub alive_count: usize,
    /// Alive informed nodes when the run ended.
    pub informed_count: usize,
    /// Rounds executed.
    pub rounds: Round,
    /// First round after which every alive node was informed, if reached.
    pub full_coverage_at: Option<Round>,
    /// Transmissions performed up to (and including) `full_coverage_at`.
    pub tx_at_coverage: Option<u64>,
    /// Total push transmissions over the whole run.
    pub push_tx: u64,
    /// Total pull transmissions over the whole run.
    pub pull_tx: u64,
    /// Total channels opened over the whole run.
    pub channels: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Per-round trace (empty unless history recording was enabled).
    pub history: Vec<RoundRecord>,
}

/// Why a simulation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// Every alive node was informed and the config asked to stop there.
    #[default]
    FullCoverage,
    /// Every informed node reported quiescence — no further transmission can
    /// ever happen.
    Quiescent,
    /// The configured round cap (or the protocol's deadline) was reached.
    RoundCap,
}

impl RunReport {
    /// Total rumour transmissions over the whole run.
    pub fn total_tx(&self) -> u64 {
        self.push_tx + self.pull_tx
    }

    /// Transmissions per alive node — the quantity the paper bounds by
    /// `O(log log n)` for its algorithm and `Ω(log n / log d)` for the
    /// standard model.
    pub fn tx_per_node(&self) -> f64 {
        if self.alive_count == 0 {
            0.0
        } else {
            self.total_tx() as f64 / self.alive_count as f64
        }
    }

    /// `true` if every alive node ended up informed.
    pub fn all_informed(&self) -> bool {
        self.informed_count == self.alive_count
    }

    /// Fraction of alive nodes informed at the end.
    pub fn coverage(&self) -> f64 {
        if self.alive_count == 0 {
            1.0
        } else {
            self.informed_count as f64 / self.alive_count as f64
        }
    }

    /// Rounds until full coverage, or `None` when the broadcast failed.
    pub fn rounds_to_coverage(&self) -> Option<Round> {
        self.full_coverage_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_arithmetic() {
        let r = RunReport {
            node_count: 10,
            alive_count: 10,
            informed_count: 10,
            rounds: 5,
            full_coverage_at: Some(5),
            tx_at_coverage: Some(40),
            push_tx: 30,
            pull_tx: 12,
            channels: 50,
            stop: StopReason::FullCoverage,
            history: vec![],
        };
        assert_eq!(r.total_tx(), 42);
        assert!((r.tx_per_node() - 4.2).abs() < 1e-12);
        assert!(r.all_informed());
        assert_eq!(r.coverage(), 1.0);
        assert_eq!(r.rounds_to_coverage(), Some(5));
    }

    #[test]
    fn partial_coverage() {
        let r = RunReport {
            node_count: 10,
            alive_count: 8,
            informed_count: 4,
            rounds: 3,
            stop: StopReason::RoundCap,
            ..Default::default()
        };
        assert!(!r.all_informed());
        assert_eq!(r.coverage(), 0.5);
        assert_eq!(r.rounds_to_coverage(), None);
    }

    #[test]
    fn round_record_sum() {
        let rec = RoundRecord { push_tx: 3, pull_tx: 4, ..Default::default() };
        assert_eq!(rec.transmissions(), 7);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = RunReport::default();
        assert_eq!(r.tx_per_node(), 0.0);
        assert_eq!(r.coverage(), 1.0);
    }
}
