//! Deterministic asynchronous event-queue engine.
//!
//! The round engines advance every node in lockstep; this third engine
//! drops the global clock. Each node fires its push/pull exchange on its
//! own [`ClockSpec`] timer, rumour copies spend a [`LatencySpec`]-drawn
//! time in flight, and everything runs off one pending-event binary heap
//! keyed by `(time_bits, node, tie_seq)` — a **total, deterministic**
//! order, so async runs are seed-for-seed reproducible exactly like the
//! synchronous engines.
//!
//! # Event ordering and the round-model limit
//!
//! Times are non-negative `f64`s compared via their IEEE-754 bit patterns
//! (order-preserving for non-negative values); equal times resolve by
//! node id, then by a global insertion counter (`tie_seq`). Ordering by
//! *node before insertion order* is load-bearing: a node's `Fire` at time
//! `t` is scheduled strictly before any same-instant delivery to it can
//! exist, so under uniform unit-interval clocks and zero latency every
//! node plans on the *previous* instant's informedness — no same-instant
//! push cascade. That makes the fixed-rate zero-latency limit the same
//! stochastic process as the round model for push protocols, which is
//! the calibration contract proved in `tests/calibration.rs`. (Pull is
//! genuinely more alive under asynchrony: a node informed earlier within
//! the same instant can already serve a later same-instant pull, which
//! rounds cannot express.)
//!
//! # Time-windowed faults
//!
//! A [`FaultPlan`](crate::FaultPlan) is round-keyed. The async engine
//! maps continuous time to the plan's clock by `round(T) = ceil(T)`, and
//! advances [`FaultState::begin_round`](crate::FaultState::begin_round)
//! once per integer boundary crossed — so a partition scripted for
//! rounds `[2, 6)` holds for times in `(1, 5]`, adversary/outage
//! sampling keeps its per-round cadence, and an absent plan costs
//! nothing, exactly as in the round engines.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::Rng;
use rrb_graph::NodeId;

use crate::census::AliveCensus;
use crate::choice::{sample_targets, ChoiceState};
use crate::clock::NodeClocks;
use crate::fabric::InformedIndex;
use crate::failure::FaultState;
use crate::observation::RumorMeta;
use crate::report::StopReason;
use crate::telemetry::{BoxedProbe, PhaseClock, RoundCounters, StepPhase};
use crate::{
    ClockSpec, LatencySpec, NodeView, Observation, Plan, Protocol, Round, RoundRecord, RunReport,
    SimConfig, Topology,
};

/// Total event order: time first (IEEE-754 bits of a non-negative `f64`),
/// then node, then global insertion sequence. Deriving `Ord` on this
/// field order *is* the specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EventKey {
    pub(crate) time_bits: u64,
    pub(crate) node: u32,
    pub(crate) tie_seq: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// The node's clock fired: open channels and exchange.
    Fire,
    /// A rumour copy arrives at the node (`pull` marks the direction it
    /// travelled, for the observation split).
    Deliver { meta: RumorMeta, pull: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingEvent {
    pub(crate) key: EventKey,
    pub(crate) kind: EventKind,
}

impl PartialOrd for PendingEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

#[inline]
fn time_to_bits(t: f64) -> u64 {
    debug_assert!(t.is_finite() && t >= 0.0, "event time must be finite and >= 0, got {t}");
    t.to_bits()
}

#[inline]
fn bits_to_time(b: u64) -> f64 {
    f64::from_bits(b)
}

/// The fault plan's round corresponding to continuous time `t`: round `r`
/// owns times in `(r - 1, r]`, so integer fire times land in "their" round
/// and the uniform-rate limit matches the synchronous schedule.
#[inline]
fn round_of(t: f64) -> Round {
    let r = t.ceil();
    if r < 1.0 {
        1
    } else {
        r as Round
    }
}

/// Mutable state of an in-flight **asynchronous** broadcast.
///
/// Drives the same [`Protocol`], [`AliveCensus`], failure and telemetry
/// machinery as [`SimState`](crate::SimState), but on a pending-event
/// heap instead of a round barrier. Reports reuse [`RunReport`]: the
/// `rounds` field is the last integer-time window entered, so
/// round-denominated metrics stay comparable across engines, while
/// [`now`](Self::now)/[`coverage_time`](Self::coverage_time) expose the
/// continuous clock.
///
/// ```
/// use rand::{SeedableRng, rngs::SmallRng};
/// use rrb_engine::{protocols::FloodPush, AsyncSimState, ClockSpec, LatencySpec, SimConfig};
/// use rrb_graph::{gen, NodeId};
///
/// let mut rng = SmallRng::seed_from_u64(9);
/// let g = gen::complete(64);
/// let proto = FloodPush::new();
/// let mut sim = AsyncSimState::new(
///     &proto,
///     64,
///     NodeId::new(0),
///     ClockSpec::Exponential { rate: 1.0 },
///     LatencySpec::Zero,
/// );
/// sim.run_to_completion(&g, &proto, SimConfig::default(), &mut rng);
/// assert!(sim.coverage_time().is_some());
/// let report = sim.into_report(&g, SimConfig::default());
/// assert!(report.all_informed());
/// ```
#[derive(Debug)]
pub struct AsyncSimState<P: Protocol> {
    states: Vec<P::State>,
    informed: InformedIndex,
    census: AliveCensus,
    alive_informed: usize,
    creator: NodeId,
    choice: ChoiceState,
    clock: ClockSpec,
    latency: LatencySpec,
    clocks: Option<NodeClocks>,
    heap: BinaryHeap<Reverse<PendingEvent>>,
    tie_seq: u64,
    now: f64,
    /// The integer-time window currently in progress (`round_of(now)`;
    /// 0 before the first event) — the fault plan's and the probe's clock.
    round: Round,
    eff_failures: crate::FailureModel,
    pending_deliveries: usize,
    push_tx: u64,
    pull_tx: u64,
    channels: u64,
    events: u64,
    round_push_tx: u64,
    round_pull_tx: u64,
    round_channels: u64,
    round_skipped: u64,
    round_newly_informed: usize,
    full_coverage_at: Option<Round>,
    coverage_time: Option<f64>,
    tx_at_coverage: Option<u64>,
    stop: Option<StopReason>,
    history: Vec<RoundRecord>,
    faults: Option<FaultState>,
    probe: Option<BoxedProbe>,
    target_buf: Vec<NodeId>,
    scratch_obs: Observation,
    empty_obs: Observation,
}

impl<P: Protocol> AsyncSimState<P> {
    /// Creates async state for a broadcast started by `origin` with the
    /// given per-node clock and in-flight latency models. Panics if either
    /// spec is out of range (see [`ClockSpec::assert_valid`]).
    pub fn new(
        protocol: &P,
        node_count: usize,
        origin: NodeId,
        clock: ClockSpec,
        latency: LatencySpec,
    ) -> Self {
        clock.assert_valid();
        latency.assert_valid();
        let mut states = Vec::with_capacity(node_count);
        for i in 0..node_count {
            states.push(protocol.init(i == origin.index()));
        }
        let mut informed = InformedIndex::new(node_count);
        informed.mark(origin.index(), 0);
        AsyncSimState {
            states,
            informed,
            census: AliveCensus::new(),
            alive_informed: 0,
            creator: origin,
            choice: ChoiceState::new(node_count, protocol.choice_policy()),
            clock,
            latency,
            clocks: None,
            heap: BinaryHeap::new(),
            tie_seq: 0,
            now: 0.0,
            round: 0,
            eff_failures: crate::FailureModel::NONE,
            pending_deliveries: 0,
            push_tx: 0,
            pull_tx: 0,
            channels: 0,
            events: 0,
            round_push_tx: 0,
            round_pull_tx: 0,
            round_channels: 0,
            round_skipped: 0,
            round_newly_informed: 0,
            full_coverage_at: None,
            coverage_time: None,
            tx_at_coverage: None,
            stop: None,
            history: Vec::new(),
            faults: None,
            probe: None,
            target_buf: Vec::new(),
            scratch_obs: Observation::default(),
            empty_obs: Observation::default(),
        }
    }

    /// Installs (or clears) a fault plan's runtime state; `None` is
    /// byte-identical to never calling this. Install before running.
    pub fn set_faults(&mut self, faults: Option<FaultState>) {
        self.faults = faults;
    }

    /// Installs (or clears) a telemetry probe. Probes observe event
    /// phases and integer-time window boundaries and never touch the
    /// RNG, so instrumented runs are byte-identical to bare ones.
    pub fn set_probe(&mut self, probe: Option<BoxedProbe>) {
        self.probe = probe;
    }

    /// Removes and returns the installed probe (to read telemetry back).
    pub fn take_probe(&mut self) -> Option<BoxedProbe> {
        self.probe.take()
    }

    /// Continuous time of the last processed event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Continuous time at which every effective node was informed.
    pub fn coverage_time(&self) -> Option<f64> {
        self.coverage_time
    }

    /// Heap events processed so far (fires + deliveries).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Alive, uncrashed informed nodes — the coverage numerator.
    pub fn informed_count(&self) -> usize {
        self.alive_informed
    }

    /// Runs until coverage/quiescence/round-cap, then leaves the stop
    /// reason readable via [`into_report`](Self::into_report).
    pub fn run_to_completion<T: Topology + ?Sized, R: Rng + ?Sized>(
        &mut self,
        topo: &T,
        protocol: &P,
        config: SimConfig,
        rng: &mut R,
    ) {
        let round_cap = protocol.deadline().unwrap_or(config.max_rounds).min(config.max_rounds);
        self.start(topo, protocol, config, rng);
        while self.stop.is_none() {
            self.advance(topo, protocol, config, round_cap, rng);
        }
    }

    /// One-time start-up: census snapshot, straggler draws, and the
    /// initial `Fire` per alive node (scheduled in node order).
    fn start<T: Topology + ?Sized, R: Rng + ?Sized>(
        &mut self,
        topo: &T,
        protocol: &P,
        config: SimConfig,
        rng: &mut R,
    ) {
        if self.clocks.is_some() {
            return;
        }
        self.census.sync_from(topo);
        self.alive_informed = usize::from(self.census.is_effective(self.creator.index()));
        let clocks = NodeClocks::new(self.clock, topo.node_count(), rng);
        for i in 0..topo.node_count() {
            if topo.is_alive(NodeId::new(i)) && !self.census.is_crashed(i) {
                let t = clocks.next_after(i, 0.0, rng);
                self.schedule(t, i as u32, EventKind::Fire);
            }
        }
        self.clocks = Some(clocks);
        // Mirror the sync engine's pre-first-step `finished()` checks.
        if config.stop_at_coverage && self.alive_informed == self.census.effective_alive() {
            self.stop = Some(StopReason::FullCoverage);
        } else if self.quiescent(protocol) {
            self.stop = Some(StopReason::Quiescent);
        }
    }

    fn schedule(&mut self, time: f64, node: u32, kind: EventKind) {
        let key = EventKey { time_bits: time_to_bits(time), node, tie_seq: self.tie_seq };
        self.tie_seq += 1;
        if matches!(kind, EventKind::Deliver { .. }) {
            self.pending_deliveries += 1;
        }
        self.heap.push(Reverse(PendingEvent { key, kind }));
    }

    /// Processes the next pending event, first crossing any integer-time
    /// boundaries between it and the last one (fault windows, round
    /// records, quiescence and cap checks live on those boundaries).
    fn advance<T: Topology + ?Sized, R: Rng + ?Sized>(
        &mut self,
        topo: &T,
        protocol: &P,
        config: SimConfig,
        round_cap: Round,
        rng: &mut R,
    ) {
        let mut clock = PhaseClock::armed(self.probe.is_some());
        let Some(&Reverse(next)) = self.heap.peek() else {
            // Every clock has died (all nodes crashed): nothing can ever
            // change again.
            self.finish_round(config);
            self.stop = Some(StopReason::Quiescent);
            return;
        };
        let t = bits_to_time(next.key.time_bits);
        let event_round = round_of(t);
        while self.round < event_round {
            // The window in progress has no more events — close it.
            self.finish_round(config);
            if self.quiescent(protocol) {
                self.stop = Some(StopReason::Quiescent);
                return;
            }
            if self.round >= round_cap {
                self.stop = Some(StopReason::RoundCap);
                return;
            }
            self.round += 1;
            self.begin_round(topo, config, rng, &mut clock);
            if self.stop.is_some() {
                return;
            }
        }
        let Some(Reverse(ev)) = self.heap.pop() else { return };
        self.events += 1;
        self.now = bits_to_time(ev.key.time_bits);
        match ev.kind {
            EventKind::Fire => {
                self.fire(ev.key.node as usize, topo, protocol, rng, &mut clock);
            }
            EventKind::Deliver { meta, pull } => {
                self.deliver(ev.key.node as usize, meta, pull, protocol, config, &mut clock);
            }
        }
    }

    /// Opens the integer-time window `self.round`: advance the fault plan
    /// one round on its reserved stream, apply its node events, and run
    /// the i.i.d. crash-stop sampling — the exact per-round semantics of
    /// the synchronous engines, keyed by window instead of barrier.
    fn begin_round<T: Topology + ?Sized, R: Rng + ?Sized>(
        &mut self,
        topo: &T,
        config: SimConfig,
        rng: &mut R,
        clock: &mut PhaseClock,
    ) {
        let t = self.round;
        let n = topo.node_count();
        let mut fault_state = self.faults.take();
        self.eff_failures = match fault_state.as_mut() {
            Some(fs) => {
                {
                    let informed = &self.informed;
                    let census = &self.census;
                    fs.begin_round(
                        t,
                        n,
                        |i| topo.stubs(NodeId::new(i)).len(),
                        |i| informed.at(i),
                        |i| census.is_effective(i),
                    );
                }
                for &i in fs.resume_now() {
                    self.census.set_suspended(i as usize, false);
                }
                for &i in fs.suspend_now() {
                    self.census.set_suspended(i as usize, true);
                }
                for &i in fs.crash_now() {
                    let i = i as usize;
                    if self.census.is_alive(i) && !self.census.is_crashed(i) {
                        self.census.mark_crashed(i);
                        if self.informed.is_informed(i) {
                            self.alive_informed -= 1;
                        }
                    }
                }
                fs.effective(config.failures)
            }
            None => config.failures,
        };
        self.faults = fault_state;
        if self.eff_failures.node_crash > 0.0 {
            for i in 0..n {
                if !self.census.is_crashed(i)
                    && self.census.is_alive(i)
                    && self.eff_failures.crashes_now(rng)
                {
                    self.census.mark_crashed(i);
                    if self.informed.is_informed(i) {
                        self.alive_informed -= 1;
                    }
                }
            }
        }
        clock.lap(&mut self.probe, StepPhase::Faults);
        // Crashes shrink the coverage denominator, which can complete
        // coverage without a delivery — same rule the sync engine applies
        // at its round barrier.
        self.check_coverage(config);
    }

    /// A node's clock fired: reschedule its next tick, then (if
    /// participating) open channels and exchange.
    fn fire<T: Topology + ?Sized, R: Rng + ?Sized>(
        &mut self,
        i: usize,
        topo: &T,
        protocol: &P,
        rng: &mut R,
        clock: &mut PhaseClock,
    ) {
        let v = NodeId::new(i);
        if self.census.is_crashed(i) || !topo.is_alive(v) {
            return; // fail-stop: the clock dies with the node
        }
        // The timer draw comes first and unconditionally: a suspended
        // node's clock keeps ticking through the outage so it resumes
        // exchanging the instant the census un-suspends it.
        let next = self.clocks.as_ref().expect("started").next_after(i, self.now, rng);
        self.schedule(next, i as u32, EventKind::Fire);
        if self.census.is_suspended(i) {
            return;
        }
        let policy = protocol.choice_policy();
        let at_i = self.informed.at(i);
        // Capability-gated sampling skip, as in the sync fabric: an
        // uninformed caller under a never-pull-serving protocol opens
        // channels that can carry nothing, so count them without
        // sampling (memoryless policies only).
        if at_i.is_none() && !protocol.capabilities().uses_pull && policy.is_memoryless() {
            let skipped = topo.stubs(v).len().min(policy.fanout()) as u64;
            self.channels += skipped;
            self.round_channels += skipped;
            self.round_skipped += skipped;
            clock.lap(&mut self.probe, StepPhase::Fabric);
            return;
        }
        sample_targets(topo, v, policy, &mut self.choice, rng, &mut self.target_buf);
        let opened = self.target_buf.len() as u64;
        self.channels += opened;
        self.round_channels += opened;
        clock.lap(&mut self.probe, StepPhase::Fabric);
        let plan_i = match at_i {
            Some(at) => {
                let view =
                    NodeView { informed_at: at, is_creator: v == self.creator, state: &self.states[i] };
                protocol.plan(view, self.round)
            }
            None => Plan::SILENT,
        };
        clock.lap(&mut self.probe, StepPhase::Plan);
        let fault_state = self.faults.take();
        let fault_view = fault_state.as_ref().and_then(FaultState::channel_view);
        for idx in 0..self.target_buf.len() {
            let w = self.target_buf[idx];
            let wi = w.index();
            // A channel to a dead, crashed, suspended or partitioned-away
            // neighbour fails to establish; it costs nothing.
            let callee_ok = topo.is_alive(w)
                && !self.census.is_crashed(wi)
                && !self.census.is_suspended(wi)
                && fault_view.as_ref().is_none_or(|f| f.connects(i, wi));
            if !callee_ok {
                continue;
            }
            // Combined per-channel establishment loss (baseline i.i.d.
            // plus burst chains), one Bernoulli draw, skipped when zero —
            // the fabric's exact rule.
            let p = match fault_view.as_ref() {
                Some(f) => {
                    1.0 - (1.0 - self.eff_failures.channel_failure) * (1.0 - f.burst_loss(i, wi))
                }
                None => self.eff_failures.channel_failure,
            };
            if p > 0.0 && rng.gen_bool(p) {
                continue;
            }
            // Push: caller -> callee; counted when sent, delivered only if
            // the transmission survives.
            if plan_i.push {
                self.push_tx += 1;
                self.round_push_tx += 1;
                if self.eff_failures.transmission_ok(rng) {
                    let arrival = self.now + self.latency.sample(rng);
                    self.schedule(arrival, wi as u32, EventKind::Deliver { meta: plan_i.meta, pull: false });
                }
            }
            // Pull: the callee answers the channel this caller opened.
            if let Some(at_w) = self.informed.at(wi) {
                let view = NodeView {
                    informed_at: at_w,
                    is_creator: w == self.creator,
                    state: &self.states[wi],
                };
                let plan_w = protocol.plan(view, self.round);
                if plan_w.pull_serve {
                    self.pull_tx += 1;
                    self.round_pull_tx += 1;
                    if self.eff_failures.transmission_ok(rng) {
                        let arrival = self.now + self.latency.sample(rng);
                        self.schedule(arrival, i as u32, EventKind::Deliver { meta: plan_w.meta, pull: true });
                    }
                }
            }
        }
        self.faults = fault_state;
        clock.lap(&mut self.probe, StepPhase::Exchange);
        // The firer's own tick advances its protocol state with an empty
        // observation — the async analogue of the sync engine's per-round
        // empty update, so counter/age-based quiescence rules still run.
        if at_i.is_some() {
            protocol.update(&mut self.states[i], at_i, self.round, &self.empty_obs);
        }
        clock.lap(&mut self.probe, StepPhase::Update);
    }

    /// A rumour copy arrives: digest it (unless the receiver is gone or
    /// suspended — frozen nodes are deaf) and update coverage.
    fn deliver(
        &mut self,
        w: usize,
        meta: RumorMeta,
        pull: bool,
        protocol: &P,
        config: SimConfig,
        clock: &mut PhaseClock,
    ) {
        self.pending_deliveries -= 1;
        if !self.census.is_participating(w) {
            return;
        }
        self.scratch_obs.clear();
        if pull {
            self.scratch_obs.pulls.push(meta);
        } else {
            self.scratch_obs.pushes.push(meta);
        }
        if self.informed.mark(w, self.round) {
            self.round_newly_informed += 1;
            if self.census.is_effective(w) {
                self.alive_informed += 1;
            }
        }
        protocol.update(&mut self.states[w], self.informed.at(w), self.round, &self.scratch_obs);
        clock.lap(&mut self.probe, StepPhase::Update);
        self.check_coverage(config);
        clock.lap(&mut self.probe, StepPhase::Coverage);
    }

    /// Records the first instant every effective node is informed and
    /// stops the run there when configured to.
    fn check_coverage(&mut self, config: SimConfig) {
        if self.coverage_time.is_none() && self.alive_informed == self.census.effective_alive() {
            self.coverage_time = Some(self.now);
            self.full_coverage_at = Some(self.round);
            self.tx_at_coverage = Some(self.push_tx + self.pull_tx);
            if config.stop_at_coverage {
                self.finish_round(config);
                self.stop = Some(StopReason::FullCoverage);
            }
        }
    }

    /// Quiescence at an integer-time boundary: no copy in flight and every
    /// informed, uncrashed node permanently silent (the sync engine's rule
    /// at `t = round + 1`, plus the in-flight condition asynchrony adds).
    fn quiescent(&self, protocol: &P) -> bool {
        if self.pending_deliveries > 0 {
            return false;
        }
        let t = self.round + 1;
        self.informed.list().iter().all(|&i| {
            let i = i as usize;
            self.census.is_crashed(i)
                || match self.informed.at(i) {
                    Some(at) => protocol.is_quiescent(&self.states[i], at, t),
                    None => true,
                }
        })
    }

    /// Closes the integer-time window in progress: emit its
    /// [`RoundRecord`]/probe counters and reset the per-window
    /// accumulators. No-op before the first event.
    fn finish_round(&mut self, config: SimConfig) {
        if self.round == 0 {
            return;
        }
        if config.record_history {
            self.history.push(RoundRecord {
                round: self.round,
                informed: self.alive_informed,
                newly_informed: self.round_newly_informed,
                push_tx: self.round_push_tx,
                pull_tx: self.round_pull_tx,
                channels: self.round_channels,
            });
        }
        if let Some(p) = self.probe.as_mut() {
            p.on_round(&RoundCounters {
                round: self.round,
                informed: self.alive_informed,
                newly_informed: self.round_newly_informed,
                push_tx: self.round_push_tx,
                pull_tx: self.round_pull_tx,
                tx: self.round_push_tx + self.round_pull_tx,
                channels: self.round_channels,
                skipped_draws: self.round_skipped,
                alive: self.census.effective_alive(),
                suspended: self.census.suspended_count(),
            });
        }
        self.round_push_tx = 0;
        self.round_pull_tx = 0;
        self.round_channels = 0;
        self.round_skipped = 0;
        self.round_newly_informed = 0;
    }

    /// Consumes the run into the engine-shared [`RunReport`].
    pub fn into_report<T: Topology + ?Sized>(mut self, topo: &T, _config: SimConfig) -> RunReport {
        self.census.sync_from(topo);
        RunReport {
            node_count: topo.node_count(),
            alive_count: self.census.effective_alive(),
            informed_count: self.alive_informed,
            rounds: self.round,
            full_coverage_at: self.full_coverage_at,
            tx_at_coverage: self.tx_at_coverage,
            push_tx: self.push_tx,
            pull_tx: self.pull_tx,
            channels: self.channels,
            stop: self.stop.unwrap_or(StopReason::RoundCap),
            history: self.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{FloodPush, FloodPushPull, SilentProtocol};
    use crate::telemetry::PhaseTimings;
    use crate::{FaultEvent, FaultPlan, OutageSpec};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rrb_graph::gen;

    fn run_async<P: Protocol>(
        proto: &P,
        n: usize,
        clock: ClockSpec,
        latency: LatencySpec,
        seed: u64,
        cfg: SimConfig,
    ) -> (RunReport, f64, Option<f64>, u64) {
        let g = gen::complete(n);
        let mut sim = AsyncSimState::new(proto, n, NodeId::new(0), clock, latency);
        let mut rng = SmallRng::seed_from_u64(seed);
        sim.run_to_completion(&g, proto, cfg, &mut rng);
        let (now, cov, events) = (sim.now(), sim.coverage_time(), sim.events_processed());
        (sim.into_report(&g, cfg), now, cov, events)
    }

    #[test]
    fn equal_time_events_resolve_by_node_then_insertion() {
        // Tie-breaking spec: same instant orders by node id, equal
        // (time, node) by insertion sequence — so a node's Fire (inserted
        // when its previous tick ran, hence earlier) always precedes
        // same-instant deliveries to it.
        let mut heap: BinaryHeap<Reverse<PendingEvent>> = BinaryHeap::new();
        let mk = |time: f64, node: u32, tie_seq: u64, kind: EventKind| {
            Reverse(PendingEvent {
                key: EventKey { time_bits: time_to_bits(time), node, tie_seq },
                kind,
            })
        };
        let meta = RumorMeta::default();
        heap.push(mk(1.0, 3, 10, EventKind::Deliver { meta, pull: false }));
        heap.push(mk(1.0, 2, 11, EventKind::Fire));
        heap.push(mk(0.5, 9, 12, EventKind::Fire));
        heap.push(mk(1.0, 2, 4, EventKind::Fire));
        heap.push(mk(2.0, 0, 0, EventKind::Fire));
        let order: Vec<(u64, u32, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(e)| (e.key.time_bits, e.key.node, e.key.tie_seq))
            .collect();
        assert_eq!(
            order,
            vec![
                (time_to_bits(0.5), 9, 12),
                (time_to_bits(1.0), 2, 4),
                (time_to_bits(1.0), 2, 11),
                (time_to_bits(1.0), 3, 10),
                (time_to_bits(2.0), 0, 0),
            ]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Popping any batch of events yields exactly the lexicographic
        /// `(time_bits, node, tie_seq)` order, with insertion order as the
        /// final tiebreak (tie_seq is assigned in push order).
        #[test]
        fn heap_pops_in_key_order(
            batch in proptest::collection::vec((0u32..8, 0u32..6), 1..80),
        ) {
            let mut heap: BinaryHeap<Reverse<PendingEvent>> = BinaryHeap::new();
            let mut keys = Vec::new();
            for (i, &(t, node)) in batch.iter().enumerate() {
                // Coarse times (multiples of 0.25) force plenty of exact ties.
                let key = EventKey {
                    time_bits: time_to_bits(f64::from(t) * 0.25),
                    node,
                    tie_seq: i as u64,
                };
                keys.push(key);
                heap.push(Reverse(PendingEvent { key, kind: EventKind::Fire }));
            }
            keys.sort();
            let popped: Vec<EventKey> =
                std::iter::from_fn(|| heap.pop()).map(|Reverse(e)| e.key).collect();
            prop_assert_eq!(popped, keys);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let proto = FloodPushPull::new();
        let cfg = SimConfig::default().with_history().with_max_rounds(200);
        let clock = ClockSpec::Exponential { rate: 1.0 };
        let latency = LatencySpec::Uniform { min: 0.05, max: 0.4 };
        let a = run_async(&proto, 48, clock, latency, 11, cfg);
        let b = run_async(&proto, 48, clock, latency, 11, cfg);
        assert_eq!(a, b, "same seed must reproduce the run exactly");
        let c = run_async(&proto, 48, clock, latency, 12, cfg);
        assert_ne!(a.0, c.0, "different seeds should diverge");
        assert!(a.0.all_informed());
        assert!(a.2.is_some(), "coverage time recorded");
    }

    #[test]
    fn stragglers_and_fixed_latency_still_cover() {
        let proto = FloodPush::new();
        let cfg = SimConfig::default().with_max_rounds(400);
        let clock = ClockSpec::Stragglers { rate: 1.0, slow_fraction: 0.25, slow_factor: 6.0 };
        let (report, now, cov, events) =
            run_async(&proto, 64, clock, LatencySpec::Fixed { delay: 0.3 }, 5, cfg);
        assert!(report.all_informed());
        assert_eq!(report.stop, StopReason::FullCoverage);
        assert!(events > 0);
        let cov = cov.unwrap();
        assert!(cov <= now);
        assert_eq!(report.full_coverage_at.unwrap(), round_of(cov));
    }

    #[test]
    fn uniform_unit_clock_fires_on_integer_times() {
        // The calibration limit's schedule: with Fixed{1.0} clocks and zero
        // latency every event lands on an exact integer instant.
        let proto = FloodPush::new();
        let cfg = SimConfig::default().with_history().with_max_rounds(100);
        let (report, now, cov, _) =
            run_async(&proto, 32, ClockSpec::UNIT, LatencySpec::Zero, 2, cfg);
        assert!(report.all_informed());
        assert_eq!(now.fract(), 0.0, "final event off-grid at {now}");
        let cov = cov.unwrap();
        assert_eq!(cov.fract(), 0.0, "coverage off-grid at {cov}");
        assert_eq!(report.full_coverage_at.unwrap() as f64, cov);
        // K32 flood-push coverage takes ~log2(32)+ln(32) rounds.
        assert!(report.rounds < 40, "took {} rounds", report.rounds);
    }

    #[test]
    fn probe_is_byte_identical_and_counters_match_the_report() {
        let g = gen::complete(48);
        let proto = FloodPushPull::new();
        let cfg = SimConfig::default()
            .with_failures(crate::FailureModel::channels(0.1).with_crashes(0.005))
            .with_history()
            .with_max_rounds(300);
        let clock = ClockSpec::Exponential { rate: 1.0 };
        let latency = LatencySpec::Exponential { mean: 0.2 };
        let bare = {
            let mut rng = SmallRng::seed_from_u64(19);
            let mut sim = AsyncSimState::new(&proto, 48, NodeId::new(0), clock, latency);
            sim.run_to_completion(&g, &proto, cfg, &mut rng);
            sim.into_report(&g, cfg)
        };
        let mut sim = AsyncSimState::new(&proto, 48, NodeId::new(0), clock, latency);
        sim.set_probe(Some(Box::new(PhaseTimings::new())));
        let mut rng = SmallRng::seed_from_u64(19);
        sim.run_to_completion(&g, &proto, cfg, &mut rng);
        let probe = sim.take_probe().expect("probe still installed");
        let timings = probe.as_any().downcast_ref::<PhaseTimings>().expect("concrete probe");
        // Window records cover every transmission except a coverage-stopped
        // partial window's flush, which finish_round emits too — so totals
        // must agree exactly.
        assert_eq!(timings.push_tx(), bare.push_tx);
        assert_eq!(timings.pull_tx(), bare.pull_tx);
        assert_eq!(timings.channels(), bare.channels);
        assert_eq!(timings.rounds(), bare.rounds);
        assert_eq!(timings.last_round().informed, bare.informed_count);
        let probed = sim.into_report(&g, cfg);
        assert_eq!(bare, probed, "probe must not perturb the run");
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        let g = gen::complete(32);
        let proto = FloodPushPull::new();
        let cfg = SimConfig::default().with_history();
        let clock = ClockSpec::Exponential { rate: 1.0 };
        let bare = {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut sim = AsyncSimState::new(&proto, 32, NodeId::new(0), clock, LatencySpec::Zero);
            sim.run_to_completion(&g, &proto, cfg, &mut rng);
            sim.into_report(&g, cfg)
        };
        let planned = {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut sim = AsyncSimState::new(&proto, 32, NodeId::new(0), clock, LatencySpec::Zero);
            sim.set_faults(Some(FaultState::new(&FaultPlan::default(), 32, 99)));
            sim.run_to_completion(&g, &proto, cfg, &mut rng);
            sim.into_report(&g, cfg)
        };
        assert_eq!(bare, planned);
    }

    #[test]
    fn scripted_partition_stalls_coverage_until_heal_time() {
        // Time-windowed fault consumption: a partition scripted for rounds
        // [1, 12) holds for all events at times <= 11, so the rumour cannot
        // cross components before continuous time 11.
        let plan = FaultPlan {
            schedule: vec![FaultEvent::Partition { from: 1, until: 12, parts: 2 }],
            ..FaultPlan::default()
        };
        let g = gen::complete(32);
        let proto = FloodPushPull::new();
        let cfg = SimConfig::default().with_history().with_max_rounds(200);
        let mut sim = AsyncSimState::new(
            &proto,
            32,
            NodeId::new(0),
            ClockSpec::Exponential { rate: 1.0 },
            LatencySpec::Zero,
        );
        sim.set_faults(Some(FaultState::new(&plan, 32, 18)));
        let mut rng = SmallRng::seed_from_u64(17);
        sim.run_to_completion(&g, &proto, cfg, &mut rng);
        let cov = sim.coverage_time().expect("covers after the heal");
        assert!(cov > 11.0, "covered at time {cov}, inside the partition window");
        let report = sim.into_report(&g, cfg);
        assert!(report.all_informed());
        assert!(report.full_coverage_at.unwrap() >= 12);
        for rec in report.history.iter().filter(|r| r.round < 12) {
            assert!(rec.informed <= 16, "round {}: {} informed", rec.round, rec.informed);
        }
    }

    #[test]
    fn outages_suspend_but_clocks_keep_ticking() {
        // Transient outages freeze nodes without killing their timers:
        // the run must still reach full coverage once nodes resume.
        let plan = FaultPlan {
            outages: Some(OutageSpec::new(0.08, 2, 4)),
            ..FaultPlan::default()
        };
        let g = gen::complete(32);
        let proto = FloodPushPull::new();
        let cfg = SimConfig::default().with_max_rounds(400);
        let mut sim = AsyncSimState::new(
            &proto,
            32,
            NodeId::new(0),
            ClockSpec::Exponential { rate: 1.0 },
            LatencySpec::Uniform { min: 0.0, max: 0.2 },
        );
        sim.set_faults(Some(FaultState::new(&plan, 32, 7)));
        let mut rng = SmallRng::seed_from_u64(23);
        sim.run_to_completion(&g, &proto, cfg, &mut rng);
        let report = sim.into_report(&g, cfg);
        assert!(report.all_informed(), "stop: {:?}", report.stop);
    }

    #[test]
    fn silent_protocol_quiesces() {
        let proto = SilentProtocol;
        let cfg = SimConfig::until_quiescent();
        let (report, ..) =
            run_async(&proto, 16, ClockSpec::Exponential { rate: 1.0 }, LatencySpec::Zero, 1, cfg);
        assert_eq!(report.stop, StopReason::Quiescent);
        assert_eq!(report.informed_count, 1);
        assert_eq!(report.total_tx(), 0);
    }

    #[test]
    fn round_cap_stops_uncovered_runs() {
        let proto = FloodPush::new();
        let cfg = SimConfig::default().with_max_rounds(2);
        // Sparse clocks: 2 time units are nowhere near enough for K64.
        let (report, ..) = run_async(
            &proto,
            64,
            ClockSpec::Exponential { rate: 0.3 },
            LatencySpec::Exponential { mean: 1.0 },
            4,
            cfg,
        );
        assert_eq!(report.stop, StopReason::RoundCap);
        assert_eq!(report.rounds, 2);
        assert!(!report.all_informed());
    }
}
