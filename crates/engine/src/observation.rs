/// Metadata travelling with every rumour copy.
///
/// The phone call model allows the rumour to carry a small header; Karp et
/// al.'s median-counter algorithm needs the sender's age and counter, and
/// the paper's algorithm only needs the age (which equals the global round
/// under a synchronous clock, §3: "the age of the message is nothing else
/// than the current time step"). Address-obliviousness is preserved: the
/// header never names nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RumorMeta {
    /// Age of the rumour as counted by the sender (rounds since creation).
    pub age: u32,
    /// Protocol-specific counter (e.g. the median-counter phase of Karp et
    /// al.); zero when unused.
    pub counter: u32,
}

/// Everything a node observed during one round's exchanges, handed to
/// [`Protocol::update`](crate::Protocol::update).
#[derive(Debug, Clone, Default)]
pub struct Observation {
    /// Rumour copies that arrived via push (caller → this node).
    pub pushes: Vec<RumorMeta>,
    /// Rumour copies that arrived via pull (callee → this node, answering a
    /// channel this node opened).
    pub pulls: Vec<RumorMeta>,
}

impl Observation {
    /// Total rumour copies received this round.
    pub fn received(&self) -> usize {
        self.pushes.len() + self.pulls.len()
    }

    /// `true` if any copy arrived this round.
    pub fn heard_rumor(&self) -> bool {
        self.received() > 0
    }

    /// Iterator over all received metadata, pushes first.
    pub fn iter(&self) -> impl Iterator<Item = &RumorMeta> {
        self.pushes.iter().chain(self.pulls.iter())
    }

    /// Empties both receipt lists, keeping their capacity.
    pub fn clear(&mut self) {
        self.pushes.clear();
        self.pulls.clear();
    }
}

/// Flat, reusable per-round receipt store (the engine's hot-path
/// replacement for a `Vec<Observation>` with per-node heap `Vec`s).
///
/// # Layout
///
/// Receipts are appended to a flat `staging` log during the exchange phase
/// — `(receiver, meta, direction)` triples — while per-node counters track
/// how many pushes/pulls each receiver got. [`build`](Self::build) then
/// counting-sorts the log into CSR form: `offsets` indexes the dense list of
/// *touched* receivers (nodes with ≥ 1 receipt this round) into the flat
/// `meta` buffer, with each receiver's segment storing its push metas first
/// and pull metas second. Every buffer is reused across rounds; once
/// capacities reach the per-round high-water mark, steady-state rounds
/// perform no heap allocation.
///
/// Counter resets cost `O(touched)`, not `O(n)`: only receivers recorded in
/// `touched` are cleared at the start of the next round.
#[derive(Debug, Default)]
pub(crate) struct ObservationArena {
    /// Push receipts per node this round (reset lazily via `touched`).
    push_count: Vec<u32>,
    /// Pull receipts per node this round (reset lazily via `touched`).
    pull_count: Vec<u32>,
    /// Node → dense index into `touched`/`offsets` (`u32::MAX` = untouched).
    slot: Vec<u32>,
    /// Receivers with ≥ 1 receipt this round, in first-receipt order.
    touched: Vec<u32>,
    /// Append log of this round's receipts: (receiver, meta, is_push).
    staging: Vec<(u32, RumorMeta, bool)>,
    /// CSR offsets over `touched`; `offsets[i]..offsets[i+1]` bounds dense
    /// receiver `i`'s segment in `meta`.
    offsets: Vec<u32>,
    /// Flat metadata buffer: per segment, pushes first, then pulls.
    meta: Vec<RumorMeta>,
    /// Scatter cursors, two per touched receiver (next push / next pull).
    cursor_push: Vec<u32>,
    cursor_pull: Vec<u32>,
}

impl ObservationArena {
    pub(crate) fn new(node_count: usize) -> Self {
        ObservationArena {
            push_count: vec![0; node_count],
            pull_count: vec![0; node_count],
            slot: vec![u32::MAX; node_count],
            ..ObservationArena::default()
        }
    }

    /// Accommodates topology growth (churn).
    pub(crate) fn ensure_len(&mut self, node_count: usize) {
        if self.push_count.len() < node_count {
            self.push_count.resize(node_count, 0);
            self.pull_count.resize(node_count, 0);
            self.slot.resize(node_count, u32::MAX);
        }
    }

    /// Resets the arena for a new round in `O(touched)` time.
    // rrb-lint: hot
    pub(crate) fn begin_round(&mut self) {
        for &w in &self.touched {
            self.push_count[w as usize] = 0;
            self.pull_count[w as usize] = 0;
            self.slot[w as usize] = u32::MAX;
        }
        self.touched.clear();
        self.staging.clear();
        self.offsets.clear();
        self.meta.clear();
        self.cursor_push.clear();
        self.cursor_pull.clear();
    }

    #[inline]
    fn touch(&mut self, receiver: usize) {
        if self.push_count[receiver] == 0 && self.pull_count[receiver] == 0 {
            self.touched.push(receiver as u32);
        }
    }

    /// Records a rumour copy delivered to `receiver` via push.
    #[inline]
    // rrb-lint: hot
    pub(crate) fn record_push(&mut self, receiver: usize, meta: RumorMeta) {
        self.touch(receiver);
        self.push_count[receiver] += 1;
        self.staging.push((receiver as u32, meta, true));
    }

    /// Records a rumour copy delivered to `receiver` via pull.
    #[inline]
    // rrb-lint: hot
    pub(crate) fn record_pull(&mut self, receiver: usize, meta: RumorMeta) {
        self.touch(receiver);
        self.pull_count[receiver] += 1;
        self.staging.push((receiver as u32, meta, false));
    }

    /// Counting-sorts the staging log into CSR form. Call once per round,
    /// after the exchange phase.
    // rrb-lint: hot
    pub(crate) fn build(&mut self) {
        self.offsets.clear();
        self.offsets.push(0);
        self.cursor_push.clear();
        self.cursor_pull.clear();
        let mut total = 0u32;
        for (dense, &w) in self.touched.iter().enumerate() {
            self.slot[w as usize] = dense as u32;
            self.cursor_push.push(total);
            self.cursor_pull.push(total + self.push_count[w as usize]);
            total += self.push_count[w as usize] + self.pull_count[w as usize];
            self.offsets.push(total);
        }
        self.meta.clear();
        self.meta.resize(total as usize, RumorMeta::default());
        for &(w, meta, is_push) in &self.staging {
            let dense = self.slot[w as usize] as usize;
            let cursor =
                if is_push { &mut self.cursor_push[dense] } else { &mut self.cursor_pull[dense] };
            self.meta[*cursor as usize] = meta;
            *cursor += 1;
        }
    }

    /// Receivers with ≥ 1 receipt this round, in first-receipt order.
    #[inline]
    pub(crate) fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// `true` if `node` received at least one copy this round.
    #[inline]
    pub(crate) fn heard(&self, node: usize) -> bool {
        self.push_count[node] > 0 || self.pull_count[node] > 0
    }

    /// Push/pull metadata segments of the `dense`-th touched receiver
    /// (valid after [`build`](Self::build)).
    #[inline]
    pub(crate) fn segment(&self, dense: usize) -> (&[RumorMeta], &[RumorMeta]) {
        let begin = self.offsets[dense] as usize;
        let end = self.offsets[dense + 1] as usize;
        let w = self.touched[dense] as usize;
        let split = begin + self.push_count[w] as usize;
        (&self.meta[begin..split], &self.meta[split..end])
    }

    /// Heap capacities of the reusable buffers — exposed so tests can assert
    /// steady-state rounds allocate nothing.
    pub(crate) fn capacities(&self) -> [usize; 4] {
        [
            self.touched.capacity(),
            self.staging.capacity(),
            self.meta.capacity(),
            self.cursor_push.capacity() + self.cursor_pull.capacity() + self.offsets.capacity(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_groups_receipts_by_receiver() {
        let mut arena = ObservationArena::new(8);
        arena.begin_round();
        arena.record_push(3, RumorMeta { age: 1, counter: 0 });
        arena.record_pull(5, RumorMeta { age: 2, counter: 0 });
        arena.record_push(3, RumorMeta { age: 4, counter: 1 });
        arena.record_pull(3, RumorMeta { age: 9, counter: 0 });
        arena.build();
        assert_eq!(arena.touched(), &[3, 5]);
        assert!(arena.heard(3) && arena.heard(5) && !arena.heard(0));
        let (pushes, pulls) = arena.segment(0);
        assert_eq!(pushes.iter().map(|m| m.age).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(pulls.iter().map(|m| m.age).collect::<Vec<_>>(), vec![9]);
        let (pushes, pulls) = arena.segment(1);
        assert!(pushes.is_empty());
        assert_eq!(pulls.iter().map(|m| m.age).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn arena_reset_is_complete() {
        let mut arena = ObservationArena::new(4);
        arena.begin_round();
        arena.record_push(1, RumorMeta { age: 7, counter: 0 });
        arena.build();
        arena.begin_round();
        assert!(!arena.heard(1));
        assert!(arena.touched().is_empty());
        arena.record_pull(2, RumorMeta { age: 3, counter: 0 });
        arena.build();
        assert_eq!(arena.touched(), &[2]);
        let (pushes, pulls) = arena.segment(0);
        assert!(pushes.is_empty());
        assert_eq!(pulls.len(), 1);
    }

    #[test]
    fn arena_capacities_stabilise_under_identical_load() {
        let mut arena = ObservationArena::new(16);
        let run_round = |arena: &mut ObservationArena| {
            arena.begin_round();
            for w in 0..16 {
                arena.record_push(w, RumorMeta::default());
                arena.record_pull(15 - w, RumorMeta::default());
            }
            arena.build();
        };
        run_round(&mut arena);
        let warm = arena.capacities();
        for _ in 0..50 {
            run_round(&mut arena);
        }
        assert_eq!(arena.capacities(), warm, "arena buffers reallocated in steady state");
    }

    #[test]
    fn counts_and_iteration() {
        let mut obs = Observation::default();
        assert!(!obs.heard_rumor());
        obs.pushes.push(RumorMeta { age: 3, counter: 0 });
        obs.pulls.push(RumorMeta { age: 5, counter: 2 });
        assert_eq!(obs.received(), 2);
        assert!(obs.heard_rumor());
        let ages: Vec<u32> = obs.iter().map(|m| m.age).collect();
        assert_eq!(ages, vec![3, 5]);
        obs.clear();
        assert_eq!(obs.received(), 0);
    }
}
