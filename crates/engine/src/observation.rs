/// Metadata travelling with every rumour copy.
///
/// The phone call model allows the rumour to carry a small header; Karp et
/// al.'s median-counter algorithm needs the sender's age and counter, and
/// the paper's algorithm only needs the age (which equals the global round
/// under a synchronous clock, §3: "the age of the message is nothing else
/// than the current time step"). Address-obliviousness is preserved: the
/// header never names nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RumorMeta {
    /// Age of the rumour as counted by the sender (rounds since creation).
    pub age: u32,
    /// Protocol-specific counter (e.g. the median-counter phase of Karp et
    /// al.); zero when unused.
    pub counter: u32,
}

/// Everything a node observed during one round's exchanges, handed to
/// [`Protocol::update`](crate::Protocol::update).
#[derive(Debug, Clone, Default)]
pub struct Observation {
    /// Rumour copies that arrived via push (caller → this node).
    pub pushes: Vec<RumorMeta>,
    /// Rumour copies that arrived via pull (callee → this node, answering a
    /// channel this node opened).
    pub pulls: Vec<RumorMeta>,
}

impl Observation {
    /// Total rumour copies received this round.
    pub fn received(&self) -> usize {
        self.pushes.len() + self.pulls.len()
    }

    /// `true` if any copy arrived this round.
    pub fn heard_rumor(&self) -> bool {
        self.received() > 0
    }

    /// Iterator over all received metadata, pushes first.
    pub fn iter(&self) -> impl Iterator<Item = &RumorMeta> {
        self.pushes.iter().chain(self.pulls.iter())
    }

    pub(crate) fn clear(&mut self) {
        self.pushes.clear();
        self.pulls.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_iteration() {
        let mut obs = Observation::default();
        assert!(!obs.heard_rumor());
        obs.pushes.push(RumorMeta { age: 3, counter: 0 });
        obs.pulls.push(RumorMeta { age: 5, counter: 2 });
        assert_eq!(obs.received(), 2);
        assert!(obs.heard_rumor());
        let ages: Vec<u32> = obs.iter().map(|m| m.age).collect();
        assert_eq!(ages, vec![3, 5]);
        obs.clear();
        assert_eq!(obs.received(), 0);
    }
}
