//! Sharded execution of the round loop: contiguous node-slot partitions
//! that let a *single* run fan its Plan/Exchange/Update phases out over
//! the rayon pool while staying seed-for-seed identical at any shard and
//! thread count.
//!
//! # Determinism model
//!
//! Every *model* RNG draw — crash sampling, channel opening, per-call
//! transmission outcomes — stays on the main sequential stream in the
//! exact order the serial engine draws it (transmission outcomes are
//! pre-drawn serially into per-channel tables before the exchange fans
//! out). The phases that do fan out are RNG-free by construction, and
//! every cross-shard effect is buffered per (source shard → target
//! shard) and merged at the round barrier in ascending source-shard
//! order — reproducing the serial engine's global caller order exactly.
//! That is *why* a sharded run is byte-identical to the serial engine:
//! thread scheduling can reorder work, never observations.
//!
//! [`SHARD_STREAM`] and [`ShardLayout::stream_seed`] reserve the
//! lint-checked per-shard stream derivation for shard-local auxiliary
//! randomness (future work — e.g. shard-local tie-breaking or sampled
//! telemetry); the simulation model itself deliberately draws nothing
//! from it, and the derivation is recorded so artifacts can name the
//! stream a sharded run *would* use.

use crate::observation::{Observation, ObservationArena, RumorMeta};

/// Reserved RNG-stream constant for per-shard auxiliary randomness,
/// derived as `SHARD_STREAM ^ shard_id ^ seed` (see
/// [`ShardLayout::stream_seed`]). Participates in the rrb-lint
/// pairwise-distinct reserved-stream check alongside `TOPOLOGY_STREAM`
/// and `FAULT_STREAM`.
pub const SHARD_STREAM: u64 = 0x5AAD_57E1;

/// Contiguous partition of node slots `0..n` into `count` shards of
/// fixed `width` (the last shard absorbs any remainder — and, under
/// churn, any slot growth, so earlier shards' ranges never move once the
/// layout is built).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLayout {
    width: usize,
    count: usize,
}

impl ShardLayout {
    /// Builds a layout for `node_count` slots split into (at most)
    /// `shards` contiguous shards; clamped so every shard owns at least
    /// one slot.
    pub fn new(node_count: usize, shards: usize) -> Self {
        let count = shards.max(1).min(node_count.max(1));
        let width = node_count.div_ceil(count).max(1);
        ShardLayout { width, count }
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Shard owning node slot `i`.
    #[inline]
    pub fn shard_of(&self, i: usize) -> usize {
        (i / self.width).min(self.count - 1)
    }

    /// Slot range owned by shard `s` given the current slot count `n`
    /// (the last shard's range extends with slot growth).
    #[inline]
    pub fn range(&self, s: usize, n: usize) -> std::ops::Range<usize> {
        let start = (s * self.width).min(n);
        let end = if s + 1 == self.count { n } else { ((s + 1) * self.width).min(n) };
        start..end
    }

    /// The reserved per-shard RNG stream for run seed `seed`: the
    /// documented `SHARD_STREAM ^ shard ^ seed` derivation. Recorded as
    /// provenance; the simulation model draws nothing from it (see the
    /// module docs for the determinism contract).
    pub fn stream_seed(&self, shard: usize, seed: u64) -> u64 {
        SHARD_STREAM ^ (shard as u64) ^ seed
    }
}

/// Per-run scratch owned by the sharded step path: one observation arena
/// per shard (locally indexed), per-(source → target) push outboxes,
/// per-shard informed lists and newly-informed buffers, and the serial
/// transmission pre-draw tables. Reused across rounds.
#[derive(Debug)]
pub(crate) struct ShardRuntime {
    pub(crate) layout: ShardLayout,
    /// Per-shard arenas over *local* receiver indices (`i - range.start`).
    pub(crate) arenas: Vec<ObservationArena>,
    /// `outboxes[src][dst]`: push receipts `(global receiver, meta)` from
    /// shard `src` to receivers owned by shard `dst`, in the source
    /// shard's caller/channel order. Merged at the round barrier in
    /// ascending `src` order to reproduce the serial caller order.
    pub(crate) outboxes: Vec<Vec<Vec<(u32, RumorMeta)>>>,
    /// Per-shard informed slots (global ids, discovery order).
    pub(crate) informed_lists: Vec<Vec<u32>>,
    /// Per-shard newly-informed slots from the last update fan-out.
    pub(crate) newly: Vec<Vec<u32>>,
    /// Per-shard digest scratch observation.
    pub(crate) scratch: Vec<Observation>,
    /// Serial transmission pre-draw tables, indexed by channel.
    pub(crate) push_ok: Vec<bool>,
    pub(crate) pull_ok: Vec<bool>,
}

impl ShardRuntime {
    /// Builds the runtime for `shards` shards over `node_count` slots,
    /// partitioning `informed` (the global informed list, discovery
    /// order) into per-shard lists.
    pub(crate) fn new(node_count: usize, shards: usize, informed: &[u32]) -> Self {
        let layout = ShardLayout::new(node_count, shards);
        let count = layout.count();
        let mut rt = ShardRuntime {
            layout,
            arenas: (0..count)
                .map(|s| ObservationArena::new(layout.range(s, node_count).len()))
                .collect(),
            outboxes: vec![vec![Vec::new(); count]; count],
            informed_lists: vec![Vec::new(); count],
            newly: vec![Vec::new(); count],
            scratch: (0..count).map(|_| Observation::default()).collect(),
            push_ok: Vec::new(),
            pull_ok: Vec::new(),
        };
        for &i in informed {
            rt.informed_lists[layout.shard_of(i as usize)].push(i);
        }
        rt
    }

    /// Accommodates slot growth: only the last shard's range extends
    /// (fixed-width layout), so only its arena needs growing.
    pub(crate) fn ensure_len(&mut self, node_count: usize) {
        let last = self.layout.count() - 1;
        let len = self.layout.range(last, node_count).len();
        if let Some(arena) = self.arenas.get_mut(last) {
            arena.ensure_len(len);
        }
    }

    /// Drops node `i` from its shard's informed list (slot reuse after a
    /// rejoin). Linear in the shard list — churn events are rare next to
    /// round work.
    pub(crate) fn forget(&mut self, i: usize) {
        let list = &mut self.informed_lists[self.layout.shard_of(i)];
        if let Some(p) = list.iter().position(|&v| v as usize == i) {
            list.remove(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_partitions_every_slot_exactly_once() {
        for (n, s) in [(1usize, 1usize), (7, 2), (8, 4), (10, 3), (100, 7), (5, 9)] {
            let layout = ShardLayout::new(n, s);
            assert!(layout.count() >= 1 && layout.count() <= s.max(1));
            let mut covered = vec![0u32; n];
            for shard in 0..layout.count() {
                for i in layout.range(shard, n) {
                    assert_eq!(layout.shard_of(i), shard, "n={n} s={s} i={i}");
                    covered[i] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "n={n} s={s}: {covered:?}");
        }
    }

    #[test]
    fn layout_growth_extends_only_the_last_shard() {
        let layout = ShardLayout::new(8, 4);
        let before: Vec<_> = (0..3).map(|s| layout.range(s, 8)).collect();
        // Slots grow 8 -> 13: shards 0..=2 keep their ranges.
        let after: Vec<_> = (0..3).map(|s| layout.range(s, 13)).collect();
        assert_eq!(before, after);
        assert_eq!(layout.range(3, 8), 6..8);
        assert_eq!(layout.range(3, 13), 6..13);
        for i in 8..13 {
            assert_eq!(layout.shard_of(i), 3);
        }
    }

    #[test]
    fn stream_seed_is_the_documented_derivation() {
        let layout = ShardLayout::new(16, 4);
        for shard in 0..4 {
            for seed in [0u64, 1, 0xDEAD] {
                assert_eq!(layout.stream_seed(shard, seed), SHARD_STREAM ^ shard as u64 ^ seed);
            }
        }
        // Distinct shards on the same seed get distinct streams.
        assert_ne!(layout.stream_seed(0, 7), layout.stream_seed(1, 7));
    }

    #[test]
    fn runtime_partitions_informed_list_by_shard() {
        let rt = ShardRuntime::new(8, 2, &[5, 1, 6, 0]);
        assert_eq!(rt.informed_lists[0], vec![1, 0]);
        assert_eq!(rt.informed_lists[1], vec![5, 6]);
        assert_eq!(rt.arenas.len(), 2);
        assert_eq!(rt.outboxes.len(), 2);
        assert_eq!(rt.outboxes[0].len(), 2);
    }

    #[test]
    fn runtime_forget_removes_the_slot() {
        let mut rt = ShardRuntime::new(8, 2, &[5, 1, 6]);
        rt.forget(6);
        assert_eq!(rt.informed_lists[1], vec![5]);
        rt.forget(6); // absent: no-op
        assert_eq!(rt.informed_lists[1], vec![5]);
    }
}
