use rrb_graph::{Graph, NodeId};

/// Abstraction over the network the phone-call model runs on.
///
/// The engine only needs three things from a topology: how many node slots
/// exist, which of them are currently alive (dead slots model departed
/// peers), and each node's neighbour **stub list** — the multiset of
/// adjacent node ids, with self-loops appearing twice and parallel edges
/// repeatedly, exactly as the configuration model of the paper lays them
/// out. Channel targets are drawn as distinct *stubs*, matching the paper's
/// "selects four of its stubs i.u.r. without replacement".
///
/// Implemented by the static [`rrb_graph::Graph`] and by the mutable churn
/// overlay in `rrb-p2p`.
pub trait Topology {
    /// Number of node slots (alive or dead); valid ids are `0..node_count()`.
    fn node_count(&self) -> usize;

    /// Whether the slot currently hosts a live node.
    fn is_alive(&self, v: NodeId) -> bool;

    /// Stub list of `v`: adjacent node ids with multiplicity.
    fn stubs(&self, v: NodeId) -> &[NodeId];

    /// Number of currently alive nodes. Default implementation scans.
    fn alive_count(&self) -> usize {
        (0..self.node_count())
            .filter(|&i| self.is_alive(NodeId::new(i)))
            .count()
    }
}

impl Topology for Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn is_alive(&self, _v: NodeId) -> bool {
        true
    }

    fn stubs(&self, v: NodeId) -> &[NodeId] {
        self.neighbors(v)
    }

    fn alive_count(&self) -> usize {
        Graph::node_count(self)
    }
}

impl<T: Topology + ?Sized> Topology for &T {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn is_alive(&self, v: NodeId) -> bool {
        (**self).is_alive(v)
    }

    fn stubs(&self, v: NodeId) -> &[NodeId] {
        (**self).stubs(v)
    }

    fn alive_count(&self) -> usize {
        (**self).alive_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_graph::gen;

    #[test]
    fn graph_implements_topology() {
        let g = gen::cycle(5);
        assert_eq!(Topology::node_count(&g), 5);
        assert_eq!(g.alive_count(), 5);
        assert!(g.is_alive(NodeId::new(3)));
        assert_eq!(g.stubs(NodeId::new(0)).len(), 2);
    }

    #[test]
    fn reference_forwarding() {
        let g = gen::complete(4);
        let r: &Graph = &g;
        assert_eq!(Topology::node_count(&r), 4);
        assert_eq!(r.stubs(NodeId::new(1)).len(), 3);
        assert_eq!(r.alive_count(), 4);
    }
}
