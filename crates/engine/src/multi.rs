use rand::Rng;

use rrb_graph::NodeId;

use crate::choice::{sample_targets, ChoiceState};
use crate::{
    NodeView, Observation, Plan, Protocol, Round, SimConfig, Topology,
};

/// One rumour to be injected into a [`MultiRumorSimulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RumorInjection {
    /// Global round at which the rumour is created (its local time 0).
    pub birth: Round,
    /// Node that creates the rumour.
    pub origin: NodeId,
}

/// Per-rumour outcome of a multi-rumour run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RumorOutcome {
    /// Creation round.
    pub birth: Round,
    /// Creating node.
    pub origin: NodeId,
    /// Nodes informed of this rumour at the end.
    pub informed: usize,
    /// Global round at which every alive node knew this rumour, if reached.
    pub full_coverage_at: Option<Round>,
    /// Transmissions carrying this rumour (per-rumour accounting, the
    /// paper's convention).
    pub tx: u64,
}

impl RumorOutcome {
    /// Rounds from creation to full coverage, if coverage was reached.
    pub fn latency(&self) -> Option<Round> {
        self.full_coverage_at.map(|at| at - self.birth)
    }
}

/// Aggregate report of a multi-rumour run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiRumorReport {
    /// Rounds executed.
    pub rounds: Round,
    /// Per-rumour outcomes, in injection order.
    pub outcomes: Vec<RumorOutcome>,
    /// Channels opened over the whole run.
    pub channels: u64,
    /// Channel-direction messages actually sent: rumours travelling the same
    /// channel in the same direction in the same round are **combined** into
    /// one message (§1.2: "the nodes can combine messages"). Comparing this
    /// with [`total_rumor_tx`](Self::total_rumor_tx) exhibits the
    /// amortisation that motivates the phone call model.
    pub combined_messages: u64,
    /// Per-rumour, per-node delivery times in **rumour-local** rounds
    /// (`Some(0)` for the origin; global round = birth + local round).
    /// Indexed `deliveries[rumor][node]`. Applications such as the
    /// replicated database use this to replay update visibility.
    pub deliveries: Vec<Vec<Option<Round>>>,
}

impl MultiRumorReport {
    /// Sum of per-rumour transmissions (no combining).
    pub fn total_rumor_tx(&self) -> u64 {
        self.outcomes.iter().map(|o| o.tx).sum()
    }

    /// `true` if every rumour reached every alive node.
    pub fn all_delivered(&self) -> bool {
        self.outcomes.iter().all(|o| o.full_coverage_at.is_some())
    }

    /// Mean per-rumour transmissions.
    pub fn mean_tx_per_rumor(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.total_rumor_tx() as f64 / self.outcomes.len() as f64
        }
    }

    /// Combining ratio `combined_messages / total_rumor_tx` (≤ 1; smaller is
    /// better amortisation).
    pub fn combining_ratio(&self) -> f64 {
        let total = self.total_rumor_tx();
        if total == 0 {
            1.0
        } else {
            self.combined_messages as f64 / total as f64
        }
    }
}

/// Simulator for **many concurrent rumours** sharing one channel fabric.
///
/// Every node opens channels once per round (per the protocol's choice
/// policy); each active rumour then runs the protocol's plan/update logic
/// against those shared channels with its own *local* clock (`age = global
/// round − birth`). This reproduces the situation the phone call model is
/// designed for: "messages are generated with high frequency \[so\] the cost
/// of establishing communication amortises nicely over all transmissions"
/// (§1).
///
/// ```
/// use rand::{SeedableRng, rngs::SmallRng};
/// use rrb_engine::{protocols::FloodPushPull, MultiRumorSimulation, RumorInjection, SimConfig};
/// use rrb_graph::{gen, NodeId};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let g = gen::complete(64);
/// let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), SimConfig::default());
/// for i in 0..4 {
///     sim.inject(RumorInjection { birth: i, origin: NodeId::new(i as usize) });
/// }
/// let report = sim.run(&g, &mut rng);
/// assert!(report.all_delivered());
/// assert!(report.combining_ratio() <= 1.0);
/// ```
#[derive(Debug)]
pub struct MultiRumorSimulation<P: Protocol> {
    protocol: P,
    config: SimConfig,
    injections: Vec<RumorInjection>,
}

impl<P: Protocol> MultiRumorSimulation<P> {
    /// Creates an empty multi-rumour simulation.
    pub fn new(protocol: P, config: SimConfig) -> Self {
        MultiRumorSimulation { protocol, config, injections: Vec::new() }
    }

    /// Schedules a rumour injection.
    pub fn inject(&mut self, injection: RumorInjection) -> &mut Self {
        self.injections.push(injection);
        self
    }

    /// Number of scheduled rumours.
    pub fn rumor_count(&self) -> usize {
        self.injections.len()
    }

    /// Runs the simulation on a static topology until every rumour is
    /// delivered-or-quiescent, or the round cap is hit.
    pub fn run<T: Topology, R: Rng + ?Sized>(&self, topo: &T, rng: &mut R) -> MultiRumorReport {
        let n = topo.node_count();
        let alive = topo.alive_count();
        let nr = self.injections.len();
        let protocol = &self.protocol;
        let failures = self.config.failures;

        // Per-rumour node state.
        let mut states: Vec<Vec<P::State>> = Vec::with_capacity(nr);
        let mut informed_at: Vec<Vec<Option<Round>>> = Vec::with_capacity(nr);
        let mut informed_counts: Vec<usize> = Vec::with_capacity(nr);
        for inj in &self.injections {
            assert!(inj.origin.index() < n, "rumor origin out of range");
            let mut st: Vec<P::State> = (0..n).map(|_| protocol.init(false)).collect();
            st[inj.origin.index()] = protocol.init(true);
            states.push(st);
            let mut ia = vec![None; n];
            ia[inj.origin.index()] = Some(0);
            informed_at.push(ia);
            informed_counts.push(1);
        }
        let mut outcomes: Vec<RumorOutcome> = self
            .injections
            .iter()
            .map(|inj| RumorOutcome {
                birth: inj.birth,
                origin: inj.origin,
                informed: 1,
                full_coverage_at: None,
                tx: 0,
            })
            .collect();

        let mut choice = ChoiceState::new(n, protocol.choice_policy());
        let mut target_buf: Vec<NodeId> = Vec::new();
        let mut call_offsets: Vec<u32> = Vec::new();
        let mut call_targets: Vec<NodeId> = Vec::new();
        let mut call_ok: Vec<bool> = Vec::new();
        let mut push_used: Vec<bool> = Vec::new();
        let mut pull_used: Vec<bool> = Vec::new();
        let mut observations: Vec<Observation> =
            (0..n).map(|_| Observation::default()).collect();
        let mut plans: Vec<Plan> = vec![Plan::SILENT; n];

        let mut channels_total = 0u64;
        let mut combined_messages = 0u64;
        let last_birth = self.injections.iter().map(|i| i.birth).max().unwrap_or(0);
        let mut t: Round = 0;

        loop {
            // Stop checks.
            if t >= self.config.max_rounds {
                break;
            }
            if t >= last_birth {
                let all_settled = (0..nr).all(|r| {
                    let birth = self.injections[r].birth;
                    if t < birth {
                        return false;
                    }
                    let tl_next = t - birth + 1;
                    let covered = outcomes[r].full_coverage_at.is_some();
                    let quiescent = (0..n).all(|i| match informed_at[r][i] {
                        Some(at) => protocol.is_quiescent(&states[r][i], at, tl_next),
                        None => true,
                    });
                    (covered && self.config.stop_at_coverage) || quiescent
                });
                if all_settled && nr > 0 {
                    break;
                }
                if nr == 0 {
                    break;
                }
            }

            t += 1;

            // Shared channel fabric for this round.
            call_offsets.clear();
            call_targets.clear();
            call_ok.clear();
            call_offsets.push(0);
            for i in 0..n {
                let v = NodeId::new(i);
                if topo.is_alive(v) {
                    sample_targets(
                        topo,
                        v,
                        protocol.choice_policy(),
                        &mut choice,
                        rng,
                        &mut target_buf,
                    );
                    for &w in &target_buf {
                        let ok = topo.is_alive(w) && failures.channel_ok(rng);
                        call_targets.push(w);
                        call_ok.push(ok);
                    }
                }
                call_offsets.push(call_targets.len() as u32);
            }
            channels_total += call_targets.len() as u64;
            push_used.clear();
            push_used.resize(call_targets.len(), false);
            pull_used.clear();
            pull_used.resize(call_targets.len(), false);

            // Run each active rumour over the shared fabric.
            for r in 0..nr {
                let birth = self.injections[r].birth;
                if t <= birth {
                    continue; // rumour not yet created (created *at* birth,
                              // first communication round is birth+1)
                }
                let tl = t - birth;

                for i in 0..n {
                    plans[i] = Plan::SILENT;
                    if let Some(at) = informed_at[r][i] {
                        let v = NodeId::new(i);
                        if topo.is_alive(v) {
                            let view = NodeView {
                                informed_at: at,
                                is_creator: v == self.injections[r].origin,
                                state: &states[r][i],
                            };
                            plans[i] = protocol.plan(view, tl);
                        }
                    }
                }

                for obs in observations.iter_mut() {
                    obs.clear();
                }
                let mut tx = 0u64;
                for i in 0..n {
                    let begin = call_offsets[i] as usize;
                    let end = call_offsets[i + 1] as usize;
                    for c in begin..end {
                        if !call_ok[c] {
                            continue;
                        }
                        let w = call_targets[c];
                        if plans[i].push {
                            tx += 1;
                            push_used[c] = true;
                            if failures.transmission_ok(rng) {
                                observations[w.index()].pushes.push(plans[i].meta);
                            }
                        }
                        let callee_plan = plans[w.index()];
                        if callee_plan.pull_serve {
                            tx += 1;
                            pull_used[c] = true;
                            if failures.transmission_ok(rng) {
                                observations[i].pulls.push(callee_plan.meta);
                            }
                        }
                    }
                }
                outcomes[r].tx += tx;

                for i in 0..n {
                    let heard = observations[i].heard_rumor();
                    if heard && informed_at[r][i].is_none() {
                        informed_at[r][i] = Some(tl);
                        informed_counts[r] += 1;
                    }
                    if heard || informed_at[r][i].is_some() {
                        protocol.update(&mut states[r][i], informed_at[r][i], tl, &observations[i]);
                    }
                }

                if outcomes[r].full_coverage_at.is_none() {
                    let alive_informed = (0..n)
                        .filter(|&i| {
                            topo.is_alive(NodeId::new(i)) && informed_at[r][i].is_some()
                        })
                        .count();
                    if alive_informed == alive {
                        outcomes[r].full_coverage_at = Some(t);
                    }
                }
                outcomes[r].informed = informed_counts[r];
            }

            combined_messages += push_used.iter().filter(|&&b| b).count() as u64;
            combined_messages += pull_used.iter().filter(|&&b| b).count() as u64;
        }

        MultiRumorReport {
            rounds: t,
            outcomes,
            channels: channels_total,
            combined_messages,
            deliveries: informed_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::FloodPushPull;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rrb_graph::gen;

    #[test]
    fn single_rumor_matches_expectations() {
        let g = gen::complete(32);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), SimConfig::default());
        sim.inject(RumorInjection { birth: 0, origin: NodeId::new(0) });
        let report = sim.run(&g, &mut rng);
        assert!(report.all_delivered());
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].informed, 32);
        assert!(report.outcomes[0].latency().unwrap() < 30);
    }

    #[test]
    fn staggered_rumors_all_deliver() {
        let g = gen::complete(48);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), SimConfig::default());
        for i in 0..6u32 {
            sim.inject(RumorInjection { birth: i * 2, origin: NodeId::new(i as usize) });
        }
        assert_eq!(sim.rumor_count(), 6);
        let report = sim.run(&g, &mut rng);
        assert!(report.all_delivered());
        for o in &report.outcomes {
            assert!(o.full_coverage_at.unwrap() >= o.birth);
        }
    }

    #[test]
    fn combining_saves_messages_with_many_rumors() {
        let g = gen::complete(32);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), SimConfig::default());
        // Many rumours born together: their transmissions share channels.
        for i in 0..8 {
            sim.inject(RumorInjection { birth: 0, origin: NodeId::new(i) });
        }
        let report = sim.run(&g, &mut rng);
        assert!(report.all_delivered());
        assert!(
            report.combining_ratio() < 0.9,
            "expected combining to save messages, ratio {}",
            report.combining_ratio()
        );
        assert!(report.combined_messages <= report.total_rumor_tx());
    }

    #[test]
    fn deliveries_match_outcomes() {
        let g = gen::complete(24);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), SimConfig::default());
        sim.inject(RumorInjection { birth: 2, origin: NodeId::new(5) });
        let report = sim.run(&g, &mut rng);
        assert_eq!(report.deliveries.len(), 1);
        let d = &report.deliveries[0];
        assert_eq!(d[5], Some(0), "origin delivered at local round 0");
        let delivered = d.iter().filter(|x| x.is_some()).count();
        assert_eq!(delivered, report.outcomes[0].informed);
        // Latest local delivery + birth equals the global coverage round.
        let last_local = d.iter().flatten().max().unwrap();
        assert_eq!(
            report.outcomes[0].full_coverage_at.unwrap(),
            2 + last_local
        );
    }

    #[test]
    fn empty_simulation_is_trivial() {
        let g = gen::complete(8);
        let mut rng = SmallRng::seed_from_u64(4);
        let sim = MultiRumorSimulation::new(FloodPushPull::new(), SimConfig::default());
        let report = sim.run(&g, &mut rng);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.total_rumor_tx(), 0);
        assert!(report.all_delivered());
        assert_eq!(report.combining_ratio(), 1.0);
    }

    #[test]
    fn round_cap_respected() {
        let g = gen::cycle(256);
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = SimConfig::default().with_max_rounds(4);
        let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), cfg);
        sim.inject(RumorInjection { birth: 0, origin: NodeId::new(0) });
        let report = sim.run(&g, &mut rng);
        assert_eq!(report.rounds, 4);
        assert!(!report.all_delivered());
    }
}
