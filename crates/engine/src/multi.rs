use rand::Rng;

use rrb_graph::NodeId;

use crate::census::AliveCensus;
use crate::choice::ChoiceState;
use crate::fabric::{ChannelFabric, InformedIndex};
use crate::failure::FaultState;
use crate::observation::ObservationArena;
use crate::telemetry::{BoxedProbe, PhaseClock, RoundCounters, StepPhase};
use crate::{NodeView, Observation, Plan, Protocol, Round, SimConfig, Topology};

/// One rumour to be injected into a [`MultiRumorSimulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RumorInjection {
    /// Global round at which the rumour is created (its local time 0).
    pub birth: Round,
    /// Node that creates the rumour.
    pub origin: NodeId,
}

/// Per-rumour outcome of a multi-rumour run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RumorOutcome {
    /// Creation round.
    pub birth: Round,
    /// Creating node.
    pub origin: NodeId,
    /// Alive, uncrashed nodes informed of this rumour at the end — the
    /// same census [`full_coverage_at`](Self::full_coverage_at) compares
    /// against, so `informed == alive` iff coverage was reached. A rumour
    /// injected at a dead node (or whose origin crash-stops) contributes
    /// no phantom count.
    pub informed: usize,
    /// Global round at which every alive node knew this rumour, if reached.
    pub full_coverage_at: Option<Round>,
    /// Transmissions carrying this rumour (per-rumour accounting, the
    /// paper's convention).
    pub tx: u64,
}

impl RumorOutcome {
    /// Rounds from creation to full coverage, if coverage was reached.
    pub fn latency(&self) -> Option<Round> {
        self.full_coverage_at.map(|at| at - self.birth)
    }
}

/// Aggregate report of a multi-rumour run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiRumorReport {
    /// Rounds executed.
    pub rounds: Round,
    /// Per-rumour outcomes, in injection order.
    pub outcomes: Vec<RumorOutcome>,
    /// Channels opened over the whole run.
    pub channels: u64,
    /// Channel-direction messages actually sent: rumours travelling the same
    /// channel in the same direction in the same round are **combined** into
    /// one message (§1.2: "the nodes can combine messages"). Comparing this
    /// with [`total_rumor_tx`](Self::total_rumor_tx) exhibits the
    /// amortisation that motivates the phone call model.
    pub combined_messages: u64,
    /// Per-rumour, per-node delivery times in **rumour-local** rounds
    /// (`Some(0)` for the origin; global round = birth + local round).
    /// Indexed `deliveries[rumor][node]`. Applications such as the
    /// replicated database use this to replay update visibility. Note the
    /// trace records *receptions*: a dead or crashed origin still shows
    /// `Some(0)` here even though it never counts as alive-informed.
    pub deliveries: Vec<Vec<Option<Round>>>,
}

impl MultiRumorReport {
    /// Sum of per-rumour transmissions (no combining).
    pub fn total_rumor_tx(&self) -> u64 {
        self.outcomes.iter().map(|o| o.tx).sum()
    }

    /// `true` if every rumour reached every alive node.
    pub fn all_delivered(&self) -> bool {
        self.outcomes.iter().all(|o| o.full_coverage_at.is_some())
    }

    /// Mean per-rumour transmissions.
    pub fn mean_tx_per_rumor(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.total_rumor_tx() as f64 / self.outcomes.len() as f64
        }
    }

    /// Combining ratio `combined_messages / total_rumor_tx` (≤ 1; smaller is
    /// better amortisation).
    pub fn combining_ratio(&self) -> f64 {
        let total = self.total_rumor_tx();
        if total == 0 {
            1.0
        } else {
            self.combined_messages as f64 / total as f64
        }
    }
}

/// Mutable state of an in-flight **multi-rumour** broadcast — the
/// flat-arena port of the multi-rumour engine, mirroring
/// [`SimState`](crate::SimState) for the single-rumour engine.
///
/// # Round anatomy
///
/// Each [`step`](Self::step) runs shared phases once and per-rumour phases
/// over per-rumour *informed index lists*:
///
/// 1. **Activation** — rumours whose birth round has passed join the
///    active set (their origins enter the informed census).
/// 2. **Fault plan** (only with [`set_faults`](Self::set_faults)) — the
///    installed [`FaultState`] advances on its reserved stream and its
///    node events (outage recoveries, suspensions, scripted/adversarial
///    crashes) apply to the census, exactly as in the single engine.
///    Then **crash sampling** (skipped unless the model injects crashes).
/// 3. **Shared channel fabric** — every alive node's call targets are
///    sampled once into the CSR [`ChannelFabric`] and shared by all
///    rumours; the capability-gated push-only sampling skip applies to
///    callers informed of *no* active rumour. Pull-capable protocols also
///    get a reverse (incoming-channel) index, built once per round.
/// 4. **Plans** — each active rumour's informed nodes are planned into a
///    flat CSR plan store: `O(informed · rumours)`, not `O(n · rumours)`.
/// 5. **Direction census** — one `O(channels)` pass counts combined
///    messages and draws each channel-direction's transmission failure
///    **once**, so a combined message succeeds or fails atomically for
///    every rumour it carries (§1.2).
/// 6. **Exchanges + digest** per rumour, walking only the rumour's
///    informed senders (forward lists for pushes, reverse index for
///    pulls) and the observation arena's touched receivers.
/// 7. **Coverage** — per-rumour alive-informed counters are maintained
///    incrementally; no `O(n)` rescans.
///
/// All buffers are reused across rounds; once warm, a round performs no
/// heap allocation (asserted by the steady-state tests).
///
/// The one-rumour special case is **seed-for-seed identical** to the
/// single-rumour engine across all failure models — see `tests/parity.rs`.
///
/// # Dynamic membership
///
/// Aliveness is tracked by an [`AliveCensus`] snapshotted from the
/// topology at [`new`](Self::new) and maintained incrementally from then
/// on: crash-stop failures are sampled internally, and peer joins/leaves
/// arrive as deltas via [`apply_joins`](Self::apply_joins) /
/// [`apply_leaves`](Self::apply_leaves) between rounds (after overlay
/// rewiring), updating every rumour's coverage and retirement counters in
/// `O(events · rumours)` — no per-round rescans, no frozen `alive_count`.
/// Slot growth is also adopted automatically at the start of each round.
#[derive(Debug)]
pub struct MultiSimState<P: Protocol> {
    // Run setup (injection order preserved).
    births: Vec<Round>,
    origins: Vec<NodeId>,
    n: usize,
    /// Alive/crashed membership view (see [`AliveCensus`]), the coverage
    /// denominator's source of truth.
    census: AliveCensus,
    /// Per-rumour protocol state, **sparse**: `states[r]` holds one entry
    /// per *informed* node, parallel to `informed[r]`'s index list
    /// (position `p` is the state of `informed[r].list()[p]`). Uninformed
    /// nodes have no materialised state — `Protocol::init` is pure, so
    /// the dense `init(false)` entries the old layout stored were
    /// reconstructible and never read. At n = 10^6+ with few informed
    /// nodes this is the difference between `O(n · rumours)` and
    /// `O(informed)` resident state.
    states: Vec<Vec<P::State>>,
    informed: Vec<InformedIndex>,
    alive_informed: Vec<usize>,
    full_coverage_at: Vec<Option<Round>>,
    tx: Vec<u64>,
    // Shared node state.
    /// Number of active, unsettled rumours each node is informed of —
    /// drives the push-only sampling skip on the shared fabric.
    informed_of: Vec<u32>,
    /// Settled rumours (covered under `stop_at_coverage`, past their local
    /// deadline, or quiescent) are *retired*: frozen and skipped by every
    /// per-round pass, so the round loop costs `O(Σ informed)` over the
    /// unsettled rumours only. Retirement is sticky — quiescence is
    /// monotone and a retired rumour's state never changes again.
    retired: Vec<bool>,
    retired_count: usize,
    /// Rumours whose activation step has run (they joined the informed_of
    /// census, unless already retired by then).
    active: Vec<bool>,
    // Rumour activation, in birth order.
    activation_order: Vec<u32>,
    next_activation: usize,
    // Totals.
    round: Round,
    channels: u64,
    combined: u64,
    /// Installed adversarial fault plan's runtime state, if any (see
    /// [`FaultState`]); applied at the top of every round.
    faults: Option<FaultState>,
    /// Installed telemetry probe, if any (see [`crate::telemetry`]); with
    /// `None` — the default — rounds take no clock reads and no extra
    /// work of any kind.
    probe: Option<BoxedProbe>,
    // Scratch buffers reused across rounds (allocation-free once warm).
    choice: ChoiceState,
    fabric: ChannelFabric,
    arena: ObservationArena,
    scratch_obs: Observation,
    empty_obs: Observation,
    /// CSR plan store: rumour `r`'s plans for its informed-list snapshot
    /// live at `plan_start[r] .. plan_start[r] + snap_len[r]`.
    plan_store: Vec<Plan>,
    plan_start: Vec<u32>,
    snap_len: Vec<u32>,
    /// Per node: does any active rumour push from / pull-serve at it this
    /// round (lazily reset via `plan_touched`).
    push_any: Vec<bool>,
    pull_any: Vec<bool>,
    plan_touched: Vec<u32>,
    /// Per channel-direction transmission outcomes, drawn once per round
    /// (§1.2: co-riding rumours share the draw). Empty when the model has
    /// no transmission failures.
    push_ok: Vec<bool>,
    pull_ok: Vec<bool>,
}

impl<P: Protocol> MultiSimState<P> {
    /// Initialises a multi-rumour broadcast over `topo` (which fixes the
    /// node count and the alive census for the whole run).
    ///
    /// # Panics
    ///
    /// Panics if any injection's origin is out of range.
    pub fn new<T: Topology + ?Sized>(
        protocol: &P,
        topo: &T,
        injections: &[RumorInjection],
    ) -> Self {
        let n = topo.node_count();
        let nr = injections.len();
        let mut census = AliveCensus::new();
        census.sync_from(topo);
        let mut states = Vec::with_capacity(nr);
        let mut informed = Vec::with_capacity(nr);
        let mut alive_informed = Vec::with_capacity(nr);
        for inj in injections {
            assert!(inj.origin.index() < n, "rumor origin out of range");
            // Sparse: only the origin (informed-list position 0) has state.
            states.push(vec![protocol.init(true)]);
            let mut ix = InformedIndex::new(n);
            ix.mark(inj.origin.index(), 0);
            informed.push(ix);
            alive_informed.push(usize::from(census.is_effective(inj.origin.index())));
        }
        let mut activation_order: Vec<u32> = (0..nr as u32).collect();
        activation_order.sort_by_key(|&r| injections[r as usize].birth);
        MultiSimState {
            births: injections.iter().map(|i| i.birth).collect(),
            origins: injections.iter().map(|i| i.origin).collect(),
            n,
            census,
            states,
            informed,
            alive_informed,
            full_coverage_at: vec![None; nr],
            tx: vec![0; nr],
            informed_of: vec![0; n],
            retired: vec![false; nr],
            retired_count: 0,
            active: vec![false; nr],
            activation_order,
            next_activation: 0,
            round: 0,
            channels: 0,
            combined: 0,
            faults: None,
            probe: None,
            choice: ChoiceState::new(n, protocol.choice_policy()),
            fabric: ChannelFabric::new(n),
            arena: ObservationArena::new(n),
            scratch_obs: Observation::default(),
            empty_obs: Observation::default(),
            plan_store: Vec::new(),
            plan_start: vec![0; nr],
            snap_len: vec![0; nr],
            push_any: vec![false; n],
            pull_any: vec![false; n],
            plan_touched: Vec::new(),
            push_ok: Vec::new(),
            pull_ok: Vec::new(),
        }
    }

    /// Current round (0 before the first step).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Installs (or clears) an adversarial fault plan's runtime state.
    /// With `None` — the default — every code path and RNG draw is
    /// byte-identical to the pre-fault engine. Seed the [`FaultState`]
    /// from a reserved stream, not the main RNG (see its docs).
    pub fn set_faults(&mut self, faults: Option<FaultState>) {
        self.faults = faults;
    }

    /// The installed fault state, if any.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// Installs (or clears) a telemetry probe (see [`crate::telemetry`]).
    /// Probes observe per-phase wall-clock and per-round counters; they
    /// never touch the RNG, so an instrumented run's random streams — and
    /// therefore its [`MultiRumorReport`] — are byte-identical to a bare
    /// run.
    pub fn set_probe(&mut self, probe: Option<BoxedProbe>) {
        self.probe = probe;
    }

    /// Removes and returns the installed probe, if any (the usual way to
    /// read accumulated telemetry back after a run).
    pub fn take_probe(&mut self) -> Option<BoxedProbe> {
        self.probe.take()
    }

    /// Number of scheduled rumours.
    pub fn rumor_count(&self) -> usize {
        self.births.len()
    }

    /// Alive, uncrashed nodes currently informed of rumour `r`.
    pub fn informed_count(&self, r: usize) -> usize {
        self.alive_informed[r]
    }

    /// Number of crash-stop events so far.
    pub fn crashed_count(&self) -> usize {
        self.census.crashed_count()
    }

    /// Alive nodes that have not crash-stopped — the coverage denominator,
    /// `O(1)` from the census counters.
    pub fn effective_alive(&self) -> usize {
        self.census.effective_alive()
    }

    /// Accommodates topology growth (new node slots join uninformed, with
    /// no knowledge of any rumour — and, with the sparse state layout, no
    /// materialised protocol state either).
    pub fn ensure_len(&mut self, _protocol: &P, node_count: usize) {
        if self.n >= node_count {
            return;
        }
        for ix in &mut self.informed {
            ix.ensure_len(node_count);
        }
        self.informed_of.resize(node_count, 0);
        self.push_any.resize(node_count, false);
        self.pull_any.resize(node_count, false);
        self.arena.ensure_len(node_count);
        self.choice.ensure_len(node_count);
        self.n = node_count;
    }

    /// Applies membership **join** deltas: each listed slot (growing the
    /// engine as needed) now hosts a live, uninformed peer. Call between
    /// rounds after overlay mutation.
    pub fn apply_joins(&mut self, protocol: &P, joined: &[NodeId]) {
        for &v in joined {
            self.ensure_len(protocol, v.index() + 1);
            // Fresh overlay slots are never informed; a custom topology
            // reviving a slot counts only if effective (it can still be
            // crash-stopped).
            if self.census.apply_join(v.index()) && self.census.is_effective(v.index()) {
                for r in 0..self.births.len() {
                    if self.informed[r].is_informed(v.index()) {
                        self.alive_informed[r] += 1;
                    }
                }
            }
        }
    }

    /// Applies membership **leave** deltas: each listed slot no longer
    /// hosts a live peer. Every rumour's alive-informed counter (retired
    /// rumours included, mirroring the crash path) and the shared coverage
    /// denominator update in `O(1)` per event per rumour.
    pub fn apply_leaves(&mut self, left: &[NodeId]) {
        for &v in left {
            if self.census.apply_leave(v.index()) {
                for r in 0..self.births.len() {
                    if self.informed[r].is_informed(v.index()) {
                        self.alive_informed[r] -= 1;
                    }
                }
            }
        }
    }

    /// Applies membership **rejoin** deltas: each listed slot is recycled
    /// for a *fresh* peer (an overlay with slot reuse enabled). The slot's
    /// engine-side state — informedness, sparse protocol state, choice
    /// bookkeeping, crash/suspension flags — belonged to the departed peer
    /// and is reset; the census bumps the slot's generation tag.
    pub fn apply_rejoins(&mut self, protocol: &P, rejoined: &[NodeId]) {
        for &v in rejoined {
            let i = v.index();
            self.ensure_len(protocol, i + 1);
            let was_effective = self.census.is_effective(i);
            for r in 0..self.births.len() {
                if let Some(p) = self.informed[r].unmark(i) {
                    // Keep the sparse state vector aligned with the index
                    // list's swap_remove.
                    self.states[r].swap_remove(p);
                    if was_effective {
                        self.alive_informed[r] -= 1;
                    }
                    if self.active[r] && !self.retired[r] {
                        self.informed_of[i] -= 1;
                    }
                }
            }
            self.choice.reset_slot(i);
            self.census.apply_rejoin(i);
        }
    }

    /// Heap capacities of every per-round scratch buffer. Once the engine
    /// is warm these must stay constant round over round — the arena
    /// port's "steady-state rounds allocate nothing" guarantee, asserted
    /// by tests.
    #[doc(hidden)]
    pub fn scratch_capacities(&self) -> Vec<usize> {
        let mut caps = self.fabric.capacities().to_vec();
        caps.extend([
            self.plan_store.capacity(),
            self.plan_touched.capacity(),
            self.push_ok.capacity(),
            self.pull_ok.capacity(),
            self.scratch_obs.pushes.capacity(),
            self.scratch_obs.pulls.capacity(),
            self.informed.iter().map(InformedIndex::capacity).sum(),
        ]);
        caps.extend(self.arena.capacities());
        caps
    }

    /// Marks newly settled rumours as retired. A rumour settles — exactly
    /// the per-rumour stopping conditions of the single-rumour engine —
    /// when it is covered (under `stop_at_coverage`), its local clock has
    /// reached the protocol's designed deadline (the single engine's
    /// RoundCap), or every informed node is quiescent. Retired rumours are
    /// frozen: no plans, no transmissions, no updates, and they leave the
    /// informed_of census that gates the push-only sampling skip.
    fn settle(&mut self, protocol: &P, config: SimConfig) {
        let t = self.round;
        let effective_alive = self.effective_alive();
        for r in 0..self.births.len() {
            if self.retired[r] {
                continue;
            }
            let birth = self.births[r];
            if t < birth {
                continue; // not yet created
            }
            let tl = t - birth;
            let covered = self.full_coverage_at[r].is_some()
                || self.alive_informed[r] == effective_alive;
            let deadline_hit =
                protocol.deadline().is_some_and(|deadline| tl >= deadline);
            // Quiescence over the informed index list only — uninformed
            // nodes are vacuously quiescent, crashed nodes permanently so.
            let tl_next = tl + 1;
            let settled = (covered && config.stop_at_coverage)
                || deadline_hit
                || self.informed[r].list().iter().enumerate().all(|(idx, &i)| {
                    self.census.is_crashed(i as usize)
                        || protocol.is_quiescent(
                            &self.states[r][idx],
                            self.informed[r].at_pos(idx),
                            tl_next,
                        )
                });
            if settled {
                self.retired[r] = true;
                self.retired_count += 1;
                // A rumour can settle before its activation step (e.g. it
                // quiesces at creation); only active rumours ever joined
                // the informed_of census.
                if self.active[r] {
                    for &i in self.informed[r].list() {
                        self.informed_of[i as usize] -= 1;
                    }
                }
            }
        }
    }

    /// Whether the run has reached a stopping condition: the round cap, or
    /// every rumour settled. Also performs the settlement pass, retiring
    /// rumours that can make no further progress.
    pub fn finished(&mut self, protocol: &P, config: SimConfig) -> bool {
        let nr = self.births.len();
        if nr == 0 {
            return true;
        }
        if self.round >= config.max_rounds {
            return true;
        }
        self.settle(protocol, config);
        self.retired_count == nr
    }

    /// Executes one synchronous round over the shared channel fabric.
    // rrb-lint: hot
    pub fn step<T: Topology + ?Sized, R: Rng + ?Sized>(
        &mut self,
        topo: &T,
        protocol: &P,
        config: SimConfig,
        rng: &mut R,
    ) {
        let n = topo.node_count();
        self.ensure_len(protocol, n);
        self.census.adopt_new_slots(topo);
        let policy = protocol.choice_policy();
        let uses_pull = protocol.capabilities().uses_pull;
        self.round += 1;
        let t = self.round;
        // Phase attribution clock: armed only when a probe is installed,
        // so the bare engine reads no clocks (see `telemetry.rs`).
        let mut clock = PhaseClock::armed(self.probe.is_some());

        // Phase 1: activation — rumours created before this round join the
        // active set; their origins (the only nodes informed so far) enter
        // the informed_of census that gates the sampling skip.
        while let Some(&r) = self.activation_order.get(self.next_activation) {
            let r = r as usize;
            if self.births[r] >= t {
                break;
            }
            self.next_activation += 1;
            if self.retired[r] {
                continue; // settled before its first communication round
            }
            self.active[r] = true;
            for &i in self.informed[r].list() {
                self.informed_of[i as usize] += 1;
            }
        }
        let active_end = self.next_activation;
        clock.lap(&mut self.probe, StepPhase::Coverage);

        // Phase 2a: fault plan (mirrors the single engine). The plan
        // advances on its reserved stream, then its node events apply to
        // the census before stochastic crash sampling. The state is taken
        // out of `self` so the adversary's closures can borrow the
        // informed indices and census.
        let mut fault_state = self.faults.take();
        let failures = match fault_state.as_mut() {
            Some(fs) => {
                let informed = &self.informed;
                let births = &self.births;
                let census = &self.census;
                fs.begin_round(
                    t,
                    n,
                    |i| topo.stubs(NodeId::new(i)).len(),
                    // Earliest *global* reception over all rumours (the
                    // informed indices run on rumour-local clocks).
                    |i| {
                        informed
                            .iter()
                            .zip(births)
                            .filter_map(|(ix, &b)| ix.at(i).map(|at| at + b))
                            .min()
                    },
                    |i| census.is_effective(i),
                );
                for &i in fs.resume_now() {
                    self.census.set_suspended(i as usize, false);
                }
                for &i in fs.suspend_now() {
                    self.census.set_suspended(i as usize, true);
                }
                for &i in fs.crash_now() {
                    let i = i as usize;
                    if self.census.is_alive(i) && !self.census.is_crashed(i) {
                        self.census.mark_crashed(i);
                        for r in 0..self.births.len() {
                            if self.informed[r].is_informed(i) {
                                self.alive_informed[r] -= 1;
                            }
                        }
                    }
                }
                fs.effective(config.failures)
            }
            None => config.failures,
        };

        // Phase 2: crash-stop sampling, identical draw order to the
        // single-rumour engine; a crashing node leaves every rumour's
        // alive-informed census.
        if failures.node_crash > 0.0 {
            for i in 0..n {
                if !self.census.is_crashed(i)
                    && self.census.is_alive(i)
                    && failures.crashes_now(rng)
                {
                    self.census.mark_crashed(i);
                    for r in 0..self.births.len() {
                        if self.informed[r].is_informed(i) {
                            self.alive_informed[r] -= 1;
                        }
                    }
                }
            }
        }
        clock.lap(&mut self.probe, StepPhase::Faults);

        // Phase 3: the shared channel fabric. The push-only sampling skip
        // applies to callers informed of no active rumour: their channels
        // can carry nothing in either direction, so they are counted but
        // never sampled.
        let skip_fanout = (!uses_pull && policy.is_memoryless()).then(|| policy.fanout());
        let informed_of = &self.informed_of;
        let fault_view = fault_state.as_ref().and_then(FaultState::channel_view);
        let channels_this_round = self.fabric.sample(
            topo,
            policy,
            &mut self.choice,
            failures,
            self.census.blocked_slice(),
            fault_view.as_ref(),
            skip_fanout,
            |i| informed_of[i] == 0,
            rng,
        );
        self.channels += channels_this_round;
        if uses_pull {
            self.fabric.build_incoming(n);
        }
        clock.lap(&mut self.probe, StepPhase::Fabric);

        // Phase 4: plans. Each active rumour's informed snapshot is planned
        // into the flat CSR plan store; per-node any-rumour transmit flags
        // feed the direction census below.
        for &i in &self.plan_touched {
            self.push_any[i as usize] = false;
            self.pull_any[i as usize] = false;
        }
        self.plan_touched.clear();
        self.plan_store.clear();
        for ai in 0..active_end {
            let r = self.activation_order[ai] as usize;
            if self.retired[r] {
                continue;
            }
            let tl = t - self.births[r];
            self.plan_start[r] = self.plan_store.len() as u32;
            let snap = self.informed[r].len();
            self.snap_len[r] = snap as u32;
            for idx in 0..snap {
                let i = self.informed[r].list()[idx] as usize;
                let v = NodeId::new(i);
                let plan = if self.census.is_participating(i) {
                    let view = NodeView {
                        informed_at: self.informed[r].at_pos(idx),
                        is_creator: v == self.origins[r],
                        state: &self.states[r][idx],
                    };
                    protocol.plan(view, tl)
                } else {
                    Plan::SILENT
                };
                self.plan_store.push(plan);
                if (plan.push && !self.push_any[i]) || (plan.pull_serve && !self.pull_any[i])
                {
                    self.plan_touched.push(i as u32);
                }
                self.push_any[i] |= plan.push;
                self.pull_any[i] |= plan.pull_serve;
            }
        }
        clock.lap(&mut self.probe, StepPhase::Plan);

        // Phase 5: direction census — one O(channels) pass, shared by all
        // rumours, that (a) counts combined messages (a channel-direction
        // used by any number of co-riding rumours is one message) and
        // (b) draws each used direction's transmission failure exactly
        // once, so a combined message succeeds or fails atomically (§1.2).
        // Draw order matches the single-rumour engine's exchange loop.
        let draw_tx = failures.transmission_failure > 0.0;
        if draw_tx {
            self.push_ok.clear();
            self.push_ok.resize(self.fabric.len(), true);
            self.pull_ok.clear();
            self.pull_ok.resize(self.fabric.len(), true);
        }
        if !self.plan_touched.is_empty() {
            for i in 0..n {
                let range = self.fabric.out_range(i);
                if range.is_empty() {
                    continue;
                }
                let push_i = self.push_any[i];
                for c in range {
                    if !self.fabric.usable(c) {
                        continue;
                    }
                    if push_i {
                        self.combined += 1;
                        if draw_tx {
                            self.push_ok[c] = failures.transmission_ok(rng);
                        }
                    }
                    if self.pull_any[self.fabric.target(c).index()] {
                        self.combined += 1;
                        if draw_tx {
                            self.pull_ok[c] = failures.transmission_ok(rng);
                        }
                    }
                }
            }
        }

        // Phase 6: per-rumour exchanges and digest over the shared fabric.
        // Pushes walk the rumour's informed senders' forward channel lists;
        // pulls walk its servers' incoming channels via the reverse index —
        // O(informed · fanout + receipts) per rumour, never O(n).
        let effective_alive = self.effective_alive();
        let mut round_tx = 0u64;
        let mut newly_informed = 0usize;
        for ai in 0..active_end {
            let r = self.activation_order[ai] as usize;
            if self.retired[r] {
                continue;
            }
            let tl = t - self.births[r];
            let pstart = self.plan_start[r] as usize;
            let snap = self.snap_len[r] as usize;
            self.arena.begin_round();
            let mut tx = 0u64;
            for idx in 0..snap {
                let plan = self.plan_store[pstart + idx];
                if !plan.push {
                    continue;
                }
                let i = self.informed[r].list()[idx] as usize;
                for c in self.fabric.out_range(i) {
                    if !self.fabric.usable(c) {
                        continue;
                    }
                    tx += 1;
                    if !draw_tx || self.push_ok[c] {
                        self.arena.record_push(self.fabric.target(c).index(), plan.meta);
                    }
                }
            }
            if uses_pull {
                for idx in 0..snap {
                    let plan = self.plan_store[pstart + idx];
                    if !plan.pull_serve {
                        continue;
                    }
                    let w = self.informed[r].list()[idx] as usize;
                    for &(c, caller) in self.fabric.incoming(w) {
                        if !self.fabric.usable(c as usize) {
                            continue;
                        }
                        tx += 1;
                        if !draw_tx || self.pull_ok[c as usize] {
                            self.arena.record_pull(caller as usize, plan.meta);
                        }
                    }
                }
            }
            self.tx[r] += tx;
            round_tx += tx;
            // The direction census above (run once, before the first
            // rumour) rides in the first Exchange lap; later laps cover
            // only their rumour's sends.
            clock.lap(&mut self.probe, StepPhase::Exchange);

            // Digest: receivers via the arena's touched list, then
            // informed-but-silent nodes via the snapshot.
            self.arena.build();
            for dense in 0..self.arena.touched().len() {
                let i = self.arena.touched()[dense] as usize;
                let (pushes, pulls) = self.arena.segment(dense);
                self.scratch_obs.pushes.clear();
                self.scratch_obs.pulls.clear();
                self.scratch_obs.pushes.extend_from_slice(pushes);
                self.scratch_obs.pulls.extend_from_slice(pulls);
                if self.informed[r].mark(i, tl) {
                    newly_informed += 1;
                    self.informed_of[i] += 1;
                    if self.census.is_effective(i) {
                        self.alive_informed[r] += 1;
                    }
                    // Sparse state layout: materialise the newcomer's
                    // state at its informed-list position (the tail).
                    self.states[r].push(protocol.init(false));
                }
                let pos = self.informed[r].pos(i).expect("touched receiver is informed");
                protocol.update(
                    &mut self.states[r][pos],
                    Some(self.informed[r].at_pos(pos)),
                    tl,
                    &self.scratch_obs,
                );
            }
            for idx in 0..snap {
                let i = self.informed[r].list()[idx] as usize;
                if self.arena.heard(i) {
                    continue; // already digested above
                }
                if self.census.is_suspended(i) {
                    continue; // offline: protocol state is frozen until recovery
                }
                protocol.update(
                    &mut self.states[r][idx],
                    Some(self.informed[r].at_pos(idx)),
                    tl,
                    &self.empty_obs,
                );
            }

            // Coverage bookkeeping: incremental counters, no O(n) rescan.
            if self.full_coverage_at[r].is_none()
                && self.alive_informed[r] == effective_alive
            {
                self.full_coverage_at[r] = Some(t);
            }
            clock.lap(&mut self.probe, StepPhase::Update);
        }

        // Hand the fault state back for the next round.
        self.faults = fault_state;

        if let Some(p) = self.probe.as_deref_mut() {
            p.on_round(&RoundCounters {
                round: t,
                informed: self.alive_informed.iter().sum(),
                newly_informed,
                push_tx: 0,
                pull_tx: 0,
                tx: round_tx,
                channels: channels_this_round,
                skipped_draws: self.fabric.skipped_last(),
                alive: self.census.effective_alive(),
                suspended: self.census.suspended_count(),
            });
        }
    }

    /// Runs rounds until [`finished`](Self::finished) fires.
    pub fn run_to_completion<T: Topology + ?Sized, R: Rng + ?Sized>(
        &mut self,
        topo: &T,
        protocol: &P,
        config: SimConfig,
        rng: &mut R,
    ) {
        while !self.finished(protocol, config) {
            self.step(topo, protocol, config, rng);
        }
    }

    /// Finalises the run into a [`MultiRumorReport`].
    pub fn into_report(self) -> MultiRumorReport {
        let outcomes = (0..self.births.len())
            .map(|r| RumorOutcome {
                birth: self.births[r],
                origin: self.origins[r],
                informed: self.alive_informed[r],
                full_coverage_at: self.full_coverage_at[r],
                tx: self.tx[r],
            })
            .collect();
        MultiRumorReport {
            rounds: self.round,
            outcomes,
            channels: self.channels,
            combined_messages: self.combined,
            deliveries: self
                .informed
                .into_iter()
                .map(InformedIndex::into_informed_at)
                .collect(),
        }
    }
}

/// Simulator for **many concurrent rumours** sharing one channel fabric.
///
/// Every node opens channels once per round (per the protocol's choice
/// policy); each active rumour then runs the protocol's plan/update logic
/// against those shared channels with its own *local* clock (`age = global
/// round − birth`). This reproduces the situation the phone call model is
/// designed for: "messages are generated with high frequency \[so\] the cost
/// of establishing communication amortises nicely over all transmissions"
/// (§1). Rumours riding the same channel-direction in the same round are
/// combined into one message that succeeds or fails **atomically** under
/// transmission failures (§1.2).
///
/// The heavy lifting lives in [`MultiSimState`]; this type is the
/// convenience runner mirroring [`Simulation`](crate::Simulation).
///
/// ```
/// use rand::{SeedableRng, rngs::SmallRng};
/// use rrb_engine::{protocols::FloodPushPull, MultiRumorSimulation, RumorInjection, SimConfig};
/// use rrb_graph::{gen, NodeId};
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let g = gen::complete(64);
/// let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), SimConfig::default());
/// for i in 0..4 {
///     sim.inject(RumorInjection { birth: i, origin: NodeId::new(i as usize) });
/// }
/// let report = sim.run(&g, &mut rng);
/// assert!(report.all_delivered());
/// assert!(report.combining_ratio() <= 1.0);
/// ```
#[derive(Debug)]
pub struct MultiRumorSimulation<P: Protocol> {
    protocol: P,
    config: SimConfig,
    injections: Vec<RumorInjection>,
}

impl<P: Protocol> MultiRumorSimulation<P> {
    /// Creates an empty multi-rumour simulation.
    pub fn new(protocol: P, config: SimConfig) -> Self {
        MultiRumorSimulation { protocol, config, injections: Vec::new() }
    }

    /// Schedules a rumour injection.
    pub fn inject(&mut self, injection: RumorInjection) -> &mut Self {
        self.injections.push(injection);
        self
    }

    /// Number of scheduled rumours.
    pub fn rumor_count(&self) -> usize {
        self.injections.len()
    }

    /// Runs the simulation on a static topology until every rumour is
    /// delivered-or-quiescent, or the round cap is hit.
    pub fn run<T: Topology, R: Rng + ?Sized>(&self, topo: &T, rng: &mut R) -> MultiRumorReport {
        let mut state = MultiSimState::new(&self.protocol, topo, &self.injections);
        state.run_to_completion(topo, &self.protocol, self.config, rng);
        state.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{FloodPush, FloodPushPull};
    use crate::FailureModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rrb_graph::{gen, Graph};

    #[test]
    fn single_rumor_matches_expectations() {
        let g = gen::complete(32);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), SimConfig::default());
        sim.inject(RumorInjection { birth: 0, origin: NodeId::new(0) });
        let report = sim.run(&g, &mut rng);
        assert!(report.all_delivered());
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].informed, 32);
        assert!(report.outcomes[0].latency().unwrap() < 30);
    }

    #[test]
    fn staggered_rumors_all_deliver() {
        let g = gen::complete(48);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), SimConfig::default());
        for i in 0..6u32 {
            sim.inject(RumorInjection { birth: i * 2, origin: NodeId::new(i as usize) });
        }
        assert_eq!(sim.rumor_count(), 6);
        let report = sim.run(&g, &mut rng);
        assert!(report.all_delivered());
        for o in &report.outcomes {
            assert!(o.full_coverage_at.unwrap() >= o.birth);
        }
    }

    #[test]
    fn combining_saves_messages_with_many_rumors() {
        let g = gen::complete(32);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), SimConfig::default());
        // Many rumours born together: their transmissions share channels.
        for i in 0..8 {
            sim.inject(RumorInjection { birth: 0, origin: NodeId::new(i) });
        }
        let report = sim.run(&g, &mut rng);
        assert!(report.all_delivered());
        assert!(
            report.combining_ratio() < 0.9,
            "expected combining to save messages, ratio {}",
            report.combining_ratio()
        );
        assert!(report.combined_messages <= report.total_rumor_tx());
    }

    #[test]
    fn deliveries_match_outcomes() {
        let g = gen::complete(24);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), SimConfig::default());
        sim.inject(RumorInjection { birth: 2, origin: NodeId::new(5) });
        let report = sim.run(&g, &mut rng);
        assert_eq!(report.deliveries.len(), 1);
        let d = &report.deliveries[0];
        assert_eq!(d[5], Some(0), "origin delivered at local round 0");
        let delivered = d.iter().filter(|x| x.is_some()).count();
        assert_eq!(delivered, report.outcomes[0].informed);
        // Latest local delivery + birth equals the global coverage round.
        let last_local = d.iter().flatten().max().unwrap();
        assert_eq!(
            report.outcomes[0].full_coverage_at.unwrap(),
            2 + last_local
        );
    }

    #[test]
    fn empty_simulation_is_trivial() {
        let g = gen::complete(8);
        let mut rng = SmallRng::seed_from_u64(4);
        let sim = MultiRumorSimulation::new(FloodPushPull::new(), SimConfig::default());
        let report = sim.run(&g, &mut rng);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.total_rumor_tx(), 0);
        assert!(report.all_delivered());
        assert_eq!(report.combining_ratio(), 1.0);
    }

    #[test]
    fn round_cap_respected() {
        let g = gen::cycle(256);
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = SimConfig::default().with_max_rounds(4);
        let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), cfg);
        sim.inject(RumorInjection { birth: 0, origin: NodeId::new(0) });
        let report = sim.run(&g, &mut rng);
        assert_eq!(report.rounds, 4);
        assert!(!report.all_delivered());
    }

    #[test]
    fn co_riding_rumors_share_transmission_fate() {
        // §1.2 regression: rumours combined into one message must succeed
        // or fail together. Rumours with identical birth and origin ride
        // exactly the same channel-directions, so under transmission
        // failures their delivery traces must stay identical — the old
        // per-rumour failure draws made them diverge almost surely.
        let g = gen::complete(24);
        let cfg = SimConfig::default()
            .with_failures(FailureModel::transmissions(0.4))
            .with_max_rounds(300);
        for seed in 0..4 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), cfg);
            for _ in 0..5 {
                sim.inject(RumorInjection { birth: 1, origin: NodeId::new(7) });
            }
            let report = sim.run(&g, &mut rng);
            for r in 1..5 {
                assert_eq!(
                    report.deliveries[r], report.deliveries[0],
                    "co-riding rumour {r} diverged from rumour 0 (seed {seed})"
                );
                assert_eq!(report.outcomes[r].tx, report.outcomes[0].tx);
            }
        }
    }

    #[test]
    fn combining_invariants_hold_under_failures() {
        // combining_ratio <= 1 and combined_messages <= total_rumor_tx
        // must hold under channel failures, transmission failures, and
        // both at once: a channel-direction only counts as a combined
        // message when at least one rumour transmits on it.
        let g = gen::complete(24);
        let models = [
            FailureModel::channels(0.3),
            FailureModel::transmissions(0.3),
            FailureModel { channel_failure: 0.2, transmission_failure: 0.2, node_crash: 0.0 },
        ];
        for (mi, failures) in models.into_iter().enumerate() {
            for seed in 0..5 {
                let cfg = SimConfig::default().with_failures(failures).with_max_rounds(400);
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), cfg);
                for i in 0..6u32 {
                    sim.inject(RumorInjection {
                        birth: i,
                        origin: NodeId::new(3 * i as usize),
                    });
                }
                let report = sim.run(&g, &mut rng);
                assert!(report.total_rumor_tx() > 0, "model {mi} seed {seed} sent nothing");
                assert!(
                    report.combined_messages <= report.total_rumor_tx(),
                    "model {mi} seed {seed}: combined > total"
                );
                assert!(
                    report.combining_ratio() <= 1.0,
                    "model {mi} seed {seed}: ratio {}",
                    report.combining_ratio()
                );
            }
        }
    }

    #[test]
    fn deterministic_with_failures() {
        let g = gen::complete(32);
        let cfg = SimConfig::default()
            .with_failures(FailureModel {
                channel_failure: 0.2,
                transmission_failure: 0.2,
                node_crash: 0.01,
            })
            .with_max_rounds(500);
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), cfg);
            for i in 0..4u32 {
                sim.inject(RumorInjection { birth: i * 2, origin: NodeId::new(i as usize) });
            }
            sim.run(&g, &mut rng)
        };
        assert_eq!(run(13), run(13));
    }

    /// Static topology with a fixed set of dead slots.
    struct PartiallyDead {
        g: Graph,
        dead: Vec<usize>,
    }

    impl Topology for PartiallyDead {
        fn node_count(&self) -> usize {
            rrb_graph::Graph::node_count(&self.g)
        }
        fn is_alive(&self, v: NodeId) -> bool {
            !self.dead.contains(&v.index())
        }
        fn stubs(&self, v: NodeId) -> &[NodeId] {
            self.g.neighbors(v)
        }
    }

    #[test]
    fn dead_origin_counts_no_alive_informed() {
        // Regression: a rumour injected at a dead node used to report
        // `informed == 1` while never counting towards coverage. The
        // alive-informed census must say 0 — nobody alive knows it.
        let topo = PartiallyDead { g: gen::complete(16), dead: vec![3] };
        let cfg = SimConfig::default().with_max_rounds(20);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut sim = MultiRumorSimulation::new(FloodPushPull::new(), cfg);
        sim.inject(RumorInjection { birth: 0, origin: NodeId::new(3) });
        sim.inject(RumorInjection { birth: 0, origin: NodeId::new(0) });
        let report = sim.run(&topo, &mut rng);
        assert_eq!(report.outcomes[0].informed, 0, "dead origin informs nobody");
        assert_eq!(report.outcomes[0].full_coverage_at, None);
        // The delivery trace still records the (dead) origin's creation.
        assert_eq!(report.deliveries[0][3], Some(0));
        // The co-injected healthy rumour covers all 15 alive nodes.
        assert_eq!(report.outcomes[1].informed, 15);
        assert!(report.outcomes[1].full_coverage_at.is_some());
    }

    #[test]
    fn crashed_nodes_leave_the_informed_census() {
        // Under a crash model `informed` must track alive-informed nodes
        // exactly: coverage implies informed == alive - crashed, and a run
        // whose origin crashed early can end with informed == 0.
        let g = gen::complete(48);
        let proto = FloodPushPull::new();
        let cfg = SimConfig::default()
            .with_failures(FailureModel::crashes(0.02))
            .with_max_rounds(200);
        let mut exercised = 0;
        for seed in 0..8 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut st = MultiSimState::new(
                &proto,
                &g,
                &[RumorInjection { birth: 0, origin: NodeId::new(0) }],
            );
            st.run_to_completion(&g, &proto, cfg, &mut rng);
            let crashed = st.crashed_count();
            let report = st.into_report();
            let o = &report.outcomes[0];
            assert!(
                o.informed <= 48 - crashed,
                "informed {} exceeds the {} alive uncrashed nodes (seed {seed})",
                o.informed,
                48 - crashed
            );
            if o.full_coverage_at.is_some() && crashed > 0 {
                exercised += 1;
            }
            if o.full_coverage_at.is_some() {
                assert_eq!(o.informed, 48 - crashed, "coverage census broke (seed {seed})");
            }
        }
        assert!(exercised >= 4, "only {exercised}/8 seeds crashed someone and covered");
    }

    #[test]
    fn steady_state_rounds_do_not_allocate() {
        // The multi-rumour mirror of the single-engine arena guarantee:
        // after a warm-up, every per-round scratch buffer keeps its
        // capacity. Run past full coverage (stop_at_coverage = false) so
        // late rounds carry the maximum plan/receipt load.
        let g = gen::complete(64);
        let proto = FloodPushPull::new();
        let cfg = SimConfig::until_quiescent().with_max_rounds(100);
        let mut rng = SmallRng::seed_from_u64(33);
        let injections: Vec<RumorInjection> = (0..4)
            .map(|i| RumorInjection { birth: i, origin: NodeId::new(i as usize * 7) })
            .collect();
        let mut sim = MultiSimState::new(&proto, &g, &injections);
        for _ in 0..30 {
            sim.step(&g, &proto, cfg, &mut rng);
        }
        let warm = sim.scratch_capacities();
        for _ in 0..40 {
            sim.step(&g, &proto, cfg, &mut rng);
        }
        assert_eq!(
            sim.scratch_capacities(),
            warm,
            "per-round scratch buffers reallocated after warm-up"
        );
    }

    #[test]
    fn probe_is_byte_identical_and_counters_match_the_report() {
        // Multi-engine telemetry guarantee: instrumented runs are
        // byte-identical to bare runs, and the probe's totals agree with
        // the report (per-rumour tx summed, channels, rounds).
        use crate::telemetry::PhaseTimings;
        let g = gen::complete(48);
        let proto = FloodPushPull::new();
        let cfg = SimConfig::default()
            .with_failures(FailureModel::transmissions(0.2))
            .with_max_rounds(300);
        let injections: Vec<RumorInjection> = (0..5)
            .map(|i| RumorInjection { birth: i, origin: NodeId::new(i as usize * 3) })
            .collect();
        let bare = {
            let mut rng = SmallRng::seed_from_u64(29);
            let mut sim = MultiSimState::new(&proto, &g, &injections);
            sim.run_to_completion(&g, &proto, cfg, &mut rng);
            sim.into_report()
        };
        let mut sim = MultiSimState::new(&proto, &g, &injections);
        sim.set_probe(Some(Box::new(PhaseTimings::new())));
        let mut rng = SmallRng::seed_from_u64(29);
        sim.run_to_completion(&g, &proto, cfg, &mut rng);
        let probe = sim.take_probe().expect("probe still installed");
        let timings =
            probe.as_any().downcast_ref::<PhaseTimings>().expect("concrete probe");
        let probed = sim.into_report();
        assert_eq!(bare, probed, "probe must not perturb the run");
        assert_eq!(timings.rounds() as u32, probed.rounds);
        assert_eq!(timings.tx(), probed.total_rumor_tx());
        assert_eq!(timings.channels(), probed.channels);
        assert_eq!(
            timings.last_round().informed,
            probed.outcomes.iter().map(|o| o.informed).sum::<usize>()
        );
    }

    #[test]
    fn probed_steady_state_rounds_do_not_allocate() {
        use crate::telemetry::PhaseTimings;
        let g = gen::complete(64);
        let proto = FloodPushPull::new();
        let cfg = SimConfig::until_quiescent().with_max_rounds(100);
        let mut rng = SmallRng::seed_from_u64(33);
        let injections: Vec<RumorInjection> = (0..4)
            .map(|i| RumorInjection { birth: i, origin: NodeId::new(i as usize * 7) })
            .collect();
        let mut sim = MultiSimState::new(&proto, &g, &injections);
        sim.set_probe(Some(Box::new(PhaseTimings::new())));
        for _ in 0..30 {
            sim.step(&g, &proto, cfg, &mut rng);
        }
        let warm = sim.scratch_capacities();
        for _ in 0..40 {
            sim.step(&g, &proto, cfg, &mut rng);
        }
        assert_eq!(
            sim.scratch_capacities(),
            warm,
            "per-round scratch buffers reallocated after warm-up (probe on)"
        );
    }

    #[test]
    fn push_only_protocols_deliver_on_the_shared_fabric() {
        // The capability-gated sampling skip must engage on the multi
        // fabric (callers informed of no active rumour) without losing
        // deliveries.
        let g = gen::complete(64);
        let cfg = SimConfig::default().with_max_rounds(200);
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sim = MultiRumorSimulation::new(FloodPush::new(), cfg);
            for i in 0..3u32 {
                sim.inject(RumorInjection { birth: i * 3, origin: NodeId::new(i as usize) });
            }
            sim.run(&g, &mut rng)
        };
        let report = run(9);
        assert!(report.all_delivered());
        // Channel accounting includes the skipped callers' channels: one
        // per alive node per round under the STANDARD policy.
        assert_eq!(report.channels, 64 * report.rounds as u64);
        assert_eq!(report, run(9), "skip path must stay deterministic");
    }
}
