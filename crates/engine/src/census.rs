//! The **alive census**: the engines' incrementally-maintained view of
//! which node slots currently host live, uncrashed peers.
//!
//! The paper's setting is a network whose membership "changes dynamically
//! due to clients joining or leaving" (§1). Before this module existed the
//! engines assumed a frozen alive population (the multi-rumour engine
//! sampled `alive_count` once at construction; the single-rumour engine
//! re-derived it from the topology with `O(n)` scans under crashes), which
//! made churn a bespoke side-channel. [`AliveCensus`] turns aliveness into
//! first-class engine state:
//!
//! * it is **seeded** from the topology once (`sync_from` — `O(n)`, at
//!   construction or on the first round);
//! * afterwards every membership change arrives as a **delta**: crash-stop
//!   failures via [`mark_crashed`](AliveCensus::mark_crashed), peer joins
//!   and departures via [`apply_join`](AliveCensus::apply_join) /
//!   [`apply_leave`](AliveCensus::apply_leave) (surfaced on the engines as
//!   `SimState::apply_joins` / `apply_leaves` and their `MultiSimState`
//!   twins);
//! * the coverage denominator [`effective_alive`](AliveCensus::effective_alive)
//!   (alive ∧ uncrashed) and the crash count are maintained as counters, so
//!   per-round coverage checks are `O(1)` — no rescans, no frozen
//!   assumptions.
//!
//! **Contract**: once an engine's census is synced, aliveness flips on
//! *existing* slots must be reported through the delta hooks. Slot *growth*
//! (the churn overlay never recycles ids, so joins always create fresh
//! slots) is also adopted automatically at the start of each round via
//! [`adopt_new_slots`](AliveCensus::adopt_new_slots), which reads only the
//! new slots' aliveness from the topology.

use rrb_graph::NodeId;

use crate::Topology;

/// Incrementally-maintained membership view shared by both engines: which
/// slots are alive, which crashed, and the derived counters the coverage
/// and retirement logic runs on. See the module docs for the sync/delta
/// contract.
#[derive(Debug, Clone, Default)]
pub struct AliveCensus {
    /// Per-slot aliveness (mirrors the topology under the delta contract).
    alive: Vec<bool>,
    /// Per-slot crash-stop flags ([`crate::FailureModel::node_crash`]):
    /// crashed nodes are permanently silent, deaf, and outside the
    /// coverage denominator.
    crashed: Vec<bool>,
    /// Per-slot **transient-outage** flags (the fault layer's
    /// [`OutageSpec`](crate::OutageSpec)): suspended nodes are silent and
    /// deaf like crashed ones, but recover with state intact and **stay in
    /// the coverage denominator** — coverage stalls while they are down.
    suspended: Vec<bool>,
    /// `crashed[i] || suspended[i]`, maintained on every flip — the single
    /// per-slot mask the channel fabric filters callers and callees by.
    blocked: Vec<bool>,
    /// Number of alive slots.
    alive_count: usize,
    /// Number of currently-suspended slots (telemetry counter).
    suspended_count: usize,
    /// Number of slots that are both alive and crashed (a crashed node
    /// that later *leaves* drops out of this counter too).
    crashed_alive: usize,
    /// Total crash-stop events so far (never decremented; departures do
    /// not un-crash history).
    crashed_total: usize,
    /// Per-slot **generation tag**, bumped by
    /// [`apply_rejoin`](Self::apply_rejoin) each time a slot is recycled
    /// for a fresh peer identity. Engine state keyed by slot index can
    /// compare generations to detect reuse.
    generation: Vec<u32>,
    /// `true` once `sync_from` has run.
    synced: bool,
}

impl AliveCensus {
    /// Empty, unsynced census.
    pub fn new() -> Self {
        AliveCensus::default()
    }

    /// Whether the full snapshot has been taken yet.
    #[inline]
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    /// Number of tracked slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// `true` when no slots are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Takes the full `O(n)` aliveness snapshot from `topo`. Crash flags
    /// are preserved (a re-sync never un-crashes anyone); counters are
    /// rebuilt.
    pub fn sync_from<T: Topology + ?Sized>(&mut self, topo: &T) {
        let n = topo.node_count();
        self.alive.clear();
        self.alive.extend((0..n).map(|i| topo.is_alive(NodeId::new(i))));
        self.crashed.resize(n, false);
        self.suspended.resize(n, false);
        self.blocked.clear();
        self.blocked.extend((0..n).map(|i| self.crashed[i] || self.suspended[i]));
        self.alive_count = self.alive.iter().filter(|&&a| a).count();
        self.crashed_alive = (0..n).filter(|&i| self.alive[i] && self.crashed[i]).count();
        self.suspended_count = self.suspended.iter().filter(|&&s| s).count();
        self.generation.resize(n, 0);
        self.synced = true;
    }

    /// Adopts slots the topology gained since the last sync (joins create
    /// fresh slots), reading only the *new* slots' aliveness — `O(growth)`.
    /// Slots already tracked are never re-read; their changes must arrive
    /// as deltas.
    pub fn adopt_new_slots<T: Topology + ?Sized>(&mut self, topo: &T) {
        let n = topo.node_count();
        for i in self.alive.len()..n {
            let alive = topo.is_alive(NodeId::new(i));
            self.alive.push(alive);
            self.crashed.push(false);
            self.suspended.push(false);
            self.blocked.push(false);
            self.generation.push(0);
            self.alive_count += usize::from(alive);
        }
    }

    /// Whether slot `i` is alive (out-of-range slots are dead).
    #[inline]
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive.get(i).copied().unwrap_or(false)
    }

    /// Whether slot `i` has crash-stopped.
    #[inline]
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed.get(i).copied().unwrap_or(false)
    }

    /// Alive and uncrashed — the nodes the coverage numerator counts.
    /// (A *suspended* node is still effective: it stays in the coverage
    /// accounting while transiently offline.)
    #[inline]
    pub fn is_effective(&self, i: usize) -> bool {
        self.is_alive(i) && !self.is_crashed(i)
    }

    /// Whether slot `i` is in a transient outage (suspended).
    #[inline]
    pub fn is_suspended(&self, i: usize) -> bool {
        self.suspended.get(i).copied().unwrap_or(false)
    }

    /// Alive, uncrashed **and not suspended** — the nodes that can open
    /// channels, transmit and receive this round.
    #[inline]
    pub fn is_participating(&self, i: usize) -> bool {
        self.is_effective(i) && !self.is_suspended(i)
    }

    /// Flips slot `i`'s transient-outage flag (state is otherwise kept —
    /// suspension is not a crash). Out-of-range slots are ignored.
    pub fn set_suspended(&mut self, i: usize, suspended: bool) {
        if i >= self.suspended.len() {
            return;
        }
        if self.suspended[i] != suspended {
            if suspended {
                self.suspended_count += 1;
            } else {
                self.suspended_count -= 1;
            }
        }
        self.suspended[i] = suspended;
        self.blocked[i] = self.crashed[i] || suspended;
    }

    /// Per-slot crash flags (the fabric's caller/callee filter).
    #[inline]
    pub fn crashed_slice(&self) -> &[bool] {
        &self.crashed
    }

    /// Per-slot crashed-or-suspended flags — the mask of nodes that cannot
    /// participate in this round's communication (identical to
    /// [`crashed_slice`](Self::crashed_slice) when nothing is suspended).
    #[inline]
    pub fn blocked_slice(&self) -> &[bool] {
        &self.blocked
    }

    /// Number of alive slots.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Total crash-stop events so far (includes crashed nodes that later
    /// departed — the historical count the reports surface).
    #[inline]
    pub fn crashed_count(&self) -> usize {
        self.crashed_total
    }

    /// Alive, uncrashed nodes — the coverage denominator, maintained as a
    /// counter (`O(1)` per query).
    #[inline]
    pub fn effective_alive(&self) -> usize {
        self.alive_count - self.crashed_alive
    }

    /// Number of currently-suspended slots (`O(1)` from a counter).
    #[inline]
    pub fn suspended_count(&self) -> usize {
        self.suspended_count
    }

    /// Marks slot `i` crash-stopped; returns `true` iff it newly crashed.
    pub fn mark_crashed(&mut self, i: usize) -> bool {
        if self.crashed[i] {
            return false;
        }
        self.crashed[i] = true;
        self.blocked[i] = true;
        self.crashed_total += 1;
        if self.alive[i] {
            self.crashed_alive += 1;
        }
        true
    }

    /// Applies a join delta: slot `i` (growing the census if needed) now
    /// hosts a live, uncrashed peer. Returns `true` iff the slot was newly
    /// brought alive.
    pub fn apply_join(&mut self, i: usize) -> bool {
        if i >= self.alive.len() {
            self.alive.resize(i + 1, false);
            self.crashed.resize(i + 1, false);
            self.suspended.resize(i + 1, false);
            self.blocked.resize(i + 1, false);
            self.generation.resize(i + 1, 0);
        }
        if self.alive[i] {
            return false;
        }
        self.alive[i] = true;
        self.alive_count += 1;
        if self.crashed[i] {
            self.crashed_alive += 1;
        }
        true
    }

    /// Applies a leave delta: slot `i` no longer hosts a live peer.
    /// Returns `true` iff the slot was alive **and uncrashed** before — the
    /// case where the departure shrinks the coverage denominator (crashed
    /// slots already left it).
    pub fn apply_leave(&mut self, i: usize) -> bool {
        if i >= self.alive.len() || !self.alive[i] {
            return false;
        }
        self.alive[i] = false;
        self.alive_count -= 1;
        if self.crashed[i] {
            self.crashed_alive -= 1;
            false
        } else {
            true
        }
    }

    /// Applies a **rejoin** delta: slot `i` is recycled for a *fresh* peer
    /// identity (an overlay with slot reuse enabled handed a departed
    /// peer's slot to a newcomer). The slot's crash and suspension flags
    /// are cleared — they belonged to the departed peer, not the newcomer
    /// — while [`crashed_count`](Self::crashed_count) keeps the historical
    /// event, and the slot's generation tag is bumped. Returns `true` iff
    /// the slot was newly brought alive.
    pub fn apply_rejoin(&mut self, i: usize) -> bool {
        if i >= self.alive.len() {
            let grew = self.apply_join(i);
            self.generation[i] = self.generation[i].wrapping_add(1);
            return grew;
        }
        if self.crashed[i] {
            if self.alive[i] {
                self.crashed_alive -= 1;
            }
            self.crashed[i] = false;
        }
        if self.suspended[i] {
            self.suspended_count -= 1;
            self.suspended[i] = false;
        }
        self.blocked[i] = false;
        let newly_alive = !self.alive[i];
        if newly_alive {
            self.alive[i] = true;
            self.alive_count += 1;
        }
        self.generation[i] = self.generation[i].wrapping_add(1);
        newly_alive
    }

    /// Slot `i`'s generation tag: 0 until the slot is first recycled via
    /// [`apply_rejoin`](Self::apply_rejoin), then incremented per reuse.
    #[inline]
    pub fn generation(&self, i: usize) -> u32 {
        self.generation.get(i).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_graph::gen;

    #[test]
    fn sync_snapshots_the_topology() {
        let g = gen::complete(8);
        let mut c = AliveCensus::new();
        assert!(!c.is_synced() && c.is_empty());
        c.sync_from(&g);
        assert!(c.is_synced());
        assert_eq!(c.len(), 8);
        assert_eq!(c.alive_count(), 8);
        assert_eq!(c.effective_alive(), 8);
        assert!(c.is_effective(3));
        assert!(!c.is_alive(99), "out-of-range slots are dead");
    }

    #[test]
    fn crash_and_leave_interaction_keeps_counters_exact() {
        let g = gen::complete(6);
        let mut c = AliveCensus::new();
        c.sync_from(&g);
        assert!(c.mark_crashed(2));
        assert!(!c.mark_crashed(2), "re-crash is a no-op");
        assert_eq!(c.effective_alive(), 5);
        assert_eq!(c.crashed_count(), 1);
        // A crashed node leaving must not double-shrink the denominator.
        assert!(!c.apply_leave(2), "crashed leaver already left the denominator");
        assert_eq!(c.alive_count(), 5);
        assert_eq!(c.effective_alive(), 5);
        assert_eq!(c.crashed_count(), 1, "history keeps the crash");
        // A healthy node leaving shrinks it by one.
        assert!(c.apply_leave(0));
        assert_eq!(c.effective_alive(), 4);
        assert!(!c.apply_leave(0), "double-leave is a no-op");
    }

    #[test]
    fn joins_grow_the_census() {
        let g = gen::complete(4);
        let mut c = AliveCensus::new();
        c.sync_from(&g);
        assert!(c.apply_join(6), "join beyond the tracked range grows it");
        assert_eq!(c.len(), 7);
        assert!(c.is_alive(6) && !c.is_alive(5));
        assert_eq!(c.alive_count(), 5);
        assert!(!c.apply_join(6), "re-join is a no-op");
        assert!(c.apply_leave(6));
        assert_eq!(c.alive_count(), 4);
    }

    #[test]
    fn suspension_blocks_participation_but_not_coverage() {
        let g = gen::complete(8);
        let mut c = AliveCensus::new();
        c.sync_from(&g);
        assert_eq!(c.blocked_slice(), c.crashed_slice(), "no suspensions: masks agree");
        c.set_suspended(3, true);
        assert!(c.is_suspended(3));
        assert!(c.is_effective(3), "suspended nodes stay in the denominator");
        assert!(!c.is_participating(3));
        assert!(c.blocked_slice()[3] && !c.crashed_slice()[3]);
        assert_eq!(c.effective_alive(), 8, "suspension never shrinks the denominator");
        // Recovery restores participation with nothing else changed.
        c.set_suspended(3, false);
        assert!(c.is_participating(3));
        assert_eq!(c.blocked_slice(), c.crashed_slice());
        // A crash while suspended keeps the slot blocked after resume.
        c.set_suspended(5, true);
        assert!(c.mark_crashed(5));
        c.set_suspended(5, false);
        assert!(c.blocked_slice()[5], "crashed slots stay blocked");
        assert_eq!(c.effective_alive(), 7);
        // Out-of-range suspension is ignored.
        c.set_suspended(99, true);
        assert!(!c.is_suspended(99));
    }

    #[test]
    fn rejoin_recycles_a_slot_as_a_fresh_peer() {
        let g = gen::complete(6);
        let mut c = AliveCensus::new();
        c.sync_from(&g);
        // Peer at slot 2 crashes, then departs; its slot is recycled.
        assert!(c.mark_crashed(2));
        assert!(!c.apply_leave(2));
        assert_eq!(c.effective_alive(), 5);
        assert_eq!(c.generation(2), 0);
        assert!(c.apply_rejoin(2), "rejoin revives the slot");
        assert!(c.is_effective(2), "newcomer is not crashed");
        assert!(c.is_participating(2));
        assert_eq!(c.effective_alive(), 6, "denominator regains the slot");
        assert_eq!(c.crashed_count(), 1, "history keeps the old peer's crash");
        assert_eq!(c.generation(2), 1, "generation tag bumped");
        // Rejoin while suspended clears the outage too.
        c.set_suspended(4, true);
        assert!(!c.apply_rejoin(4), "slot was already alive");
        assert!(!c.is_suspended(4));
        assert_eq!(c.suspended_count(), 0);
        assert_eq!(c.generation(4), 1);
        // Rejoin past the tracked range grows like a join.
        assert!(c.apply_rejoin(9));
        assert!(c.is_alive(9));
        assert_eq!(c.generation(9), 1);
        assert_eq!(c.generation(42), 0, "out of range reads 0");
    }

    #[test]
    fn adopt_new_slots_reads_only_growth() {
        struct HalfAlive(usize);
        impl Topology for HalfAlive {
            fn node_count(&self) -> usize {
                self.0
            }
            fn is_alive(&self, v: NodeId) -> bool {
                v.index().is_multiple_of(2)
            }
            fn stubs(&self, _v: NodeId) -> &[NodeId] {
                &[]
            }
        }
        let mut c = AliveCensus::new();
        c.sync_from(&HalfAlive(4));
        assert_eq!(c.alive_count(), 2);
        c.adopt_new_slots(&HalfAlive(8));
        assert_eq!(c.len(), 8);
        assert_eq!(c.alive_count(), 4);
        // Existing slots are never re-read: flipping one in the topology
        // without a delta leaves the census unchanged (the contract).
        c.adopt_new_slots(&HalfAlive(8));
        assert_eq!(c.alive_count(), 4);
    }
}
