//! Minimal reference protocols used by the engine's own tests and as
//! building blocks for examples. The paper's algorithms live in `rrb-core`,
//! the literature baselines in `rrb-baselines`.

use crate::{Capabilities, ChoicePolicy, NodeView, Observation, Plan, Protocol, Round, RumorMeta};

/// Unbounded push flooding in the standard (single-choice) phone call
/// model: every informed node pushes in every round, forever.
///
/// This is the textbook push protocol analysed by Frieze–Grimmett and
/// Pittel; it covers a complete graph in `log2 n + ln n + O(1)` rounds but
/// has no termination rule (hence the engine's coverage/cap stopping).
#[derive(Debug, Clone, Copy, Default)]
pub struct FloodPush {
    policy: ChoicePolicy,
}

impl FloodPush {
    /// Flooding in the standard model (one choice per round).
    pub fn new() -> Self {
        FloodPush { policy: ChoicePolicy::STANDARD }
    }

    /// Flooding with a custom choice policy.
    pub fn with_policy(policy: ChoicePolicy) -> Self {
        FloodPush { policy }
    }
}

impl Protocol for FloodPush {
    type State = ();

    fn init(&self, _creator: bool) -> Self::State {}

    fn choice_policy(&self) -> ChoicePolicy {
        self.policy
    }

    fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan {
        Plan::push_with(RumorMeta { age: t.saturating_sub(view.informed_at), counter: 0 })
    }

    fn update(
        &self,
        _state: &mut Self::State,
        _informed_at: Option<Round>,
        _t: Round,
        _obs: &Observation,
    ) {
    }

    fn is_quiescent(&self, _state: &Self::State, _informed_at: Round, _t: Round) -> bool {
        false
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::PUSH_ONLY
    }
}

/// Unbounded pull flooding: every informed node answers every incoming
/// channel in every round, forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct FloodPull {
    policy: ChoicePolicy,
}

impl FloodPull {
    /// Pull flooding in the standard model.
    pub fn new() -> Self {
        FloodPull { policy: ChoicePolicy::STANDARD }
    }

    /// Pull flooding with a custom choice policy.
    pub fn with_policy(policy: ChoicePolicy) -> Self {
        FloodPull { policy }
    }
}

impl Protocol for FloodPull {
    type State = ();

    fn init(&self, _creator: bool) -> Self::State {}

    fn choice_policy(&self) -> ChoicePolicy {
        self.policy
    }

    fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan {
        Plan::pull_with(RumorMeta { age: t.saturating_sub(view.informed_at), counter: 0 })
    }

    fn update(
        &self,
        _state: &mut Self::State,
        _informed_at: Option<Round>,
        _t: Round,
        _obs: &Observation,
    ) {
    }

    fn is_quiescent(&self, _state: &Self::State, _informed_at: Round, _t: Round) -> bool {
        false
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::PULL_ONLY
    }
}

/// Unbounded push&pull flooding, the combination Karp et al. start from.
#[derive(Debug, Clone, Copy, Default)]
pub struct FloodPushPull {
    policy: ChoicePolicy,
}

impl FloodPushPull {
    /// Push&pull flooding in the standard model.
    pub fn new() -> Self {
        FloodPushPull { policy: ChoicePolicy::STANDARD }
    }

    /// Push&pull flooding with a custom choice policy.
    pub fn with_policy(policy: ChoicePolicy) -> Self {
        FloodPushPull { policy }
    }
}

impl Protocol for FloodPushPull {
    type State = ();

    fn init(&self, _creator: bool) -> Self::State {}

    fn choice_policy(&self) -> ChoicePolicy {
        self.policy
    }

    fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan {
        Plan::push_pull_with(RumorMeta { age: t.saturating_sub(view.informed_at), counter: 0 })
    }

    fn update(
        &self,
        _state: &mut Self::State,
        _informed_at: Option<Round>,
        _t: Round,
        _obs: &Observation,
    ) {
    }

    fn is_quiescent(&self, _state: &Self::State, _informed_at: Round, _t: Round) -> bool {
        false
    }
}

/// A protocol that never transmits; useful for tests of the quiescence
/// stopping rule and as a null baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct SilentProtocol;

impl Protocol for SilentProtocol {
    type State = ();

    fn init(&self, _creator: bool) -> Self::State {}

    fn choice_policy(&self) -> ChoicePolicy {
        ChoicePolicy::STANDARD
    }

    fn plan(&self, _view: NodeView<'_, Self::State>, _t: Round) -> Plan {
        Plan::SILENT
    }

    fn update(
        &self,
        _state: &mut Self::State,
        _informed_at: Option<Round>,
        _t: Round,
        _obs: &Observation,
    ) {
    }

    fn is_quiescent(&self, _state: &Self::State, _informed_at: Round, _t: Round) -> bool {
        true
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::SILENT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_variants_plan_correct_directions() {
        let view = NodeView { informed_at: 2, is_creator: false, state: &() };
        let p = FloodPush::new().plan(view, 5);
        assert!(p.push && !p.pull_serve);
        assert_eq!(p.meta.age, 3);
        let p = FloodPull::new().plan(view, 5);
        assert!(!p.push && p.pull_serve);
        let p = FloodPushPull::new().plan(view, 5);
        assert!(p.push && p.pull_serve);
        let p = SilentProtocol.plan(view, 5);
        assert!(!p.transmits());
    }

    #[test]
    fn policies_are_configurable() {
        let p = FloodPush::with_policy(ChoicePolicy::FOUR);
        assert_eq!(p.choice_policy(), ChoicePolicy::FOUR);
        let p = FloodPull::with_policy(ChoicePolicy::SEQUENTIAL);
        assert_eq!(p.choice_policy(), ChoicePolicy::SEQUENTIAL);
    }

    #[test]
    fn quiescence_flags() {
        assert!(!FloodPush::new().is_quiescent(&(), 0, 100));
        assert!(SilentProtocol.is_quiescent(&(), 0, 0));
    }

    #[test]
    fn capabilities_match_directions() {
        use crate::Capabilities;
        assert_eq!(FloodPush::new().capabilities(), Capabilities::PUSH_ONLY);
        assert_eq!(FloodPull::new().capabilities(), Capabilities::PULL_ONLY);
        assert_eq!(FloodPushPull::new().capabilities(), Capabilities::ALL);
        assert_eq!(SilentProtocol.capabilities(), Capabilities::SILENT);
    }
}
