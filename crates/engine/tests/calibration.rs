//! Async ↔ round calibration: in the uniform fixed-rate, zero-latency
//! limit the asynchronous engine runs the *same stochastic process* as
//! the round engine for push protocols.
//!
//! Why this holds structurally (not just approximately): with
//! `ClockSpec::Fixed { interval: 1.0 }` every node fires at exact integer
//! times, and the event order `(time_bits, node, tie_seq)` places a
//! node's `Fire` before any same-instant delivery to it — so each node
//! plans on the previous instant's informedness, exactly the
//! plan-then-exchange-then-digest barrier of a synchronous round. The
//! RNG draw *order* differs (per-node interleaved vs phase-batched), so
//! individual runs are not byte-identical; the distributions are the
//! same, which these tests assert statistically over seed replications
//! on an E1-style random-regular rung.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rrb_engine::protocols::FloodPush;
use rrb_engine::{
    AsyncSimState, ChoicePolicy, ClockSpec, LatencySpec, Protocol, RunReport, SimConfig, Simulation,
};
use rrb_graph::{gen, Graph, NodeId};

const N: usize = 256;
const DEGREE: usize = 8;
const SEEDS: u64 = 30;

fn rung_graph() -> Graph {
    let mut rng = SmallRng::seed_from_u64(0x7070_1070);
    gen::random_regular(N, DEGREE, &mut rng).expect("valid (n, d)")
}

fn sync_runs(g: &Graph, proto: &FloodPush, cfg: SimConfig) -> Vec<RunReport> {
    (0..SEEDS)
        .map(|s| {
            let mut rng = SmallRng::seed_from_u64(1000 + s);
            Simulation::new(g, FloodPush::with_policy(proto.choice_policy()), cfg)
                .run(NodeId::new(0), &mut rng)
        })
        .collect()
}

fn async_runs(
    g: &Graph,
    proto: &FloodPush,
    cfg: SimConfig,
    clock: ClockSpec,
    latency: LatencySpec,
) -> Vec<RunReport> {
    (0..SEEDS)
        .map(|s| {
            let mut rng = SmallRng::seed_from_u64(1000 + s);
            let mut sim = AsyncSimState::new(proto, g.node_count(), NodeId::new(0), clock, latency);
            sim.run_to_completion(g, proto, cfg, &mut rng);
            sim.into_report(g, cfg)
        })
        .collect()
}

fn mean_rounds_to_coverage(runs: &[RunReport]) -> f64 {
    assert!(runs.iter().all(RunReport::all_informed), "every replication must cover");
    runs.iter().map(|r| f64::from(r.full_coverage_at.unwrap_or(r.rounds))).sum::<f64>()
        / runs.len() as f64
}

/// Mean informed fraction per round, padded with the final value once a
/// run has finished (coverage holds from then on).
fn mean_trajectory(runs: &[RunReport], upto: usize) -> Vec<f64> {
    let mut acc = vec![0.0; upto];
    for r in runs {
        for (k, slot) in acc.iter_mut().enumerate() {
            let informed = r
                .history
                .iter()
                .take_while(|rec| (rec.round as usize) <= k + 1)
                .last()
                .map_or(1, |rec| rec.informed);
            *slot += informed as f64 / N as f64;
        }
    }
    for slot in &mut acc {
        *slot /= runs.len() as f64;
    }
    acc
}

#[test]
fn uniform_rate_async_push_matches_round_model_statistics() {
    let g = rung_graph();
    let proto = FloodPush::with_policy(ChoicePolicy::FOUR);
    let cfg = SimConfig::default().with_history().with_max_rounds(200);
    let sync = sync_runs(&g, &proto, cfg);
    let asy = async_runs(&g, &proto, cfg, ClockSpec::UNIT, LatencySpec::Zero);

    // Keystone: mean rounds-to-coverage agrees within statistical
    // tolerance. Four-choice flood-push on a 256-node 8-regular graph
    // covers in ~6 rounds with a per-run spread well under 1, so a 0.75
    // band over 30 seeds is ~5 standard errors wide while still failing
    // on any systematic off-by-one in the async round mapping.
    let ms = mean_rounds_to_coverage(&sync);
    let ma = mean_rounds_to_coverage(&asy);
    assert!(
        (ms - ma).abs() <= 0.75,
        "mean rounds-to-coverage diverged: sync {ms:.3} vs async {ma:.3}"
    );

    // The whole informed-fraction trajectory converges, round by round.
    let horizon = 12;
    let ts = mean_trajectory(&sync, horizon);
    let ta = mean_trajectory(&asy, horizon);
    for (k, (s, a)) in ts.iter().zip(&ta).enumerate() {
        assert!(
            (s - a).abs() <= 0.10,
            "round {}: mean informed fraction sync {s:.3} vs async {a:.3}",
            k + 1
        );
    }

    // Per-round transmission totals live on the same scale too: push
    // counts are informed-node-bounded in both engines.
    let tx_s = sync.iter().map(|r| r.push_tx as f64).sum::<f64>() / SEEDS as f64;
    let tx_a = asy.iter().map(|r| r.push_tx as f64).sum::<f64>() / SEEDS as f64;
    assert!(
        (tx_s - tx_a).abs() / tx_s <= 0.25,
        "mean push transmissions diverged: sync {tx_s:.1} vs async {tx_a:.1}"
    );
}

#[test]
fn poisson_clocks_cover_on_the_same_time_scale() {
    // Sanity bound, not equality: rate-1 Poisson clocks do one expected
    // fire per node per unit time, so time-to-coverage stays within a
    // small constant factor of the round count (asynchrony costs some
    // coordination but cannot change the order of growth).
    let g = rung_graph();
    let proto = FloodPush::with_policy(ChoicePolicy::FOUR);
    let cfg = SimConfig::default().with_max_rounds(200);
    let sync = sync_runs(&g, &proto, cfg);
    let asy = async_runs(&g, &proto, cfg, ClockSpec::Exponential { rate: 1.0 }, LatencySpec::Zero);
    let ms = mean_rounds_to_coverage(&sync);
    let ma = mean_rounds_to_coverage(&asy);
    assert!(asy.iter().all(RunReport::all_informed));
    assert!(ma < 4.0 * ms, "Poisson-clock coverage blew up: async {ma:.2} vs sync {ms:.2}");
}
