//! Seed-for-seed parity suite: a one-rumour [`MultiSimState`] must
//! reproduce the single-rumour [`SimState`] trajectory exactly — same
//! informed counts every round, same stopping round, same coverage round,
//! same transmission and channel totals — for the same RNG seed, across
//! every failure model.
//!
//! This is the correctness anchor of the multi-rumour arena port: both
//! engines are built from the shared fabric/index machinery and consume
//! identical RNG draw sequences (crash sampling, channel sampling, channel
//! failures, and — thanks to the once-per-direction transmission draws of
//! the combining bugfix — transmission failures too), so wherever the two
//! models coincide the refactor is provably behaviour-preserving.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use rrb_engine::protocols::{FloodPull, FloodPush, FloodPushPull};
use rrb_engine::{
    AdversarySpec, AdversaryTarget, Capabilities, ChoicePolicy, FailureModel, FaultEvent,
    FaultPlan, FaultState, GilbertElliott, MultiSimState, NodeView, Observation, OutageSpec,
    Plan, Protocol, Round, RumorInjection, RumorMeta, SimConfig, SimState, Topology,
};
use rrb_graph::{gen, Graph, NodeId};

/// Stateful push&pull protocol exercising the meta/update paths: each node
/// transmits for `budget` rounds after reception, stamping ages, and its
/// state counts every copy it ever received (order-insensitive, like every
/// real protocol in the workspace).
#[derive(Debug, Clone)]
struct CountingGossip {
    budget: Round,
}

impl Protocol for CountingGossip {
    type State = u32;

    fn init(&self, creator: bool) -> Self::State {
        u32::from(creator)
    }

    fn choice_policy(&self) -> ChoicePolicy {
        ChoicePolicy::Distinct(2)
    }

    fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan {
        let age = t - view.informed_at;
        if age <= self.budget {
            Plan::push_pull_with(RumorMeta { age, counter: *view.state })
        } else {
            Plan::SILENT
        }
    }

    fn update(
        &self,
        state: &mut Self::State,
        _informed_at: Option<Round>,
        _t: Round,
        obs: &Observation,
    ) {
        *state += obs.received() as u32;
    }

    fn is_quiescent(&self, _state: &Self::State, informed_at: Round, t: Round) -> bool {
        t > informed_at + self.budget
    }
}

/// Push-only variant so the capability-gated sampling skip engages on both
/// engines.
#[derive(Debug, Clone)]
struct CountingPush {
    inner: CountingGossip,
}

impl Protocol for CountingPush {
    type State = u32;

    fn init(&self, creator: bool) -> Self::State {
        self.inner.init(creator)
    }

    fn choice_policy(&self) -> ChoicePolicy {
        ChoicePolicy::FOUR
    }

    fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan {
        let mut plan = self.inner.plan(view, t);
        plan.pull_serve = false;
        plan
    }

    fn update(
        &self,
        state: &mut Self::State,
        informed_at: Option<Round>,
        t: Round,
        obs: &Observation,
    ) {
        self.inner.update(state, informed_at, t, obs)
    }

    fn is_quiescent(&self, state: &Self::State, informed_at: Round, t: Round) -> bool {
        self.inner.is_quiescent(state, informed_at, t)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::PUSH_ONLY
    }
}

/// Drives both engines in lockstep from identical seeds and asserts the
/// full trajectory matches.
fn assert_parity<P: Protocol>(
    label: &str,
    graph: &Graph,
    protocol: &P,
    config: SimConfig,
    origin: NodeId,
    seed: u64,
) {
    let n = Topology::node_count(graph);
    let mut single_rng = SmallRng::seed_from_u64(seed);
    let mut multi_rng = SmallRng::seed_from_u64(seed);
    let mut single = SimState::new(protocol, n, origin);
    let mut multi =
        MultiSimState::new(protocol, graph, &[RumorInjection { birth: 0, origin }]);

    loop {
        let sf = single.finished(graph, protocol, config);
        let mf = multi.finished(protocol, config);
        assert_eq!(
            sf,
            mf,
            "{label} seed {seed}: stop disagreement at round {}",
            single.round()
        );
        if sf {
            break;
        }
        let rec = single.step(graph, protocol, config, &mut single_rng);
        multi.step(graph, protocol, config, &mut multi_rng);
        assert_eq!(single.round(), multi.round());
        assert_eq!(
            rec.informed,
            multi.informed_count(0),
            "{label} seed {seed}: informed trajectory diverged at round {}",
            rec.round
        );
        assert_eq!(
            single.crashed_count(),
            multi.crashed_count(),
            "{label} seed {seed}: crash sets diverged at round {}",
            rec.round
        );
        assert!(rec.round < 5_000, "{label} seed {seed}: runaway run");
    }

    let rounds = single.round();
    let m_report = multi.into_report();
    let s_report = single.into_report(graph, config);
    assert_eq!(s_report.rounds, rounds);
    assert_eq!(m_report.rounds, rounds, "{label} seed {seed}: round totals diverged");
    let outcome = &m_report.outcomes[0];
    assert_eq!(
        s_report.full_coverage_at, outcome.full_coverage_at,
        "{label} seed {seed}: coverage round diverged"
    );
    assert_eq!(
        s_report.informed_count, outcome.informed,
        "{label} seed {seed}: final informed census diverged"
    );
    assert_eq!(
        s_report.total_tx(),
        outcome.tx,
        "{label} seed {seed}: transmission totals diverged"
    );
    assert_eq!(
        s_report.channels, m_report.channels,
        "{label} seed {seed}: channel totals diverged"
    );
}

/// Variant of `assert_parity` that cross-checks the full per-node delivery
/// trace via the reports (the lockstep version only compares counts; birth
/// 0 makes the multi engine's local rounds coincide with global rounds).
fn assert_parity_with_deliveries<P: Protocol>(
    label: &str,
    graph: &Graph,
    protocol: &P,
    config: SimConfig,
    origin: NodeId,
    seed: u64,
) {
    let n = Topology::node_count(graph);
    let mut single_rng = SmallRng::seed_from_u64(seed);
    let mut multi_rng = SmallRng::seed_from_u64(seed);
    let mut single = SimState::new(protocol, n, origin);
    let mut multi =
        MultiSimState::new(protocol, graph, &[RumorInjection { birth: 0, origin }]);
    while !single.finished(graph, protocol, config) {
        single.step(graph, protocol, config, &mut single_rng);
        multi.step(graph, protocol, config, &mut multi_rng);
    }
    let single_at: Vec<Option<Round>> =
        (0..n).map(|i| single.informed_at(NodeId::new(i))).collect();
    let m_report = multi.into_report();
    assert_eq!(
        single_at, m_report.deliveries[0],
        "{label} seed {seed}: delivery traces diverged"
    );
}

fn regular_graph(seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    gen::random_regular(128, 6, &mut rng).expect("graph generation")
}

#[test]
fn parity_without_failures() {
    let g = regular_graph(1);
    let cfg = SimConfig::default().with_max_rounds(400);
    for seed in 0..4 {
        assert_parity("flood-pushpull", &g, &FloodPushPull::new(), cfg, NodeId::new(5), seed);
        assert_parity("flood-push", &g, &FloodPush::new(), cfg, NodeId::new(5), seed);
        assert_parity("flood-pull", &g, &FloodPull::new(), cfg, NodeId::new(5), seed);
        assert_parity(
            "counting",
            &g,
            &CountingGossip { budget: 12 },
            SimConfig::until_quiescent().with_max_rounds(400),
            NodeId::new(5),
            seed,
        );
    }
}

#[test]
fn parity_with_channel_failures() {
    let g = regular_graph(2);
    let cfg = SimConfig::default()
        .with_failures(FailureModel::channels(0.25))
        .with_max_rounds(600);
    for seed in 0..4 {
        assert_parity("pushpull+chfail", &g, &FloodPushPull::new(), cfg, NodeId::new(0), seed);
        assert_parity(
            "counting+chfail",
            &g,
            &CountingGossip { budget: 16 },
            cfg,
            NodeId::new(0),
            seed,
        );
    }
}

#[test]
fn parity_with_transmission_failures() {
    // The strongest case: the combining bugfix draws transmission failures
    // once per channel-direction, in exactly the single-rumour engine's
    // order, so even lossy-transmission trajectories match seed for seed.
    let g = regular_graph(3);
    let cfg = SimConfig::default()
        .with_failures(FailureModel::transmissions(0.35))
        .with_max_rounds(800);
    for seed in 0..4 {
        assert_parity("pushpull+txfail", &g, &FloodPushPull::new(), cfg, NodeId::new(9), seed);
        assert_parity("push+txfail", &g, &FloodPush::new(), cfg, NodeId::new(9), seed);
        assert_parity(
            "counting+txfail",
            &g,
            &CountingGossip { budget: 20 },
            cfg,
            NodeId::new(9),
            seed,
        );
    }
}

#[test]
fn parity_with_crashes() {
    let g = regular_graph(4);
    let cfg = SimConfig::default()
        .with_failures(FailureModel::crashes(0.01))
        .with_max_rounds(400);
    for seed in 0..4 {
        assert_parity("pushpull+crash", &g, &FloodPushPull::new(), cfg, NodeId::new(2), seed);
    }
}

#[test]
fn parity_with_all_failures_combined() {
    let g = regular_graph(5);
    let cfg = SimConfig::default()
        .with_failures(FailureModel {
            channel_failure: 0.15,
            transmission_failure: 0.2,
            node_crash: 0.005,
        })
        .with_max_rounds(800);
    for seed in 0..4 {
        assert_parity("pushpull+all", &g, &FloodPushPull::new(), cfg, NodeId::new(7), seed);
        assert_parity(
            "counting+all",
            &g,
            &CountingGossip { budget: 24 },
            cfg,
            NodeId::new(7),
            seed,
        );
    }
}

#[test]
fn parity_of_delivery_traces() {
    let g = regular_graph(6);
    for seed in 0..3 {
        assert_parity_with_deliveries(
            "pushpull-traces",
            &g,
            &FloodPushPull::new(),
            SimConfig::default().with_max_rounds(400),
            NodeId::new(11),
            seed,
        );
        assert_parity_with_deliveries(
            "pushpull-traces+txfail",
            &g,
            &FloodPushPull::new(),
            SimConfig::default()
                .with_failures(FailureModel::transmissions(0.3))
                .with_max_rounds(800),
            NodeId::new(11),
            seed,
        );
    }
}

#[test]
fn parity_with_push_only_sampling_skip() {
    // Push-only protocol under Distinct(k): both engines must take the
    // capability-gated sampling skip and stay byte-identical — the multi
    // fabric's informed_of census must agree with the single engine's
    // per-node informedness in the one-rumour case.
    let g = regular_graph(7);
    let proto = CountingPush { inner: CountingGossip { budget: 14 } };
    for seed in 0..4 {
        assert_parity(
            "counting-push-skip",
            &g,
            &proto,
            SimConfig::until_quiescent().with_max_rounds(400),
            NodeId::new(3),
            seed,
        );
    }
    let cfg = SimConfig::default()
        .with_failures(FailureModel::channels(0.2))
        .with_max_rounds(600);
    for seed in 0..2 {
        assert_parity("counting-push-skip+chfail", &g, &proto, cfg, NodeId::new(3), seed);
    }
}

#[test]
fn parity_on_complete_graph() {
    let g = gen::complete(48);
    let cfg = SimConfig::default().with_max_rounds(200);
    for seed in 0..3 {
        assert_parity("complete-pushpull", &g, &FloodPushPull::new(), cfg, NodeId::new(0), seed);
    }
}

/// Drives both engines in lockstep over a churning overlay: the same
/// membership deltas (structured `ChurnEvents` from the churn process) are
/// applied to both alive censuses after every round, so the one-rumour
/// multi-engine trajectory must stay identical to the single-rumour one —
/// informed counts, coverage rounds, the final survivor census, and the
/// stopping decision.
fn assert_churn_parity<P: Protocol>(
    label: &str,
    protocol: &P,
    config: SimConfig,
    rate: f64,
    seed: u64,
) {
    use rrb_p2p::{ChurnProcess, Overlay};

    let mut overlay_rng = SmallRng::seed_from_u64(seed.wrapping_add(0x0EA1));
    let mut overlay = Overlay::random(96, 6, &mut overlay_rng).expect("overlay");
    let origin = NodeId::new(4);
    let n = Topology::node_count(&overlay);
    let mut churn = ChurnProcess::symmetric(rate, 48);
    let mut churn_rng = SmallRng::seed_from_u64(seed.wrapping_add(0xC0DE));
    let mut single_rng = SmallRng::seed_from_u64(seed);
    let mut multi_rng = SmallRng::seed_from_u64(seed);
    let mut single = SimState::new(protocol, n, origin);
    let mut multi =
        MultiSimState::new(protocol, &overlay, &[RumorInjection { birth: 0, origin }]);

    loop {
        let sf = single.finished(&overlay, protocol, config);
        let mf = multi.finished(protocol, config);
        assert_eq!(sf, mf, "{label} seed {seed}: stop disagreement at round {}", single.round());
        if sf {
            break;
        }
        let rec = single.step(&overlay, protocol, config, &mut single_rng);
        multi.step(&overlay, protocol, config, &mut multi_rng);
        assert_eq!(
            rec.informed,
            multi.informed_count(0),
            "{label} seed {seed}: informed trajectory diverged at round {}",
            rec.round
        );
        // One churn step + rewiring, then the same deltas to both censuses.
        let events = churn.step(&mut overlay, &mut churn_rng).expect("churn step");
        overlay.rewire(4, &mut churn_rng);
        single.apply_joins(protocol, &events.joined);
        single.apply_leaves(&events.left);
        multi.apply_joins(protocol, &events.joined);
        multi.apply_leaves(&events.left);
        assert_eq!(
            single.effective_alive(),
            multi.effective_alive(),
            "{label} seed {seed}: censuses diverged at round {}",
            rec.round
        );
        assert!(rec.round < 2_000, "{label} seed {seed}: runaway run");
    }

    let survivors = single.effective_alive();
    let rounds = single.round();
    let s_report = single.into_report(&overlay, config);
    let m_report = multi.into_report();
    assert_eq!(s_report.rounds, rounds);
    assert_eq!(m_report.rounds, rounds, "{label} seed {seed}: round totals diverged");
    let outcome = &m_report.outcomes[0];
    assert_eq!(s_report.alive_count, survivors);
    assert_eq!(
        s_report.informed_count, outcome.informed,
        "{label} seed {seed}: survivor-informed census diverged"
    );
    assert_eq!(
        s_report.full_coverage_at, outcome.full_coverage_at,
        "{label} seed {seed}: coverage round diverged"
    );
    assert_eq!(
        s_report.total_tx(),
        outcome.tx,
        "{label} seed {seed}: transmission totals diverged"
    );
    assert_eq!(
        s_report.channels, m_report.channels,
        "{label} seed {seed}: channel totals diverged"
    );
}

/// Lockstep parity with the same [`FaultPlan`] installed on both engines
/// (each gets its own [`FaultState`] built from the same fault seed, so the
/// reserved streams coincide). Extends the failure-model guarantee to the
/// whole adversarial fault layer.
fn assert_fault_parity<P: Protocol>(
    label: &str,
    graph: &Graph,
    protocol: &P,
    config: SimConfig,
    plan: &FaultPlan,
    origin: NodeId,
    seed: u64,
) {
    let n = Topology::node_count(graph);
    let fault_seed = seed.wrapping_add(0xFA17);
    let mut single_rng = SmallRng::seed_from_u64(seed);
    let mut multi_rng = SmallRng::seed_from_u64(seed);
    let mut single = SimState::new(protocol, n, origin);
    single.set_faults(Some(FaultState::new(plan, n, fault_seed)));
    let mut multi =
        MultiSimState::new(protocol, graph, &[RumorInjection { birth: 0, origin }]);
    multi.set_faults(Some(FaultState::new(plan, n, fault_seed)));

    loop {
        let sf = single.finished(graph, protocol, config);
        let mf = multi.finished(protocol, config);
        assert_eq!(
            sf,
            mf,
            "{label} seed {seed}: stop disagreement at round {}",
            single.round()
        );
        if sf {
            break;
        }
        let rec = single.step(graph, protocol, config, &mut single_rng);
        multi.step(graph, protocol, config, &mut multi_rng);
        assert_eq!(
            rec.informed,
            multi.informed_count(0),
            "{label} seed {seed}: informed trajectory diverged at round {}",
            rec.round
        );
        assert_eq!(
            single.crashed_count(),
            multi.crashed_count(),
            "{label} seed {seed}: crash sets diverged at round {}",
            rec.round
        );
        assert_eq!(
            single.effective_alive(),
            multi.effective_alive(),
            "{label} seed {seed}: censuses diverged at round {}",
            rec.round
        );
        assert!(rec.round < 5_000, "{label} seed {seed}: runaway run");
    }

    let budget_left = |fs: Option<&FaultState>| fs.map(FaultState::adversary_budget_left);
    assert_eq!(
        budget_left(single.fault_state()),
        budget_left(multi.fault_state()),
        "{label} seed {seed}: adversary budgets diverged"
    );
    let rounds = single.round();
    let m_report = multi.into_report();
    let s_report = single.into_report(graph, config);
    assert_eq!(s_report.rounds, rounds);
    assert_eq!(m_report.rounds, rounds, "{label} seed {seed}: round totals diverged");
    let outcome = &m_report.outcomes[0];
    assert_eq!(
        s_report.full_coverage_at, outcome.full_coverage_at,
        "{label} seed {seed}: coverage round diverged"
    );
    assert_eq!(
        s_report.informed_count, outcome.informed,
        "{label} seed {seed}: final informed census diverged"
    );
    assert_eq!(
        s_report.total_tx(),
        outcome.tx,
        "{label} seed {seed}: transmission totals diverged"
    );
    assert_eq!(
        s_report.channels, m_report.channels,
        "{label} seed {seed}: channel totals diverged"
    );
}

#[test]
fn parity_under_gilbert_elliott_bursts() {
    let g = regular_graph(8);
    let plan = FaultPlan {
        burst: Some(GilbertElliott::new(0.15, 0.35, 0.02, 0.8)),
        ..FaultPlan::default()
    };
    let cfg = SimConfig::default().with_max_rounds(800);
    for seed in 0..4 {
        assert_parity_pair_under_plan(&g, &plan, cfg, seed, "ge-burst");
    }
}

#[test]
fn parity_under_scripted_schedules() {
    let g = regular_graph(9);
    let plan = FaultPlan {
        schedule: vec![
            FaultEvent::Partition { from: 2, until: 10, parts: 2 },
            FaultEvent::CrashNodes { at: 4, nodes: vec![1, 17, 33] },
            FaultEvent::LossWindow { from: 6, until: 12, channel: Some(0.4), transmission: None },
        ],
        ..FaultPlan::default()
    };
    let cfg = SimConfig::default().with_max_rounds(800);
    for seed in 0..4 {
        assert_parity_pair_under_plan(&g, &plan, cfg, seed, "scripted");
    }
}

#[test]
fn parity_under_adversarial_targeting() {
    let g = regular_graph(10);
    for (name, target) in [
        ("degree", AdversaryTarget::HighestDegree),
        ("earliest", AdversaryTarget::EarliestInformed),
    ] {
        let plan = FaultPlan {
            adversary: Some(AdversarySpec::new(target, 1, 8)),
            ..FaultPlan::default()
        };
        let cfg = SimConfig::default().with_max_rounds(800);
        for seed in 0..3 {
            assert_parity_pair_under_plan(&g, &plan, cfg, seed, name);
        }
    }
}

#[test]
fn parity_under_transient_outages_and_everything_at_once() {
    let g = regular_graph(11);
    let plan = FaultPlan {
        burst: Some(GilbertElliott::new(0.1, 0.5, 0.0, 0.6)),
        schedule: vec![FaultEvent::Partition { from: 3, until: 9, parts: 3 }],
        adversary: Some(AdversarySpec::new(AdversaryTarget::HighestDegree, 1, 4)),
        outages: Some(OutageSpec::new(0.03, 2, 5)),
    };
    let cfg = SimConfig::default().with_max_rounds(1200);
    for seed in 0..3 {
        assert_parity_pair_under_plan(&g, &plan, cfg, seed, "everything");
    }
}

/// Runs the fault-parity harness over the standard protocol pair (flooding
/// push&pull plus the stateful counting protocol), also layering the i.i.d.
/// failure model on top of the plan for one of the two.
fn assert_parity_pair_under_plan(
    graph: &Graph,
    plan: &FaultPlan,
    config: SimConfig,
    seed: u64,
    label: &str,
) {
    assert_fault_parity(
        &format!("pushpull+{label}"),
        graph,
        &FloodPushPull::new(),
        config,
        plan,
        NodeId::new(5),
        seed,
    );
    assert_fault_parity(
        &format!("counting+{label}+iid"),
        graph,
        &CountingGossip { budget: 16 },
        SimConfig {
            failures: FailureModel::channels(0.1),
            stop_at_coverage: false,
            ..config
        },
        plan,
        NodeId::new(5),
        seed,
    );
}

#[test]
fn parity_under_churn() {
    // One rumour under live membership churn: the multi engine's census
    // hooks must match the single engine's exactly, at mild and heavy
    // churn, for flooding and counting protocols alike.
    let cfg = SimConfig::default().with_max_rounds(400);
    for seed in 0..3 {
        assert_churn_parity("churn-pushpull", &FloodPushPull::new(), cfg, 2.0, seed);
        assert_churn_parity(
            "churn-counting",
            &CountingGossip { budget: 16 },
            SimConfig::until_quiescent().with_max_rounds(400),
            2.0,
            seed,
        );
    }
    assert_churn_parity("churn-heavy", &FloodPushPull::new(), cfg, 8.0, 0);
}

#[test]
fn parity_under_churn_with_crashes() {
    // Churn and crash-stop failures interact in the census (a crashed node
    // may later depart); the engines must keep agreeing.
    let cfg = SimConfig::default()
        .with_failures(FailureModel::crashes(0.005))
        .with_max_rounds(400);
    for seed in 0..3 {
        assert_churn_parity("churn+crash", &FloodPushPull::new(), cfg, 2.0, seed);
    }
}
