//! Slot-reuse regression suite: with the overlay's slot recycling
//! enabled, a long symmetric-churn run must keep a **bounded footprint**
//! — the slot space (and with it every per-slot engine buffer, i.e. the
//! run's RSS) stops growing once the free list warms up — and rejoined
//! slots must behave as fresh peers on both engines, serial and sharded.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use rrb_engine::protocols::FloodPushPull;
use rrb_engine::{
    MultiSimState, Round, RumorInjection, SimConfig, SimState, Topology,
};
use rrb_graph::NodeId;
use rrb_p2p::{ChurnProcess, Overlay};

#[test]
fn ten_thousand_round_churn_run_has_bounded_slots() {
    // Before the reuse path, every join consumed a fresh slot: a 10k-round
    // run at 2 joins+2 leaves per round grew ~20k slots (and every dense
    // per-slot buffer with them). With reuse, growth must stop at the
    // initial population plus the churn process's in-flight slack.
    let n0 = 64usize;
    let proto = FloodPushPull::new();
    let cfg = SimConfig { stop_at_coverage: false, ..SimConfig::default() }
        .with_max_rounds(20_000);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut overlay_rng = SmallRng::seed_from_u64(0x0EA1);
    let mut churn_rng = SmallRng::seed_from_u64(0xC0DE);
    let mut overlay =
        Overlay::random(n0, 6, &mut overlay_rng).expect("overlay").with_slot_reuse(true);
    let mut churn = ChurnProcess::symmetric(2.0, 32);
    let mut sim = SimState::new(&proto, n0, NodeId::new(4));
    let mut max_slots = n0;
    for _ in 0..10_000 {
        sim.step(&overlay, &proto, cfg, &mut rng);
        let events = churn.step(&mut overlay, &mut churn_rng).expect("churn step");
        overlay.rewire(4, &mut churn_rng);
        sim.apply_joins(&proto, &events.joined);
        sim.apply_leaves(&events.left);
        sim.apply_rejoins(&proto, &events.rejoined);
        max_slots = max_slots.max(Topology::node_count(&overlay));
    }
    assert!(
        max_slots <= n0 + 8,
        "slot space grew to {max_slots} over 10k churn rounds (reuse broken)"
    );
    assert_eq!(overlay.alive_count(), n0, "symmetric churn keeps the population");
    // The engine's informed index never exceeds the (bounded) slot space.
    assert!(sim.informed_count() <= max_slots);
}

#[test]
fn sparse_multi_engine_state_stays_bounded_under_reuse() {
    // The multi engine's sparse state vectors hold one entry per informed
    // node; under churn with reuse, rejoins unmark recycled slots, so the
    // per-rumour state length is bounded by the (bounded) slot space —
    // not by the total number of peers ever seen.
    let n0 = 64usize;
    let proto = FloodPushPull::new();
    let cfg = SimConfig { stop_at_coverage: false, ..SimConfig::default() }
        .with_max_rounds(20_000);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut overlay_rng = SmallRng::seed_from_u64(0x0EA2);
    let mut churn_rng = SmallRng::seed_from_u64(0xC0DF);
    let mut overlay =
        Overlay::random(n0, 6, &mut overlay_rng).expect("overlay").with_slot_reuse(true);
    let mut churn = ChurnProcess::symmetric(2.0, 32);
    let mut sim = MultiSimState::new(
        &proto,
        &overlay,
        &[
            RumorInjection { birth: 0, origin: NodeId::new(4) },
            RumorInjection { birth: 3, origin: NodeId::new(9) },
        ],
    );
    for _ in 0..2_000 {
        sim.step(&overlay, &proto, cfg, &mut rng);
        let events = churn.step(&mut overlay, &mut churn_rng).expect("churn step");
        overlay.rewire(4, &mut churn_rng);
        sim.apply_joins(&proto, &events.joined);
        sim.apply_leaves(&events.left);
        sim.apply_rejoins(&proto, &events.rejoined);
    }
    let slots = Topology::node_count(&overlay);
    assert!(slots <= n0 + 8, "slot space grew to {slots}");
    for r in 0..2 {
        assert!(
            sim.informed_count(r) <= slots,
            "rumour {r} informed census exceeds the slot space"
        );
    }
}

/// A rejoined slot must look exactly like a fresh peer: uninformed, alive,
/// participating — on the serial path and the sharded path alike, with
/// byte-identical trajectories.
#[test]
fn rejoins_reset_slots_identically_at_any_shard_count() {
    let n0 = 96usize;
    let proto = FloodPushPull::new();
    let run = |shards: usize| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        pool.install(|| {
            let cfg = SimConfig::default().with_max_rounds(300).with_shards(shards);
            let mut rng = SmallRng::seed_from_u64(11);
            let mut overlay_rng = SmallRng::seed_from_u64(0x0EA3);
            let mut churn_rng = SmallRng::seed_from_u64(0xC0E0);
            let mut overlay = Overlay::random(n0, 6, &mut overlay_rng)
                .expect("overlay")
                .with_slot_reuse(true);
            let mut churn = ChurnProcess::symmetric(3.0, 48);
            let mut sim = SimState::new(&proto, n0, NodeId::new(4));
            let mut trajectory = Vec::new();
            while !sim.finished(&overlay, &proto, cfg) {
                trajectory.push(sim.step(&overlay, &proto, cfg, &mut rng));
                let events = churn.step(&mut overlay, &mut churn_rng).expect("churn step");
                overlay.rewire(4, &mut churn_rng);
                sim.apply_joins(&proto, &events.joined);
                sim.apply_leaves(&events.left);
                sim.apply_rejoins(&proto, &events.rejoined);
                // Every rejoined slot starts over uninformed.
                for &v in &events.rejoined {
                    assert_eq!(
                        sim.informed_at(v),
                        None,
                        "rejoined slot {v} kept the departed peer's informedness"
                    );
                }
                assert!(trajectory.len() < 2_000, "runaway run");
            }
            let slots = Topology::node_count(&overlay);
            let deliveries: Vec<Option<Round>> =
                (0..slots).map(|i| sim.informed_at(NodeId::new(i))).collect();
            (trajectory, deliveries, sim.into_report(&overlay, cfg))
        })
    };
    let serial = run(1);
    for shards in [2usize, 4] {
        assert_eq!(serial, run(shards), "rejoin handling diverged at {shards} shards");
    }
}
