//! Shard-count invariance suite: the sharded step path must be
//! **byte-identical** to the serial engine at any shard count and any
//! thread count — same per-round records, same final report, same
//! per-node delivery trace — across every failure model, adversarial
//! fault plan, and live membership churn.
//!
//! The determinism contract under test (see `shard.rs` module docs):
//! every model RNG draw stays on the main sequential stream in serial
//! order, the fanned-out phases are RNG-free, and cross-shard effects
//! merge at the round barrier in ascending source-shard order. Thread
//! scheduling may reorder *work*, never *observations* — which is
//! exactly what the matrix below and the proptest at the bottom pin.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use rrb_engine::protocols::FloodPushPull;
use rrb_engine::{
    AdversarySpec, AdversaryTarget, ChoicePolicy, FailureModel, FaultEvent, FaultPlan,
    FaultState, GilbertElliott, NodeView, Observation, Plan, Protocol, Round, RoundRecord,
    RumorMeta, RunReport, SimConfig, SimState, Topology,
};
use rrb_graph::{gen, Graph, NodeId};

/// Stateful push&pull protocol exercising the meta/update paths (same
/// shape as the parity suite's): transmits for `budget` rounds after
/// reception, stamping ages; state counts every received copy.
#[derive(Debug, Clone)]
struct CountingGossip {
    budget: Round,
}

impl Protocol for CountingGossip {
    type State = u32;

    fn init(&self, creator: bool) -> Self::State {
        u32::from(creator)
    }

    fn choice_policy(&self) -> ChoicePolicy {
        ChoicePolicy::Distinct(2)
    }

    fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan {
        let age = t - view.informed_at;
        if age <= self.budget {
            Plan::push_pull_with(RumorMeta { age, counter: *view.state })
        } else {
            Plan::SILENT
        }
    }

    fn update(
        &self,
        state: &mut Self::State,
        _informed_at: Option<Round>,
        _t: Round,
        obs: &Observation,
    ) {
        *state += obs.received() as u32;
    }

    fn is_quiescent(&self, _state: &Self::State, informed_at: Round, t: Round) -> bool {
        t > informed_at + self.budget
    }
}

/// Everything one run observably produces: the per-round records, the
/// final report, and the per-node delivery trace.
#[derive(Debug, PartialEq)]
struct Trajectory {
    records: Vec<RoundRecord>,
    report: RunReport,
    informed_at: Vec<Option<Round>>,
}

/// Runs one simulation to completion at the given shard count inside a
/// dedicated `threads`-wide rayon pool and captures the full trajectory.
#[allow(clippy::too_many_arguments)]
fn run_cell<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    config: SimConfig,
    plan: Option<&FaultPlan>,
    origin: NodeId,
    seed: u64,
    shards: usize,
    threads: usize,
) -> Trajectory {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
    pool.install(|| {
        let n = Topology::node_count(graph);
        let config = config.with_shards(shards);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sim = SimState::new(protocol, n, origin);
        if let Some(plan) = plan {
            sim.set_faults(Some(FaultState::new(plan, n, seed.wrapping_add(0xFA17))));
        }
        let mut records = Vec::new();
        while !sim.finished(graph, protocol, config) {
            records.push(sim.step(graph, protocol, config, &mut rng));
            assert!(records.len() < 5_000, "runaway run (seed {seed}, shards {shards})");
        }
        let informed_at = (0..n).map(|i| sim.informed_at(NodeId::new(i))).collect();
        let report = sim.into_report(graph, config);
        Trajectory { records, report, informed_at }
    })
}

/// The satellite matrix: shards ∈ {1, 2, 4} × threads ∈ {1, 4}, every
/// cell compared byte-for-byte against the serial shards=1/threads=1
/// baseline.
fn assert_shard_invariance<P: Protocol>(
    label: &str,
    graph: &Graph,
    protocol: &P,
    config: SimConfig,
    plan: Option<&FaultPlan>,
    origin: NodeId,
    seed: u64,
) {
    let baseline = run_cell(graph, protocol, config, plan, origin, seed, 1, 1);
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            if (shards, threads) == (1, 1) {
                continue;
            }
            let cell = run_cell(graph, protocol, config, plan, origin, seed, shards, threads);
            assert_eq!(
                baseline, cell,
                "{label} seed {seed}: shards={shards} threads={threads} diverged from serial"
            );
        }
    }
}

fn regular_graph(seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    gen::random_regular(128, 6, &mut rng).expect("graph generation")
}

#[test]
fn sharding_invariance_without_faults() {
    let g = regular_graph(21);
    for seed in 0..3 {
        assert_shard_invariance(
            "flood",
            &g,
            &FloodPushPull::new(),
            SimConfig::default().with_max_rounds(400),
            None,
            NodeId::new(5),
            seed,
        );
        assert_shard_invariance(
            "counting",
            &g,
            &CountingGossip { budget: 12 },
            SimConfig::until_quiescent().with_max_rounds(400),
            None,
            NodeId::new(5),
            seed,
        );
    }
}

#[test]
fn sharding_invariance_with_iid_failures() {
    // Transmission failures are the sharp case: the sharded path must
    // pre-draw per-channel outcomes in exactly the serial loop's
    // interleaved push/pull order.
    let g = regular_graph(22);
    let cfg = SimConfig::default()
        .with_failures(FailureModel {
            channel_failure: 0.15,
            transmission_failure: 0.2,
            node_crash: 0.005,
        })
        .with_max_rounds(800);
    for seed in 0..3 {
        assert_shard_invariance("flood+iid", &g, &FloodPushPull::new(), cfg, None, NodeId::new(7), seed);
        assert_shard_invariance(
            "counting+iid",
            &g,
            &CountingGossip { budget: 20 },
            SimConfig { stop_at_coverage: false, ..cfg },
            None,
            NodeId::new(7),
            seed,
        );
    }
}

#[test]
fn sharding_invariance_under_gilbert_elliott_bursts() {
    let g = regular_graph(23);
    let plan = FaultPlan {
        burst: Some(GilbertElliott::new(0.15, 0.35, 0.02, 0.8)),
        ..FaultPlan::default()
    };
    let cfg = SimConfig::default().with_max_rounds(800);
    for seed in 0..3 {
        assert_shard_invariance("ge-burst", &g, &FloodPushPull::new(), cfg, Some(&plan), NodeId::new(5), seed);
    }
}

#[test]
fn sharding_invariance_under_scripted_partitions() {
    let g = regular_graph(24);
    let plan = FaultPlan {
        schedule: vec![
            FaultEvent::Partition { from: 2, until: 10, parts: 2 },
            FaultEvent::CrashNodes { at: 4, nodes: vec![1, 17, 33] },
            FaultEvent::LossWindow { from: 6, until: 12, channel: Some(0.4), transmission: None },
        ],
        ..FaultPlan::default()
    };
    let cfg = SimConfig::default().with_max_rounds(800);
    for seed in 0..3 {
        assert_shard_invariance("scripted", &g, &FloodPushPull::new(), cfg, Some(&plan), NodeId::new(5), seed);
        assert_shard_invariance(
            "scripted+counting",
            &g,
            &CountingGossip { budget: 16 },
            SimConfig { failures: FailureModel::channels(0.1), stop_at_coverage: false, ..cfg },
            Some(&plan),
            NodeId::new(5),
            seed,
        );
    }
}

#[test]
fn sharding_invariance_under_adversary_and_outages() {
    let g = regular_graph(25);
    let plan = FaultPlan {
        burst: Some(GilbertElliott::new(0.1, 0.5, 0.0, 0.6)),
        schedule: vec![FaultEvent::Partition { from: 3, until: 9, parts: 3 }],
        adversary: Some(AdversarySpec::new(AdversaryTarget::EarliestInformed, 1, 8)),
        outages: Some(OutageSpec::new(0.03, 2, 5)),
    };
    let cfg = SimConfig::default().with_max_rounds(1200);
    for seed in 0..2 {
        assert_shard_invariance("everything", &g, &FloodPushPull::new(), cfg, Some(&plan), NodeId::new(5), seed);
    }
}

use rrb_engine::OutageSpec;

/// Churn variant: identical membership deltas applied at every shard
/// count, so slot growth (which only the last shard absorbs) and the
/// census hooks are exercised on the sharded path.
fn run_churn_cell<P: Protocol>(
    protocol: &P,
    config: SimConfig,
    rate: f64,
    seed: u64,
    shards: usize,
    threads: usize,
) -> Trajectory {
    use rrb_p2p::{ChurnProcess, Overlay};

    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
    pool.install(|| {
        let config = config.with_shards(shards);
        let mut overlay_rng = SmallRng::seed_from_u64(seed.wrapping_add(0x0EA1));
        let mut overlay = Overlay::random(96, 6, &mut overlay_rng).expect("overlay");
        let origin = NodeId::new(4);
        let n = Topology::node_count(&overlay);
        let mut churn = ChurnProcess::symmetric(rate, 48);
        let mut churn_rng = SmallRng::seed_from_u64(seed.wrapping_add(0xC0DE));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sim = SimState::new(protocol, n, origin);
        let mut records = Vec::new();
        while !sim.finished(&overlay, protocol, config) {
            records.push(sim.step(&overlay, protocol, config, &mut rng));
            let events = churn.step(&mut overlay, &mut churn_rng).expect("churn step");
            overlay.rewire(4, &mut churn_rng);
            sim.apply_joins(protocol, &events.joined);
            sim.apply_leaves(&events.left);
            assert!(records.len() < 2_000, "runaway churn run (seed {seed})");
        }
        let slots = Topology::node_count(&overlay);
        let informed_at = (0..slots).map(|i| sim.informed_at(NodeId::new(i))).collect();
        let report = sim.into_report(&overlay, config);
        Trajectory { records, report, informed_at }
    })
}

#[test]
fn sharding_invariance_under_churn() {
    let cfg = SimConfig::default().with_max_rounds(400);
    for seed in 0..3 {
        let baseline = run_churn_cell(&FloodPushPull::new(), cfg, 2.0, seed, 1, 1);
        for shards in [2usize, 4] {
            for threads in [1usize, 4] {
                let cell = run_churn_cell(&FloodPushPull::new(), cfg, 2.0, seed, shards, threads);
                assert_eq!(
                    baseline, cell,
                    "churn seed {seed}: shards={shards} threads={threads} diverged"
                );
            }
        }
    }
    // Heavy churn + quiescence stopping on the stateful protocol.
    let quiet = SimConfig::until_quiescent().with_max_rounds(400);
    let proto = CountingGossip { budget: 16 };
    let baseline = run_churn_cell(&proto, quiet, 8.0, 1, 1, 1);
    let cell = run_churn_cell(&proto, quiet, 8.0, 1, 4, 4);
    assert_eq!(baseline, cell, "heavy churn diverged at shards=4/threads=4");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Merge order never depends on thread scheduling: for arbitrary
    /// (graph seed, run seed, shard count, thread count), the trajectory
    /// equals the same shard count on one thread — any scheduling effect
    /// would make some interleaving diverge — and equals the serial
    /// engine, pinning the barrier-merge order to the serial caller
    /// order rather than to completion order.
    #[test]
    fn merge_order_is_schedule_independent(
        graph_seed in 0u64..50,
        seed in 0u64..50,
        shards in 1usize..6,
        threads in 2usize..8,
    ) {
        let mut rng = SmallRng::seed_from_u64(graph_seed);
        let g = gen::random_regular(64, 6, &mut rng).expect("graph");
        let cfg = SimConfig::default()
            .with_failures(FailureModel::transmissions(0.2))
            .with_max_rounds(400);
        let proto = FloodPushPull::new();
        let origin = NodeId::new((seed % 64) as usize);
        let serial = run_cell(&g, &proto, cfg, None, origin, seed, 1, 1);
        let one_thread = run_cell(&g, &proto, cfg, None, origin, seed, shards, 1);
        let many_threads = run_cell(&g, &proto, cfg, None, origin, seed, shards, threads);
        prop_assert_eq!(&one_thread, &many_threads, "thread scheduling leaked into the merge");
        prop_assert_eq!(&serial, &one_thread, "sharded path diverged from serial");
    }
}
