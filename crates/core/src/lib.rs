//! The paper's contribution: **four-choice randomised broadcasting** on
//! random regular graphs (Berenbrink, Elsässer, Friedetzky; PODC 2008).
//!
//! Each node opens channels to **four distinct neighbours** per round
//! instead of one, and follows a fixed, address-oblivious phase schedule
//! derived from an estimate of `n`:
//!
//! | Phase | Rounds (Algorithm 1, `δ ≤ d ≤ δ·log log n`) | Action of informed nodes |
//! |-------|---------------------------------------------|--------------------------|
//! | 1     | `1 ..= ⌈α·log n⌉`                           | push **once**, in the step right after first receiving |
//! | 2     | `..= ⌈α(log n + log log n)⌉`                | push every step |
//! | 3     | one step                                    | answer pulls |
//! | 4     | `..= 2⌈α·log n⌉ + ⌈α·log log n⌉`            | nodes informed in phase 3/4 become *active* and push |
//!
//! Algorithm 2 (`δ·log log n ≤ d ≤ δ·log n`) replaces phases 3–4 with a pull
//! phase running until `⌈α·log n + 2α·log log n⌉` (≈ `α·log log n` steps).
//!
//! Theorems 2 and 3 prove this completes in `O(log n)` rounds using only
//! `O(n·log log n)` transmissions — an exponential improvement in per-node
//! message cost over the `Θ(n·log n)` of the standard one-choice model
//! (Theorem 1's lower bound).
//!
//! # Quick start
//!
//! ```
//! use rand::{SeedableRng, rngs::SmallRng};
//! use rrb_core::FourChoice;
//! use rrb_engine::{SimConfig, Simulation};
//! use rrb_graph::{gen, NodeId};
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let n = 1 << 12;
//! let g = gen::random_regular(n, 8, &mut rng)?;
//! let algorithm = FourChoice::for_graph(n, 8);
//! let report = Simulation::new(&g, algorithm, SimConfig::until_quiescent())
//!     .run(NodeId::new(0), &mut rng);
//! assert!(report.all_informed());
//! // O(n log log n) transmissions: per-node cost is a small multiple of
//! // log2(log2 n) (about 4·α·loglog from phase 2 plus the phase-1 pushes).
//! assert!(report.tx_per_node() < 10.0 * (n as f64).log2().log2());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod protocol;
mod schedule;
mod sequential;

pub use builder::FourChoiceBuilder;
pub use protocol::FourChoice;
pub use schedule::{AlgorithmVariant, DegreeRegime, Phase, PhaseSchedule};
pub use sequential::SequentialFourChoice;
