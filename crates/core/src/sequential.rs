use rrb_engine::{ChoicePolicy, NodeView, Observation, Plan, Protocol, Round, RumorMeta};

use crate::{FourChoice, Phase, PhaseSchedule};

/// The **sequentialised** variant of the algorithm (paper footnote 2).
///
/// Instead of opening four channels at once, each node opens **one** channel
/// per step towards a neighbour chosen i.u.r. among those *not* contacted in
/// the last three steps. Four such steps simulate one step of the parallel
/// four-choice model, so the phase schedule is the parallel schedule with
/// every boundary stretched by 4. The paper notes "our results can easily be
/// extended to the sequentialised version"; experiment E7 verifies the two
/// variants match in transmissions while the sequential one takes ~4× the
/// rounds.
///
/// ```
/// use rrb_core::{FourChoice, SequentialFourChoice};
///
/// let parallel = FourChoice::for_graph(1 << 12, 8);
/// let sequential = SequentialFourChoice::from_parallel(&parallel);
/// assert_eq!(sequential.total_rounds(), 4 * parallel.total_rounds());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialFourChoice {
    /// Stretched schedule (boundaries ×4).
    schedule: PhaseSchedule,
}

/// Number of sequential steps that emulate one parallel step.
const BLOCK: Round = 4;

impl SequentialFourChoice {
    /// Builds the sequential variant emulating `parallel`.
    pub fn from_parallel(parallel: &FourChoice) -> Self {
        SequentialFourChoice { schedule: parallel.schedule().stretched(BLOCK) }
    }

    /// Convenience constructor mirroring [`FourChoice::for_graph`].
    pub fn for_graph(n_estimate: usize, degree: usize) -> Self {
        SequentialFourChoice::from_parallel(&FourChoice::for_graph(n_estimate, degree))
    }

    /// The stretched schedule.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }

    /// Rounds until the protocol goes silent (4× the parallel count).
    pub fn total_rounds(&self) -> Round {
        self.schedule.end()
    }

    /// The parallel-model block a sequential round belongs to (1-based).
    fn block_of(t: Round) -> Round {
        t.div_ceil(BLOCK)
    }
}

impl Protocol for SequentialFourChoice {
    type State = ();

    fn init(&self, _creator: bool) -> Self::State {}

    fn choice_policy(&self) -> ChoicePolicy {
        ChoicePolicy::SequentialMemory { window: (BLOCK - 1) as usize }
    }

    fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan {
        let meta = RumorMeta { age: t, counter: 0 };
        match self.schedule.phase(t) {
            // Phase 1: a node informed in block b pushes during every step
            // of block b+1 (the memory makes the four pushes hit four
            // distinct neighbours, emulating one parallel four-choice push).
            Phase::One => {
                let my_block = Self::block_of(view.informed_at);
                // The creator (informed_at == 0) belongs to block 0.
                let my_block = if view.informed_at == 0 { 0 } else { my_block };
                if Self::block_of(t) == my_block + 1 {
                    Plan::push_with(meta)
                } else {
                    Plan::SILENT
                }
            }
            Phase::Two => Plan::push_with(meta),
            Phase::Three => Plan::pull_with(meta),
            Phase::Four => {
                if view.informed_at > self.schedule.phase2_end() {
                    Plan::push_with(meta)
                } else {
                    Plan::SILENT
                }
            }
            Phase::Done => Plan::SILENT,
        }
    }

    fn update(
        &self,
        _state: &mut Self::State,
        _informed_at: Option<Round>,
        _t: Round,
        _obs: &Observation,
    ) {
    }

    fn is_quiescent(&self, _state: &Self::State, _informed_at: Round, t: Round) -> bool {
        self.schedule.is_done(t)
    }

    fn deadline(&self) -> Option<Round> {
        Some(self.schedule.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rrb_engine::{SimConfig, Simulation};
    use rrb_graph::{gen, NodeId};

    fn view(informed_at: Round) -> NodeView<'static, ()> {
        NodeView { informed_at, is_creator: informed_at == 0, state: &() }
    }

    #[test]
    fn creator_pushes_through_first_block() {
        let alg = SequentialFourChoice::for_graph(1 << 12, 8);
        for t in 1..=4 {
            assert!(alg.plan(view(0), t).push, "creator silent at t={t}");
        }
        assert!(!alg.plan(view(0), 5).transmits());
    }

    #[test]
    fn newly_informed_push_in_next_block_only() {
        let alg = SequentialFourChoice::for_graph(1 << 12, 8);
        // Node informed at t=6 (block 2) pushes during block 3 (t=9..=12).
        for t in 7..=8 {
            assert!(!alg.plan(view(6), t).transmits(), "pushed early at {t}");
        }
        for t in 9..=12 {
            assert!(alg.plan(view(6), t).push, "silent at {t}");
        }
        assert!(!alg.plan(view(6), 13).transmits());
    }

    #[test]
    fn uses_memory_policy() {
        let alg = SequentialFourChoice::for_graph(1 << 12, 8);
        assert_eq!(
            alg.choice_policy(),
            ChoicePolicy::SequentialMemory { window: 3 }
        );
    }

    #[test]
    fn completes_broadcast() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 1 << 10;
        let g = gen::random_regular(n, 8, &mut rng).unwrap();
        let alg = SequentialFourChoice::for_graph(n, 8);
        let report = Simulation::new(&g, alg, SimConfig::until_quiescent())
            .run(NodeId::new(0), &mut rng);
        assert!(report.all_informed(), "coverage {}", report.coverage());
    }

    #[test]
    fn transmissions_match_parallel_order() {
        // Sequential and parallel variants should spend a comparable number
        // of transmissions (same asymptotics, footnote 2).
        let n = 1 << 10;
        let mut rng = SmallRng::seed_from_u64(10);
        let g = gen::random_regular(n, 8, &mut rng).unwrap();
        let par = FourChoice::for_graph(n, 8);
        let seq = SequentialFourChoice::from_parallel(&par);
        let rp = Simulation::new(&g, par, SimConfig::until_quiescent())
            .run(NodeId::new(0), &mut rng);
        let rs = Simulation::new(&g, seq, SimConfig::until_quiescent())
            .run(NodeId::new(0), &mut rng);
        assert!(rp.all_informed() && rs.all_informed());
        let ratio = rs.total_tx() as f64 / rp.total_tx() as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "sequential/parallel tx ratio {ratio} out of range"
        );
        // Rounds stretch by exactly 4x (same schedule, stretched).
        assert_eq!(rs.rounds, 4 * rp.rounds);
    }
}
