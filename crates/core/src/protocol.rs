use rrb_engine::{ChoicePolicy, NodeView, Observation, Plan, Protocol, Round, RumorMeta};

use crate::{FourChoiceBuilder, Phase, PhaseSchedule};
#[cfg(test)]
use crate::AlgorithmVariant;

/// The paper's broadcasting algorithm (Algorithm 1 / Algorithm 2) as an
/// engine [`Protocol`].
///
/// All per-node behaviour is a pure function of the global round `t` and the
/// round at which the node first received the rumour, so the protocol is
/// *strictly oblivious* in the paper's sense (decisions depend only on
/// reception times) — it even fits the restricted model the lower bound of
/// Theorem 1 is proved in. In particular, the `active` flag of Phase 4 is
/// exactly "`informed_at` falls in phase 3 or 4" and needs no extra state.
///
/// Construct via [`FourChoice::for_graph`] (all defaults),
/// [`FourChoice::builder`] (full control) or
/// [`FourChoice::with_schedule`] (pre-computed schedule).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FourChoice {
    schedule: PhaseSchedule,
    policy: ChoicePolicy,
}

impl FourChoice {
    /// The paper's algorithm with default parameters for a graph of (true or
    /// estimated) size `n_estimate` and degree `degree`; the variant is
    /// selected automatically from the degree regime.
    pub fn for_graph(n_estimate: usize, degree: usize) -> Self {
        FourChoice::builder(n_estimate, degree).build()
    }

    /// Builder with explicit `α`, regime, estimate accuracy and choice
    /// policy.
    pub fn builder(n_estimate: usize, degree: usize) -> FourChoiceBuilder {
        FourChoiceBuilder::new(n_estimate, degree)
    }

    /// Wraps an explicit schedule with a choice policy (the experiment
    /// harness uses this for the k-choice ablation E6).
    pub fn with_schedule(schedule: PhaseSchedule, policy: ChoicePolicy) -> Self {
        FourChoice { schedule, policy }
    }

    /// The phase schedule in force.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }

    /// Number of rounds the algorithm runs before going silent.
    pub fn total_rounds(&self) -> Round {
        self.schedule.end()
    }
}

impl Protocol for FourChoice {
    type State = ();

    fn init(&self, _creator: bool) -> Self::State {}

    fn choice_policy(&self) -> ChoicePolicy {
        self.policy
    }

    fn plan(&self, view: NodeView<'_, Self::State>, t: Round) -> Plan {
        let meta = RumorMeta { age: t, counter: 0 };
        match self.schedule.phase(t) {
            // Phase 1: "if the message is created or received for the first
            // time in the previous step then push" — the creator received at
            // time 0 and thus pushes in round 1.
            Phase::One => {
                if view.informed_at + 1 == t {
                    Plan::push_with(meta)
                } else {
                    Plan::SILENT
                }
            }
            // Phase 2: "if the node is informed then push".
            Phase::Two => Plan::push_with(meta),
            // Phase 3: "if the node is informed then pull" (serve incoming
            // channels).
            Phase::Three => Plan::pull_with(meta),
            // Phase 4 (Algorithm 1 only): nodes that first received the
            // message during phase 3 or 4 are active and push.
            Phase::Four => {
                if view.informed_at > self.schedule.phase2_end() {
                    Plan::push_with(meta)
                } else {
                    Plan::SILENT
                }
            }
            Phase::Done => Plan::SILENT,
        }
    }

    fn update(
        &self,
        _state: &mut Self::State,
        _informed_at: Option<Round>,
        _t: Round,
        _obs: &Observation,
    ) {
        // All behaviour is derived from `informed_at`; nothing to track.
    }

    fn is_quiescent(&self, _state: &Self::State, informed_at: Round, t: Round) -> bool {
        if self.schedule.is_done(t) {
            return true;
        }
        // A node informed in phase 1 that has already executed its single
        // push is silent until phase 2; it is *not* quiescent (phases 2-4
        // still lie ahead). Only the schedule end quiesces nodes.
        let _ = informed_at;
        false
    }

    fn deadline(&self) -> Option<Round> {
        Some(self.schedule.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rrb_engine::{SimConfig, Simulation, StopReason};
    use rrb_graph::{gen, NodeId};

    fn view(informed_at: Round) -> NodeView<'static, ()> {
        NodeView { informed_at, is_creator: informed_at == 0, state: &() }
    }

    #[test]
    fn phase1_pushes_exactly_once() {
        let alg = FourChoice::for_graph(1 << 14, 8);
        // Creator (informed at 0) pushes in round 1 only.
        assert!(alg.plan(view(0), 1).push);
        assert!(!alg.plan(view(0), 2).transmits());
        // A node informed in round 5 pushes in round 6 only.
        assert!(alg.plan(view(5), 6).push);
        assert!(!alg.plan(view(5), 7).transmits());
        assert!(!alg.plan(view(5), 5).transmits());
    }

    #[test]
    fn phase2_pushes_every_informed_node() {
        let alg = FourChoice::for_graph(1 << 14, 8);
        let t = alg.schedule().phase1_end() + 1;
        assert!(alg.plan(view(0), t).push);
        assert!(alg.plan(view(3), t).push);
        assert!(alg.plan(view(t - 1), t).push);
    }

    #[test]
    fn phase3_serves_pulls() {
        let alg = FourChoice::for_graph(1 << 14, 8);
        let t = alg.schedule().phase2_end() + 1;
        let p = alg.plan(view(0), t);
        assert!(p.pull_serve && !p.push);
    }

    #[test]
    fn phase4_only_active_nodes_push() {
        let alg = FourChoice::builder(1 << 14, 8).force_small_degree().build();
        let s = *alg.schedule();
        let t = s.phase3_end() + 1;
        assert_eq!(s.phase(t), Phase::Four);
        // Informed long ago (phase 1): silent in phase 4.
        assert!(!alg.plan(view(1), t).transmits());
        // Informed during phase 3: active, pushes.
        assert!(alg.plan(view(s.phase3_end()), t).push);
        // Informed during phase 4: active from the next step.
        assert!(alg.plan(view(t), t + 1).push);
    }

    #[test]
    fn silent_and_quiescent_after_deadline() {
        let alg = FourChoice::for_graph(1 << 10, 8);
        let t = alg.schedule().end() + 1;
        assert!(!alg.plan(view(0), t).transmits());
        assert!(alg.is_quiescent(&(), 0, t));
        assert!(!alg.is_quiescent(&(), 0, 1));
        assert_eq!(alg.deadline(), Some(alg.schedule().end()));
    }

    #[test]
    fn four_choice_policy_by_default() {
        let alg = FourChoice::for_graph(1 << 12, 8);
        assert_eq!(alg.choice_policy(), ChoicePolicy::FOUR);
    }

    #[test]
    fn broadcast_completes_on_random_regular_small_degree() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 1 << 11;
        let g = gen::random_regular(n, 8, &mut rng).unwrap();
        let alg = FourChoice::for_graph(n, 8);
        let report = Simulation::new(&g, alg, SimConfig::until_quiescent())
            .run(NodeId::new(0), &mut rng);
        assert!(report.all_informed(), "coverage {}", report.coverage());
        assert_eq!(report.stop, StopReason::Quiescent);
        // O(n log log n): per-node cost is ~4 (phase-1 push) plus
        // 4·α·log log n (phase 2) plus O(1) for phases 3-4; a 10x·loglog
        // envelope comfortably certifies the scaling without flakiness.
        let loglog = (n as f64).log2().log2();
        assert!(
            report.tx_per_node() < 10.0 * loglog,
            "tx/node {} too large",
            report.tx_per_node()
        );
    }

    #[test]
    fn broadcast_completes_on_random_regular_large_degree() {
        let mut rng = SmallRng::seed_from_u64(43);
        let n = 1 << 11;
        let g = gen::random_regular(n, 16, &mut rng).unwrap();
        let alg = FourChoice::builder(n, 16).build();
        assert_eq!(alg.schedule().variant(), AlgorithmVariant::LargeDegree);
        let report = Simulation::new(&g, alg, SimConfig::until_quiescent())
            .run(NodeId::new(7), &mut rng);
        assert!(report.all_informed(), "coverage {}", report.coverage());
    }

    #[test]
    fn broadcast_completes_on_raw_configuration_model() {
        // The paper analyses the algorithm directly on the (possibly
        // non-simple) pairing-model output.
        let mut rng = SmallRng::seed_from_u64(44);
        let n = 1 << 11;
        let g = gen::configuration_model(n, 8, &mut rng).unwrap();
        let alg = FourChoice::for_graph(n, 8);
        let report = Simulation::new(&g, alg, SimConfig::until_quiescent())
            .run(NodeId::new(0), &mut rng);
        assert!(report.coverage() > 0.999, "coverage {}", report.coverage());
    }

    #[test]
    fn tolerates_rough_size_estimates() {
        // §1.2: an estimate accurate within a constant factor suffices.
        let mut rng = SmallRng::seed_from_u64(45);
        let n = 1 << 11;
        let g = gen::random_regular(n, 8, &mut rng).unwrap();
        for factor in [2, 4] {
            let alg = FourChoice::for_graph(n * factor, 8);
            let report = Simulation::new(&g, alg, SimConfig::until_quiescent())
                .run(NodeId::new(0), &mut rng);
            assert!(
                report.all_informed(),
                "failed with estimate {}x: coverage {}",
                factor,
                report.coverage()
            );
        }
    }
}
