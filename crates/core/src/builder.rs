use rrb_engine::ChoicePolicy;

use crate::{DegreeRegime, FourChoice, PhaseSchedule};

/// Builder for [`FourChoice`], exposing every knob the paper discusses.
///
/// ```
/// use rrb_core::{AlgorithmVariant, FourChoice};
///
/// let alg = FourChoice::builder(1 << 14, 8)
///     .alpha(2.5)
///     .force_small_degree()
///     .build();
/// assert_eq!(alg.schedule().variant(), AlgorithmVariant::SmallDegree);
/// ```
#[derive(Debug, Clone)]
pub struct FourChoiceBuilder {
    n_estimate: usize,
    degree: usize,
    alpha: f64,
    regime: DegreeRegime,
    policy: ChoicePolicy,
}

impl FourChoiceBuilder {
    /// Starts a builder for a network of estimated size `n_estimate` (a
    /// constant-factor estimate suffices, §1.2) and degree `degree`.
    pub fn new(n_estimate: usize, degree: usize) -> Self {
        FourChoiceBuilder {
            n_estimate,
            degree,
            alpha: 1.5,
            regime: DegreeRegime::default(),
            policy: ChoicePolicy::FOUR,
        }
    }

    /// Sets the schedule constant `α` (default 1.5). The theory wants `α`
    /// "sufficiently large"; empirically values ≥ 1 complete reliably on the
    /// degrees the paper covers, and larger `α` trades rounds for safety
    /// margin.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides the automatic degree-regime selection.
    pub fn regime(mut self, regime: DegreeRegime) -> Self {
        self.regime = regime;
        self
    }

    /// Forces Algorithm 1 (four phases, small-degree analysis).
    pub fn force_small_degree(self) -> Self {
        self.regime(DegreeRegime::ForceSmall)
    }

    /// Forces Algorithm 2 (three phases, large-degree analysis).
    pub fn force_large_degree(self) -> Self {
        self.regime(DegreeRegime::ForceLarge)
    }

    /// Replaces the four-distinct-choices policy — the k-choice ablation
    /// (experiment E6: are four choices necessary?) sets `Distinct(k)` here.
    pub fn choice_policy(mut self, policy: ChoicePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Finalises the algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0` or `n_estimate < 2` (via
    /// [`PhaseSchedule::new`]).
    pub fn build(self) -> FourChoice {
        let variant = self.regime.resolve(self.n_estimate, self.degree);
        let schedule = PhaseSchedule::new(self.n_estimate, self.alpha, variant);
        FourChoice::with_schedule(schedule, self.policy)
    }
}

#[cfg(test)]
impl FourChoice {
    /// Test helper exposing the policy without going through the Protocol
    /// trait.
    pub(crate) fn choice_policy_public(&self) -> ChoicePolicy {
        use rrb_engine::Protocol as _;
        self.choice_policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlgorithmVariant;

    #[test]
    fn defaults() {
        let alg = FourChoiceBuilder::new(1 << 16, 8).build();
        assert_eq!(alg.choice_policy_public(), ChoicePolicy::FOUR);
        assert_eq!(alg.schedule().variant(), AlgorithmVariant::SmallDegree);
    }

    #[test]
    fn regime_overrides() {
        let alg = FourChoiceBuilder::new(1 << 16, 8).force_large_degree().build();
        assert_eq!(alg.schedule().variant(), AlgorithmVariant::LargeDegree);
        let alg = FourChoiceBuilder::new(1 << 16, 64).force_small_degree().build();
        assert_eq!(alg.schedule().variant(), AlgorithmVariant::SmallDegree);
    }

    #[test]
    fn alpha_scales_schedule() {
        let short = FourChoiceBuilder::new(1 << 12, 8).alpha(1.0).build();
        let long = FourChoiceBuilder::new(1 << 12, 8).alpha(3.0).build();
        assert!(long.total_rounds() > 2 * short.total_rounds());
    }

    #[test]
    fn custom_policy() {
        let alg = FourChoiceBuilder::new(1 << 12, 8)
            .choice_policy(ChoicePolicy::Distinct(2))
            .build();
        assert_eq!(alg.choice_policy_public(), ChoicePolicy::Distinct(2));
    }
}
