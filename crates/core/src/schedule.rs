use rrb_engine::Round;

/// Which of the paper's two algorithms the schedule encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmVariant {
    /// Algorithm 1, for small degrees `δ ≤ d ≤ δ·log log n`: four phases,
    /// with a single-step pull phase and an active-push phase 4.
    SmallDegree,
    /// Algorithm 2, for large degrees `δ·log log n ≤ d ≤ δ·log n`: three
    /// phases, the third being an `≈ α·log log n`-step pull phase.
    LargeDegree,
}

/// How the degree regime (and thus the algorithm variant) is selected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegreeRegime {
    /// Pick [`AlgorithmVariant::SmallDegree`] when
    /// `d <= delta * log2(log2 n)`, else the large-degree variant. The paper
    /// leaves `δ` a "sufficiently large constant"; 3.0 matches the regimes
    /// the experiments sweep.
    Auto {
        /// Threshold multiplier `δ`.
        delta: f64,
    },
    /// Force Algorithm 1.
    ForceSmall,
    /// Force Algorithm 2.
    ForceLarge,
}

impl Default for DegreeRegime {
    fn default() -> Self {
        DegreeRegime::Auto { delta: 3.0 }
    }
}

impl DegreeRegime {
    /// Resolves the regime for a graph with estimated size `n_estimate` and
    /// degree `d`.
    pub fn resolve(&self, n_estimate: usize, degree: usize) -> AlgorithmVariant {
        match *self {
            DegreeRegime::ForceSmall => AlgorithmVariant::SmallDegree,
            DegreeRegime::ForceLarge => AlgorithmVariant::LargeDegree,
            DegreeRegime::Auto { delta } => {
                let loglog = log2(n_estimate.max(4) as f64).log2().max(1.0);
                if (degree as f64) <= delta * loglog {
                    AlgorithmVariant::SmallDegree
                } else {
                    AlgorithmVariant::LargeDegree
                }
            }
        }
    }
}

/// The phase a given round belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Exponential-growth phase: newly informed nodes push once.
    One,
    /// Saturation phase: every informed node pushes.
    Two,
    /// Pull phase (one step in Algorithm 1, `≈ α·log log n` steps in
    /// Algorithm 2): informed nodes answer incoming channels.
    Three,
    /// Active-push phase (Algorithm 1 only): nodes informed during phases
    /// 3–4 push.
    Four,
    /// The schedule has ended; the protocol is silent and quiescent.
    Done,
}

/// Round-to-phase mapping computed from `α` and the size estimate, exactly
/// following the boundaries printed in the paper's Algorithm 1/Algorithm 2
/// listings.
///
/// `log` is base 2 throughout; the paper only requires Θ(log n) and the
/// constant is absorbed by `α`. All boundaries are *inclusive* ends.
///
/// ```
/// use rrb_core::{AlgorithmVariant, Phase, PhaseSchedule};
/// let s = PhaseSchedule::new(1 << 14, 2.0, AlgorithmVariant::SmallDegree);
/// assert_eq!(s.phase(1), Phase::One);
/// assert_eq!(s.phase(s.phase1_end()), Phase::One);
/// assert_eq!(s.phase(s.phase2_end() + 1), Phase::Three);
/// assert_eq!(s.phase(s.end() + 1), Phase::Done);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhaseSchedule {
    variant: AlgorithmVariant,
    /// End of Phase 1: `⌈α·log n⌉`.
    t1: Round,
    /// End of Phase 2: `⌈α(log n + log log n)⌉`.
    t2: Round,
    /// End of Phase 3: `t2 + 1` (Alg. 1) or `⌈α·log n + 2α·log log n⌉` (Alg. 2).
    t3: Round,
    /// End of Phase 4 (Alg. 1): `2⌈α·log n⌉ + ⌈α·log log n⌉`; equals `t3`
    /// for Algorithm 2.
    t4: Round,
}

fn log2(x: f64) -> f64 {
    x.log2()
}

impl PhaseSchedule {
    /// Builds the schedule for an estimated network size (accurate to within
    /// a constant factor suffices, §1.2), a constant `α > 0` and a variant.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0` or `n_estimate < 2`.
    pub fn new(n_estimate: usize, alpha: f64, variant: AlgorithmVariant) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(n_estimate >= 2, "n_estimate must be at least 2");
        let log_n = log2(n_estimate as f64);
        // For tiny n, log log n dips below 1; clamp so every phase exists.
        let loglog_n = log_n.log2().max(1.0);
        let t1 = (alpha * log_n).ceil() as Round;
        let t2 = (alpha * (log_n + loglog_n)).ceil() as Round;
        let (t3, t4) = match variant {
            AlgorithmVariant::SmallDegree => {
                let t3 = t2 + 1;
                let t4 = 2 * t1 + (alpha * loglog_n).ceil() as Round;
                // The paper assumes α large enough that phase 4 is nonempty;
                // guard the degenerate corner for tiny n.
                (t3, t4.max(t3))
            }
            AlgorithmVariant::LargeDegree => {
                let t3 = (alpha * log_n + 2.0 * alpha * loglog_n).ceil() as Round;
                let t3 = t3.max(t2 + 1);
                (t3, t3)
            }
        };
        PhaseSchedule { variant, t1, t2, t3, t4 }
    }

    /// Variant encoded by this schedule.
    pub fn variant(&self) -> AlgorithmVariant {
        self.variant
    }

    /// Inclusive last round of Phase 1 (`⌈α·log n⌉`).
    pub fn phase1_end(&self) -> Round {
        self.t1
    }

    /// Inclusive last round of Phase 2 (`⌈α(log n + log log n)⌉`).
    pub fn phase2_end(&self) -> Round {
        self.t2
    }

    /// Inclusive last round of Phase 3.
    pub fn phase3_end(&self) -> Round {
        self.t3
    }

    /// Inclusive last round of the whole schedule.
    pub fn end(&self) -> Round {
        self.t4
    }

    /// Phase of round `t` (rounds are 1-based).
    pub fn phase(&self, t: Round) -> Phase {
        if t == 0 || t <= self.t1 {
            if t == 0 {
                // Round 0 is rumour creation; treat as phase 1 for
                // robustness of callers that probe t=0.
                return Phase::One;
            }
            Phase::One
        } else if t <= self.t2 {
            Phase::Two
        } else if t <= self.t3 {
            Phase::Three
        } else if t <= self.t4 {
            Phase::Four
        } else {
            Phase::Done
        }
    }

    /// `true` once round `t` is past the schedule.
    pub fn is_done(&self, t: Round) -> bool {
        t > self.t4
    }

    /// Returns a copy of the schedule with every boundary multiplied by
    /// `factor` — used by the sequentialised variant, where four fanout-1
    /// steps emulate one four-choice step (footnote 2).
    pub fn stretched(&self, factor: Round) -> PhaseSchedule {
        // Phase 3 of Algorithm 1 is "one parallel step" = `factor`
        // sequential steps; scaling every boundary achieves exactly that.
        PhaseSchedule {
            variant: self.variant,
            t1: self.t1 * factor,
            t2: self.t2 * factor,
            t3: self.t3 * factor,
            t4: self.t4 * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_match_paper_formulas() {
        let n = 1usize << 16; // log2 = 16, loglog = 4
        let alpha = 2.0;
        let s = PhaseSchedule::new(n, alpha, AlgorithmVariant::SmallDegree);
        assert_eq!(s.phase1_end(), (2.0f64 * 16.0).ceil() as Round); // 32
        assert_eq!(s.phase2_end(), (2.0f64 * 20.0).ceil() as Round); // 40
        assert_eq!(s.phase3_end(), 41); // single pull step
        assert_eq!(s.end(), 2 * 32 + 8); // 72

        let s2 = PhaseSchedule::new(n, alpha, AlgorithmVariant::LargeDegree);
        assert_eq!(s2.phase1_end(), 32);
        assert_eq!(s2.phase2_end(), 40);
        assert_eq!(s2.phase3_end(), (2.0f64 * 16.0 + 2.0 * 2.0 * 4.0).ceil() as Round); // 48
        assert_eq!(s2.end(), s2.phase3_end());
    }

    #[test]
    fn every_round_has_exactly_one_phase() {
        for variant in [AlgorithmVariant::SmallDegree, AlgorithmVariant::LargeDegree] {
            let s = PhaseSchedule::new(4096, 1.5, variant);
            let mut seen_done = false;
            let mut last = Phase::One;
            for t in 1..=s.end() + 5 {
                let p = s.phase(t);
                // Phases appear in order and never regress.
                let rank = |p: Phase| match p {
                    Phase::One => 0,
                    Phase::Two => 1,
                    Phase::Three => 2,
                    Phase::Four => 3,
                    Phase::Done => 4,
                };
                assert!(rank(p) >= rank(last), "phase regressed at t={t}");
                last = p;
                if p == Phase::Done {
                    seen_done = true;
                    assert!(s.is_done(t));
                } else {
                    assert!(!s.is_done(t));
                }
            }
            assert!(seen_done);
        }
    }

    #[test]
    fn small_degree_phase3_is_one_step() {
        let s = PhaseSchedule::new(1 << 12, 2.5, AlgorithmVariant::SmallDegree);
        assert_eq!(s.phase3_end(), s.phase2_end() + 1);
        assert_eq!(s.phase(s.phase3_end()), Phase::Three);
        assert_eq!(s.phase(s.phase3_end() + 1), Phase::Four);
    }

    #[test]
    fn large_degree_has_no_phase_four() {
        let s = PhaseSchedule::new(1 << 12, 2.5, AlgorithmVariant::LargeDegree);
        for t in 1..=s.end() + 3 {
            assert_ne!(s.phase(t), Phase::Four);
        }
        assert_eq!(s.end(), s.phase3_end());
    }

    #[test]
    fn regime_resolution() {
        // n = 2^16: loglog = 4. delta = 3 => threshold 12.
        let auto = DegreeRegime::default();
        assert_eq!(auto.resolve(1 << 16, 8), AlgorithmVariant::SmallDegree);
        assert_eq!(auto.resolve(1 << 16, 12), AlgorithmVariant::SmallDegree);
        assert_eq!(auto.resolve(1 << 16, 16), AlgorithmVariant::LargeDegree);
        assert_eq!(
            DegreeRegime::ForceSmall.resolve(1 << 16, 64),
            AlgorithmVariant::SmallDegree
        );
        assert_eq!(
            DegreeRegime::ForceLarge.resolve(1 << 16, 4),
            AlgorithmVariant::LargeDegree
        );
    }

    #[test]
    fn stretched_multiplies_everything() {
        let s = PhaseSchedule::new(1 << 10, 2.0, AlgorithmVariant::SmallDegree);
        let q = s.stretched(4);
        assert_eq!(q.phase1_end(), 4 * s.phase1_end());
        assert_eq!(q.phase2_end(), 4 * s.phase2_end());
        assert_eq!(q.phase3_end(), 4 * s.phase3_end());
        assert_eq!(q.end(), 4 * s.end());
    }

    #[test]
    fn schedule_length_scales_logarithmically() {
        let len = |n: usize| {
            PhaseSchedule::new(n, 2.0, AlgorithmVariant::SmallDegree).end() as f64
        };
        // Doubling n adds ~2α rounds, so len(2^20)/len(2^10) ≈ 2.
        let ratio = len(1 << 20) / len(1 << 10);
        assert!(ratio > 1.5 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_nonpositive_alpha() {
        let _ = PhaseSchedule::new(64, 0.0, AlgorithmVariant::SmallDegree);
    }

    #[test]
    #[should_panic(expected = "n_estimate")]
    fn rejects_tiny_estimate() {
        let _ = PhaseSchedule::new(1, 2.0, AlgorithmVariant::SmallDegree);
    }
}
