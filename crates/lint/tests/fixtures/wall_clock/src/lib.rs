#![forbid(unsafe_code)]
// Fixture: no-wall-clock. Instant and SystemTime are flagged wherever
// they appear outside an allowlisted file.

use std::time::Instant;

pub fn elapsed_ms() -> u128 {
    let start = Instant::now();
    start.elapsed().as_millis()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
