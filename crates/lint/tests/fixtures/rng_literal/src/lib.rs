#![forbid(unsafe_code)]
// Fixture: rng-stream-discipline. A bare literal stream argument and a
// duplicated reserved-stream value must both be flagged; named constants
// and `^ seed` derivations must not.

pub const TOPOLOGY_STREAM: u64 = 0x7070_1070;
pub const CLONE_STREAM: u64 = 0x7070_1070;

pub fn run(seed: u64) -> u64 {
    let a = rng_for(1, 2, 42);
    let b = rng_for(1, 2, TOPOLOGY_STREAM);
    let c = rng_for(1, 2, CLONE_STREAM ^ seed);
    let d = rng_for(1, 2, seed);
    a + b + c + d
}

fn rng_for(_experiment: u64, _config_ix: u64, stream: u64) -> u64 {
    stream
}
