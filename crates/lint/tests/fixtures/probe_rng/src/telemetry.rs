// Fixture: probe-rng-separation. A telemetry module must never name the
// RNG machinery — instrumented runs must stay byte-identical.

use rand::Rng;

pub fn probe_seed(seed: u64) -> u64 {
    rng_for(1, 2, seed)
}
