// Fixture: probe-rng-separation applies to RoundProbe impl blocks in
// any file, not just telemetry.rs.

pub struct Timings {
    rounds: u32,
}

impl RoundProbe for Timings {
    fn on_round(&mut self) {
        let _rng = SmallRng::seed_from_u64(7);
        self.rounds += 1;
    }
}

pub struct Quiet;

impl Display for Quiet {
    fn fmt(&self) -> SmallRng {
        unreachable_but_not_flagged()
    }
}
