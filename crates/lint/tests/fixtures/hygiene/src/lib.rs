// Fixture: crate-hygiene. This crate root is missing
// #![forbid(unsafe_code)] and must be flagged on line 1.

pub fn fine() {}
