#![forbid(unsafe_code)]
// Fixture: a file exercising every rule's *allowed* side. Must produce
// zero diagnostics: named stream constants with distinct values, seed
// derivations, cfg(test)-gated wall-clock/literal use, banned names
// appearing only in strings and comments, and an unannotated allocating
// function.

pub const TOPOLOGY_STREAM: u64 = 0x7070_1070;
pub const FAULT_STREAM: u64 = 0xFA17_07A1;

/// Doc prose may mention Instant, HashMap, thread_rng and the
/// `// rrb-lint: hot` marker syntax without tripping anything.
pub fn run(seed: u64) -> u64 {
    let banned_only_in_strings = "Instant::now() HashMap thread_rng rng_for(1, 2, 3)";
    let t = rng_for(9, 0, TOPOLOGY_STREAM);
    let f = rng_for(9, 0, FAULT_STREAM ^ seed);
    let s = rng_for(9, 0, seed);
    t + f + s + banned_only_in_strings.len() as u64
}

pub fn allocates_but_not_hot() -> String {
    format!("{:?}", vec![TOPOLOGY_STREAM])
}

fn rng_for(_experiment: u64, _config_ix: u64, stream: u64) -> u64 {
    stream
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn test_code_is_exempt() {
        let _ = Instant::now();
        let _ = super::rng_for(1, 2, 3);
        let _: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    }
}
