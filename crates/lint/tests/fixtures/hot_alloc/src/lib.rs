#![forbid(unsafe_code)]
// Fixture: hot-path-alloc. The annotated function allocates three ways;
// the unannotated one below must not be flagged.

// rrb-lint: hot
pub fn step(xs: &mut Vec<u32>, scratch: &mut String) -> usize {
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
    let boxed = Box::new(doubled.len());
    scratch.push_str(&format!("{boxed}"));
    *boxed
}

pub fn cold() -> Vec<u32> {
    let mut v = Vec::new();
    v.push(1);
    v
}
