// Fixture: rng-stream-discipline, cross-file half. A shard-layer stream
// constant reusing the bench layer's topology value must be flagged by
// the pairwise-distinctness pass even though each file is locally clean.

pub const SHARD_STREAM: u64 = 0x7070_1070;

pub fn stream() -> u64 {
    SHARD_STREAM
}
