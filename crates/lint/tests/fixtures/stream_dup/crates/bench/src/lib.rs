#![forbid(unsafe_code)]
// Fixture: rng-stream-discipline, cross-file half. Mirrors the real
// repo's reserved topology stream; on its own this file is clean.

pub const TOPOLOGY_STREAM: u64 = 0x7070_1070;

pub fn stream() -> u64 {
    TOPOLOGY_STREAM
}
