// Fixture: no-ambient-randomness. Hash collections and ambient RNGs are
// banned under crates/engine/src and crates/graph/src.

use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *seen.entry(x).or_insert(0) += 1;
    }
    let jitter: u64 = rand::random();
    seen.len() + thread_rng().next_u32() as usize + jitter as usize
}
