//! Fixture-driven rule tests: each known-bad tree under
//! `tests/fixtures/` must produce exactly the expected
//! (rule, line) diagnostics, and the known-clean tree none. Fixture
//! trees are plain directories (never compiled, never scanned by the
//! workspace lint — the walker skips `fixtures/` dirs).

use std::path::PathBuf;

use rrb_lint::{lint_root, AllowEntry, Diag};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn lint_fixture(name: &str) -> Vec<Diag> {
    lint_root(&fixture_root(name), &[]).expect("fixture lints")
}

/// Asserts the fixture produces exactly `expected` as (rule, path, line)
/// triples, in the engine's sorted order.
fn assert_diags(name: &str, expected: &[(&str, &str, u32)]) {
    let got: Vec<(String, String, u32)> = lint_fixture(name)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.path, d.line))
        .collect();
    let want: Vec<(String, String, u32)> = expected
        .iter()
        .map(|(r, p, l)| (r.to_string(), p.to_string(), *l))
        .collect();
    assert_eq!(got, want, "fixture {name}");
}

#[test]
fn rng_literal_fixture() {
    assert_diags(
        "rng_literal",
        &[
            // Duplicate stream value (CLONE_STREAM repeats TOPOLOGY_STREAM)…
            ("rng-stream-discipline", "src/lib.rs", 7),
            // …and the bare-literal stream argument.
            ("rng-stream-discipline", "src/lib.rs", 10),
        ],
    );
}

#[test]
fn stream_dup_fixture() {
    // Cross-file collision: each file is locally clean, but the engine's
    // shard stream reuses the bench topology stream's value, so the
    // pairwise-distinctness pass fires on the later-collected constant
    // (files are scanned in sorted path order) and cites the earlier one.
    assert_diags(
        "stream_dup",
        &[("rng-stream-discipline", "crates/engine/src/shard.rs", 5)],
    );
    let diag = &lint_fixture("stream_dup")[0];
    assert!(
        diag.msg.contains("SHARD_STREAM")
            && diag.msg.contains("TOPOLOGY_STREAM")
            && diag.msg.contains("crates/bench/src/lib.rs"),
        "collision message must cite both constants: {}",
        diag.msg
    );
}

#[test]
fn wall_clock_fixture() {
    assert_diags(
        "wall_clock",
        &[
            ("no-wall-clock", "src/lib.rs", 5),
            ("no-wall-clock", "src/lib.rs", 8),
            ("no-wall-clock", "src/lib.rs", 12),
            ("no-wall-clock", "src/lib.rs", 13),
        ],
    );
}

#[test]
fn ambient_rand_fixture() {
    assert_diags(
        "ambient_rand",
        &[
            ("no-ambient-randomness", "crates/engine/src/state.rs", 4),
            ("no-ambient-randomness", "crates/engine/src/state.rs", 7),
            ("no-ambient-randomness", "crates/engine/src/state.rs", 11),
            ("no-ambient-randomness", "crates/engine/src/state.rs", 12),
        ],
    );
}

#[test]
fn probe_rng_fixture() {
    assert_diags(
        "probe_rng",
        &[
            // RoundProbe impl block in a non-telemetry file…
            ("probe-rng-separation", "src/probe.rs", 10),
            // …and the telemetry.rs whole-file ban. The Display impl in
            // probe.rs that mentions SmallRng is *not* flagged.
            ("probe-rng-separation", "src/telemetry.rs", 4),
            ("probe-rng-separation", "src/telemetry.rs", 7),
        ],
    );
}

#[test]
fn hygiene_fixture() {
    assert_diags("hygiene", &[("crate-hygiene", "src/lib.rs", 1)]);
}

#[test]
fn hot_alloc_fixture() {
    assert_diags(
        "hot_alloc",
        &[
            ("hot-path-alloc", "src/lib.rs", 7),
            ("hot-path-alloc", "src/lib.rs", 8),
            ("hot-path-alloc", "src/lib.rs", 9),
        ],
    );
}

#[test]
fn clean_fixture_is_clean() {
    assert_diags("clean", &[]);
}

#[test]
fn allowlist_suppresses_matching_diags() {
    let allow = vec![AllowEntry {
        rule: "no-wall-clock".to_string(),
        path: "src/lib.rs".to_string(),
        reason: "fixture".to_string(),
        line: 1,
    }];
    let diags = lint_root(&fixture_root("wall_clock"), &allow).unwrap();
    assert!(diags.is_empty(), "allowlisted fixture must lint clean, got {diags:?}");
}

#[test]
fn unused_allowlist_entry_is_reported_stale() {
    let allow = vec![AllowEntry {
        rule: "no-ambient-randomness".to_string(),
        path: "src/nonexistent.rs".to_string(),
        reason: "fixture".to_string(),
        line: 3,
    }];
    let diags = lint_root(&fixture_root("clean"), &allow).unwrap();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, rrb_lint::STALE_ALLOW);
    assert_eq!(diags[0].path, "lint-allow.toml");
    assert_eq!(diags[0].line, 3);
}

#[test]
fn every_rule_has_fixture_coverage() {
    // The acceptance bar: all six rules demonstrably fire. Collect every
    // rule id seen across the bad fixtures and compare with the registry.
    let mut seen: Vec<&str> = [
        "rng_literal",
        "stream_dup",
        "wall_clock",
        "ambient_rand",
        "probe_rng",
        "hygiene",
        "hot_alloc",
    ]
        .iter()
        .flat_map(|f| lint_fixture(f))
        .map(|d| d.rule)
        .collect();
    seen.sort_unstable();
    seen.dedup();
    let mut want = rrb_lint::RULE_IDS.to_vec();
    want.sort_unstable();
    assert_eq!(seen, want);
}
