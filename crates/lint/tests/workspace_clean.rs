//! The real workspace must lint clean under its committed allowlist —
//! the same invariant the CI `lint` job enforces with
//! `rrb-lint --deny`, asserted here so `cargo test` catches a
//! discipline regression (or a stale allowlist entry) without CI.

use std::path::PathBuf;

#[test]
fn workspace_lints_clean_under_committed_allowlist() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    assert!(root.join("Cargo.toml").exists(), "not a workspace root: {}", root.display());
    let allow = rrb_lint::load_allowlist(&root).expect("lint-allow.toml parses");
    assert!(
        !allow.is_empty(),
        "expected the committed allowlist (telemetry/bench wall-clock entries)"
    );
    let diags = rrb_lint::lint_root(&root, &allow).expect("workspace lints");
    let rendered: Vec<String> = diags
        .iter()
        .map(|d| format!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.msg))
        .collect();
    assert!(
        diags.is_empty(),
        "workspace must lint clean; run `cargo run --release --bin rrb-lint` locally.\n{}",
        rendered.join("\n")
    );
}
