//! `rrb-lint` — determinism-discipline static analysis over the
//! workspace (see the `rrb_lint` crate docs for the rule table).
//!
//! ```text
//! rrb-lint [--root DIR] [--allow FILE] [--deny] [--json]
//! ```
//!
//! * `--root DIR`   directory to lint (default `.`; `vendor/`, `target/`,
//!   `examples/`, `benches/` and fixture trees are skipped)
//! * `--allow FILE` allowlist (default `<root>/lint-allow.toml` if present)
//! * `--deny`       exit non-zero when any diagnostic survives (CI mode)
//! * `--json`       machine-readable diagnostics on stdout
//!
//! Exit codes: 0 clean (or diagnostics without `--deny`), 1 diagnostics
//! under `--deny`, 2 usage or allowlist errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut deny = false;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--allow" => match it.next() {
                Some(file) => allow_path = Some(PathBuf::from(file)),
                None => return usage("--allow needs a file"),
            },
            "--deny" => deny = true,
            "--json" => json = true,
            "-h" | "--help" => {
                println!(
                    "usage: rrb-lint [--root DIR] [--allow FILE] [--deny] [--json]\n\
                     determinism-discipline static analysis; rules: {}",
                    rrb_lint::RULE_IDS.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let allow = match allow_path {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => match rrb_lint::parse_allowlist(&text) {
                Ok(entries) => entries,
                Err(e) => return fail_config(&format!("{}: {e}", path.display())),
            },
            Err(e) => return fail_config(&format!("cannot read {}: {e}", path.display())),
        },
        None => match rrb_lint::load_allowlist(&root) {
            Ok(entries) => entries,
            Err(e) => return fail_config(&e),
        },
    };

    let diags = match rrb_lint::lint_root(&root, &allow) {
        Ok(diags) => diags,
        Err(e) => return fail_config(&e),
    };

    if json {
        println!("{}", rrb_lint::diags_to_json(&diags));
    } else {
        for d in &diags {
            println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.msg);
        }
        if diags.is_empty() {
            eprintln!("rrb-lint: clean ({} allowlist entries honoured)", allow.len());
        } else {
            eprintln!("rrb-lint: {} diagnostic(s)", diags.len());
        }
    }
    if deny && !diags.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("rrb-lint: {msg}\nusage: rrb-lint [--root DIR] [--allow FILE] [--deny] [--json]");
    ExitCode::from(2)
}

fn fail_config(msg: &str) -> ExitCode {
    eprintln!("rrb-lint: {msg}");
    ExitCode::from(2)
}
