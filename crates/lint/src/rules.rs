//! The six determinism-discipline rules.
//!
//! Every rule is a lexical pass over one file's token stream (test
//! modules already stripped); `rng-stream-discipline` additionally runs
//! a cross-file pass over the collected `*_STREAM` constants. See the
//! crate docs for the rule table and the rationale of each convention.

use crate::lex::{Spanned, Tok};

/// One diagnostic: `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Path relative to the linted root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (one of [`RULE_IDS`] or [`STALE_ALLOW`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

/// All allowlistable rule identifiers.
pub const RULE_IDS: [&str; 6] = [
    "rng-stream-discipline",
    "no-wall-clock",
    "no-ambient-randomness",
    "probe-rng-separation",
    "crate-hygiene",
    "hot-path-alloc",
];

/// Pseudo-rule reported against the allowlist file itself when an entry
/// matched no diagnostic. Deliberately not allowlistable.
pub const STALE_ALLOW: &str = "stale-allow";

/// A reserved-stream constant collected for the cross-file pairwise
/// distinctness check.
#[derive(Debug, Clone)]
pub struct StreamConst {
    /// Constant name (ends in `_STREAM`).
    pub name: String,
    /// Parsed u64 value.
    pub value: u64,
    /// File the constant is declared in.
    pub path: String,
    /// Declaration line.
    pub line: u32,
}

/// Runs every per-file rule over one tokenized file, appending
/// diagnostics to `diags` and reserved-stream constants to `streams`.
/// `rel` is the `/`-separated path relative to the linted root.
pub fn check_file(rel: &str, toks: &[Spanned], diags: &mut Vec<Diag>, streams: &mut Vec<StreamConst>) {
    let code: Vec<&Spanned> = toks.iter().filter(|s| !matches!(s.tok, Tok::Comment(_))).collect();
    rng_stream_discipline(rel, &code, diags, streams);
    no_wall_clock(rel, &code, diags);
    no_ambient_randomness(rel, &code, diags);
    probe_rng_separation(rel, &code, diags);
    crate_hygiene(rel, &code, diags);
    hot_path_alloc(rel, toks, diags);
    dedupe(diags);
}

fn push(diags: &mut Vec<Diag>, path: &str, line: u32, rule: &'static str, msg: String) {
    diags.push(Diag { path: path.to_string(), line, rule, msg });
}

/// Collapses diagnostics that share (path, line, rule) — e.g. a
/// `use`-list naming two banned types, or overlapping scans of the same
/// token.
fn dedupe(diags: &mut Vec<Diag>) {
    let mut seen: Vec<(String, u32, &'static str)> = Vec::new();
    diags.retain(|d| {
        let key = (d.path.clone(), d.line, d.rule);
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
}

fn ident_at<'t>(code: &'t [&Spanned], i: usize) -> Option<&'t str> {
    match code.get(i).map(|s| &s.tok) {
        Some(Tok::Ident(t)) => Some(t.as_str()),
        _ => None,
    }
}

fn punct_at(code: &[&Spanned], i: usize, c: char) -> bool {
    matches!(code.get(i).map(|s| &s.tok), Some(Tok::Punct(p)) if *p == c)
}

// ---------------------------------------------------------------------------
// Rule 1: rng-stream-discipline
// ---------------------------------------------------------------------------

/// Every `rng_for(…)` call site's stream argument (the last argument)
/// must involve a named value — a `*_STREAM` constant, a seed variable,
/// or a derivation like `FAULT_STREAM ^ s` — never a bare integer
/// literal, which silently collides with whatever stream happens to
/// share the value. Also collects `const *_STREAM: u64 = …;` values for
/// the cross-file distinctness check.
fn rng_stream_discipline(
    rel: &str,
    code: &[&Spanned],
    diags: &mut Vec<Diag>,
    streams: &mut Vec<StreamConst>,
) {
    for i in 0..code.len() {
        // const <NAME>_STREAM: u64 = <int>;
        if ident_at(code, i) == Some("const") {
            if let Some(name) = ident_at(code, i + 1) {
                if name.ends_with("_STREAM")
                    && punct_at(code, i + 2, ':')
                    && ident_at(code, i + 3) == Some("u64")
                    && punct_at(code, i + 4, '=')
                {
                    if let Some(Tok::Int(raw)) = code.get(i + 5).map(|s| &s.tok) {
                        match parse_u64(raw) {
                            Some(value) => streams.push(StreamConst {
                                name: name.to_string(),
                                value,
                                path: rel.to_string(),
                                line: code[i + 1].line,
                            }),
                            None => push(
                                diags,
                                rel,
                                code[i + 5].line,
                                "rng-stream-discipline",
                                format!("cannot parse stream constant value `{raw}`"),
                            ),
                        }
                    }
                }
            }
        }
        // rng_for( … ) call sites, skipping the definition itself.
        if ident_at(code, i) == Some("rng_for")
            && punct_at(code, i + 1, '(')
            && ident_at(code, i.wrapping_sub(1)) != Some("fn")
        {
            let Some(args) = call_args(code, i + 1) else { continue };
            let Some(stream_arg) = args.last() else { continue };
            let has_name = stream_arg.iter().any(|&j| matches!(code[j].tok, Tok::Ident(_)));
            if !has_name {
                let line = stream_arg.first().map_or(code[i].line, |&j| code[j].line);
                push(
                    diags,
                    rel,
                    line,
                    "rng-stream-discipline",
                    "stream argument of rng_for is a bare literal; use a named *_STREAM \
                     constant, a seed variable, or a documented `STREAM ^ seed` derivation"
                        .to_string(),
                );
            }
        }
    }
}

/// Splits the parenthesised argument list opening at `open` (which must
/// index a `(`) into top-level comma-separated token-index groups.
/// Returns `None` when the parens never close (truncated input).
fn call_args(code: &[&Spanned], open: usize) -> Option<Vec<Vec<usize>>> {
    let mut args: Vec<Vec<usize>> = vec![Vec::new()];
    let mut depth = 0i32;
    for (j, spanned) in code.iter().enumerate().skip(open) {
        match spanned.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                depth += 1;
                if depth > 1 {
                    args.last_mut().unwrap().push(j);
                }
            }
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    if args.len() == 1 && args[0].is_empty() {
                        args.clear(); // zero-argument call
                    }
                    return Some(args);
                }
                args.last_mut().unwrap().push(j);
            }
            Tok::Punct(',') if depth == 1 => args.push(Vec::new()),
            _ => args.last_mut().unwrap().push(j),
        }
    }
    None
}

/// Parses a Rust integer literal: decimal/hex/octal/binary, `_`
/// separators, optional `u64`-style suffix.
fn parse_u64(raw: &str) -> Option<u64> {
    let mut s: String = raw.chars().filter(|&c| c != '_').collect();
    for suffix in ["u64", "u32", "u16", "u8", "usize", "i64", "i32", "isize"] {
        if let Some(stripped) = s.strip_suffix(suffix) {
            s = stripped.to_string();
            break;
        }
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok();
    }
    if let Some(oct) = s.strip_prefix("0o") {
        return u64::from_str_radix(oct, 8).ok();
    }
    if let Some(bin) = s.strip_prefix("0b") {
        return u64::from_str_radix(bin, 2).ok();
    }
    s.parse().ok()
}

/// Cross-file pass: all collected reserved-stream constants must be
/// pairwise distinct u64 values — two "reserved" streams sharing a key
/// are the same stream, and the collision is exactly the silent breakage
/// the convention exists to prevent.
pub fn check_stream_constants(streams: &[StreamConst], diags: &mut Vec<Diag>) {
    for (ix, sc) in streams.iter().enumerate() {
        if let Some(prior) = streams[..ix].iter().find(|p| p.value == sc.value) {
            push(
                diags,
                &sc.path,
                sc.line,
                "rng-stream-discipline",
                format!(
                    "reserved stream constant {} duplicates the value {:#x} of {} ({}:{})",
                    sc.name, sc.value, prior.name, prior.path, prior.line
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: no-wall-clock
// ---------------------------------------------------------------------------

/// `std::time::Instant` / `SystemTime` are nondeterministic inputs; in a
/// simulation path they leak wall-clock into results. Banned everywhere
/// except explicitly allowlisted telemetry/measurement modules.
fn no_wall_clock(rel: &str, code: &[&Spanned], diags: &mut Vec<Diag>) {
    for s in code {
        if let Tok::Ident(t) = &s.tok {
            if t == "Instant" || t == "SystemTime" {
                push(
                    diags,
                    rel,
                    s.line,
                    "no-wall-clock",
                    format!("{t} is wall-clock; simulation paths must be deterministic \
                             (allowlist telemetry modules explicitly)"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: no-ambient-randomness
// ---------------------------------------------------------------------------

/// In `crates/engine/src` and `crates/graph/src`, ambient randomness is
/// banned: `thread_rng`/`rand::random` obviously, but also
/// `HashMap`/`HashSet`/`RandomState`, whose default hasher is seeded per
/// process — iteration order then varies run to run, and any RNG draw
/// made while iterating diverges the whole stream. Use `BTreeMap`/
/// `BTreeSet` or index-keyed vectors.
fn no_ambient_randomness(rel: &str, code: &[&Spanned], diags: &mut Vec<Diag>) {
    let scoped = rel.starts_with("crates/engine/src/") || rel.starts_with("crates/graph/src/");
    if !scoped {
        return;
    }
    for (i, s) in code.iter().enumerate() {
        if let Tok::Ident(t) = &s.tok {
            let banned = match t.as_str() {
                "thread_rng" | "RandomState" | "HashMap" | "HashSet" => true,
                "random" => {
                    // Only `rand::random` (the ambient-seeded free fn).
                    i >= 3
                        && ident_at(code, i - 3) == Some("rand")
                        && punct_at(code, i - 2, ':')
                        && punct_at(code, i - 1, ':')
                }
                _ => false,
            };
            if banned {
                push(
                    diags,
                    rel,
                    s.line,
                    "no-ambient-randomness",
                    format!(
                        "{t} is ambient/nondeterministic in a deterministic crate; use \
                         BTreeMap/BTreeSet (or index-keyed vectors) and explicit seeded RNGs"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: probe-rng-separation
// ---------------------------------------------------------------------------

const RNG_NAMES: [&str; 4] = ["Rng", "RngCore", "SmallRng", "rng_for"];

/// Telemetry must never touch the RNG: an instrumented run's random
/// streams — and therefore its results — must be byte-identical to a
/// bare run. Enforced for `telemetry.rs` files wholesale and for every
/// `impl … RoundProbe for …` block anywhere.
fn probe_rng_separation(rel: &str, code: &[&Spanned], diags: &mut Vec<Diag>) {
    let file = rel.rsplit('/').next().unwrap_or(rel);
    let flag = |diags: &mut Vec<Diag>, s: &Spanned, t: &str, ctx: &str| {
        push(
            diags,
            rel,
            s.line,
            "probe-rng-separation",
            format!("{t} named in {ctx}; probes must never touch the RNG so instrumented \
                     runs stay byte-identical to bare runs"),
        );
    };
    if file == "telemetry.rs" {
        for s in code {
            if let Tok::Ident(t) = &s.tok {
                if RNG_NAMES.contains(&t.as_str()) {
                    flag(diags, s, t, "a telemetry module");
                }
            }
        }
        return; // whole file covered; impl scan below would duplicate
    }
    let mut i = 0usize;
    while i < code.len() {
        if ident_at(code, i) == Some("impl") {
            // Header runs to the block's `{`; generics carry no braces.
            let mut j = i + 1;
            let mut is_probe_impl = false;
            let mut saw_for = false;
            while j < code.len() && !punct_at(code, j, '{') && !punct_at(code, j, ';') {
                match ident_at(code, j) {
                    Some("RoundProbe") => is_probe_impl = true,
                    Some("for") => saw_for = true,
                    _ => {}
                }
                j += 1;
            }
            if is_probe_impl && saw_for && punct_at(code, j, '{') {
                let mut depth = 1i32;
                let mut k = j + 1;
                while k < code.len() && depth > 0 {
                    match &code[k].tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => depth -= 1,
                        Tok::Ident(t) if RNG_NAMES.contains(&t.as_str()) => {
                            flag(diags, code[k], t, "a RoundProbe impl");
                        }
                        _ => {}
                    }
                    k += 1;
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Rule 5: crate-hygiene
// ---------------------------------------------------------------------------

/// Every crate root (`src/lib.rs`) must carry `#![forbid(unsafe_code)]`:
/// the memory-safety analogue of this lint, and the precedent for
/// locking a convention in mechanically.
fn crate_hygiene(rel: &str, code: &[&Spanned], diags: &mut Vec<Diag>) {
    let is_root = rel == "src/lib.rs" || rel.ends_with("/src/lib.rs");
    if !is_root {
        return;
    }
    let has_forbid = (0..code.len()).any(|i| {
        ident_at(code, i) == Some("forbid")
            && punct_at(code, i + 1, '(')
            && ident_at(code, i + 2) == Some("unsafe_code")
    });
    if !has_forbid {
        push(
            diags,
            rel,
            1,
            "crate-hygiene",
            "crate root missing #![forbid(unsafe_code)]".to_string(),
        );
    }
}

// ---------------------------------------------------------------------------
// Rule 6: hot-path-alloc
// ---------------------------------------------------------------------------

/// Functions annotated `// rrb-lint: hot` must not call the well-known
/// allocating APIs. The steady-state no-allocation tests catch dynamic
/// regressions; this catches them at review time, in paths the tests
/// don't happen to drive.
fn hot_path_alloc(rel: &str, toks: &[Spanned], diags: &mut Vec<Diag>) {
    let mut i = 0usize;
    while i < toks.len() {
        // The annotation is the whole comment (`// rrb-lint: hot`), so
        // prose *mentioning* the syntax never annotates anything.
        let is_hot_marker = matches!(
            &toks[i].tok,
            Tok::Comment(text) if text.trim() == "rrb-lint: hot"
        );
        if !is_hot_marker {
            i += 1;
            continue;
        }
        // Find the next `fn`, then its body `{`.
        let mut j = i + 1;
        while j < toks.len() && toks[j].tok != Tok::Ident("fn".to_string()) {
            j += 1;
        }
        while j < toks.len() && toks[j].tok != Tok::Punct('{') {
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        let mut depth = 1i32;
        let mut k = j + 1;
        while k < toks.len() && depth > 0 {
            match &toks[k].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                Tok::Ident(t) => {
                    if let Some(api) = allocating_api(toks, k, t) {
                        push(
                            diags,
                            rel,
                            toks[k].line,
                            "hot-path-alloc",
                            format!(
                                "{api} allocates inside a `// rrb-lint: hot` function; \
                                 reuse a scratch buffer or hoist the allocation out"
                            ),
                        );
                    }
                }
                _ => {}
            }
            k += 1;
        }
        i = k;
    }
}

/// Returns the display name of a known-allocating API if the identifier
/// at `k` is one, in context.
fn allocating_api(toks: &[Spanned], k: usize, t: &str) -> Option<&'static str> {
    let next_is = |c: char| matches!(toks.get(k + 1).map(|s| &s.tok), Some(Tok::Punct(p)) if *p == c);
    let path_new = || {
        // `X :: new`
        matches!(toks.get(k + 1).map(|s| &s.tok), Some(Tok::Punct(':')))
            && matches!(toks.get(k + 2).map(|s| &s.tok), Some(Tok::Punct(':')))
            && matches!(toks.get(k + 3).map(|s| &s.tok), Some(Tok::Ident(n)) if n == "new")
    };
    match t {
        "Vec" if path_new() => Some("Vec::new"),
        "Box" if path_new() => Some("Box::new"),
        "String" if path_new() => Some("String::new"),
        "to_vec" => Some("to_vec"),
        "to_owned" => Some("to_owned"),
        "to_string" => Some("to_string"),
        "collect" => Some("collect"),
        "format" if next_is('!') => Some("format!"),
        "vec" if next_is('!') => Some("vec!"),
        _ => None,
    }
}
